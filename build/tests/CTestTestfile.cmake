# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/rewriter_test[1]_include.cmake")
include("/root/repo/build/tests/tracking_proxy_test[1]_include.cmake")
include("/root/repo/build/tests/logreader_test[1]_include.cmake")
include("/root/repo/build/tests/sybase_43_test[1]_include.cmake")
include("/root/repo/build/tests/repair_property_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/whatif_test[1]_include.cmake")
include("/root/repo/build/tests/detector_test[1]_include.cmake")
include("/root/repo/build/tests/analyzer_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/expr_eval_test[1]_include.cmake")
include("/root/repo/build/tests/repair_e2e_test[1]_include.cmake")
include("/root/repo/build/tests/tpcc_test[1]_include.cmake")
