file(REMOVE_RECURSE
  "CMakeFiles/tracking_proxy_test.dir/tracking_proxy_test.cc.o"
  "CMakeFiles/tracking_proxy_test.dir/tracking_proxy_test.cc.o.d"
  "tracking_proxy_test"
  "tracking_proxy_test.pdb"
  "tracking_proxy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracking_proxy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
