# Empty compiler generated dependencies file for sybase_43_test.
# This may be replaced when dependencies are built.
