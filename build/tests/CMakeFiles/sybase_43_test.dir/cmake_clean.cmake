file(REMOVE_RECURSE
  "CMakeFiles/sybase_43_test.dir/sybase_43_test.cc.o"
  "CMakeFiles/sybase_43_test.dir/sybase_43_test.cc.o.d"
  "sybase_43_test"
  "sybase_43_test.pdb"
  "sybase_43_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybase_43_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
