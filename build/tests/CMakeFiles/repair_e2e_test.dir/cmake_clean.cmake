file(REMOVE_RECURSE
  "CMakeFiles/repair_e2e_test.dir/repair_e2e_test.cc.o"
  "CMakeFiles/repair_e2e_test.dir/repair_e2e_test.cc.o.d"
  "repair_e2e_test"
  "repair_e2e_test.pdb"
  "repair_e2e_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
