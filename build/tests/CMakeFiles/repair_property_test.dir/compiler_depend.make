# Empty compiler generated dependencies file for repair_property_test.
# This may be replaced when dependencies are built.
