file(REMOVE_RECURSE
  "CMakeFiles/logreader_test.dir/logreader_test.cc.o"
  "CMakeFiles/logreader_test.dir/logreader_test.cc.o.d"
  "logreader_test"
  "logreader_test.pdb"
  "logreader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logreader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
