# Empty dependencies file for logreader_test.
# This may be replaced when dependencies are built.
