
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/logreader_test.cc" "tests/CMakeFiles/logreader_test.dir/logreader_test.cc.o" "gcc" "tests/CMakeFiles/logreader_test.dir/logreader_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/irdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/irdb_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/repair/CMakeFiles/irdb_repair.dir/DependInfo.cmake"
  "/root/repo/build/src/flavor/CMakeFiles/irdb_flavor.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/irdb_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/tpcc/CMakeFiles/irdb_tpcc.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/irdb_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/irdb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/irdb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/irdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/irdb_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/irdb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/irdb_storage_value.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
