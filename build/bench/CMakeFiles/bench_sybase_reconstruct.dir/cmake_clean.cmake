file(REMOVE_RECURSE
  "CMakeFiles/bench_sybase_reconstruct.dir/bench_sybase_reconstruct.cc.o"
  "CMakeFiles/bench_sybase_reconstruct.dir/bench_sybase_reconstruct.cc.o.d"
  "bench_sybase_reconstruct"
  "bench_sybase_reconstruct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sybase_reconstruct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
