# Empty compiler generated dependencies file for bench_sybase_reconstruct.
# This may be replaced when dependencies are built.
