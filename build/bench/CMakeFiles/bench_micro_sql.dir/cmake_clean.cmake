file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_sql.dir/bench_micro_sql.cc.o"
  "CMakeFiles/bench_micro_sql.dir/bench_micro_sql.cc.o.d"
  "bench_micro_sql"
  "bench_micro_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
