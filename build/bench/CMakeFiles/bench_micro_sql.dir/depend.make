# Empty dependencies file for bench_micro_sql.
# This may be replaced when dependencies are built.
