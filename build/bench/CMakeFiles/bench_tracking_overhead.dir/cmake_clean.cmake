file(REMOVE_RECURSE
  "CMakeFiles/bench_tracking_overhead.dir/bench_tracking_overhead.cc.o"
  "CMakeFiles/bench_tracking_overhead.dir/bench_tracking_overhead.cc.o.d"
  "bench_tracking_overhead"
  "bench_tracking_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tracking_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
