# Empty dependencies file for bench_tracking_overhead.
# This may be replaced when dependencies are built.
