file(REMOVE_RECURSE
  "CMakeFiles/bench_proxy_architectures.dir/bench_proxy_architectures.cc.o"
  "CMakeFiles/bench_proxy_architectures.dir/bench_proxy_architectures.cc.o.d"
  "bench_proxy_architectures"
  "bench_proxy_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_proxy_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
