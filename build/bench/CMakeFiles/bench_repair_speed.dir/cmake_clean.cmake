file(REMOVE_RECURSE
  "CMakeFiles/bench_repair_speed.dir/bench_repair_speed.cc.o"
  "CMakeFiles/bench_repair_speed.dir/bench_repair_speed.cc.o.d"
  "bench_repair_speed"
  "bench_repair_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_repair_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
