# Empty dependencies file for bench_repair_speed.
# This may be replaced when dependencies are built.
