# Empty compiler generated dependencies file for bench_tpcc_load.
# This may be replaced when dependencies are built.
