file(REMOVE_RECURSE
  "CMakeFiles/bench_tpcc_load.dir/bench_tpcc_load.cc.o"
  "CMakeFiles/bench_tpcc_load.dir/bench_tpcc_load.cc.o.d"
  "bench_tpcc_load"
  "bench_tpcc_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpcc_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
