# Empty compiler generated dependencies file for irdb_core.
# This may be replaced when dependencies are built.
