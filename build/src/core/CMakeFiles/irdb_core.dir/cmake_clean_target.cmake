file(REMOVE_RECURSE
  "libirdb_core.a"
)
