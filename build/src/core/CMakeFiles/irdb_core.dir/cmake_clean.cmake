file(REMOVE_RECURSE
  "CMakeFiles/irdb_core.dir/resilient_db.cc.o"
  "CMakeFiles/irdb_core.dir/resilient_db.cc.o.d"
  "libirdb_core.a"
  "libirdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
