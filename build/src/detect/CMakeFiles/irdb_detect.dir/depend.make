# Empty dependencies file for irdb_detect.
# This may be replaced when dependencies are built.
