file(REMOVE_RECURSE
  "CMakeFiles/irdb_detect.dir/anomaly_detector.cc.o"
  "CMakeFiles/irdb_detect.dir/anomaly_detector.cc.o.d"
  "libirdb_detect.a"
  "libirdb_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irdb_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
