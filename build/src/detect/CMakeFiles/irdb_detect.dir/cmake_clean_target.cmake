file(REMOVE_RECURSE
  "libirdb_detect.a"
)
