file(REMOVE_RECURSE
  "libirdb_util.a"
)
