file(REMOVE_RECURSE
  "CMakeFiles/irdb_util.dir/status.cc.o"
  "CMakeFiles/irdb_util.dir/status.cc.o.d"
  "CMakeFiles/irdb_util.dir/string_utils.cc.o"
  "CMakeFiles/irdb_util.dir/string_utils.cc.o.d"
  "libirdb_util.a"
  "libirdb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irdb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
