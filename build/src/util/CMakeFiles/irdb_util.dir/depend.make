# Empty dependencies file for irdb_util.
# This may be replaced when dependencies are built.
