# Empty dependencies file for irdb_flavor.
# This may be replaced when dependencies are built.
