file(REMOVE_RECURSE
  "libirdb_flavor.a"
)
