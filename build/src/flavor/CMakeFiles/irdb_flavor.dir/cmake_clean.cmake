file(REMOVE_RECURSE
  "CMakeFiles/irdb_flavor.dir/log_reader.cc.o"
  "CMakeFiles/irdb_flavor.dir/log_reader.cc.o.d"
  "CMakeFiles/irdb_flavor.dir/make_reader.cc.o"
  "CMakeFiles/irdb_flavor.dir/make_reader.cc.o.d"
  "CMakeFiles/irdb_flavor.dir/oracle_logminer.cc.o"
  "CMakeFiles/irdb_flavor.dir/oracle_logminer.cc.o.d"
  "CMakeFiles/irdb_flavor.dir/postgres_reader.cc.o"
  "CMakeFiles/irdb_flavor.dir/postgres_reader.cc.o.d"
  "CMakeFiles/irdb_flavor.dir/sybase_reader.cc.o"
  "CMakeFiles/irdb_flavor.dir/sybase_reader.cc.o.d"
  "libirdb_flavor.a"
  "libirdb_flavor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irdb_flavor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
