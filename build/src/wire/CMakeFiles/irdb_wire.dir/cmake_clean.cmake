file(REMOVE_RECURSE
  "CMakeFiles/irdb_wire.dir/protocol.cc.o"
  "CMakeFiles/irdb_wire.dir/protocol.cc.o.d"
  "libirdb_wire.a"
  "libirdb_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irdb_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
