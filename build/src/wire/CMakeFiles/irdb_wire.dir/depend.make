# Empty dependencies file for irdb_wire.
# This may be replaced when dependencies are built.
