file(REMOVE_RECURSE
  "libirdb_wire.a"
)
