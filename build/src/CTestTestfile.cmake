# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sql")
subdirs("storage")
subdirs("txn")
subdirs("engine")
subdirs("flavor")
subdirs("wire")
subdirs("proxy")
subdirs("repair")
subdirs("detect")
subdirs("tpcc")
subdirs("core")
