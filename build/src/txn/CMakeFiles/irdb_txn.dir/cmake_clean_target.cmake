file(REMOVE_RECURSE
  "libirdb_txn.a"
)
