file(REMOVE_RECURSE
  "CMakeFiles/irdb_txn.dir/log_record.cc.o"
  "CMakeFiles/irdb_txn.dir/log_record.cc.o.d"
  "libirdb_txn.a"
  "libirdb_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irdb_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
