# Empty compiler generated dependencies file for irdb_txn.
# This may be replaced when dependencies are built.
