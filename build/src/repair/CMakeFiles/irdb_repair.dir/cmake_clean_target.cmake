file(REMOVE_RECURSE
  "libirdb_repair.a"
)
