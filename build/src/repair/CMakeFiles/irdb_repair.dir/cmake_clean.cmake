file(REMOVE_RECURSE
  "CMakeFiles/irdb_repair.dir/analyzer.cc.o"
  "CMakeFiles/irdb_repair.dir/analyzer.cc.o.d"
  "CMakeFiles/irdb_repair.dir/compensator.cc.o"
  "CMakeFiles/irdb_repair.dir/compensator.cc.o.d"
  "CMakeFiles/irdb_repair.dir/dependency_graph.cc.o"
  "CMakeFiles/irdb_repair.dir/dependency_graph.cc.o.d"
  "CMakeFiles/irdb_repair.dir/whatif.cc.o"
  "CMakeFiles/irdb_repair.dir/whatif.cc.o.d"
  "libirdb_repair.a"
  "libirdb_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irdb_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
