# Empty dependencies file for irdb_repair.
# This may be replaced when dependencies are built.
