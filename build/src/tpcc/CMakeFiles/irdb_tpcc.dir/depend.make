# Empty dependencies file for irdb_tpcc.
# This may be replaced when dependencies are built.
