file(REMOVE_RECURSE
  "libirdb_tpcc.a"
)
