file(REMOVE_RECURSE
  "CMakeFiles/irdb_tpcc.dir/loader.cc.o"
  "CMakeFiles/irdb_tpcc.dir/loader.cc.o.d"
  "CMakeFiles/irdb_tpcc.dir/schema.cc.o"
  "CMakeFiles/irdb_tpcc.dir/schema.cc.o.d"
  "CMakeFiles/irdb_tpcc.dir/workload.cc.o"
  "CMakeFiles/irdb_tpcc.dir/workload.cc.o.d"
  "libirdb_tpcc.a"
  "libirdb_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irdb_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
