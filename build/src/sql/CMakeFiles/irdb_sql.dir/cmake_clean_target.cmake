file(REMOVE_RECURSE
  "libirdb_sql.a"
)
