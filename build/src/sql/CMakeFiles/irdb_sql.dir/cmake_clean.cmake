file(REMOVE_RECURSE
  "CMakeFiles/irdb_sql.dir/ast.cc.o"
  "CMakeFiles/irdb_sql.dir/ast.cc.o.d"
  "CMakeFiles/irdb_sql.dir/lexer.cc.o"
  "CMakeFiles/irdb_sql.dir/lexer.cc.o.d"
  "CMakeFiles/irdb_sql.dir/parser.cc.o"
  "CMakeFiles/irdb_sql.dir/parser.cc.o.d"
  "CMakeFiles/irdb_sql.dir/printer.cc.o"
  "CMakeFiles/irdb_sql.dir/printer.cc.o.d"
  "libirdb_sql.a"
  "libirdb_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irdb_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
