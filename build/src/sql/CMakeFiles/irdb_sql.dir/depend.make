# Empty dependencies file for irdb_sql.
# This may be replaced when dependencies are built.
