# Empty compiler generated dependencies file for irdb_engine.
# This may be replaced when dependencies are built.
