file(REMOVE_RECURSE
  "CMakeFiles/irdb_engine.dir/database.cc.o"
  "CMakeFiles/irdb_engine.dir/database.cc.o.d"
  "CMakeFiles/irdb_engine.dir/expr_eval.cc.o"
  "CMakeFiles/irdb_engine.dir/expr_eval.cc.o.d"
  "CMakeFiles/irdb_engine.dir/recovery.cc.o"
  "CMakeFiles/irdb_engine.dir/recovery.cc.o.d"
  "CMakeFiles/irdb_engine.dir/select_exec.cc.o"
  "CMakeFiles/irdb_engine.dir/select_exec.cc.o.d"
  "libirdb_engine.a"
  "libirdb_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irdb_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
