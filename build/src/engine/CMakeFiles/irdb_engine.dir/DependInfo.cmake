
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/database.cc" "src/engine/CMakeFiles/irdb_engine.dir/database.cc.o" "gcc" "src/engine/CMakeFiles/irdb_engine.dir/database.cc.o.d"
  "/root/repo/src/engine/expr_eval.cc" "src/engine/CMakeFiles/irdb_engine.dir/expr_eval.cc.o" "gcc" "src/engine/CMakeFiles/irdb_engine.dir/expr_eval.cc.o.d"
  "/root/repo/src/engine/recovery.cc" "src/engine/CMakeFiles/irdb_engine.dir/recovery.cc.o" "gcc" "src/engine/CMakeFiles/irdb_engine.dir/recovery.cc.o.d"
  "/root/repo/src/engine/select_exec.cc" "src/engine/CMakeFiles/irdb_engine.dir/select_exec.cc.o" "gcc" "src/engine/CMakeFiles/irdb_engine.dir/select_exec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/irdb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/irdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/irdb_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/irdb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/irdb_storage_value.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
