file(REMOVE_RECURSE
  "libirdb_engine.a"
)
