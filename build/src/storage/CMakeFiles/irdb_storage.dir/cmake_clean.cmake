file(REMOVE_RECURSE
  "CMakeFiles/irdb_storage.dir/catalog.cc.o"
  "CMakeFiles/irdb_storage.dir/catalog.cc.o.d"
  "CMakeFiles/irdb_storage.dir/heap_table.cc.o"
  "CMakeFiles/irdb_storage.dir/heap_table.cc.o.d"
  "CMakeFiles/irdb_storage.dir/row_codec.cc.o"
  "CMakeFiles/irdb_storage.dir/row_codec.cc.o.d"
  "CMakeFiles/irdb_storage.dir/schema.cc.o"
  "CMakeFiles/irdb_storage.dir/schema.cc.o.d"
  "libirdb_storage.a"
  "libirdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
