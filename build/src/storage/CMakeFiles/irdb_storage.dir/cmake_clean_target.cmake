file(REMOVE_RECURSE
  "libirdb_storage.a"
)
