# Empty dependencies file for irdb_storage.
# This may be replaced when dependencies are built.
