
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/catalog.cc" "src/storage/CMakeFiles/irdb_storage.dir/catalog.cc.o" "gcc" "src/storage/CMakeFiles/irdb_storage.dir/catalog.cc.o.d"
  "/root/repo/src/storage/heap_table.cc" "src/storage/CMakeFiles/irdb_storage.dir/heap_table.cc.o" "gcc" "src/storage/CMakeFiles/irdb_storage.dir/heap_table.cc.o.d"
  "/root/repo/src/storage/row_codec.cc" "src/storage/CMakeFiles/irdb_storage.dir/row_codec.cc.o" "gcc" "src/storage/CMakeFiles/irdb_storage.dir/row_codec.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/storage/CMakeFiles/irdb_storage.dir/schema.cc.o" "gcc" "src/storage/CMakeFiles/irdb_storage.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/irdb_storage_value.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/irdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
