# Empty compiler generated dependencies file for irdb_storage_value.
# This may be replaced when dependencies are built.
