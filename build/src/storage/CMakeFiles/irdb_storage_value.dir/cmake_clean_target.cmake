file(REMOVE_RECURSE
  "libirdb_storage_value.a"
)
