file(REMOVE_RECURSE
  "CMakeFiles/irdb_storage_value.dir/value.cc.o"
  "CMakeFiles/irdb_storage_value.dir/value.cc.o.d"
  "libirdb_storage_value.a"
  "libirdb_storage_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irdb_storage_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
