file(REMOVE_RECURSE
  "CMakeFiles/irdb_proxy.dir/rewriter.cc.o"
  "CMakeFiles/irdb_proxy.dir/rewriter.cc.o.d"
  "CMakeFiles/irdb_proxy.dir/tracking_proxy.cc.o"
  "CMakeFiles/irdb_proxy.dir/tracking_proxy.cc.o.d"
  "libirdb_proxy.a"
  "libirdb_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irdb_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
