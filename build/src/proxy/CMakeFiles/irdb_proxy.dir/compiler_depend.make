# Empty compiler generated dependencies file for irdb_proxy.
# This may be replaced when dependencies are built.
