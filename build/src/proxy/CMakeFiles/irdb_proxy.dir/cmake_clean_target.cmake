file(REMOVE_RECURSE
  "libirdb_proxy.a"
)
