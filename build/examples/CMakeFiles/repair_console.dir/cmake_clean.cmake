file(REMOVE_RECURSE
  "CMakeFiles/repair_console.dir/repair_console.cpp.o"
  "CMakeFiles/repair_console.dir/repair_console.cpp.o.d"
  "repair_console"
  "repair_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
