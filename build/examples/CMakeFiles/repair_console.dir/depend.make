# Empty dependencies file for repair_console.
# This may be replaced when dependencies are built.
