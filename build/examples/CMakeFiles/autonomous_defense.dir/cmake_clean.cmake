file(REMOVE_RECURSE
  "CMakeFiles/autonomous_defense.dir/autonomous_defense.cpp.o"
  "CMakeFiles/autonomous_defense.dir/autonomous_defense.cpp.o.d"
  "autonomous_defense"
  "autonomous_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autonomous_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
