# Empty compiler generated dependencies file for autonomous_defense.
# This may be replaced when dependencies are built.
