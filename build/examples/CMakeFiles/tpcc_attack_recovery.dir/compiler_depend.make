# Empty compiler generated dependencies file for tpcc_attack_recovery.
# This may be replaced when dependencies are built.
