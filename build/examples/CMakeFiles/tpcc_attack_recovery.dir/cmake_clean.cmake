file(REMOVE_RECURSE
  "CMakeFiles/tpcc_attack_recovery.dir/tpcc_attack_recovery.cpp.o"
  "CMakeFiles/tpcc_attack_recovery.dir/tpcc_attack_recovery.cpp.o.d"
  "tpcc_attack_recovery"
  "tpcc_attack_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcc_attack_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
