file(REMOVE_RECURSE
  "CMakeFiles/dependency_graph_demo.dir/dependency_graph_demo.cpp.o"
  "CMakeFiles/dependency_graph_demo.dir/dependency_graph_demo.cpp.o.d"
  "dependency_graph_demo"
  "dependency_graph_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dependency_graph_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
