# Empty compiler generated dependencies file for dependency_graph_demo.
# This may be replaced when dependencies are built.
