#!/usr/bin/env bash
# Builds and runs the networked front-end throughput bench (connection sweep
# over an emulated LAN link), leaving BENCH_net.json in the repo root (or $1
# if given). Usage: tools/run_bench_net.sh [out.json]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$repo/BENCH_net.json}"

cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" --target bench_net_throughput -j >/dev/null

"$repo/build/bench/bench_net_throughput" --out="$out"
