#!/usr/bin/env bash
# Builds and runs the reenactment-vs-undo repair bench (innocent rows
# preserved and repair wall time under the simulated 2004-class disk model,
# 8 repair threads vs the paper's serial undo-only baseline), leaving
# BENCH_reenact.json in the repo root (or $1 if given). Exits non-zero if
# reenactment does not preserve strictly more innocent rows than undo-only
# at equal-or-better wall time. Usage: tools/run_bench_reenact.sh [out.json]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$repo/BENCH_reenact.json}"

cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" --target bench_reenact -j >/dev/null

"$repo/build/bench/bench_reenact" --out="$out"
