// irdb_loadgen — multi-threaded TPC-C load driver for the networked
// front-end: N worker threads, one real TCP connection each, running the
// paper's transaction mix against a NetProxyServer.
//
// Three modes:
//   self-host (default): starts a tracked NetProxyServer over a fresh
//     engine, loads TPC-C through the first connection, then drives the
//     mix. Prints client-side throughput, the server's transport counters
//     (with the frames_in == frames_out == requests_served accounting
//     check), and the aggregated tracking-proxy stats.
//   --shards=N (N >= 2): self-hosts a whole ShardCluster — N engine shards
//     behind the warehouse-hash router — and mounts the router on the TCP
//     front door, so every connection drives RoutedSessions and a fraction
//     of new-orders (--remote-pct) supply remote warehouses and commit via
//     2PC. The tail report aggregates across the shards: the router-tier
//     counters (routed/broadcast statements, cross-shard commits, merged
//     dependency entries) plus the tracking stats folded from every retired
//     per-shard session. --timeline and the p50/p99/deadlock numbers are
//     client-side, so they already span the whole cluster.
//   --port=P [--host=H]: drives an already-running server (no load phase,
//     no server-side stats) — point it at another process's ServeTcp.
//
// Flags:
//   --connections=N   worker threads / TCP connections       (default 4)
//   --txns=N          mix transactions per connection        (default 50)
//   --mix=rw|ro       read/write mix or Stock-Level only     (default rw)
//   --warehouses=N    TPC-C scale for self-host load         (default 2)
//   --shards=N        engine shards behind the router        (default 1)
//   --remote-pct=F    remote-supply probability per order    (default 0.10,
//                     line, shards >= 2 only — drives the 2PC mix)
//   --scale=N         multiplier on per-district cardinality (default 1)
//                     (customers/items/orders; the loader emits ascending
//                     primary keys, so big loads ride the B+ tree's
//                     rightmost-append bulk-load fast path)
//   --rtt-ms=F        emulated link RTT per round trip       (default 0)
//   --seed=N          workload seed                          (default 42)
//   --no-track        self-host without server-side tracking
//   --no-annot        skip per-transaction annot labels
//
// Workers retry a transaction (bounded) when the engine's lock manager
// aborts it with a "[deadlock]" tag; the per-thread report breaks out
// deadlock aborts, client retries, and p50/p99 whole-transaction latency
// (retries included), so contention shows up in the numbers instead of as
// silent failures.
//
// Transactions turned away by an online repair's quarantine gate
// ("[quarantine]"-tagged kUnavailable) are counted as REJECTED, not failed:
// the server is up and answering, it is fencing contaminated slices while
// they heal. --timeline prints per-second served/rejected buckets with the
// availability ratio, which is how bench_online_repair's serve-through
// curves are read off a live run.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "concurrency/lock_manager.h"
#include "engine/database.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "shard/shard_cluster.h"
#include "tpcc/loader.h"
#include "tpcc/workload.h"
#include "util/stopwatch.h"

namespace irdb {
namespace {

struct WorkerTally {
  int64_t ok = 0;
  int64_t failed = 0;
  int64_t rejected = 0;         // "[quarantine]"-tagged kUnavailable
  int64_t deadlock_aborts = 0;  // "[deadlock]"-tagged aborts observed
  int64_t retries = 0;          // whole-transaction client retries
  std::vector<double> latencies_ms;  // per logical txn, retries included
  std::string first_error;
};

// Per-second availability buckets, shared across workers (--timeline).
struct SecondBucket {
  std::atomic<int64_t> served{0};
  std::atomic<int64_t> rejected{0};  // quarantine rejects
  std::atomic<int64_t> failed{0};    // everything else
};
constexpr size_t kMaxBuckets = 3600;

// Nearest-rank percentile; sorts in place.
double Percentile(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(
      v.size() - 1, static_cast<size_t>(q * static_cast<double>(v.size())));
  return v[idx];
}

int Main(int argc, char** argv) {
  int connections = 4;
  int txns = 50;
  int warehouses = 2;
  int shards = 1;
  double remote_pct = 0.10;
  int scale = 1;
  double rtt_ms = 0.0;
  uint64_t seed = 42;
  uint16_t port = 0;
  std::string host = "127.0.0.1";
  bool track = true;
  bool annotate = true;
  bool read_only = false;
  bool timeline = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--connections=", 14) == 0) {
      connections = std::atoi(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--txns=", 7) == 0) {
      txns = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--warehouses=", 13) == 0) {
      warehouses = std::atoi(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::max(1, std::atoi(argv[i] + 9));
    } else if (std::strncmp(argv[i], "--remote-pct=", 13) == 0) {
      remote_pct = std::atof(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::max(1, std::atoi(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--rtt-ms=", 9) == 0) {
      rtt_ms = std::atof(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--port=", 7) == 0) {
      port = static_cast<uint16_t>(std::atoi(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--host=", 7) == 0) {
      host = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--no-track") == 0) {
      track = false;
    } else if (std::strcmp(argv[i], "--no-annot") == 0) {
      annotate = false;
    } else if (std::strcmp(argv[i], "--timeline") == 0) {
      timeline = true;
    } else if (std::strncmp(argv[i], "--mix=", 6) == 0) {
      read_only = std::strcmp(argv[i] + 6, "ro") == 0;
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--connections=N] [--txns=N] [--mix=rw|ro]\n"
          "          [--warehouses=N] [--shards=N] [--remote-pct=F]\n"
          "          [--scale=N] [--rtt-ms=F] [--seed=N]\n"
          "          [--port=P [--host=H]] [--no-track] [--no-annot]\n"
          "          [--timeline]\n",
          argv[0]);
      return 2;
    }
  }

  tpcc::TpccConfig cfg;
  cfg.warehouses = warehouses;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 8 * scale;
  cfg.items = 40 * scale;
  cfg.orders_per_district = 8 * scale;
  cfg.seed = seed;

  // Self-host unless the caller pointed us at an existing server. With
  // --shards=N the "engine" is a whole ShardCluster and the TCP front door
  // mounts the router, so every connection gets a RoutedSession.
  std::unique_ptr<Database> db;
  proxy::TxnIdAllocator alloc;
  std::unique_ptr<shard::ShardCluster> cluster;
  std::unique_ptr<net::NetProxyServer> server;
  if (port == 0) {
    if (shards > 1) {
      cfg.remote_item_pct = remote_pct;
      shard::ShardClusterOptions clopts;
      clopts.shards = shards;
      cluster = std::make_unique<shard::ShardCluster>(clopts);
      if (Status s = cluster->Bootstrap(); !s.ok()) {
        std::fprintf(stderr, "cluster bootstrap: %s\n", s.ToString().c_str());
        return 1;
      }
      net::NetServerOptions sopts;
      sopts.exec_threads = 8;
      auto server_or = cluster->ServeRouter(sopts);
      if (!server_or.ok()) {
        std::fprintf(stderr, "router start: %s\n",
                     server_or.status().ToString().c_str());
        return 1;
      }
      server = std::move(*server_or);
    } else {
      db = std::make_unique<Database>(FlavorTraits::Postgres());
      net::NetServerOptions sopts;
      sopts.track = track;
      sopts.exec_threads = 8;
      server = std::make_unique<net::NetProxyServer>(db.get(), &alloc, sopts);
      if (Status s = server->Start(); !s.ok()) {
        std::fprintf(stderr, "server start: %s\n", s.ToString().c_str());
        return 1;
      }
      if (Status s = server->Bootstrap(); !s.ok()) {
        std::fprintf(stderr, "server bootstrap: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    port = server->port();

    net::TcpChannelOptions copts;
    copts.host = host;
    copts.port = port;
    auto loader = net::NetClient::Dial(copts);
    if (!loader.ok()) {
      std::fprintf(stderr, "dial: %s\n", loader.status().ToString().c_str());
      return 1;
    }
    Stopwatch load_sw;
    if (auto s = tpcc::LoadDatabase(&(*loader)->connection(), cfg); !s.ok()) {
      std::fprintf(stderr, "tpcc load: %s\n", s.status().ToString().c_str());
      return 1;
    }
    if (cluster != nullptr) {
      std::printf("loadgen: self-hosted router on port %u (%d shards, "
                  "remote-pct=%.2f), TPC-C W=%d loaded in %.2fs\n",
                  port, shards, remote_pct, cfg.warehouses,
                  load_sw.ElapsedSeconds());
    } else {
      std::printf("loadgen: self-hosted on port %u (%s), TPC-C W=%d loaded in "
                  "%.2fs\n",
                  port, track ? "tracked" : "untracked", cfg.warehouses,
                  load_sw.ElapsedSeconds());
    }
  } else {
    std::printf("loadgen: driving %s:%u (assumed loaded)\n", host.c_str(),
                port);
  }

  std::vector<WorkerTally> tallies(static_cast<size_t>(connections));
  std::vector<SecondBucket> buckets(kMaxBuckets);
  std::vector<std::thread> workers;
  Stopwatch sw;
  auto bucket_for = [&](double elapsed_s) -> SecondBucket& {
    const size_t idx = std::min(
        kMaxBuckets - 1, static_cast<size_t>(std::max(0.0, elapsed_s)));
    return buckets[idx];
  };
  for (int w = 0; w < connections; ++w) {
    workers.emplace_back([&, w] {
      WorkerTally& tally = tallies[static_cast<size_t>(w)];
      net::TcpChannelOptions copts;
      copts.host = host;
      copts.port = port;
      copts.simulated_rtt_seconds = rtt_ms * 1e-3;
      auto client = net::NetClient::Dial(copts);
      if (!client.ok()) {
        tally.failed = txns;
        tally.first_error = client.status().ToString();
        return;
      }
      tpcc::TpccDriver driver(&(*client)->connection(), cfg,
                              seed + 1000003 * static_cast<uint64_t>(w) + 1);
      driver.set_annotations(annotate);
      std::mt19937 rng(static_cast<uint32_t>(seed) + 77771u * w);
      constexpr int kMaxAttempts = 10;
      for (int t = 0; t < txns; ++t) {
        Stopwatch txn_sw;
        for (int attempt = 1; attempt <= kMaxAttempts; ++attempt) {
          auto r = read_only ? driver.StockLevel() : driver.RunMixed();
          if (r.ok()) {
            ++tally.ok;
            bucket_for(sw.ElapsedSeconds()).served.fetch_add(1);
            break;
          }
          const bool deadlock = concurrency::IsDeadlockAbort(r.status());
          if (deadlock) ++tally.deadlock_aborts;
          if (deadlock && attempt < kMaxAttempts) {
            ++tally.retries;  // the driver rolled back; rerun the whole txn
            // Jittered backoff: immediate retry tends to re-collide with
            // the same peers and exhaust the budget under hot contention.
            std::this_thread::sleep_for(std::chrono::microseconds(
                std::uniform_int_distribution<int>(0, 200 << std::min(attempt, 6))(rng)));
            continue;
          }
          if (ErrorReasonFromStatus(r.status()) ==
              ErrorReason::kQuarantined) {
            // The slice this transaction needed is fenced by an online
            // repair: a reject, not a failure — the server is serving.
            ++tally.rejected;
            bucket_for(sw.ElapsedSeconds()).rejected.fetch_add(1);
            break;
          }
          ++tally.failed;
          bucket_for(sw.ElapsedSeconds()).failed.fetch_add(1);
          if (tally.first_error.empty()) {
            tally.first_error = r.status().ToString();
          }
          break;
        }
        tally.latencies_ms.push_back(txn_sw.ElapsedSeconds() * 1e3);
      }
    });
  }
  for (auto& t : workers) t.join();
  const double wall = sw.ElapsedSeconds();

  int64_t ok = 0, failed = 0, rejected = 0, aborts = 0, retries = 0;
  std::vector<double> all_latencies;
  for (size_t w = 0; w < tallies.size(); ++w) {
    WorkerTally& t = tallies[w];
    ok += t.ok;
    failed += t.failed;
    rejected += t.rejected;
    aborts += t.deadlock_aborts;
    retries += t.retries;
    all_latencies.insert(all_latencies.end(), t.latencies_ms.begin(),
                         t.latencies_ms.end());
    std::printf("loadgen: worker %zu: ok=%lld failed=%lld rejected=%lld "
                "deadlock_aborts=%lld retries=%lld p50=%.2fms p99=%.2fms\n",
                w, static_cast<long long>(t.ok),
                static_cast<long long>(t.failed),
                static_cast<long long>(t.rejected),
                static_cast<long long>(t.deadlock_aborts),
                static_cast<long long>(t.retries),
                Percentile(t.latencies_ms, 0.50),
                Percentile(t.latencies_ms, 0.99));
    if (!t.first_error.empty()) {
      std::fprintf(stderr, "loadgen: worker error: %s\n",
                   t.first_error.c_str());
    }
  }
  std::printf("loadgen: %d conns x %d txns (%s): %lld ok, %lld failed, "
              "%lld rejected, %lld deadlock aborts, %lld retries, %.2fs "
              "wall, %.0f txn/s, p99=%.2fms\n",
              connections, txns, read_only ? "ro" : "rw",
              static_cast<long long>(ok), static_cast<long long>(failed),
              static_cast<long long>(rejected),
              static_cast<long long>(aborts), static_cast<long long>(retries),
              wall, static_cast<double>(ok) / wall,
              Percentile(all_latencies, 0.99));
  if (timeline) {
    // One line per wall-clock second with any traffic: what a dashboard
    // would plot during a serve-through repair.
    const size_t last =
        std::min(kMaxBuckets - 1, static_cast<size_t>(wall) + 1);
    for (size_t sec = 0; sec <= last; ++sec) {
      const int64_t s = buckets[sec].served.load();
      const int64_t r = buckets[sec].rejected.load();
      const int64_t f = buckets[sec].failed.load();
      if (s + r + f == 0) continue;
      const double avail =
          100.0 * static_cast<double>(s) / static_cast<double>(s + r + f);
      std::printf("loadgen: t=%zus served=%lld rejected=%lld failed=%lld "
                  "avail=%.1f%%\n",
                  sec, static_cast<long long>(s), static_cast<long long>(r),
                  static_cast<long long>(f), avail);
    }
  }

  int rc = failed == 0 ? 0 : 1;
  if (server != nullptr) {
    proxy::ProxyStats ps;
    if (cluster == nullptr) ps = server->ProxyStatsSnapshot();
    server->Stop();
    // Routed sessions fold their tracking stats into the cluster when the
    // server drops them, so the cluster-wide snapshot comes after Stop().
    if (cluster != nullptr) ps = cluster->RetiredProxyStats();
    const net::NetServerStats s = server->stats();
    std::printf("loadgen: server frames in/out/served=%lld/%lld/%lld "
                "conns=%lld resets=%lld stalls=%lld\n",
                static_cast<long long>(s.frames_in),
                static_cast<long long>(s.frames_out),
                static_cast<long long>(s.requests_served),
                static_cast<long long>(s.connections_accepted),
                static_cast<long long>(s.resets),
                static_cast<long long>(s.backpressure_stalls));
    if (cluster != nullptr) {
      const shard::RouterStats& r = cluster->router_stats();
      std::printf("loadgen: router shards=%d routed=%lld broadcasts=%lld "
                  "cross_shard=%lld 2pc_commits=%lld 2pc_aborts=%lld "
                  "deps_merged=%lld wrong_shard=%lld\n",
                  cluster->shards(),
                  static_cast<long long>(r.stmts_routed.load()),
                  static_cast<long long>(r.broadcasts.load()),
                  static_cast<long long>(r.cross_shard_txns.load()),
                  static_cast<long long>(r.twopc_commits.load()),
                  static_cast<long long>(r.twopc_aborts.load()),
                  static_cast<long long>(r.deps_merged.load()),
                  static_cast<long long>(r.wrong_shard_rejects.load()));
    }
    if (track) {
      std::printf("loadgen: tracking client_stmts=%lld backend_stmts=%lld "
                  "deps=%lld degraded=%lld gaps=%lld quarantine_rejects=%lld\n",
                  static_cast<long long>(ps.client_statements),
                  static_cast<long long>(ps.backend_statements),
                  static_cast<long long>(ps.deps_recorded),
                  static_cast<long long>(ps.degraded_commits),
                  static_cast<long long>(ps.tracking_gap_txns),
                  static_cast<long long>(ps.quarantine_rejects));
    }
    if (s.frames_in != s.frames_out || s.frames_in != s.requests_served) {
      std::fprintf(stderr, "loadgen: ACCOUNTING MISMATCH after clean drain\n");
      rc = 1;
    }
  }
  return rc;
}

}  // namespace
}  // namespace irdb

int main(int argc, char** argv) { return irdb::Main(argc, argv); }
