#!/usr/bin/env bash
# Builds and runs the engine-side concurrency bench: serial-mode baseline
# (the old global engine mutex) vs the lock manager, connection sweep over
# the tracked network stack with rtt=0 and realtime I/O stalls. Leaves
# BENCH_concurrency.json in the repo root (or $1 if given); exits non-zero
# if the 8-connection speedup misses the 3x acceptance floor or any leg
# records a tracking gap. Usage: tools/run_bench_concurrency.sh [out.json]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$repo/BENCH_concurrency.json}"

cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" --target bench_concurrency -j >/dev/null

"$repo/build/bench/bench_concurrency" --out="$out"
