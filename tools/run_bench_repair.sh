#!/usr/bin/env bash
# Builds and runs the repair-pipeline thread-scaling bench, leaving
# BENCH_repair.json in the repo root (or $1 if given). The bench sweeps the
# repair engine's worker count over {1,2,4,8}, checks that every thread count
# produces the identical undo set and repaired state, and reports per-phase
# wall + simulated timings (EXPERIMENTS.md consumes the table).
# Usage: tools/run_bench_repair.sh [out.json]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$repo/BENCH_repair.json}"

cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" --target bench_repair_speed -j >/dev/null

"$repo/build/bench/bench_repair_speed" --out="$out"
