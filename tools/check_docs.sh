#!/usr/bin/env bash
# Documentation consistency check — the `docs` ctest label.
#
#   1. Every relative markdown link in README.md and docs/*.md must resolve
#      to an existing file (http(s)/mailto and in-page #anchors are skipped).
#   2. docs/metrics.md must be byte-identical to the catalog renderer's
#      output (tools/gen_metrics_doc), so the metrics reference cannot drift
#      from src/obs/catalog.cc.
#
# Usage: tools/check_docs.sh [path/to/gen_metrics_doc]
#   Run from the repo root (ctest sets WORKING_DIRECTORY accordingly).
#   Without an argument, looks for build/tools/gen_metrics_doc.
set -euo pipefail

gen="${1:-build/tools/gen_metrics_doc}"
fail=0

# --- 1. markdown link targets exist ---------------------------------------
check_links() {
  local file="$1"
  local dir
  dir="$(dirname "$file")"
  # Extract (target) of every [text](target), one per line. `|| true`: a
  # file with no links is fine.
  { grep -oE '\]\([^)]+\)' "$file" || true; } | sed -e 's/^](//' -e 's/)$//' |
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;   # external
      '#'*) continue ;;                          # in-page anchor
    esac
    local path="${target%%#*}"                   # strip anchor suffix
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "DEAD LINK: $file -> $target"
      return 1
    fi
  done
}

for doc in README.md docs/*.md; do
  [ -e "$doc" ] || { echo "missing doc: $doc"; fail=1; continue; }
  if ! check_links "$doc"; then
    fail=1
  else
    echo "links ok: $doc"
  fi
done

# --- 2. docs/metrics.md is generated, byte-identical ----------------------
if [ ! -x "$gen" ]; then
  echo "gen_metrics_doc not found at '$gen' (build it: cmake --build build --target gen_metrics_doc)"
  exit 1
fi
if diff -u docs/metrics.md <("$gen"); then
  echo "docs/metrics.md matches the catalog renderer"
else
  echo "docs/metrics.md is STALE: regenerate with '$gen --out=docs/metrics.md'"
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED"
  exit 1
fi
echo "check_docs: OK"
