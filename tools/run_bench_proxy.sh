#!/usr/bin/env bash
# Builds and runs the plan-cache ablation bench, leaving BENCH_proxy.json in
# the repo root (or $1 if given). Usage: tools/run_bench_proxy.sh [out.json]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$repo/BENCH_proxy.json}"

cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" --target bench_proxy_cache -j >/dev/null

"$repo/build/bench/bench_proxy_cache" --out="$out"
