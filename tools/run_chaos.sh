#!/usr/bin/env bash
# Chaos soak: runs the seeded fault-injection harness across N seeds and
# every fault profile (including net-reset, which tears down real TCP
# connections mid-transaction), in both the regular build and an
# AddressSanitizer build, failing on the first invariant violation (the
# harness prints the seed so any failure replays exactly). A third,
# ThreadSanitizer build (-DIRDB_SANITIZE=thread) then runs the `parallel`,
# `net`, `concurrency`, `storage`, `reenact`, and `shard` ctest labels — the
# parallel repair pipeline's determinism and equivalence tests, the sharded
# metrics-registry hammer (obs_test), the networked front-end's
# concurrent-session suite (net_test), the lock-manager/concurrent-execution
# suite (concurrency_test), the serve-through quarantine suite
# (quarantine_test), the B+ tree / buffer-pool / tombstone-heap suite
# (storage_test), and the multi-shard router/2PC/coordinated-repair suite
# (shard_test) — so data races in the worker pool, segmented scan, sharded
# closure, batched compensation, the shard-per-thread registry, the
# event-loop/executor handoff, the lock manager and latch layering, the
# online-repair quarantine gate, the storage layer's pin/evict accounting,
# or the router tier's session/stat folding surface here rather than in
# production.
#
# The serve-through profile races RepairOnline against a live TCP workload
# and checks the post-release state byte-for-byte against the offline-repair
# oracle with zero tracking gaps (DESIGN.md §5g).
#
# The reenact profile shifts faults onto the commit path so the reenactment
# iterations exercise the conservative demotion planner, and every iteration
# checks the reenacted state byte-for-byte against the undo-then-reapply
# oracle (DESIGN.md §5i).
#
# The shard-split profile partitions one shard of a routed cluster away
# mid-load and checks zero tracking gaps on every shard plus per-shard state
# equality against a merged replay oracle, before and after a coordinated
# cross-shard repair (DESIGN.md §5j).
#
# Usage: tools/run_chaos.sh [num_seeds] [base_seed]
#   num_seeds  seeds per profile per config (default 5)
#   base_seed  first seed; seeds are base_seed..base_seed+num_seeds-1
#              (default 20260805)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
num_seeds="${1:-5}"
base_seed="${2:-20260805}"
profiles=(default wire-heavy commit-heavy net-reset lock-contention serve-through reenact shard-split)

run_config() {
  local build_dir="$1"; shift
  local label="$1"; shift
  cmake -B "$build_dir" -S "$repo" "$@" >/dev/null
  cmake --build "$build_dir" --target chaos_test -j >/dev/null
  for profile in "${profiles[@]}"; do
    for ((i = 0; i < num_seeds; ++i)); do
      seed=$((base_seed + i))
      echo "[$label] profile=$profile seed=$seed"
      "$build_dir/tests/chaos_test" --seed="$seed" --profile="$profile" \
        | tail -1
    done
  done
}

run_config "$repo/build" "plain"
run_config "$repo/build-asan" "asan" -DIRDB_SANITIZE=address

echo "[tsan] parallel repair + net front-end + lock manager + quarantine + storage + reenact + shard under ThreadSanitizer"
cmake -B "$repo/build-tsan" -S "$repo" -DIRDB_SANITIZE=thread >/dev/null
cmake --build "$repo/build-tsan" --target parallel_repair_test obs_test net_test concurrency_test quarantine_test storage_test reenact_test shard_test -j >/dev/null
(cd "$repo/build-tsan" && ctest -L 'parallel|net|concurrency|storage|reenact|shard' --output-on-failure)

echo "chaos soak passed: ${#profiles[@]} profiles x $num_seeds seeds x 2 configs + tsan parallel/net/concurrency/storage/reenact/shard suites"
