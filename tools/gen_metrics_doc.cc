// Renders the observability catalog (src/obs/catalog.h) as docs/metrics.md.
//
// The doc is GENERATED, never hand-edited: tools/check_docs.sh (the `docs`
// ctest label) fails when docs/metrics.md is not byte-identical to this
// program's output, so the reference documentation cannot drift from the
// code. Regenerate with:
//
//   build/tools/gen_metrics_doc --out=docs/metrics.md
//
// Without --out the doc goes to stdout.
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/catalog.h"

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--out=PATH]\n", argv[0]);
      return 2;
    }
  }
  const std::string doc = irdb::obs::RenderMetricsDoc();
  if (out_path.empty()) {
    std::fputs(doc.c_str(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(doc.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s (%zu bytes)\n", out_path.c_str(), doc.size());
  return 0;
}
