#!/usr/bin/env bash
# Builds and runs the access-path bench: heap-scan vs B+ tree index legs
# swept at 1e4/1e5/1e6 rows, point lookups and BETWEEN range scans. Leaves
# BENCH_index.json in the repo root (or $1 if given); exits non-zero if the
# 1e6-row point-lookup or range-scan speedup misses the 10x floor, or if
# any leg's result checksums / state hashes diverge (the index must never
# change answers). Usage: tools/run_bench_index.sh [out.json]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$repo/BENCH_index.json}"

cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" --target bench_index -j >/dev/null

"$repo/build/bench/bench_index" --out="$out"
