#!/usr/bin/env bash
# Builds and runs the serve-through repair availability bench (clean-key
# availability during an online repair vs the take-the-database-down offline
# baseline, 8 TCP connections), leaving BENCH_online.json in the repo root
# (or $1 if given). Exits non-zero if the >= 90% clean-key availability
# target is missed. Usage: tools/run_bench_online.sh [out.json]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$repo/BENCH_online.json}"

cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" --target bench_online_repair -j >/dev/null

"$repo/build/bench/bench_online_repair" --out="$out"
