// irdb_metrics_dump — exercise the full pipeline once and dump every
// observability export surface for inspection:
//
//   PREFIX.prom          Prometheus text exposition (all catalog series)
//   PREFIX.trace.json    Chrome trace_event JSON (chrome://tracing, Perfetto)
//   PREFIX.journal.jsonl structured event journal, one JSON object per line
//
// The workload is the bank scenario from repair_e2e_test: setup, a balance
// inflation attack, one dependent and one independent transaction, then a
// full selective repair (analyze -> closure -> compensate). Before writing,
// the tool self-checks the exports:
//   - every non-comment Prometheus line parses as `name[{labels}] value`;
//   - the repair span durations in the trace sum to the RepairPhaseStats
//     wall totals (the consistency contract obs_test asserts).
//
// Flags: --prefix=PATH (default irdb_metrics).
#include <cctype>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>

#include "core/resilient_db.h"
#include "obs/catalog.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace irdb {
namespace {

bool Must(DbConnection* conn, const std::string& sql) {
  auto r = conn->Execute(sql);
  if (!r.ok()) {
    std::fprintf(stderr, "statement failed: %s -> %s\n", sql.c_str(),
                 r.status().ToString().c_str());
    return false;
  }
  return true;
}

bool RunBankWorkload(DbConnection* conn) {
  return Must(conn,
              "CREATE TABLE account (id INTEGER NOT NULL, owner VARCHAR(16),"
              " balance DOUBLE)") &&
         Must(conn, "BEGIN") &&
         (conn->SetAnnotation("Setup"),
          Must(conn,
               "INSERT INTO account(id, owner, balance) VALUES"
               " (1, 'alice', 100.0), (2, 'bob', 200.0), (3, 'carol', 300.0)")) &&
         Must(conn, "COMMIT") && Must(conn, "BEGIN") &&
         (conn->SetAnnotation("Attack"),
          Must(conn,
               "UPDATE account SET balance = balance + 1000 WHERE id = 1")) &&
         Must(conn, "COMMIT") && Must(conn, "BEGIN") &&
         (conn->SetAnnotation("Dependent"),
          Must(conn, "SELECT balance FROM account WHERE id = 1")) &&
         Must(conn,
              "UPDATE account SET balance = balance - 50 WHERE id = 1") &&
         Must(conn, "COMMIT") && Must(conn, "BEGIN") &&
         (conn->SetAnnotation("Independent"),
          Must(conn,
               "UPDATE account SET balance = balance + 7 WHERE id = 3")) &&
         Must(conn, "COMMIT");
}

// Every non-comment, non-empty line must be `name[{labels}] value` with a
// numeric value — the shape Prometheus' text parser accepts.
bool PrometheusParses(const std::string& text, int* series_out) {
  int series = 0;
  size_t pos = 0;
  int lineno = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0 || sp + 1 >= line.size()) {
      std::fprintf(stderr, "prom line %d: no value separator: %s\n", lineno,
                   line.c_str());
      return false;
    }
    const std::string name = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    char first = name[0];
    if (!std::isalpha(static_cast<unsigned char>(first)) && first != '_') {
      std::fprintf(stderr, "prom line %d: bad metric name: %s\n", lineno,
                   line.c_str());
      return false;
    }
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    if (end == value.c_str() || (*end != '\0' && std::strcmp(end, "\r") != 0)) {
      if (value != "+Inf" && value != "-Inf" && value != "NaN") {
        std::fprintf(stderr, "prom line %d: non-numeric value: %s\n", lineno,
                     line.c_str());
        return false;
      }
    }
    ++series;
  }
  *series_out = series;
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs(content.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
  return true;
}

int Main(int argc, char** argv) {
  std::string prefix = "irdb_metrics";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--prefix=", 9) == 0) {
      prefix = argv[i] + 9;
    } else {
      std::fprintf(stderr, "usage: %s [--prefix=PATH]\n", argv[0]);
      return 2;
    }
  }

  // --- workload + attack + repair -----------------------------------------
  DeploymentOptions opts;
  ResilientDb rdb(opts);
  if (!rdb.Bootstrap().ok()) return 1;
  auto conn = rdb.Connect();
  if (!conn.ok()) return 1;
  if (!RunBankWorkload(conn->get())) return 1;

  obs::SpanTracer::Default().Clear();
  auto analysis = rdb.repair().Analyze();
  if (!analysis.ok()) {
    std::fprintf(stderr, "analyze failed: %s\n",
                 analysis.status().ToString().c_str());
    return 1;
  }
  int64_t attack = -1;
  for (int64_t node : analysis->graph.nodes()) {
    if (analysis->graph.Label(node) == "Attack") attack = node;
  }
  if (attack < 0) {
    std::fprintf(stderr, "attack transaction not found in the graph\n");
    return 1;
  }
  std::set<int64_t> undo = rdb.repair().ComputeUndoSet(
      *analysis, {attack}, repair::DbaPolicy::TrackEverything());
  auto report = rdb.repair().CompensateUndoSet(*analysis, undo);
  if (!report.ok()) {
    std::fprintf(stderr, "repair failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("workload + repair done: %zu txns undone, %lld stmts\n",
              report->undo_set.size(),
              static_cast<long long>(report->ops_compensated));

  // --- self-check 1: span durations sum to RepairPhaseStats ---------------
  std::map<std::string, double> span_ms;
  for (const obs::SpanEvent& e : obs::SpanTracer::Default().Snapshot()) {
    span_ms[e.name] += static_cast<double>(e.dur_us) / 1000.0;
  }
  const repair::RepairPhaseStats& ph = rdb.repair().phase_stats();
  const double tol = 0.01;  // spans round to whole microseconds once
  struct Check {
    const char* what;
    double phase_ms;
    double spans_ms;
  } checks[] = {
      {"scan", ph.scan_wall_ms,
       span_ms["repair.scan.wal_decode"] + span_ms["repair.scan.flavor_read"]},
      {"correlate", ph.correlate_wall_ms, span_ms["repair.correlate"]},
      {"closure", ph.closure_wall_ms, span_ms["repair.closure"]},
      {"compensate", ph.compensate_wall_ms, span_ms["repair.compensate"]},
  };
  for (const Check& c : checks) {
    if (c.phase_ms - c.spans_ms > tol || c.spans_ms - c.phase_ms > tol) {
      std::fprintf(stderr,
                   "FAIL: %s spans sum %.4f ms != phase stats %.4f ms\n",
                   c.what, c.spans_ms, c.phase_ms);
      return 1;
    }
    std::printf("check %-10s spans %.3f ms == phases %.3f ms\n", c.what,
                c.spans_ms, c.phase_ms);
  }

  // --- self-check 2 + dump ------------------------------------------------
  const std::string prom = ResilientDb::ExportPrometheus();
  int series = 0;
  if (!PrometheusParses(prom, &series)) return 1;
  std::printf("check prometheus: %d samples parse\n", series);

  if (!WriteFile(prefix + ".prom", prom)) return 1;
  if (!WriteFile(prefix + ".trace.json", ResilientDb::ExportChromeTrace())) {
    return 1;
  }
  if (!WriteFile(prefix + ".journal.jsonl", ResilientDb::ExportJournalJsonl())) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace irdb

int main(int argc, char** argv) { return irdb::Main(argc, argv); }
