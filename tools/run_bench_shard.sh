#!/usr/bin/env bash
# Builds and runs the multi-shard scaling bench (1/2/4/8 engine shards behind
# the warehouse-hash router, 10% remote new-order lines so 2PC is on the
# measured path), leaving BENCH_shard.json in the repo root (or $1 if given).
# The bench itself gates: zero tracking gaps on every shard, cross-shard 2PC
# commits present at every N >= 2, and >= 3x throughput at 8 shards vs 1.
# Usage: tools/run_bench_shard.sh [out.json]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$repo/BENCH_shard.json}"

cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" --target bench_shard -j >/dev/null

"$repo/build/bench/bench_shard" --out="$out"
