// Ablation: single-proxy (Fig. 1) vs dual-proxy (Fig. 2) architectures.
//
// The paper runs all measurements with the single-proxy setup (§5.1); the
// dual-proxy variant closes the bypass hole at the price of an extra hop on
// the server machine. This bench quantifies that price for both link types
// — the dual proxy sends the *original* (smaller) SQL across the wire but
// pays local rewriting/tracking round trips on the server side.
#include "bench_common.h"

namespace irdb::bench {
namespace {

int Main() {
  tpcc::TpccConfig config = tpcc::TpccConfig::Scaled(2);
  IoCostParams io;
  io.enabled = true;
  io.cache_pages = 240;

  std::printf("Ablation: proxy architecture throughput (TPC-C mixed)\n\n");
  std::printf("%-14s %-10s %12s %14s\n", "architecture", "link", "tps",
              "vs baseline");
  for (auto latency : {LatencyParams::Local(), LatencyParams::Lan100Mbps()}) {
    const char* link =
        latency.rtt_seconds < 1e-4 ? "local" : "100Mbps";
    double base_tps = 0;
    for (auto arch : {ProxyArch::kNone, ProxyArch::kSingleProxy,
                      ProxyArch::kDualProxy}) {
      auto r = MeasureDeployment(FlavorTraits::Postgres(), arch, latency, io,
                                 config, Mix::kReadWrite, 1);
      if (!r.ok()) {
        std::fprintf(stderr, "failed: %s\n", r.status().ToString().c_str());
        return 1;
      }
      const char* name = arch == ProxyArch::kNone          ? "baseline"
                         : arch == ProxyArch::kSingleProxy ? "single-proxy"
                                                           : "dual-proxy";
      double tps = r->Throughput();
      if (arch == ProxyArch::kNone) {
        base_tps = tps;
        std::printf("%-14s %-10s %12.1f %13s\n", name, link, tps, "—");
      } else {
        std::printf("%-14s %-10s %12.1f %12.1f%%\n", name, link, tps,
                    100.0 * (base_tps - tps) / base_tps);
      }
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace irdb::bench

int main() { return irdb::bench::Main(); }
