// Figure 5 reproduction: database damage repair accuracy.
//
// A malicious transaction is injected into a TPC-C run; T_detect more
// transactions commit before the DBA notices. For each T_detect we report:
//   - the number of transactions that must be rolled back (the dependency
//     closure of the attack), and
//   - the percentage of benign post-attack transactions that survive repair,
// under two policies: tracking all dependencies, and discarding false
// dependencies (Payment writes to warehouse/district rows touch only
// derivable ytd attributes — the paper's w_ytd example, §5.3).
//
// Expected shape (paper): rolled-back count grows with T_detect; saved%
// stays flat except at small T_detect; discarding false dependencies cuts
// the rolled-back count (up to ~5x) and lifts saved% by ~20-30 points, with
// the gap narrowing as W grows (less false sharing).
//
// Flags: --flavor postgres|oracle|sybase, --tmax N, --w "2,5"
#include <cstring>
#include <set>
#include <vector>

#include "bench_common.h"
#include "repair/repair_engine.h"

namespace irdb::bench {
namespace {

struct Point {
  int tdetect;
  size_t rolled_all;
  double saved_all;
  size_t rolled_nofalse;
  double saved_nofalse;
};

Result<std::vector<Point>> RunExperiment(const FlavorTraits& traits, int w,
                                         int tmax,
                                         const std::vector<int>& tdetects) {
  DeploymentOptions opts;
  opts.traits = traits;
  opts.arch = ProxyArch::kSingleProxy;
  ResilientDb rdb(opts);
  IRDB_RETURN_IF_ERROR(rdb.Bootstrap());
  IRDB_ASSIGN_OR_RETURN(auto conn, rdb.Connect());
  tpcc::TpccConfig config = tpcc::TpccConfig::Scaled(w);
  auto load = tpcc::LoadDatabase(conn.get(), config);
  if (!load.ok()) return load.status();

  tpcc::TpccDriver driver(conn.get(), config, 97 + w);
  // By-id payments only: the by-name variant reads every same-named customer
  // row, saturating the "all dependencies" closure long before T_detect=700
  // (see tpcc/workload.h) — the paper's curves are in the by-id regime.
  driver.set_payment_variants(false);
  for (int i = 0; i < 20; ++i) {
    auto r = driver.RunMixed();
    if (!r.ok()) return r.status();
  }
  auto attack = driver.AttackInflateBalance(1, 1, 3, 5.0e5);
  if (!attack.ok()) return attack.status();
  for (int i = 0; i < tmax; ++i) {
    auto r = driver.RunMixed();
    if (!r.ok()) return r.status();
  }

  IRDB_ASSIGN_OR_RETURN(repair::DependencyAnalysis analysis,
                        rdb.repair().Analyze());

  // Committed tracked transactions in commit order (the connection is
  // serial, so proxy IDs are monotone in commit order).
  std::vector<int64_t> order;
  for (const auto& [proxy_id, _] : analysis.proxy_to_internal) {
    order.push_back(proxy_id);
  }
  std::sort(order.begin(), order.end());
  int64_t attack_id = -1;
  size_t attack_pos = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (StartsWith(analysis.graph.Label(order[i]), "Attack_")) {
      attack_id = order[i];
      attack_pos = i;
    }
  }
  if (attack_id < 0) return Status::Internal("attack transaction not found");

  auto policy_all = repair::DbaPolicy::TrackEverything();
  // DBA domain knowledge: Payment-shaped writers (including the captured
  // attack, which masquerades as one) touch only the derivable ytd columns
  // of warehouse/district rows — dependencies through those rows are false
  // sharing (§5.3's w_ytd example).
  auto policy_nofalse = repair::DbaPolicy::TrackEverything();
  policy_nofalse.IgnoreDerivedAttribute("warehouse", "Payment", &analysis.graph)
      .IgnoreDerivedAttribute("district", "Payment", &analysis.graph)
      .IgnoreDerivedAttribute("warehouse", "Attack", &analysis.graph)
      .IgnoreDerivedAttribute("district", "Attack", &analysis.graph);

  std::vector<Point> points;
  for (int td : tdetects) {
    if (attack_pos + static_cast<size_t>(td) >= order.size()) break;
    const int64_t last_id = order[attack_pos + static_cast<size_t>(td)];
    auto windowed = [&](const repair::DbaPolicy& policy) {
      return analysis.graph.Affected(
          {attack_id}, [&](const repair::DepEdge& e) {
            return e.reader <= last_id && e.writer <= last_id &&
                   policy.Keep(e);
          });
    };
    std::set<int64_t> undo_all = windowed(policy_all);
    std::set<int64_t> undo_nofalse = windowed(policy_nofalse);
    Point p;
    p.tdetect = td;
    p.rolled_all = undo_all.size();
    p.rolled_nofalse = undo_nofalse.size();
    // Benign transactions in the detection window vs those rolled back
    // (the attack itself is not "saved" material).
    p.saved_all = 100.0 * (td - static_cast<int>(undo_all.size() - 1)) / td;
    p.saved_nofalse =
        100.0 * (td - static_cast<int>(undo_nofalse.size() - 1)) / td;
    points.push_back(p);
  }
  return points;
}

int Main(int argc, char** argv) {
  FlavorTraits traits = FlavorTraits::Postgres();
  int tmax = 700;
  std::vector<int> warehouses = {2, 5};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--flavor=", 9) == 0) {
      std::string f = argv[i] + 9;
      traits = f == "oracle"   ? FlavorTraits::Oracle()
               : f == "sybase" ? FlavorTraits::Sybase()
                               : FlavorTraits::Postgres();
    } else if (std::strncmp(argv[i], "--tmax=", 7) == 0) {
      tmax = std::atoi(argv[i] + 7);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  const std::vector<int> tdetects = {25, 50, 100, 200, 300, 400, 500, 600, 700};

  std::printf("Figure 5: repair accuracy vs T_detect (flavor=%s)\n\n",
              traits.name.c_str());
  for (int w : warehouses) {
    auto points = RunExperiment(traits, w, tmax, tdetects);
    if (!points.ok()) {
      std::fprintf(stderr, "experiment failed: %s\n",
                   points.status().ToString().c_str());
      return 1;
    }
    std::printf("== W=%d ==\n", w);
    std::printf("%8s  %22s  %22s\n", "", "tracking all deps",
                "discarding false deps");
    std::printf("%8s  %10s  %10s  %10s  %10s\n", "T_detect", "rolled", "saved%",
                "rolled", "saved%");
    for (const Point& p : *points) {
      std::printf("%8d  %10zu  %9.1f%%  %10zu  %9.1f%%\n", p.tdetect,
                  p.rolled_all, p.saved_all, p.rolled_nofalse, p.saved_nofalse);
    }
    std::printf("\n");
  }
  std::printf(
      "Paper reference: rolled-back count grows with T_detect; saved%% flat\n"
      "except at small T_detect; discarding false deps cuts rolled-back by up\n"
      "to ~5x and lifts saved%% by 20-30 points, less so at larger W.\n");
  return 0;
}

}  // namespace
}  // namespace irdb::bench

int main(int argc, char** argv) { return irdb::bench::Main(argc, argv); }
