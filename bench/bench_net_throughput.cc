// Networked front-end throughput: N client threads, one TCP connection
// each, running light statements over an emulated LAN link (a real
// per-round-trip delay — see TcpChannelOptions::simulated_rtt_seconds;
// loopback TCP alone has ~zero RTT, so without it a connection sweep
// measures host CPU, not the front-end's ability to multiplex sessions).
//
// Emits BENCH_net.json:
//   - per connection count (1, 2, 4, 8): statements/second, p50/p99
//     server-side frame latency from the irdb_net_frame_latency_ms obs
//     histogram, and the clean-drain accounting identity frames_in ==
//     frames_out == requests_served;
//   - the 1 -> 8 connection speedup. Each connection is latency-bound by
//     the link, so a server that multiplexes sessions scales ~linearly
//     (target >= 4x) while server-side frame latency stays flat; a server
//     that serialized whole round trips would stay at 1x.
//
// Flags: --rounds=N (statements per connection, default 500),
//        --rtt-ms=F (emulated link RTT, default 1.0), --out=PATH.
//
// --rtt-ms=0 removes the link delay entirely: the sweep then measures the
// engine side — how far the lock manager lets concurrent sessions scale
// once the transport stops being the bottleneck (bench_concurrency runs
// that configuration against the serial-mode baseline).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "obs/catalog.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace irdb {
namespace {

// Quantile from the shared fixed-bucket latency histogram: linear
// interpolation inside the bucket holding the target rank; the +Inf bucket
// reports the largest finite bound (an underestimate, flagged by p99 ==
// that bound).
double HistogramQuantile(const obs::HistogramSnapshot& h, double q) {
  if (h.count == 0) return 0.0;
  const int64_t target = static_cast<int64_t>(q * static_cast<double>(h.count));
  int64_t seen = 0;
  for (int b = 0; b < obs::kNumFiniteBuckets; ++b) {
    const int64_t in_bucket = h.buckets[b];
    if (seen + in_bucket > target) {
      const double lo = b == 0 ? 0.0 : obs::kLatencyBucketUpperMs[b - 1];
      const double hi = obs::kLatencyBucketUpperMs[b];
      const double frac = in_bucket == 0
                              ? 0.0
                              : static_cast<double>(target - seen) /
                                    static_cast<double>(in_bucket);
      return lo + frac * (hi - lo);
    }
    seen += in_bucket;
  }
  return obs::kLatencyBucketUpperMs[obs::kNumFiniteBuckets - 1];
}

struct SweepPoint {
  int connections = 0;
  int64_t statements = 0;
  double wall_seconds = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  int64_t frames_in = 0;
  int64_t frames_out = 0;
  int64_t requests_served = 0;

  double Throughput() const {
    return static_cast<double>(statements) / wall_seconds;
  }
  bool AccountingOk() const {
    return frames_in == frames_out && frames_in == requests_served;
  }
};

Result<SweepPoint> MeasurePoint(int connections, int rounds, double rtt_ms) {
  // A fresh server per point so the accounting identity and the latency
  // histogram cover exactly this sweep's traffic.
  Database db(FlavorTraits::Postgres());
  proxy::TxnIdAllocator alloc;
  net::NetServerOptions sopts;
  sopts.exec_threads = 8;
  // Transport bench: raw engine sessions. Tracking adds per-statement proxy
  // work that would measure the proxy, not the event loop
  // (bench_tracking_overhead covers the proxy's cost; bench_concurrency
  // runs the tracked engine-side sweep).
  sopts.track = false;
  net::NetProxyServer server(&db, &alloc, sopts);
  IRDB_RETURN_IF_ERROR(server.Start());

  // Dial and warm up every connection before the clock starts.
  std::vector<std::unique_ptr<net::NetClient>> clients;
  for (int c = 0; c < connections; ++c) {
    net::TcpChannelOptions copts;
    copts.port = server.port();
    copts.simulated_rtt_seconds = rtt_ms * 1e-3;
    IRDB_ASSIGN_OR_RETURN(auto client, net::NetClient::Dial(copts));
    const std::string table = "bench_t" + std::to_string(c);
    IRDB_RETURN_IF_ERROR(
        client->connection()
            .Execute("CREATE TABLE " + table + " (k INTEGER, v INTEGER)")
            .status());
    IRDB_RETURN_IF_ERROR(
        client->connection()
            .Execute("INSERT INTO " + table + " VALUES (1, 100)")
            .status());
    clients.push_back(std::move(client));
  }
  obs::MetricsRegistry::Default().Reset();

  std::atomic<int> errors{0};
  Stopwatch sw;
  std::vector<std::thread> threads;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      DbConnection& conn = clients[static_cast<size_t>(c)]->connection();
      const std::string sql = "SELECT v FROM bench_t" + std::to_string(c) +
                              " WHERE k = 1";
      for (int i = 0; i < rounds; ++i) {
        if (!conn.Execute(sql).ok()) {
          ++errors;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall = sw.ElapsedSeconds();
  if (errors.load() != 0) return Status::Internal("bench statements failed");

  const obs::HistogramSnapshot lat = obs::MetricsRegistry::Default()
                                         .HistogramValue(
                                             obs::Metrics::Get()
                                                 .net_frame_latency);
  clients.clear();  // BYE
  server.Stop();

  SweepPoint p;
  p.connections = connections;
  p.statements = static_cast<int64_t>(connections) * rounds;
  p.wall_seconds = wall;
  p.p50_ms = HistogramQuantile(lat, 0.50);
  p.p99_ms = HistogramQuantile(lat, 0.99);
  const net::NetServerStats s = server.stats();
  p.frames_in = s.frames_in;
  p.frames_out = s.frames_out;
  p.requests_served = s.requests_served;
  return p;
}

int Main(int argc, char** argv) {
  int rounds = 500;
  double rtt_ms = 1.0;
  std::string out_path = "BENCH_net.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rounds=", 9) == 0) {
      rounds = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--rtt-ms=", 9) == 0) {
      rtt_ms = std::atof(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--rounds=N] [--rtt-ms=F] [--out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  const int kConns[] = {1, 2, 4, 8};
  std::vector<SweepPoint> points;
  for (int c : kConns) {
    auto p = MeasurePoint(c, rounds, rtt_ms);
    if (!p.ok()) {
      std::fprintf(stderr, "bench_net_throughput: %s\n",
                   p.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "net_throughput: conns=%d stmts=%lld wall=%.3fs tput=%.0f/s "
        "p50=%.3fms p99=%.3fms frames in/out/served=%lld/%lld/%lld%s\n",
        p->connections, static_cast<long long>(p->statements),
        p->wall_seconds, p->Throughput(), p->p50_ms, p->p99_ms,
        static_cast<long long>(p->frames_in),
        static_cast<long long>(p->frames_out),
        static_cast<long long>(p->requests_served),
        p->AccountingOk() ? "" : "  ACCOUNTING MISMATCH");
    if (!p->AccountingOk()) return 1;
    points.push_back(*p);
  }

  const double speedup =
      points.back().Throughput() / points.front().Throughput();
  std::printf("net_throughput: 1 -> %d connections speedup %.2fx\n",
              points.back().connections, speedup);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"net_throughput\",\n");
  std::fprintf(out, "  \"rounds_per_connection\": %d,\n", rounds);
  std::fprintf(out, "  \"link_rtt_ms\": %.3f,\n", rtt_ms);
  std::fprintf(out, "  \"rtt_seconds\": %.6f,\n", rtt_ms * 1e-3);
  std::fprintf(out, "  \"sweep\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(out,
                 "    {\"connections\": %d, \"statements\": %lld, "
                 "\"wall_seconds\": %.6f, \"throughput_per_sec\": %.1f, "
                 "\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
                 "\"frames_in\": %lld, \"frames_out\": %lld, "
                 "\"requests_served\": %lld, \"accounting_ok\": %s}%s\n",
                 p.connections, static_cast<long long>(p.statements),
                 p.wall_seconds, p.Throughput(), p.p50_ms, p.p99_ms,
                 static_cast<long long>(p.frames_in),
                 static_cast<long long>(p.frames_out),
                 static_cast<long long>(p.requests_served),
                 p.AccountingOk() ? "true" : "false",
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"speedup_1_to_8\": %.3f\n}\n", speedup);
  std::fclose(out);
  std::printf("net_throughput: wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace irdb

int main(int argc, char** argv) { return irdb::Main(argc, argv); }
