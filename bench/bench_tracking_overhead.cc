// Figure 4 reproduction: inter-transaction dependency tracking overhead.
//
// Four panels — {read-intensive, read/write} x {large footprint W=10,
// small footprint W=1} — each showing, per DBMS flavor, the relative
// throughput penalty of the tracking proxy for the local and networked
// client-server configurations.
//
// The paper's headline: 6-13% overhead in the typical OLTP setting
// (networked, read-intensive, large footprint). Small-footprint read/write
// overheads are higher (log-write dominance).
//
// Flags: --scale N (workload multiplier), --w-large N, --w-small N,
//        --cache-pages N, --paper-scale (Table 2 sizes; slow).
#include <cstring>

#include "bench_common.h"

namespace irdb::bench {
namespace {

struct Cell {
  double base_tps = 0;
  double tracked_tps = 0;
  double OverheadPercent() const {
    return 100.0 * (base_tps - tracked_tps) / base_tps;
  }
};

Result<Cell> MeasureCell(const FlavorTraits& traits, LatencyParams latency,
                         IoCostParams io, const tpcc::TpccConfig& config,
                         Mix mix, int scale, proxy::ProxyStats* proxy_total) {
  Cell cell;
  IRDB_ASSIGN_OR_RETURN(
      WorkloadResult base,
      MeasureDeployment(traits, ProxyArch::kNone, latency, io, config, mix, scale));
  IRDB_ASSIGN_OR_RETURN(
      WorkloadResult tracked,
      MeasureDeployment(traits, ProxyArch::kSingleProxy, latency, io, config,
                        mix, scale));
  cell.base_tps = base.Throughput();
  cell.tracked_tps = tracked.Throughput();
  if (proxy_total != nullptr) proxy_total->Add(tracked.proxy);
  return cell;
}

int Main(int argc, char** argv) {
  int scale = 1;
  int w_large = 10, w_small = 1;
  int64_t cache_pages = 120;
  bool paper_scale = false;
  for (int i = 1; i < argc; ++i) {
    auto intflag = [&](const char* name, auto* out) {
      size_t n = std::strlen(name);
      if (std::strncmp(argv[i], name, n) == 0 && argv[i][n] == '=') {
        *out = std::atoll(argv[i] + n + 1);
        return true;
      }
      return false;
    };
    if (intflag("--scale", &scale)) continue;
    if (intflag("--w-large", &w_large)) continue;
    if (intflag("--w-small", &w_small)) continue;
    if (intflag("--cache-pages", &cache_pages)) continue;
    if (std::strcmp(argv[i], "--paper-scale") == 0) {
      paper_scale = true;
      continue;
    }
    std::fprintf(stderr, "unknown flag %s\n", argv[i]);
    return 1;
  }

  const FlavorTraits flavors[] = {FlavorTraits::Postgres(),
                                  FlavorTraits::Oracle(),
                                  FlavorTraits::Sybase()};
  struct Panel {
    Mix mix;
    int warehouses;
    const char* footprint;
  };
  const Panel panels[] = {
      {Mix::kReadIntensive, w_large, "large footprint (low cache hit)"},
      {Mix::kReadWrite, w_large, "large footprint (low cache hit)"},
      {Mix::kReadIntensive, w_small, "small footprint (high cache hit)"},
      {Mix::kReadWrite, w_small, "small footprint (high cache hit)"},
  };

  std::printf("Figure 4: dependency-tracking throughput overhead (%%)\n");
  std::printf("workload scale=%dx, page cache=%lld pages\n\n", scale,
              static_cast<long long>(cache_pages));

  proxy::ProxyStats proxy_total;
  for (const Panel& panel : panels) {
    std::printf("== %s transactions, W=%d — %s ==\n", MixName(panel.mix),
                panel.warehouses, panel.footprint);
    std::printf("%-10s  %18s  %18s\n", "DBMS", "local connection",
                "network connection");
    for (const FlavorTraits& traits : flavors) {
      tpcc::TpccConfig config = paper_scale
                                    ? tpcc::TpccConfig::Paper()
                                    : tpcc::TpccConfig::Scaled(panel.warehouses);
      if (paper_scale) config.warehouses = panel.warehouses;
      IoCostParams io;
      io.enabled = true;
      io.cache_pages = cache_pages;
      auto local = MeasureCell(traits, LatencyParams::Local(), io, config,
                               panel.mix, scale, &proxy_total);
      auto net = MeasureCell(traits, LatencyParams::Lan100Mbps(), io, config,
                             panel.mix, scale, &proxy_total);
      if (!local.ok() || !net.ok()) {
        std::fprintf(stderr, "measurement failed: %s %s\n",
                     local.ok() ? "" : local.status().ToString().c_str(),
                     net.ok() ? "" : net.status().ToString().c_str());
        return 1;
      }
      std::printf("%-10s  %17.1f%%  %17.1f%%   (base %.0f/%.0f tps)\n",
                  traits.name.c_str(), local->OverheadPercent(),
                  net->OverheadPercent(), local->base_tps, net->base_tps);
    }
    std::printf("\n");
  }
  PrintFaultHardeningCounters(proxy_total);
  std::printf(
      "Paper reference: 6%%-13%% for the networked read-intensive large-"
      "footprint panel;\nhigher (up to ~35%%) for small-footprint read/write "
      "(log-write dominance).\n");
  return 0;
}

}  // namespace
}  // namespace irdb::bench

int main(int argc, char** argv) { return irdb::bench::Main(argc, argv); }
