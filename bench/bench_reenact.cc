// Reenactment vs undo-only repair (DESIGN.md §5i): innocent effects
// preserved and repair wall time, on the same contaminated history.
//
// Workload: one in-process tracked deployment per leg runs an identical
// deterministic history over 4 PK'd tables — one attack transaction that
// pollutes the 16 "hot" keys of every table, then 360 innocent
// read-then-additive-update transactions, half of them touching hot keys
// (and therefore landing in the attack's dependency closure). After the
// workload, the simulated 2004-class disk model switches to realtime-stall
// mode (as in bench_online_repair) so repair statements cost real wall
// time the way the paper's disk-bound testbed would.
//
// Three legs, same history:
//   - undo_serial:   the paper's operator procedure — Repair() undo-only at
//                    threads=1 (the baseline reenactment must beat);
//   - undo_parallel: undo-only at threads=8 (reference: parallel
//                    compensation without replay, the floor on repair time);
//   - reenact:       RepairReenact() at threads=8 — full-closure
//                    compensation plus parallel innocent replay.
//
// Innocent preservation is scored against a no-attack oracle: a fresh
// deployment replays the history without the attack, and every row an
// innocent touched is compared post-repair. Undo-only loses the innocent
// increments on every hot row (their transactions are casualties of the
// cascade); reenactment must preserve strictly more innocent rows at
// equal-or-better wall time than the serial baseline.
//
// Emits BENCH_reenact.json; exit code gates on the issue target:
// rows_preserved(reenact) > rows_preserved(undo) AND
// wall(reenact @8) <= wall(undo_serial @1).
//
// Flags: --innocents=N (default 360), --stall-scale=F (default 20),
//        --out=PATH (default BENCH_reenact.json).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/resilient_db.h"
#include "engine/io_model.h"
#include "repair/reenact.h"
#include "util/stopwatch.h"

namespace irdb {
namespace {

constexpr int kTables = 4;
constexpr int kKeysPerTable = 64;
constexpr int kHotKeys = 16;  // keys the attack pollutes, per table
const char* const kTableNames[kTables] = {"acct_a", "acct_b", "acct_c",
                                          "acct_d"};

struct Script {
  std::string label;
  std::vector<std::string> stmts;
};

// Attack first, then `innocents` read-then-bump transactions. All statement
// text is fixed up front so every leg (and the oracle) runs the identical
// history. Innocent j touches table j%4; half the keys drawn are hot, so
// roughly half the innocents join the attack's closure.
std::vector<Script> MakeScripts(int innocents) {
  std::vector<Script> scripts;
  Script attack;
  attack.label = "Attack";
  for (const char* table : kTableNames) {
    attack.stmts.push_back(std::string("UPDATE ") + table +
                           " SET balance = balance + 1000 WHERE id <= " +
                           std::to_string(kHotKeys));
  }
  scripts.push_back(std::move(attack));
  for (int j = 0; j < innocents; ++j) {
    Script sc;
    sc.label = "Innocent_" + std::to_string(j);
    const std::string table = kTableNames[j % kTables];
    const int key = 1 + static_cast<int>((j * 7919u) % (2 * kHotKeys));
    sc.stmts.push_back("SELECT balance FROM " + table +
                       " WHERE id = " + std::to_string(key));
    sc.stmts.push_back("UPDATE " + table + " SET balance = balance + " +
                       std::to_string(1 + j % 47) +
                       " WHERE id = " + std::to_string(key));
    scripts.push_back(std::move(sc));
  }
  return scripts;
}

Status RunHistory(ResilientDb* rdb, const std::vector<Script>& scripts,
                  bool skip_attack) {
  IRDB_RETURN_IF_ERROR(rdb->Bootstrap());
  IRDB_ASSIGN_OR_RETURN(auto conn, rdb->Connect());
  for (const char* table : kTableNames) {
    IRDB_RETURN_IF_ERROR(
        conn->Execute(std::string("CREATE TABLE ") + table +
                      " (id INTEGER, balance DOUBLE, PRIMARY KEY (id))")
            .status());
    std::string sql = std::string("INSERT INTO ") + table +
                      "(id, balance) VALUES ";
    for (int id = 1; id <= kKeysPerTable; ++id) {
      if (id != 1) sql += ", ";
      sql += "(" + std::to_string(id) + ", 100.0)";
    }
    IRDB_RETURN_IF_ERROR(conn->Execute(sql).status());
  }
  for (const Script& sc : scripts) {
    if (skip_attack && sc.label == "Attack") continue;
    IRDB_RETURN_IF_ERROR(conn->Execute("BEGIN").status());
    conn->SetAnnotation(sc.label);
    for (const std::string& s : sc.stmts) {
      IRDB_RETURN_IF_ERROR(conn->Execute(s).status());
    }
    IRDB_RETURN_IF_ERROR(conn->Execute("COMMIT").status());
  }
  return Status::Ok();
}

// (table, id) -> balance for every row.
using Balances = std::map<std::pair<std::string, int64_t>, double>;

Result<Balances> ReadBalances(ResilientDb* rdb) {
  Balances out;
  for (const char* table : kTableNames) {
    IRDB_ASSIGN_OR_RETURN(
        ResultSet rs, rdb->Admin()->Execute(std::string("SELECT id, balance "
                                                        "FROM ") +
                                            table + " ORDER BY id"));
    for (const auto& row : rs.rows) {
      out[{table, row[0].as_int()}] = row[1].as_double();
    }
  }
  return out;
}

// Same disk-bound-era stall recipe as bench_online_repair: per-statement
// CPU/disk charge stretched into real sleeps, read misses zeroed so the
// comparison measures repair execution, not cold-cache warmup.
IoCostParams StallParams(double scale) {
  IoCostParams io;
  io.enabled = true;
  io.read_miss_seconds = 0;
  io.log_flush_seconds = 5.0e-5;
  io.log_write_seconds_per_byte = 0;
  io.statement_cpu_seconds = 1.0e-4;
  io.row_cpu_seconds = 1.0e-6;
  io.realtime_stall_scale = scale;
  return io;
}

struct LegResult {
  std::string name;
  int threads = 1;
  Status status = Status::Ok();
  double wall_s = 0;
  size_t closure = 0;
  size_t undone = 0;    // transactions that stayed undone
  size_t replayed = 0;  // reenact only
  size_t demoted = 0;
  int64_t diverged = 0;
  int64_t stmts_replayed = 0;
  int components = 0;
  int replay_lanes = 0;
  int64_t rows_innocent = 0;   // rows the innocents changed (vs oracle)
  int64_t rows_preserved = 0;  // of those, rows matching the oracle
};

void RunLeg(LegResult* leg, const std::vector<Script>& scripts,
            bool reenact, int threads, double stall_scale,
            const Balances& oracle, const Balances& initial) {
  leg->threads = threads;
  DeploymentOptions opts;
  opts.repair_threads = threads;
  ResilientDb rdb(opts);
  if (Status st = RunHistory(&rdb, scripts, /*skip_attack=*/false); !st.ok()) {
    leg->status = st;
    return;
  }

  // Identify the attack (annot label); this pre-pass is operator work, not
  // part of the measured repair.
  auto analysis = rdb.repair().Analyze();
  if (!analysis.ok()) {
    leg->status = analysis.status();
    return;
  }
  int64_t attack = -1;
  for (int64_t node : analysis->graph.nodes()) {
    if (analysis->graph.Label(node) == "Attack") attack = node;
  }
  if (attack < 0) {
    leg->status = Status::Internal("attack txn not found in the graph");
    return;
  }

  // The workload ran unstalled; the measured repair runs "disk-bound".
  rdb.db().io_model().Configure(StallParams(stall_scale));

  auto policy = repair::DbaPolicy::TrackEverything();
  Stopwatch sw;
  if (reenact) {
    auto report = rdb.repair().RepairReenact({attack}, policy);
    leg->wall_s = sw.ElapsedSeconds();
    if (!report.ok()) {
      leg->status = report.status();
      return;
    }
    leg->closure = report->closure.size();
    leg->undone = report->repair.undo_set.size();
    leg->replayed = report->replayed.size();
    leg->demoted = report->demoted.size();
    leg->diverged = report->diverged;
    leg->stmts_replayed = report->stmts_replayed;
    leg->components = report->components;
    leg->replay_lanes = report->replay_lanes;
  } else {
    auto report = rdb.repair().Repair({attack}, policy);
    leg->wall_s = sw.ElapsedSeconds();
    if (!report.ok()) {
      leg->status = report.status();
      return;
    }
    leg->closure = report->undo_set.size();
    leg->undone = report->undo_set.size();
  }

  auto after = ReadBalances(&rdb);
  if (!after.ok()) {
    leg->status = after.status();
    return;
  }
  for (const auto& [row, want] : oracle) {
    auto init = initial.find(row);
    if (init != initial.end() && init->second == want) continue;  // untouched
    ++leg->rows_innocent;
    auto got = after->find(row);
    // Additive constants reapply in original relative order, so a preserved
    // row matches the oracle bit-for-bit.
    if (got != after->end() && got->second == want) ++leg->rows_preserved;
  }
}

void PrintLeg(const LegResult& leg) {
  std::printf(
      "reenact: leg=%-13s threads=%d wall=%6.3fs closure=%3zu undone=%3zu "
      "replayed=%3zu demoted=%zu innocent_rows=%lld preserved=%lld\n",
      leg.name.c_str(), leg.threads, leg.wall_s, leg.closure, leg.undone,
      leg.replayed, leg.demoted, static_cast<long long>(leg.rows_innocent),
      static_cast<long long>(leg.rows_preserved));
}

void EmitLegJson(std::FILE* out, const LegResult& leg, bool last) {
  std::fprintf(out, "  \"%s\": {\n", leg.name.c_str());
  std::fprintf(out, "    \"threads\": %d,\n", leg.threads);
  std::fprintf(out, "    \"repair_wall_seconds\": %.4f,\n", leg.wall_s);
  std::fprintf(out, "    \"closure_txns\": %zu,\n", leg.closure);
  std::fprintf(out, "    \"undone_txns\": %zu,\n", leg.undone);
  std::fprintf(out, "    \"replayed_txns\": %zu,\n", leg.replayed);
  std::fprintf(out, "    \"demoted_txns\": %zu,\n", leg.demoted);
  std::fprintf(out, "    \"diverged_txns\": %lld,\n",
               static_cast<long long>(leg.diverged));
  std::fprintf(out, "    \"stmts_replayed\": %lld,\n",
               static_cast<long long>(leg.stmts_replayed));
  std::fprintf(out, "    \"replay_components\": %d,\n", leg.components);
  std::fprintf(out, "    \"replay_lanes\": %d,\n", leg.replay_lanes);
  std::fprintf(out, "    \"rows_innocent\": %lld,\n",
               static_cast<long long>(leg.rows_innocent));
  std::fprintf(out, "    \"rows_preserved\": %lld\n",
               static_cast<long long>(leg.rows_preserved));
  std::fprintf(out, "  }%s\n", last ? "" : ",");
}

int Main(int argc, char** argv) {
  int innocents = 360;
  double stall_scale = 20.0;
  std::string out_path = "BENCH_reenact.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--innocents=", 12) == 0) {
      innocents = std::atoi(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--stall-scale=", 14) == 0) {
      stall_scale = std::atof(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--innocents=N] [--stall-scale=F] "
                   "[--out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  const std::vector<Script> scripts = MakeScripts(innocents);

  // Oracles (unstalled): the initial balances and the no-attack replay every
  // leg's preservation is scored against.
  Balances initial;
  for (const char* table : kTableNames) {
    for (int id = 1; id <= kKeysPerTable; ++id) initial[{table, id}] = 100.0;
  }
  Balances oracle;
  {
    DeploymentOptions opts;
    ResilientDb rdb(opts);
    if (Status st = RunHistory(&rdb, scripts, /*skip_attack=*/true);
        !st.ok()) {
      std::fprintf(stderr, "bench_reenact: oracle: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    auto b = ReadBalances(&rdb);
    if (!b.ok()) {
      std::fprintf(stderr, "bench_reenact: oracle: %s\n",
                   b.status().ToString().c_str());
      return 1;
    }
    oracle = std::move(*b);
  }

  LegResult undo_serial{.name = "undo_serial"};
  LegResult undo_parallel{.name = "undo_parallel"};
  LegResult reenact{.name = "reenact"};
  RunLeg(&undo_serial, scripts, /*reenact=*/false, 1, stall_scale, oracle,
         initial);
  RunLeg(&undo_parallel, scripts, /*reenact=*/false, 8, stall_scale, oracle,
         initial);
  RunLeg(&reenact, scripts, /*reenact=*/true, 8, stall_scale, oracle,
         initial);
  for (const LegResult* leg : {&undo_serial, &undo_parallel, &reenact}) {
    if (!leg->status.ok()) {
      std::fprintf(stderr, "bench_reenact: %s leg: %s\n", leg->name.c_str(),
                   leg->status.ToString().c_str());
      return 1;
    }
    PrintLeg(*leg);
  }

  const bool target_met =
      reenact.rows_preserved > undo_serial.rows_preserved &&
      reenact.wall_s <= undo_serial.wall_s;
  std::printf(
      "reenact: preserved %lld/%lld innocent rows vs undo-only %lld/%lld, "
      "wall %.3fs @8t vs serial undo %.3fs -> %s\n",
      static_cast<long long>(reenact.rows_preserved),
      static_cast<long long>(reenact.rows_innocent),
      static_cast<long long>(undo_serial.rows_preserved),
      static_cast<long long>(undo_serial.rows_innocent),
      reenact.wall_s, undo_serial.wall_s, target_met ? "MET" : "MISSED");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"reenact\",\n");
  std::fprintf(out, "  \"tables\": %d,\n", kTables);
  std::fprintf(out, "  \"keys_per_table\": %d,\n", kKeysPerTable);
  std::fprintf(out, "  \"hot_keys_per_table\": %d,\n", kHotKeys);
  std::fprintf(out, "  \"innocent_txns\": %d,\n", innocents);
  std::fprintf(out, "  \"stall_scale\": %.1f,\n", stall_scale);
  EmitLegJson(out, undo_serial, /*last=*/false);
  EmitLegJson(out, undo_parallel, /*last=*/false);
  EmitLegJson(out, reenact, /*last=*/false);
  std::fprintf(out, "  \"target_met\": %s\n}\n",
               target_met ? "true" : "false");
  std::fclose(out);
  std::printf("reenact: wrote %s\n", out_path.c_str());
  return target_met ? 0 : 1;
}

}  // namespace
}  // namespace irdb

int main(int argc, char** argv) { return irdb::Main(argc, argv); }
