// Shared harness pieces for the paper-reproduction benches.
#pragma once

#include <cstdio>
#include <string>

#include "core/resilient_db.h"
#include "tpcc/loader.h"
#include "tpcc/workload.h"
#include "util/stopwatch.h"

namespace irdb::bench {

// Paper §5.2 workloads.
//  read-intensive: 100 Stock Level transactions.
//  read/write:     200 New Order + 200 Payment + 100 Delivery, interleaved
//                  in 2:2:1 rounds.
enum class Mix { kReadIntensive, kReadWrite };

inline const char* MixName(Mix m) {
  return m == Mix::kReadIntensive ? "read-intensive" : "read/write";
}

struct WorkloadResult {
  int64_t transactions = 0;
  double wall_seconds = 0;
  double simulated_seconds = 0;
  proxy::ProxyStats proxy;  // aggregated tracking stats (zero when untracked)

  double TotalSeconds() const { return wall_seconds + simulated_seconds; }
  double Throughput() const {
    return static_cast<double>(transactions) / TotalSeconds();
  }
};

inline void PrintFaultHardeningCounters(const proxy::ProxyStats& st) {
  std::printf(
      "fault-hardening: retries=%lld injected_faults_hit=%lld "
      "degraded_commits=%lld tracking_gap_txns=%lld\n",
      static_cast<long long>(st.retries),
      static_cast<long long>(st.injected_faults_hit),
      static_cast<long long>(st.degraded_commits),
      static_cast<long long>(st.tracking_gap_txns));
}

inline Status RunMix(tpcc::TpccDriver* driver, Mix mix, int scale,
                     WorkloadResult* out) {
  auto run = [&](Result<tpcc::TxnResult> r) -> Status {
    if (!r.ok()) return r.status();
    ++out->transactions;
    return Status::Ok();
  };
  if (mix == Mix::kReadIntensive) {
    for (int i = 0; i < 100 * scale; ++i) {
      IRDB_RETURN_IF_ERROR(run(driver->StockLevel()));
    }
    return Status::Ok();
  }
  for (int round = 0; round < 100 * scale; ++round) {
    IRDB_RETURN_IF_ERROR(run(driver->NewOrder()));
    IRDB_RETURN_IF_ERROR(run(driver->NewOrder()));
    IRDB_RETURN_IF_ERROR(run(driver->Payment()));
    IRDB_RETURN_IF_ERROR(run(driver->Payment()));
    IRDB_RETURN_IF_ERROR(run(driver->Delivery()));
  }
  return Status::Ok();
}

// Builds a deployment, loads TPC-C, runs the mix, returns throughput.
// The I/O + network virtual clock is reset after load so only the measured
// workload is charged.
inline Result<WorkloadResult> MeasureDeployment(FlavorTraits traits,
                                                ProxyArch arch,
                                                LatencyParams latency,
                                                IoCostParams io,
                                                tpcc::TpccConfig config,
                                                Mix mix, int scale) {
  DeploymentOptions opts;
  opts.traits = std::move(traits);
  opts.arch = arch;
  opts.latency = latency;
  opts.io = io;
  ResilientDb rdb(opts);
  IRDB_RETURN_IF_ERROR(rdb.Bootstrap());
  IRDB_ASSIGN_OR_RETURN(auto conn, rdb.Connect());
  auto load = tpcc::LoadDatabase(conn.get(), config);
  if (!load.ok()) return load.status();

  rdb.db().io_model().ResetStats();
  tpcc::TpccDriver driver(conn.get(), config, config.seed + 1);
  driver.set_annotations(false);  // labels are a repair-path feature
  WorkloadResult result;
  Stopwatch watch;
  IRDB_RETURN_IF_ERROR(RunMix(&driver, mix, scale, &result));
  result.wall_seconds = watch.ElapsedSeconds();
  result.simulated_seconds = rdb.db().io_model().clock().seconds();
  result.proxy = rdb.ProxyStatsSnapshot();
  return result;
}

}  // namespace irdb::bench
