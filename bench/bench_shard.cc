// Multi-shard scaling: TPC-C throughput vs shard count behind the routing
// tier (DESIGN.md §5j, ROADMAP item 5).
//
// The paper's single intrusion-resilient stack is bounded by its one log
// device: commit-time flushes serialize on the spindle no matter how many
// sessions the lock manager overlaps. Sharding buys that bound back — each
// shard is a full engine with its OWN log device — so the sweep measures
// 1/2/4/8 shards over the same 8-warehouse TPC-C database with
// IoCostParams::serialize_log_flush + realtime_stall_scale turning the
// per-engine flush serialization into real stalls (which is what makes the
// scaling visible on any host, including single-core CI).
//
// Workers drive RoutedSessions (the same statement routing + lazy-BEGIN +
// 2PC tier the TCP front door mounts), with --remote-pct of new-order lines
// supplying remote warehouses, so the 2PC merged-dependency path is ON the
// measured path at every N >= 2 — the speedup is net of cross-shard commit
// overhead, not a partitioned-workload best case.
//
// Emits BENCH_shard.json and GATES (non-zero exit) on:
//   - zero tracking gaps on every shard at every point (sharding must not
//     cost tracking completeness);
//   - cross-shard 2PC commits observed at every N >= 2 (the remote mix
//     actually exercised the router);
//   - >= --min-speedup (default 3x) throughput at 8 shards vs 1.
//
// Defaults run 16 terminals over 16 warehouses (one terminal per warehouse,
// TPC-C clause 2.5, so at 8 shards each shard serves two terminals) with a
// 6ms serialized log flush per commit — big enough that the per-shard log
// device, not the SQL engine's CPU cost, dominates the sweep.
//
// Flags: --workers=N (default 16), --txns=N per worker (default 150),
//        --warehouses=N (default 16), --remote-pct=F (default 0.10),
//        --flush-ms=F (per-commit log-device stall, default 6.0),
//        --min-speedup=F (default 3.0), --out=PATH.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "concurrency/lock_manager.h"
#include "engine/database.h"
#include "shard/shard_cluster.h"
#include "tpcc/loader.h"
#include "tpcc/workload.h"
#include "util/stopwatch.h"

namespace irdb {
namespace {

struct SweepPoint {
  int shards = 0;
  int64_t transactions = 0;
  int64_t deadlock_retries = 0;
  double wall_seconds = 0;
  int64_t cross_shard_txns = 0;
  int64_t twopc_commits = 0;
  int64_t twopc_aborts = 0;
  int64_t deps_merged = 0;
  int64_t tracking_gaps = 0;

  double Throughput() const {
    return static_cast<double>(transactions) / wall_seconds;
  }
};

Result<SweepPoint> MeasurePoint(int shards, int workers, int txns,
                                int warehouses, double remote_pct,
                                double flush_ms, uint64_t seed) {
  tpcc::TpccConfig cfg;
  cfg.warehouses = warehouses;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 8;
  cfg.items = 40;
  cfg.orders_per_district = 8;
  cfg.remote_item_pct = remote_pct;
  cfg.seed = seed;

  shard::ShardClusterOptions opts;
  opts.shards = shards;
  shard::ShardCluster cluster(opts);
  IRDB_RETURN_IF_ERROR(cluster.Bootstrap());
  {
    auto loader = cluster.Connect();
    IRDB_RETURN_IF_ERROR(tpcc::LoadDatabase(loader.get(), cfg).status());
  }

  // The stall model goes on AFTER the load: one serialized log device per
  // shard, with the flush charge taken as a real sleep. Everything else is
  // free so the sweep isolates exactly the resource sharding multiplies.
  IoCostParams io;
  io.enabled = true;
  io.serialize_log_flush = true;
  io.realtime_stall_scale = 1.0;
  io.log_flush_seconds = flush_ms * 1e-3;
  io.log_write_seconds_per_byte = 0;
  io.statement_cpu_seconds = 0;
  io.row_cpu_seconds = 0;
  for (int s = 0; s < shards; ++s) {
    cluster.db(s).io_model().Configure(io);
    // Short lock-wait failsafe: a cross-shard lock cycle is invisible to
    // the per-shard waits-for graphs, so it resolves only via this timeout
    // (surfaced as a retryable deadlock abort). The default 10s failsafe
    // would park a worker for the whole measurement window.
    cluster.db(s).txn_manager().locks().set_wait_timeout_seconds(0.1);
  }

  std::atomic<int64_t> ok{0};
  std::atomic<int64_t> retries{0};
  std::atomic<int> errors{0};
  std::string first_error;
  std::mutex err_mu;
  Stopwatch sw;
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      auto conn = cluster.Connect();
      tpcc::TpccDriver driver(conn.get(), cfg,
                              seed + 1000003 * static_cast<uint64_t>(w) + 1);
      driver.set_annotations(false);  // labels are a repair-path feature
      // One terminal per warehouse (TPC-C clause 2.5): home traffic stays
      // disjoint across workers; only remote supply lines and remote
      // Payment customers cross warehouses — and therefore shards.
      driver.set_home_warehouse(1 + (w % warehouses));
      std::mt19937 rng(static_cast<uint32_t>(seed) + 77771u * w);
      constexpr int kMaxAttempts = 10;
      for (int t = 0; t < txns; ++t) {
        bool done = false;
        for (int attempt = 1; attempt <= kMaxAttempts && !done; ++attempt) {
          auto r = driver.RunMixed();
          if (r.ok()) {
            ok.fetch_add(1);
            done = true;
          } else if (concurrency::IsDeadlockAbort(r.status()) &&
                     attempt < kMaxAttempts) {
            retries.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::microseconds(
                std::uniform_int_distribution<int>(0, 400)(rng)));
          } else {
            errors.fetch_add(1);
            std::lock_guard<std::mutex> lk(err_mu);
            if (first_error.empty()) first_error = r.status().ToString();
            done = true;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall = sw.ElapsedSeconds();
  if (errors.load() != 0) {
    return Status::Internal("bench transactions failed: " + first_error);
  }

  SweepPoint p;
  p.shards = shards;
  p.transactions = ok.load();
  p.deadlock_retries = retries.load();
  p.wall_seconds = wall;
  const shard::RouterStats& rs = cluster.router_stats();
  p.cross_shard_txns = rs.cross_shard_txns.load();
  p.twopc_commits = rs.twopc_commits.load();
  p.twopc_aborts = rs.twopc_aborts.load();
  p.deps_merged = rs.deps_merged.load();
  for (int s = 0; s < shards; ++s) {
    DirectConnection admin(&cluster.db(s));
    auto gaps = admin.Execute("SELECT tr_id FROM tracking_gaps");
    if (!gaps.ok()) return gaps.status();
    p.tracking_gaps += static_cast<int64_t>(gaps->rows.size());
  }
  return p;
}

int Main(int argc, char** argv) {
  int workers = 16;
  int txns = 150;
  int warehouses = 16;
  double remote_pct = 0.10;
  double flush_ms = 6.0;
  double min_speedup = 3.0;
  std::string out_path = "BENCH_shard.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      workers = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--txns=", 7) == 0) {
      txns = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--warehouses=", 13) == 0) {
      warehouses = std::atoi(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--remote-pct=", 13) == 0) {
      remote_pct = std::atof(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--flush-ms=", 11) == 0) {
      flush_ms = std::atof(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
      min_speedup = std::atof(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--workers=N] [--txns=N] [--warehouses=N]\n"
                   "          [--remote-pct=F] [--flush-ms=F]\n"
                   "          [--min-speedup=F] [--out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  const int kShards[] = {1, 2, 4, 8};
  std::vector<SweepPoint> points;
  for (int n : kShards) {
    auto p = MeasurePoint(n, workers, txns, warehouses, remote_pct, flush_ms,
                          /*seed=*/42 + static_cast<uint64_t>(n));
    if (!p.ok()) {
      std::fprintf(stderr, "bench_shard: %s\n", p.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "shard: shards=%d txns=%lld wall=%.3fs tput=%.0f/s "
        "cross_shard=%lld 2pc_commits=%lld 2pc_aborts=%lld deps_merged=%lld "
        "deadlock_retries=%lld gaps=%lld\n",
        p->shards, static_cast<long long>(p->transactions), p->wall_seconds,
        p->Throughput(), static_cast<long long>(p->cross_shard_txns),
        static_cast<long long>(p->twopc_commits),
        static_cast<long long>(p->twopc_aborts),
        static_cast<long long>(p->deps_merged),
        static_cast<long long>(p->deadlock_retries),
        static_cast<long long>(p->tracking_gaps));
    if (p->tracking_gaps != 0) {
      std::fprintf(stderr,
                   "bench_shard: GATE FAILED — %lld tracking gaps at %d "
                   "shards (must be zero)\n",
                   static_cast<long long>(p->tracking_gaps), p->shards);
      return 1;
    }
    if (n >= 2 && p->cross_shard_txns == 0) {
      std::fprintf(stderr,
                   "bench_shard: GATE FAILED — no cross-shard 2PC commits at "
                   "%d shards (remote mix did not exercise the router)\n",
                   p->shards);
      return 1;
    }
    points.push_back(*p);
  }

  const double speedup =
      points.back().Throughput() / points.front().Throughput();
  const bool pass = speedup >= min_speedup;
  std::printf("shard: 1 -> %d shards speedup %.2fx (target >= %.1fx) %s\n",
              points.back().shards, speedup, min_speedup,
              pass ? "PASS" : "GATE FAILED");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"shard\",\n");
  std::fprintf(out, "  \"workers\": %d,\n", workers);
  std::fprintf(out, "  \"txns_per_worker\": %d,\n", txns);
  std::fprintf(out, "  \"warehouses\": %d,\n", warehouses);
  std::fprintf(out, "  \"remote_pct\": %.3f,\n", remote_pct);
  std::fprintf(out, "  \"log_flush_ms\": %.3f,\n", flush_ms);
  std::fprintf(out, "  \"sweep\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(out,
                 "    {\"shards\": %d, \"transactions\": %lld, "
                 "\"wall_seconds\": %.6f, \"throughput_per_sec\": %.1f, "
                 "\"cross_shard_txns\": %lld, \"twopc_commits\": %lld, "
                 "\"twopc_aborts\": %lld, \"deps_merged\": %lld, "
                 "\"deadlock_retries\": %lld, \"tracking_gaps\": %lld}%s\n",
                 p.shards, static_cast<long long>(p.transactions),
                 p.wall_seconds, p.Throughput(),
                 static_cast<long long>(p.cross_shard_txns),
                 static_cast<long long>(p.twopc_commits),
                 static_cast<long long>(p.twopc_aborts),
                 static_cast<long long>(p.deps_merged),
                 static_cast<long long>(p.deadlock_retries),
                 static_cast<long long>(p.tracking_gaps),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"speedup_1_to_8\": %.3f,\n", speedup);
  std::fprintf(out, "  \"target_speedup\": %.3f,\n", min_speedup);
  std::fprintf(out, "  \"pass\": %s\n}\n", pass ? "true" : "false");
  std::fclose(out);
  std::printf("shard: wrote %s\n", out_path.c_str());
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace irdb

int main(int argc, char** argv) { return irdb::Main(argc, argv); }
