// Plan-cache ablation: tracked-proxy statement throughput on repeated TPC-C
// statement shapes, cold pipeline (parse -> rewrite -> print -> engine
// re-parse, the pre-cache behaviour) vs the shape cache + AST fast path.
//
// Emits BENCH_proxy.json:
//   { "statements_per_round", "rounds",
//     "cold_stmts_per_sec", "cached_stmts_per_sec", "speedup",
//     "cache_hits", "cache_misses", "hit_rate" }
//
// Flags: --rounds=N (default 2000), --out=PATH (default BENCH_proxy.json).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "engine/database.h"
#include "obs/catalog.h"
#include "proxy/tracking_proxy.h"
#include "util/stopwatch.h"
#include "wire/connection.h"

namespace irdb::bench {
namespace {

// One round = the repeated-shape core of a TPC-C New Order / Payment mix:
// point selects on customer/district/stock plus an order_line insert. Only
// the literals vary between rounds.
std::vector<std::string> RoundStatements(int i) {
  const std::string w = std::to_string(1 + i % 4);
  const std::string d = std::to_string(1 + i % 10);
  const std::string c = std::to_string(1 + i % 100);
  const std::string s = std::to_string(1 + i % 100);
  return {
      "SELECT c_discount, c_last, c_credit FROM customer "
      "WHERE c_w_id = " + w + " AND c_d_id = " + d + " AND c_id = " + c,
      "SELECT d_tax, d_next_o_id FROM district "
      "WHERE d_w_id = " + w + " AND d_id = " + d,
      "SELECT s_quantity, s_dist FROM stock "
      "WHERE s_i_id = " + s + " AND s_w_id = " + w,
      "UPDATE stock SET s_quantity = " + std::to_string(20 + i % 70) +
      ", s_ytd = " + std::to_string(i) + " WHERE s_i_id = " + s +
      " AND s_w_id = " + w,
      "INSERT INTO order_line(ol_o_id, ol_d_id, ol_w_id, ol_number, "
      "ol_i_id, ol_quantity, ol_amount, ol_dist_info) VALUES (" +
      std::to_string(3000 + i) + ", " + d + ", " + w + ", 1, " + s +
      ", 5, 123.45, 'abcdefghijklmnopqrstuvwx')",
  };
}

struct Fixture {
  Fixture()
      : db(FlavorTraits::Postgres()),
        direct(&db),
        proxy(&direct, &alloc, FlavorTraits::Postgres()) {
    IRDB_CHECK(proxy.EnsureTrackingTables().ok());
    Must("CREATE TABLE customer (c_w_id INTEGER, c_d_id INTEGER, "
         "c_id INTEGER, c_discount DOUBLE, c_last VARCHAR(16), "
         "c_credit VARCHAR(2), PRIMARY KEY (c_w_id, c_d_id, c_id))");
    Must("CREATE TABLE district (d_w_id INTEGER, d_id INTEGER, "
         "d_tax DOUBLE, d_next_o_id INTEGER, PRIMARY KEY (d_w_id, d_id))");
    Must("CREATE TABLE stock (s_i_id INTEGER, s_w_id INTEGER, "
         "s_quantity INTEGER, s_ytd INTEGER, s_dist VARCHAR(24), "
         "PRIMARY KEY (s_i_id, s_w_id))");
    Must("CREATE TABLE order_line (ol_o_id INTEGER, ol_d_id INTEGER, "
         "ol_w_id INTEGER, ol_number INTEGER, ol_i_id INTEGER, "
         "ol_quantity INTEGER, ol_amount DOUBLE, ol_dist_info VARCHAR(24))");
    for (int w = 1; w <= 4; ++w) {
      for (int d = 1; d <= 10; ++d) {
        Must("INSERT INTO district(d_w_id, d_id, d_tax, d_next_o_id) VALUES (" +
             std::to_string(w) + ", " + std::to_string(d) + ", 0.1, 3000)");
        for (int c = 1; c <= 25; ++c) {
          Must("INSERT INTO customer(c_w_id, c_d_id, c_id, c_discount, "
               "c_last, c_credit) VALUES (" + std::to_string(w) + ", " +
               std::to_string(d) + ", " + std::to_string((d - 1) * 25 + c) +
               ", 0.05, 'BARBARBAR', 'GC')");
        }
      }
      for (int s = 1; s <= 100; ++s) {
        Must("INSERT INTO stock(s_i_id, s_w_id, s_quantity, s_ytd, s_dist) "
             "VALUES (" + std::to_string(s) + ", " + std::to_string(w) +
             ", 50, 0, 'abcdefghijklmnopqrstuvwx')");
      }
    }
  }

  void Must(const std::string& sql) {
    auto r = proxy.Execute(sql);
    IRDB_CHECK_MSG(r.ok(), sql + " -> " + r.status().ToString());
  }

  // Runs `rounds` rounds and returns statements/second.
  double Run(int rounds) {
    Stopwatch watch;
    for (int i = 0; i < rounds; ++i) {
      for (const std::string& sql : RoundStatements(i)) Must(sql);
    }
    const double secs = watch.ElapsedSeconds();
    return static_cast<double>(rounds) * 5 / secs;
  }

  Database db;
  DirectConnection direct;
  proxy::TxnIdAllocator alloc;
  proxy::TrackingProxy proxy;
};

int Main(int argc, char** argv) {
  int rounds = 2000;
  std::string out_path = "BENCH_proxy.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rounds=", 9) == 0) {
      rounds = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--rounds=N] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }

  // Cold: the original text pipeline, one full parse+rewrite+print+re-parse
  // per statement. A fresh fixture so heap growth doesn't favour either side.
  double cold_sps;
  {
    Fixture f;
    f.proxy.set_fast_path_enabled(false);
    f.Run(rounds / 10 + 1);  // warm the tables/indexes, not the cache
    cold_sps = f.Run(rounds);
  }

  double cached_sps, hit_rate;
  int64_t hits, misses, retries, injected;
  {
    // The counters come from the global obs registry (the proxy mirrors its
    // ProxyStats there); baselines isolate this fixture's timed window.
    const obs::Metrics& m = obs::Metrics::Get();
    const int64_t retries0 = obs::CounterValue(m.proxy_retries);
    const int64_t injected0 = obs::CounterValue(m.proxy_injected_faults_hit);
    Fixture f;
    f.Run(rounds / 10 + 1);  // warm: populates the plan cache
    const int64_t hits0 = obs::CounterValue(m.proxy_plan_cache_hits);
    const int64_t misses0 = obs::CounterValue(m.proxy_plan_cache_misses);
    cached_sps = f.Run(rounds);
    hits = obs::CounterValue(m.proxy_plan_cache_hits) - hits0;
    misses = obs::CounterValue(m.proxy_plan_cache_misses) - misses0;
    hit_rate = static_cast<double>(hits) / static_cast<double>(hits + misses);
    retries = obs::CounterValue(m.proxy_retries) - retries0;
    injected = obs::CounterValue(m.proxy_injected_faults_hit) - injected0;
    // Cross-check: the registry mirror must agree with the proxy's own
    // struct over the same window.
    const auto& st = f.proxy.stats();
    IRDB_CHECK(hits + misses <= st.cache_hits + st.cache_misses);
  }

  const double speedup = cached_sps / cold_sps;
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"proxy_plan_cache\",\n"
               "  \"statements_per_round\": 5,\n"
               "  \"rounds\": %d,\n"
               "  \"cold_stmts_per_sec\": %.1f,\n"
               "  \"cached_stmts_per_sec\": %.1f,\n"
               "  \"speedup\": %.2f,\n"
               "  \"cache_hits\": %lld,\n"
               "  \"cache_misses\": %lld,\n"
               "  \"hit_rate\": %.4f,\n"
               "  \"retries\": %lld,\n"
               "  \"injected_faults_hit\": %lld\n"
               "}\n",
               rounds, cold_sps, cached_sps, speedup,
               static_cast<long long>(hits), static_cast<long long>(misses),
               hit_rate, static_cast<long long>(retries),
               static_cast<long long>(injected));
  std::fclose(out);
  std::printf("cold:   %10.1f stmts/s\ncached: %10.1f stmts/s\n"
              "speedup: %.2fx  (hit rate %.1f%%)\n"
              "fault-hardening: retries=%lld injected_faults_hit=%lld\n"
              "-> %s\n",
              cold_sps, cached_sps, speedup, 100.0 * hit_rate,
              static_cast<long long>(retries), static_cast<long long>(injected),
              out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace irdb::bench

int main(int argc, char** argv) { return irdb::bench::Main(argc, argv); }
