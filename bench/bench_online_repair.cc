// Serve-through repair availability (DESIGN.md §5g): clean-key availability
// while an online repair quarantines and heals a contaminated partition,
// against the offline baseline where the operator takes the database down
// for the same repair.
//
// Deployment: one engine behind the TCP front-end, 8 client connections
// (the issue's target point) running tracked single-statement point
// reads/writes over three PK'd tables. Setup commits one attack
// transaction that contaminates an asymmetric slice of each table
// (8 / 32 / 96 of 200 keys), so the per-table compensation lanes finish at
// different times and the incremental release is visible in the per-second
// timeline. The simulated I/O model runs in realtime-stall mode
// (IoCostParams::realtime_stall_scale) to stretch the repair window across
// several wall seconds the way the paper's disk-bound testbed would.
//
// Two legs, same contamination:
//   - online:  RepairOnline races the live load; statements on quarantined
//     slices get tagged kUnavailable rejects, clean keys keep flowing, and
//     slices leave the fence as their table's lane commits;
//   - offline: the operator procedure — stop the server, run Repair, bring
//     the server back; every request during the window is unavailable.
//
// Emits BENCH_online.json: per-leg repair window, clean-key and overall
// availability inside the window, and a per-second timeline
// (served/rejected/net_down/failed + quarantine slices held) that shows
// availability recovering slice-by-slice. Exit code gates on the issue
// target: >= 90% clean-key availability during the online repair window.
//
// Flags: --connections=N (default 8), --stall-scale=F (default 200),
//        --warmup-ms=N (default 1200), --tail-ms=N (default 1200),
//        --out=PATH (default BENCH_online.json).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "engine/io_model.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "proxy/tracking_proxy.h"
#include "repair/dba_policy.h"
#include "repair/repair_engine.h"
#include "util/stopwatch.h"
#include "wire/client.h"

namespace irdb {
namespace {

constexpr int kTables = 3;
constexpr int kKeysPerTable = 200;
// Contaminated key prefix per table: asymmetric so lanes release at
// different times.
constexpr int kContaminated[kTables] = {8, 32, 96};
const char* const kTableNames[kTables] = {"acct_a", "acct_b", "acct_c"};

constexpr size_t kMaxSeconds = 120;

struct SecondBucket {
  std::atomic<int64_t> served{0};
  std::atomic<int64_t> rejected{0};   // tagged quarantine rejects
  std::atomic<int64_t> net_down{0};   // server unreachable / connection lost
  std::atomic<int64_t> failed{0};     // anything else (deadlock residue)
  std::atomic<int64_t> clean_attempted{0};
  std::atomic<int64_t> clean_served{0};
  std::atomic<int> slices{0};         // quarantine slices held (sampled)
};

struct WindowCounters {
  std::atomic<int64_t> attempted{0};
  std::atomic<int64_t> served{0};
  std::atomic<int64_t> clean_attempted{0};
  std::atomic<int64_t> clean_served{0};
};

enum class OpOutcome { kServed, kRejected, kNetDown, kFailed };

OpOutcome Classify(const Status& st) {
  if (st.message().rfind(kQuarantineTag, 0) == 0) return OpOutcome::kRejected;
  if (st.code() == StatusCode::kUnavailable) return OpOutcome::kNetDown;
  return OpOutcome::kFailed;
}

struct Op {
  int table = 0;
  int key = 1;
  bool write = false;
  bool hot() const { return key <= kContaminated[table]; }
  std::string Sql() const {
    const std::string t = kTableNames[table];
    const std::string k = std::to_string(key);
    return write ? "UPDATE " + t + " SET balance = balance + 1 WHERE id = " + k
                 : "SELECT balance FROM " + t + " WHERE id = " + k;
  }
};

struct Rng {
  uint64_t state;
  uint64_t Next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 17;
  }
};

Op NextOp(Rng* rng) {
  Op op;
  op.table = static_cast<int>(rng->Next() % kTables);
  op.key = 1 + static_cast<int>(rng->Next() % kKeysPerTable);
  op.write = (rng->Next() & 1) != 0;
  return op;
}

// One worker's connection through the TCP front door; tracking lives in the
// client-side proxy (the deployment the chaos harness exercises).
struct WorkerConn {
  std::unique_ptr<net::TcpChannel> channel;
  std::unique_ptr<RemoteConnection> remote;
  std::unique_ptr<proxy::TrackingProxy> proxy;

  void Drop() {
    proxy.reset();
    remote.reset();
    channel.reset();
  }

  bool Dial(int port, proxy::TxnIdAllocator* alloc) {
    Drop();
    net::TcpChannelOptions copts;
    copts.port = port;
    channel = std::make_unique<net::TcpChannel>(copts);
    auto r = RemoteConnection::Connect(channel.get(), RetryPolicy::None());
    if (!r.ok()) {
      Drop();
      return false;
    }
    remote = std::move(r).value();
    proxy = std::make_unique<proxy::TrackingProxy>(remote.get(), alloc,
                                                   FlavorTraits::Postgres());
    return true;
  }
};

OpOutcome RunOp(proxy::TrackingProxy* p, const Op& op) {
  auto begin = p->Execute("BEGIN");
  if (!begin.ok()) {
    (void)p->Execute("ROLLBACK");
    return Classify(begin.status());
  }
  auto r = p->Execute(op.Sql());
  if (r.ok()) {
    auto commit = p->Execute("COMMIT");
    if (commit.ok()) return OpOutcome::kServed;
    (void)p->Execute("ROLLBACK");
    return Classify(commit.status());
  }
  (void)p->Execute("ROLLBACK");
  return Classify(r.status());
}

struct LegResult {
  std::string name;
  double window_begin_s = 0;
  double window_end_s = 0;
  double leg_seconds = 0;
  Status repair_status = Status::Ok();
  int undo_txns = 0;
  // Online-only detail.
  int rounds = 0;
  int slices_installed = 0;
  int slices_released = 0;
  int lanes = 0;
  int64_t rejects_during = 0;
  WindowCounters window;
  std::vector<SecondBucket> timeline =
      std::vector<SecondBucket>(kMaxSeconds);

  double CleanAvailability() const {
    const int64_t a = window.clean_attempted.load();
    return a == 0 ? 0.0
                  : static_cast<double>(window.clean_served.load()) /
                        static_cast<double>(a);
  }
  double OverallAvailability() const {
    const int64_t a = window.attempted.load();
    return a == 0 ? 0.0
                  : static_cast<double>(window.served.load()) /
                        static_cast<double>(a);
  }
};

void Record(LegResult* leg, const Stopwatch& t0, std::atomic<bool>* in_window,
            const Op& op, OpOutcome oc) {
  const size_t sec = std::min(
      kMaxSeconds - 1, static_cast<size_t>(std::max(0.0, t0.ElapsedSeconds())));
  SecondBucket& b = leg->timeline[sec];
  switch (oc) {
    case OpOutcome::kServed: b.served.fetch_add(1); break;
    case OpOutcome::kRejected: b.rejected.fetch_add(1); break;
    case OpOutcome::kNetDown: b.net_down.fetch_add(1); break;
    case OpOutcome::kFailed: b.failed.fetch_add(1); break;
  }
  const bool clean = !op.hot();
  if (clean) {
    b.clean_attempted.fetch_add(1);
    if (oc == OpOutcome::kServed) b.clean_served.fetch_add(1);
  }
  if (in_window->load(std::memory_order_acquire)) {
    leg->window.attempted.fetch_add(1);
    if (oc == OpOutcome::kServed) leg->window.served.fetch_add(1);
    if (clean) {
      leg->window.clean_attempted.fetch_add(1);
      if (oc == OpOutcome::kServed) leg->window.clean_served.fetch_add(1);
    }
  }
}

// Seeds the tables and commits the attack through a tracked TCP connection;
// returns the attack's proxy transaction id (the repair seed).
Result<int64_t> SetupContamination(net::NetProxyServer* server,
                                   proxy::TxnIdAllocator* alloc) {
  net::TcpChannelOptions copts;
  copts.port = server->port();
  net::TcpChannel channel(copts);
  IRDB_ASSIGN_OR_RETURN(auto remote,
                        RemoteConnection::Connect(&channel,
                                                  RetryPolicy::None()));
  proxy::TrackingProxy boot(remote.get(), alloc, FlavorTraits::Postgres());
  IRDB_RETURN_IF_ERROR(boot.EnsureTrackingTables());

  for (const char* table : kTableNames) {
    IRDB_RETURN_IF_ERROR(
        boot.Execute(std::string("CREATE TABLE ") + table +
                     " (id INTEGER, balance DOUBLE, PRIMARY KEY (id))")
            .status());
    for (int lo = 1; lo <= kKeysPerTable; lo += 50) {
      std::string sql = std::string("INSERT INTO ") + table +
                        "(id, balance) VALUES ";
      for (int id = lo; id < lo + 50; ++id) {
        if (id != lo) sql += ", ";
        sql += "(" + std::to_string(id) + ", 100.0)";
      }
      IRDB_RETURN_IF_ERROR(boot.Execute(sql).status());
    }
  }

  IRDB_RETURN_IF_ERROR(boot.Execute("BEGIN").status());
  boot.SetAnnotation("Attack");
  for (int t = 0; t < kTables; ++t) {
    for (int id = 1; id <= kContaminated[t]; ++id) {
      IRDB_RETURN_IF_ERROR(
          boot.Execute(std::string("UPDATE ") + kTableNames[t] +
                       " SET balance = balance + 1000 WHERE id = " +
                       std::to_string(id))
              .status());
    }
  }
  const int64_t attack_trid = boot.current_txn_id();
  IRDB_RETURN_IF_ERROR(boot.Execute("COMMIT").status());
  return attack_trid;
}

// Disk-bound-era cost model with realtime stalls so the repair window spans
// wall seconds (see io_model.h). Read misses are zeroed: the bench measures
// the quarantine window, not cold-cache warmup spikes.
IoCostParams StallParams(double scale) {
  IoCostParams io;
  io.enabled = true;
  io.read_miss_seconds = 0;
  io.log_flush_seconds = 5.0e-5;
  io.log_write_seconds_per_byte = 0;
  io.statement_cpu_seconds = 1.0e-4;
  io.row_cpu_seconds = 1.0e-6;
  io.realtime_stall_scale = scale;
  return io;
}

void RunLeg(LegResult* leg_out, bool online, int connections,
            double stall_scale, int warmup_ms, int tail_ms) {
  LegResult& leg = *leg_out;
  leg.name = online ? "online" : "offline";

  Database db(FlavorTraits::Postgres());
  proxy::TxnIdAllocator alloc;
  net::NetServerOptions sopts;
  sopts.track = false;  // tracking lives in the per-client proxies
  auto server = std::make_unique<net::NetProxyServer>(&db, &alloc, sopts);
  Status st = server->Start();
  if (!st.ok()) {
    leg.repair_status = st;
    return;
  }
  auto seed_or = SetupContamination(server.get(), &alloc);
  if (!seed_or.ok()) {
    leg.repair_status = seed_or.status();
    return;
  }
  const int64_t attack_trid = *seed_or;

  // Stalls go live only now: setup stays fast, the measured legs run
  // "disk-bound".
  db.io_model().Configure(StallParams(stall_scale));

  std::atomic<int> port{server->port()};
  std::atomic<bool> stop{false};
  std::atomic<bool> in_window{false};
  Stopwatch t0;

  std::vector<std::thread> workers;
  for (int c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      Rng rng{0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(c + 1) +
              (online ? 1 : 2)};
      WorkerConn wc;
      while (!stop.load(std::memory_order_acquire)) {
        if (!wc.proxy) {
          if (!wc.Dial(port.load(std::memory_order_acquire), &alloc)) {
            // The op we would have issued counts as unavailable.
            Record(&leg, t0, &in_window, NextOp(&rng), OpOutcome::kNetDown);
            std::this_thread::sleep_for(std::chrono::milliseconds(25));
            continue;
          }
        }
        const Op op = NextOp(&rng);
        const OpOutcome oc = RunOp(wc.proxy.get(), op);
        Record(&leg, t0, &in_window, op, oc);
        if (oc == OpOutcome::kNetDown) wc.Drop();
        if (oc == OpOutcome::kRejected) {
          // Client backoff on a fenced slice.
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      }
    });
  }

  // Samples quarantine occupancy into the timeline so the per-second series
  // shows the incremental release, not just its effect on rejects.
  std::thread sampler([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const size_t sec =
          std::min(kMaxSeconds - 1,
                   static_cast<size_t>(std::max(0.0, t0.ElapsedSeconds())));
      const int held = db.quarantine().stats().slices;
      int cur = leg.timeline[sec].slices.load();
      while (held > cur &&
             !leg.timeline[sec].slices.compare_exchange_weak(cur, held)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(warmup_ms));

  repair::RepairEngine engine(&db, /*threads=*/2);
  leg.window_begin_s = t0.ElapsedSeconds();
  in_window.store(true, std::memory_order_release);
  if (online) {
    auto rep = engine.RepairOnline({attack_trid},
                                   repair::DbaPolicy::TrackEverything());
    if (rep.ok()) {
      leg.rounds = rep->rounds;
      leg.slices_installed = rep->slices_installed;
      leg.slices_released = rep->slices_released;
      leg.lanes = rep->lanes;
      leg.rejects_during = rep->rejects_during;
      leg.undo_txns = static_cast<int>(rep->repair.undo_set.size());
    } else {
      leg.repair_status = rep.status();
    }
  } else {
    // Operator procedure: take the database offline, repair, come back.
    server->Stop();
    auto rep = engine.Repair({attack_trid},
                             repair::DbaPolicy::TrackEverything());
    if (rep.ok()) {
      leg.undo_txns = static_cast<int>(rep->undo_set.size());
    } else {
      leg.repair_status = rep.status();
    }
    server = std::make_unique<net::NetProxyServer>(&db, &alloc, sopts);
    Status restart = server->Start();
    if (!restart.ok() && leg.repair_status.ok()) leg.repair_status = restart;
    port.store(server->port(), std::memory_order_release);
  }
  in_window.store(false, std::memory_order_release);
  leg.window_end_s = t0.ElapsedSeconds();

  std::this_thread::sleep_for(std::chrono::milliseconds(tail_ms));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  sampler.join();
  leg.leg_seconds = t0.ElapsedSeconds();
  server->Stop();
}

void PrintLeg(const LegResult& leg) {
  std::printf(
      "online_repair: leg=%s window=[%.2fs, %.2fs] clean_avail=%.1f%% "
      "overall_avail=%.1f%% undo=%d rounds=%d slices=%d/%d lanes=%d "
      "rejects_during=%lld\n",
      leg.name.c_str(), leg.window_begin_s, leg.window_end_s,
      100.0 * leg.CleanAvailability(), 100.0 * leg.OverallAvailability(),
      leg.undo_txns, leg.rounds, leg.slices_released, leg.slices_installed,
      leg.lanes, static_cast<long long>(leg.rejects_during));
  for (size_t sec = 0; sec < kMaxSeconds; ++sec) {
    const SecondBucket& b = leg.timeline[sec];
    const int64_t attempted = b.served.load() + b.rejected.load() +
                              b.net_down.load() + b.failed.load();
    if (attempted == 0) continue;
    const double avail =
        100.0 * static_cast<double>(b.served.load()) /
        static_cast<double>(attempted);
    std::printf(
        "online_repair:   t=%2zus served=%4lld rejected=%4lld net_down=%4lld "
        "failed=%3lld slices=%2d avail=%5.1f%%\n",
        sec, static_cast<long long>(b.served.load()),
        static_cast<long long>(b.rejected.load()),
        static_cast<long long>(b.net_down.load()),
        static_cast<long long>(b.failed.load()), b.slices.load(), avail);
  }
}

void EmitLegJson(std::FILE* out, const LegResult& leg, bool last) {
  std::fprintf(out, "  \"%s\": {\n", leg.name.c_str());
  std::fprintf(out, "    \"repair_window_seconds\": %.3f,\n",
               leg.window_end_s - leg.window_begin_s);
  std::fprintf(out, "    \"window_begin_s\": %.3f,\n", leg.window_begin_s);
  std::fprintf(out, "    \"window_end_s\": %.3f,\n", leg.window_end_s);
  std::fprintf(out, "    \"undo_txns\": %d,\n", leg.undo_txns);
  std::fprintf(out, "    \"rounds\": %d,\n", leg.rounds);
  std::fprintf(out, "    \"slices_installed\": %d,\n", leg.slices_installed);
  std::fprintf(out, "    \"slices_released\": %d,\n", leg.slices_released);
  std::fprintf(out, "    \"lanes\": %d,\n", leg.lanes);
  std::fprintf(out, "    \"rejects_during\": %lld,\n",
               static_cast<long long>(leg.rejects_during));
  std::fprintf(out, "    \"window_attempted\": %lld,\n",
               static_cast<long long>(leg.window.attempted.load()));
  std::fprintf(out, "    \"window_served\": %lld,\n",
               static_cast<long long>(leg.window.served.load()));
  std::fprintf(out, "    \"window_clean_attempted\": %lld,\n",
               static_cast<long long>(leg.window.clean_attempted.load()));
  std::fprintf(out, "    \"window_clean_served\": %lld,\n",
               static_cast<long long>(leg.window.clean_served.load()));
  std::fprintf(out, "    \"availability_clean\": %.4f,\n",
               leg.CleanAvailability());
  std::fprintf(out, "    \"availability_overall\": %.4f,\n",
               leg.OverallAvailability());
  std::fprintf(out, "    \"timeline\": [\n");
  bool first = true;
  for (size_t sec = 0; sec < kMaxSeconds; ++sec) {
    const SecondBucket& b = leg.timeline[sec];
    const int64_t attempted = b.served.load() + b.rejected.load() +
                              b.net_down.load() + b.failed.load();
    if (attempted == 0) continue;
    if (!first) std::fprintf(out, ",\n");
    first = false;
    const double avail = static_cast<double>(b.served.load()) /
                         static_cast<double>(attempted);
    const int64_t ca = b.clean_attempted.load();
    const double clean_avail =
        ca == 0 ? 1.0
                : static_cast<double>(b.clean_served.load()) /
                      static_cast<double>(ca);
    std::fprintf(out,
                 "      {\"t\": %zu, \"served\": %lld, \"rejected\": %lld, "
                 "\"net_down\": %lld, \"failed\": %lld, "
                 "\"slices_held\": %d, \"availability\": %.4f, "
                 "\"availability_clean\": %.4f}",
                 sec, static_cast<long long>(b.served.load()),
                 static_cast<long long>(b.rejected.load()),
                 static_cast<long long>(b.net_down.load()),
                 static_cast<long long>(b.failed.load()), b.slices.load(),
                 avail, clean_avail);
  }
  std::fprintf(out, "\n    ]\n  }%s\n", last ? "" : ",");
}

int Main(int argc, char** argv) {
  int connections = 8;
  double stall_scale = 200.0;
  int warmup_ms = 1200;
  int tail_ms = 1200;
  std::string out_path = "BENCH_online.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--connections=", 14) == 0) {
      connections = std::atoi(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--stall-scale=", 14) == 0) {
      stall_scale = std::atof(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--warmup-ms=", 12) == 0) {
      warmup_ms = std::atoi(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--tail-ms=", 10) == 0) {
      tail_ms = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--connections=N] [--stall-scale=F] "
                   "[--warmup-ms=N] [--tail-ms=N] [--out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  LegResult online;
  RunLeg(&online, /*online=*/true, connections, stall_scale, warmup_ms,
         tail_ms);
  if (!online.repair_status.ok()) {
    std::fprintf(stderr, "bench_online_repair: online leg: %s\n",
                 online.repair_status.ToString().c_str());
    return 1;
  }
  PrintLeg(online);

  LegResult offline;
  RunLeg(&offline, /*online=*/false, connections, stall_scale, warmup_ms,
         tail_ms);
  if (!offline.repair_status.ok()) {
    std::fprintf(stderr, "bench_online_repair: offline leg: %s\n",
                 offline.repair_status.ToString().c_str());
    return 1;
  }
  PrintLeg(offline);

  constexpr double kTarget = 0.90;
  const bool target_met = online.CleanAvailability() >= kTarget &&
                          online.CleanAvailability() >
                              offline.CleanAvailability();
  std::printf(
      "online_repair: clean availability during repair: online %.1f%% vs "
      "offline %.1f%% (target >= %.0f%%) -> %s\n",
      100.0 * online.CleanAvailability(),
      100.0 * offline.CleanAvailability(), 100.0 * kTarget,
      target_met ? "MET" : "MISSED");

  int contaminated = 0;
  for (int t = 0; t < kTables; ++t) contaminated += kContaminated[t];
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"online_repair\",\n");
  std::fprintf(out, "  \"connections\": %d,\n", connections);
  std::fprintf(out, "  \"stall_scale\": %.1f,\n", stall_scale);
  std::fprintf(out, "  \"tables\": %d,\n", kTables);
  std::fprintf(out, "  \"keys_per_table\": %d,\n", kKeysPerTable);
  std::fprintf(out, "  \"contaminated_keys\": %d,\n", contaminated);
  EmitLegJson(out, online, /*last=*/false);
  EmitLegJson(out, offline, /*last=*/false);
  std::fprintf(out, "  \"target_availability_clean\": %.2f,\n", kTarget);
  std::fprintf(out, "  \"target_met\": %s\n}\n",
               target_met ? "true" : "false");
  std::fclose(out);
  std::printf("online_repair: wrote %s\n", out_path.c_str());
  return target_met ? 0 : 1;
}

}  // namespace
}  // namespace irdb

int main(int argc, char** argv) { return irdb::Main(argc, argv); }
