// Micro-benchmarks for the SQL pipeline the intercepting proxy sits on:
// lex+parse, Table-1 rewriting, printing, and the full proxy round trip.
// These are the per-statement CPU components of the Fig. 4 overhead.
#include <benchmark/benchmark.h>

#include "engine/database.h"
#include "proxy/rewriter.h"
#include "proxy/tracking_proxy.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "wire/connection.h"

namespace irdb {
namespace {

const char* kSelect =
    "SELECT c_discount, c_last, c_credit FROM customer "
    "WHERE c_w_id = 4 AND c_d_id = 7 AND c_id = 1291";
const char* kJoin =
    "SELECT COUNT(DISTINCT s_i_id) FROM order_line, stock WHERE ol_w_id = 1 "
    "AND ol_d_id = 2 AND ol_o_id >= 3000 AND ol_o_id < 3020 AND "
    "s_w_id = ol_supply_w_id AND s_i_id = ol_i_id AND s_quantity < 15";
const char* kUpdate =
    "UPDATE stock SET s_quantity = 37, s_ytd = s_ytd + 5, "
    "s_order_cnt = s_order_cnt + 1 WHERE s_i_id = 831 AND s_w_id = 4";
const char* kInsert =
    "INSERT INTO order_line(ol_o_id, ol_d_id, ol_w_id, ol_number, ol_i_id, "
    "ol_supply_w_id, ol_delivery_d, ol_quantity, ol_amount, ol_dist_info) "
    "VALUES (3001, 2, 1, 4, 831, 1, NULL, 5, 123.45, 'abcdefghijklmnopqrstuvwx')";

void BM_ParseSelect(benchmark::State& state) {
  for (auto _ : state) {
    auto stmt = sql::Parse(kSelect);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseSelect);

void BM_ParseJoinAggregate(benchmark::State& state) {
  for (auto _ : state) {
    auto stmt = sql::Parse(kJoin);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseJoinAggregate);

void BM_PrintRoundTrip(benchmark::State& state) {
  auto stmt = sql::Parse(kJoin);
  IRDB_CHECK(stmt.ok());
  for (auto _ : state) {
    std::string text = sql::PrintStatement(**stmt);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_PrintRoundTrip);

void BM_RewriteSelect(benchmark::State& state) {
  proxy::SqlRewriter rewriter(FlavorTraits::Postgres());
  auto stmt = sql::Parse(kSelect);
  IRDB_CHECK(stmt.ok());
  for (auto _ : state) {
    auto rw = rewriter.RewriteSelect(**stmt);
    benchmark::DoNotOptimize(rw);
  }
}
BENCHMARK(BM_RewriteSelect);

void BM_RewriteAggregate(benchmark::State& state) {
  proxy::SqlRewriter rewriter(FlavorTraits::Postgres());
  auto stmt = sql::Parse(kJoin);
  IRDB_CHECK(stmt.ok());
  for (auto _ : state) {
    auto rw = rewriter.RewriteSelect(**stmt);
    benchmark::DoNotOptimize(rw);
  }
}
BENCHMARK(BM_RewriteAggregate);

void BM_RewriteUpdate(benchmark::State& state) {
  proxy::SqlRewriter rewriter(FlavorTraits::Postgres());
  auto stmt = sql::Parse(kUpdate);
  IRDB_CHECK(stmt.ok());
  for (auto _ : state) {
    auto rw = rewriter.RewriteUpdate(**stmt, 12345);
    benchmark::DoNotOptimize(rw);
  }
}
BENCHMARK(BM_RewriteUpdate);

void BM_RewriteInsert(benchmark::State& state) {
  proxy::SqlRewriter rewriter(FlavorTraits::Sybase());
  auto stmt = sql::Parse(kInsert);
  IRDB_CHECK(stmt.ok());
  for (auto _ : state) {
    auto rw = rewriter.RewriteInsert(**stmt, 12345);
    benchmark::DoNotOptimize(rw);
  }
}
BENCHMARK(BM_RewriteInsert);

// Statement-shape fingerprinting: the fixed per-statement cost of the cached
// fast path (a single lex over the text).
void BM_FingerprintSelect(benchmark::State& state) {
  for (auto _ : state) {
    auto shape = sql::FingerprintStatement(kSelect);
    benchmark::DoNotOptimize(shape);
  }
}
BENCHMARK(BM_FingerprintSelect);

void BM_FingerprintInsert(benchmark::State& state) {
  for (auto _ : state) {
    auto shape = sql::FingerprintStatement(kInsert);
    benchmark::DoNotOptimize(shape);
  }
}
BENCHMARK(BM_FingerprintInsert);

namespace {

// Shared fixture for the end-to-end proxy benches.
struct ProxyBench {
  ProxyBench()
      : db(FlavorTraits::Postgres()),
        direct(&db),
        proxy(&direct, &alloc, FlavorTraits::Postgres()) {
    IRDB_CHECK(proxy.EnsureTrackingTables().ok());
    IRDB_CHECK(proxy.Execute("CREATE TABLE t (a INTEGER, b VARCHAR(16), "
                             "PRIMARY KEY (a))").ok());
    for (int i = 0; i < 100; ++i) {
      IRDB_CHECK(proxy.Execute("INSERT INTO t(a, b) VALUES (" +
                               std::to_string(i) + ", 'v')").ok());
    }
  }

  Database db;
  DirectConnection direct;
  proxy::TxnIdAllocator alloc;
  proxy::TrackingProxy proxy;
};

void ReportCacheCounters(benchmark::State& state, const proxy::ProxyStats& st) {
  state.counters["hits"] = static_cast<double>(st.cache_hits);
  state.counters["misses"] = static_cast<double>(st.cache_misses);
  state.counters["bypasses"] = static_cast<double>(st.cache_bypasses);
}

}  // namespace

// Full tracked statement execution against a small live table. The cold
// variant disables the plan cache: the complete parse -> rewrite -> print ->
// engine-parse -> execute -> collect-deps path. The cached variant runs the
// same statement shape through the plan cache + AST hand-off.
void BM_TrackedSelectEndToEndCold(benchmark::State& state) {
  ProxyBench b;
  b.proxy.set_fast_path_enabled(false);
  for (auto _ : state) {
    auto rs = b.proxy.Execute("SELECT b FROM t WHERE a = 42");
    benchmark::DoNotOptimize(rs);
  }
  ReportCacheCounters(state, b.proxy.stats());
}
BENCHMARK(BM_TrackedSelectEndToEndCold);

void BM_TrackedSelectEndToEndCached(benchmark::State& state) {
  ProxyBench b;
  for (auto _ : state) {
    auto rs = b.proxy.Execute("SELECT b FROM t WHERE a = 42");
    benchmark::DoNotOptimize(rs);
  }
  ReportCacheCounters(state, b.proxy.stats());
}
BENCHMARK(BM_TrackedSelectEndToEndCached);

void BM_TrackedInsertEndToEndCold(benchmark::State& state) {
  ProxyBench b;
  b.proxy.set_fast_path_enabled(false);
  int next = 1000;
  for (auto _ : state) {
    auto rs = b.proxy.Execute("INSERT INTO t(a, b) VALUES (" +
                              std::to_string(next++) + ", 'w')");
    benchmark::DoNotOptimize(rs);
  }
  ReportCacheCounters(state, b.proxy.stats());
}
BENCHMARK(BM_TrackedInsertEndToEndCold);

void BM_TrackedInsertEndToEndCached(benchmark::State& state) {
  ProxyBench b;
  int next = 1000;
  for (auto _ : state) {
    auto rs = b.proxy.Execute("INSERT INTO t(a, b) VALUES (" +
                              std::to_string(next++) + ", 'w')");
    benchmark::DoNotOptimize(rs);
  }
  ReportCacheCounters(state, b.proxy.stats());
}
BENCHMARK(BM_TrackedInsertEndToEndCached);

void BM_UntrackedSelectEndToEnd(benchmark::State& state) {
  Database db(FlavorTraits::Postgres());
  DirectConnection direct(&db);
  IRDB_CHECK(direct.Execute("CREATE TABLE t (a INTEGER, b VARCHAR(16), "
                            "PRIMARY KEY (a))").ok());
  for (int i = 0; i < 100; ++i) {
    IRDB_CHECK(direct.Execute("INSERT INTO t(a, b) VALUES (" +
                              std::to_string(i) + ", 'v')").ok());
  }
  for (auto _ : state) {
    auto rs = direct.Execute("SELECT b FROM t WHERE a = 42");
    benchmark::DoNotOptimize(rs);
  }
}
BENCHMARK(BM_UntrackedSelectEndToEnd);

}  // namespace
}  // namespace irdb

BENCHMARK_MAIN();
