// Table 2 reproduction: test database parameters and resulting cardinalities.
//
// Prints the paper's scaling parameters next to the configured run's, then
// loads the database through the tracking proxy and reports per-table row
// and page counts plus load throughput.
//
// Flags: --flavor postgres|oracle|sybase, --warehouses N, --paper-scale,
// --scale N (multiplier on customers/items/orders cardinality; the loader
// emits ascending primary keys, so scaled loads ride the B+ tree's
// rightmost-append bulk-load fast path — index height is reported to show
// the trees stayed shallow)
#include <cstring>

#include "bench_common.h"
#include "tpcc/schema.h"

namespace irdb::bench {
namespace {

int Main(int argc, char** argv) {
  FlavorTraits traits = FlavorTraits::Postgres();
  tpcc::TpccConfig config = tpcc::TpccConfig::Scaled(10);
  int scale = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--flavor=", 9) == 0) {
      std::string f = argv[i] + 9;
      traits = f == "oracle"   ? FlavorTraits::Oracle()
               : f == "sybase" ? FlavorTraits::Sybase()
                               : FlavorTraits::Postgres();
    } else if (std::strncmp(argv[i], "--warehouses=", 13) == 0) {
      config.warehouses = std::atoi(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::max(1, std::atoi(argv[i] + 8));
    } else if (std::strcmp(argv[i], "--paper-scale") == 0) {
      config = tpcc::TpccConfig::Paper();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  config.customers_per_district *= scale;
  config.items *= scale;
  config.orders_per_district *= scale;

  const tpcc::TpccConfig paper = tpcc::TpccConfig::Paper();
  std::printf("Table 2: test database parameters (paper vs this run)\n");
  std::printf("%-28s %10s %10s\n", "parameter", "paper", "this run");
  std::printf("%-28s %10d %10d\n", "Number of warehouses", paper.warehouses,
              config.warehouses);
  std::printf("%-28s %10d %10d\n", "Districts per warehouse",
              paper.districts_per_warehouse, config.districts_per_warehouse);
  std::printf("%-28s %10d %10d\n", "Clients per district",
              paper.customers_per_district, config.customers_per_district);
  std::printf("%-28s %10d %10d\n", "Items per warehouse", paper.items,
              config.items);
  std::printf("%-28s %10d %10d\n\n", "Orders per district",
              paper.orders_per_district, config.orders_per_district);

  DeploymentOptions opts;
  opts.traits = traits;
  opts.arch = ProxyArch::kSingleProxy;
  ResilientDb rdb(opts);
  if (!rdb.Bootstrap().ok()) return 1;
  auto conn = rdb.Connect();
  if (!conn.ok()) return 1;

  Stopwatch watch;
  auto stats = tpcc::LoadDatabase(conn->get(), config);
  if (!stats.ok()) {
    std::fprintf(stderr, "load failed: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  const double secs = watch.ElapsedSeconds();

  std::printf("Loaded (flavor=%s, via tracking proxy) in %.2fs\n\n",
              traits.name.c_str(), secs);
  std::printf("%-12s %12s %10s %14s %6s\n", "table", "rows", "pages", "bytes",
              "ixh");
  int64_t total_rows = 0, total_bytes = 0;
  for (const std::string& name : tpcc::TableNames()) {
    const HeapTable* table = rdb.db().catalog().Find(name);
    if (table == nullptr) continue;
    int64_t bytes =
        static_cast<int64_t>(table->page_count()) * table->page_size();
    std::printf("%-12s %12lld %10d %14lld %6d\n", name.c_str(),
                static_cast<long long>(table->row_count()),
                table->page_count(), static_cast<long long>(bytes),
                table->index() != nullptr ? table->index()->height() : 0);
    total_rows += table->row_count();
    total_bytes += bytes;
  }
  std::printf("%-12s %12lld %10s %14lld\n", "total",
              static_cast<long long>(total_rows), "",
              static_cast<long long>(total_bytes));
  std::printf("\nWAL: %lld records\n",
              static_cast<long long>(rdb.db().wal().size()));
  return 0;
}

}  // namespace
}  // namespace irdb::bench

int main(int argc, char** argv) { return irdb::bench::Main(argc, argv); }
