// Ablation: intrusion-detection quality (the §6 end-to-end loop).
//
// Measures, over a TPC-C run with periodic Payment-masquerade attacks, the
// detector's recall (attacks flagged) and false-positive rate (legitimate
// transactions flagged) as a function of the warm-up window.
#include "bench_common.h"
#include "detect/anomaly_detector.h"

namespace irdb::bench {
namespace {

int Main() {
  std::printf("Ablation: anomaly-detector quality vs warm-up window\n\n");
  std::printf("%8s %10s %10s %12s %12s\n", "warmup", "attacks", "flagged",
              "recall", "false-pos%");
  for (int warmup : {20, 50, 100, 200}) {
    DeploymentOptions opts;
    opts.traits = FlavorTraits::Postgres();
    opts.arch = ProxyArch::kSingleProxy;
    ResilientDb rdb(opts);
    if (!rdb.Bootstrap().ok()) return 1;
    auto tracked = rdb.Connect();
    if (!tracked.ok()) return 1;

    detect::AnomalyDetector::Options dopts;
    dopts.warmup_transactions = warmup;
    detect::AnomalyDetector detector(dopts);
    detect::DetectingConnection conn(tracked->get(), &detector);

    tpcc::TpccConfig config = tpcc::TpccConfig::Scaled(2);
    if (!tpcc::LoadDatabase(&conn, config).ok()) return 1;
    tpcc::TpccDriver driver(&conn, config, 1000 + warmup);

    // warm-up + 400 measured transactions with an attack every 80.
    for (int i = 0; i < warmup; ++i) {
      if (!driver.RunMixed().ok()) return 1;
    }
    int attacks = 0, attacks_flagged = 0, benign = 0, benign_flagged = 0;
    for (int i = 0; i < 400; ++i) {
      size_t before = detector.flagged().size();
      if (i % 80 == 40) {
        ++attacks;
        if (!driver
                 .AttackInflateBalance(
                     1, 1 + attacks % config.districts_per_warehouse,
                     1 + attacks, 1e5)
                 .ok()) {
          return 1;
        }
        if (detector.flagged().size() > before) ++attacks_flagged;
      } else {
        ++benign;
        if (!driver.RunMixed().ok()) return 1;
        if (detector.flagged().size() > before) ++benign_flagged;
      }
    }
    std::printf("%8d %10d %10d %11.0f%% %11.2f%%\n", warmup, attacks,
                attacks_flagged,
                100.0 * attacks_flagged / attacks,
                100.0 * benign_flagged / benign);
  }
  std::printf(
      "\nShape-novel attacks are caught regardless of warm-up; longer warm-up\n"
      "drives the false-positive rate (rare-but-legit shapes) toward zero.\n");
  return 0;
}

}  // namespace
}  // namespace irdb::bench

int main() { return irdb::bench::Main(); }
