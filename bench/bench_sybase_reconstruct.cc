// §4.3 micro-benchmark: cost of the Sybase full-row reconstruction algorithm
// as a function of log length and same-page DELETE density.
//
// Each iteration reconstructs the before/after images of every MODIFY record
// in a synthetic single-page history generated against a live Sybase-flavor
// table, validating that reconstruction stays affordable relative to the
// repair pass that consumes it.
#include <benchmark/benchmark.h>

#include "engine/database.h"
#include "flavor/sybase_reader.h"
#include "util/rng.h"
#include "wire/connection.h"

namespace irdb {
namespace {

// Builds a history of n_ops random INSERT/UPDATE/DELETE statements over a
// Sybase-flavor table, with `delete_permille` of operations being deletes.
std::unique_ptr<Database> BuildHistory(int n_ops, int delete_permille,
                                       Rng* rng) {
  auto db = std::make_unique<Database>(FlavorTraits::Sybase());
  DirectConnection conn(db.get());
  IRDB_CHECK(conn.Execute("CREATE TABLE t (k INTEGER, v INTEGER, "
                          "rid INTEGER IDENTITY)").ok());
  std::vector<int> live_keys;
  for (int i = 0; i < n_ops; ++i) {
    const int roll = static_cast<int>(rng->Uniform(0, 999));
    if (live_keys.empty() || roll >= 600) {
      IRDB_CHECK(conn.Execute("INSERT INTO t(k, v) VALUES (" +
                              std::to_string(i) + ", 0)").ok());
      live_keys.push_back(i);
    } else if (roll < delete_permille) {
      size_t pick = static_cast<size_t>(
          rng->Uniform(0, static_cast<int64_t>(live_keys.size()) - 1));
      IRDB_CHECK(conn.Execute("DELETE FROM t WHERE k = " +
                              std::to_string(live_keys[pick])).ok());
      live_keys[pick] = live_keys.back();
      live_keys.pop_back();
    } else {
      IRDB_CHECK(conn.Execute("UPDATE t SET v = v + 1 WHERE k % 7 = " +
                              std::to_string(rng->Uniform(0, 6))).ok());
    }
  }
  return db;
}

void BM_SybaseReconstruct(benchmark::State& state) {
  const int n_ops = static_cast<int>(state.range(0));
  const int delete_permille = static_cast<int>(state.range(1));
  Rng rng(1234);
  auto db = BuildHistory(n_ops, delete_permille, &rng);
  std::vector<SybaseLogRow> log = DbccLog(db.get());
  auto page_reader = [&](int32_t table_id, int32_t page) {
    return DbccPage(db.get(), table_id, page);
  };
  auto slot_offset = [&](int32_t table_id, int32_t column) -> size_t {
    return static_cast<size_t>(db->catalog()
                                   .FindById(table_id)
                                   ->schema()
                                   .ColumnOffset(column));
  };
  int64_t modifies = 0;
  for (auto _ : state) {
    modifies = 0;
    for (size_t i = 0; i < log.size(); ++i) {
      if (log[i].op != LogOp::kUpdate) continue;
      auto images = RestoreFullImages(log, i, page_reader, slot_offset);
      IRDB_CHECK(images.ok());
      benchmark::DoNotOptimize(images);
      ++modifies;
    }
  }
  state.counters["log_records"] = static_cast<double>(log.size());
  state.counters["modify_records"] = static_cast<double>(modifies);
}
BENCHMARK(BM_SybaseReconstruct)
    ->Args({200, 50})
    ->Args({200, 300})
    ->Args({1000, 50})
    ->Args({1000, 300})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace irdb

BENCHMARK_MAIN();
