// Access-path bench: B+ tree index scans vs full heap scans.
//
// For each row count in the sweep, three identical databases are built and
// loaded with the same rows (ascending primary key, so the load rides the
// B+ tree's rightmost-append bulk-load fast path):
//   heap   — table WITHOUT a primary key: every predicate heap-scans.
//   index  — PRIMARY KEY(k): equality and BETWEEN predicates take the index.
//   serial — same as index but in serial engine mode, to show the access
//            path is a pure performance choice (state hashes must match).
// The same seeded query stream (point lookups and BETWEEN range scans) runs
// against each; per-leg result checksums and post-workload StateHash must be
// identical — the index may never change answers, only speed. The obs
// counters verify each leg actually took the path being measured.
//
// Heap-scan legs run a smaller sample of the query stream (full heap scans
// at 1e6 rows cost ~10ms each); throughputs are rates, so the speedup is
// sample-size independent.
//
// Emits BENCH_index.json. Gate: >= 10x point-lookup AND range-scan
// throughput at the largest row count.
//
// Flags: --rows=N,N,... (default 10000,100000,1000000), --lookups=N
// (default 2000), --heap-lookups=N (default 30), --span=N (default 100),
// --out=PATH.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "engine/database.h"
#include "obs/catalog.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "wire/connection.h"

namespace irdb {
namespace {

constexpr uint64_t kSeed = 20260808;

struct LegResult {
  double point_wall = 0, range_wall = 0;
  int64_t point_queries = 0, range_queries = 0;
  uint64_t point_checksum = 0, range_checksum = 0;
  int64_t index_scans = 0, heap_scans = 0;  // obs deltas over the whole leg
  uint64_t state_hash = 0;

  double PointTps() const {
    return static_cast<double>(point_queries) / point_wall;
  }
  double RangeTps() const {
    return static_cast<double>(range_queries) / range_wall;
  }
};

uint64_t MixHash(uint64_t h, const Value& v) {
  std::string s;
  v.AppendTo(&s);
  // FNV-1a over the stable serialization.
  for (unsigned char c : s) h = (h ^ c) * 1099511628211ull;
  return h;
}

uint64_t ChecksumRows(uint64_t h, const ResultSet& rs) {
  for (const auto& row : rs.rows) {
    for (const Value& v : row) h = MixHash(h, v);
  }
  return h;
}

Status Load(DbConnection* conn, int64_t rows, bool primary_key) {
  IRDB_RETURN_IF_ERROR(
      conn->Execute("CREATE TABLE kv (k INTEGER NOT NULL, v INTEGER, "
                    "pad VARCHAR(16)" +
                    std::string(primary_key ? ", PRIMARY KEY(k)" : "") + ")")
          .status());
  Rng rng(kSeed);
  constexpr int64_t kBatch = 500;
  IRDB_RETURN_IF_ERROR(conn->Execute("BEGIN").status());
  std::string sql;
  for (int64_t k = 1; k <= rows; ++k) {
    if (sql.empty()) sql = "INSERT INTO kv (k, v, pad) VALUES ";
    else sql += ", ";
    sql += "(" + std::to_string(k) + ", " +
           std::to_string(rng.Uniform(0, 1 << 20)) + ", 'padpadpadpad')";
    if (k % kBatch == 0 || k == rows) {
      IRDB_RETURN_IF_ERROR(conn->Execute(sql).status());
      sql.clear();
    }
  }
  IRDB_RETURN_IF_ERROR(conn->Execute("COMMIT").status());
  return Status::Ok();
}

// Runs the seeded query stream. Each leg draws from an identically seeded
// Rng, so legs that run more queries see a prefix-extension of the same
// stream; checksums are compared over the common (smaller) prefix via
// `checksum_prefix`.
Result<LegResult> RunLeg(int64_t rows, bool primary_key, bool serial,
                         int64_t point_queries, int64_t range_queries,
                         int64_t checksum_prefix, int64_t span) {
  Database db(FlavorTraits::Postgres());
  db.set_serial_mode(serial);
  DirectConnection conn(&db);
  IRDB_RETURN_IF_ERROR(Load(&conn, rows, primary_key));

  LegResult r;
  const int64_t is0 = obs::CounterValue(obs::Metrics::Get().index_scans);
  const int64_t hs0 = obs::CounterValue(obs::Metrics::Get().heap_scans);

  {
    Rng qrng(kSeed + 1);
    Stopwatch sw;
    for (int64_t q = 0; q < point_queries; ++q) {
      const int64_t k = qrng.Uniform(1, rows);
      IRDB_ASSIGN_OR_RETURN(
          auto rs,
          conn.Execute("SELECT v FROM kv WHERE k = " + std::to_string(k)));
      if (q < checksum_prefix) r.point_checksum = ChecksumRows(r.point_checksum, rs);
      if (rs.rows.size() != 1) return Status::Internal("point lookup miss");
    }
    r.point_wall = sw.ElapsedSeconds();
    r.point_queries = point_queries;
  }
  {
    Rng qrng(kSeed + 2);
    Stopwatch sw;
    for (int64_t q = 0; q < range_queries; ++q) {
      const int64_t lo = qrng.Uniform(1, rows - span);
      IRDB_ASSIGN_OR_RETURN(
          auto rs, conn.Execute("SELECT k, v FROM kv WHERE k BETWEEN " +
                                std::to_string(lo) + " AND " +
                                std::to_string(lo + span)));
      if (q < checksum_prefix) r.range_checksum = ChecksumRows(r.range_checksum, rs);
      if (rs.rows.size() != static_cast<size_t>(span) + 1) {
        return Status::Internal("range scan wrong cardinality");
      }
    }
    r.range_wall = sw.ElapsedSeconds();
    r.range_queries = range_queries;
  }

  r.index_scans = obs::CounterValue(obs::Metrics::Get().index_scans) - is0;
  r.heap_scans = obs::CounterValue(obs::Metrics::Get().heap_scans) - hs0;
  r.state_hash = db.StateHash({"kv"});
  return r;
}

int Main(int argc, char** argv) {
  std::vector<int64_t> row_counts = {10000, 100000, 1000000};
  int64_t lookups = 2000;
  int64_t heap_lookups = 30;
  int64_t span = 100;
  std::string out_path = "BENCH_index.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      row_counts.clear();
      for (const char* p = argv[i] + 7; *p != '\0';) {
        row_counts.push_back(std::strtoll(p, nullptr, 10));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else if (std::strncmp(argv[i], "--lookups=", 10) == 0) {
      lookups = std::atoll(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--heap-lookups=", 15) == 0) {
      heap_lookups = std::atoll(argv[i] + 15);
    } else if (std::strncmp(argv[i], "--span=", 7) == 0) {
      span = std::atoll(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--rows=N,N,...] [--lookups=N] "
                   "[--heap-lookups=N] [--span=N] [--out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  constexpr double kTarget = 10.0;
  struct Point {
    int64_t rows;
    LegResult heap, index, serial;
    bool consistent;
  };
  std::vector<Point> points;
  for (int64_t rows : row_counts) {
    Point p;
    p.rows = rows;
    auto heap = RunLeg(rows, /*primary_key=*/false, /*serial=*/false,
                       heap_lookups, heap_lookups, heap_lookups, span);
    auto index = RunLeg(rows, /*primary_key=*/true, /*serial=*/false, lookups,
                        lookups, heap_lookups, span);
    auto serial = RunLeg(rows, /*primary_key=*/true, /*serial=*/true,
                         heap_lookups, heap_lookups, heap_lookups, span);
    for (const auto* leg : {&heap, &index, &serial}) {
      if (!leg->ok()) {
        std::fprintf(stderr, "bench_index leg: %s\n",
                     leg->status().ToString().c_str());
        return 1;
      }
    }
    p.heap = *heap;
    p.index = *index;
    p.serial = *serial;
    // The index is a pure access-path change: every leg must agree on the
    // query answers and the final table contents.
    p.consistent = p.heap.point_checksum == p.index.point_checksum &&
                   p.heap.range_checksum == p.index.range_checksum &&
                   p.index.point_checksum == p.serial.point_checksum &&
                   p.index.range_checksum == p.serial.range_checksum &&
                   p.heap.state_hash == p.index.state_hash &&
                   p.index.state_hash == p.serial.state_hash;
    // Path sanity: the heap leg must not have taken index scans (it has no
    // index), and the index leg's reads must not have heap-scanned.
    if (p.heap.index_scans != 0) {
      std::fprintf(stderr, "bench_index: heap leg took index scans\n");
      return 1;
    }
    std::printf("index: rows=%lld point %.0f -> %.0f q/s (%.1fx) "
                "range %.0f -> %.0f q/s (%.1fx)%s\n",
                static_cast<long long>(rows), p.heap.PointTps(),
                p.index.PointTps(), p.index.PointTps() / p.heap.PointTps(),
                p.heap.RangeTps(), p.index.RangeTps(),
                p.index.RangeTps() / p.heap.RangeTps(),
                p.consistent ? "" : "  INCONSISTENT");
    if (!p.consistent) return 1;
    points.push_back(p);
  }

  const Point& last = points.back();
  const double point_speedup = last.index.PointTps() / last.heap.PointTps();
  const double range_speedup = last.index.RangeTps() / last.heap.RangeTps();
  const bool target_met = point_speedup >= kTarget && range_speedup >= kTarget;
  std::printf("index: at %lld rows: point %.1fx, range %.1fx "
              "(target %.0fx: %s)\n",
              static_cast<long long>(last.rows), point_speedup, range_speedup,
              kTarget, target_met ? "met" : "MISSED");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"index\",\n");
  std::fprintf(out, "  \"range_span\": %lld,\n", static_cast<long long>(span));
  std::fprintf(out, "  \"sweep\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(
        out,
        "    {\"rows\": %lld,\n"
        "     \"heap\": {\"point_qps\": %.1f, \"range_qps\": %.1f, "
        "\"heap_scans\": %lld, \"index_scans\": %lld},\n"
        "     \"index\": {\"point_qps\": %.1f, \"range_qps\": %.1f, "
        "\"heap_scans\": %lld, \"index_scans\": %lld},\n"
        "     \"serial_index\": {\"point_qps\": %.1f, \"range_qps\": %.1f},\n"
        "     \"point_speedup\": %.2f, \"range_speedup\": %.2f,\n"
        "     \"state_hash_heap\": \"%016llx\", "
        "\"state_hash_index\": \"%016llx\", "
        "\"state_hash_serial\": \"%016llx\",\n"
        "     \"results_and_hashes_consistent\": %s}%s\n",
        static_cast<long long>(p.rows), p.heap.PointTps(), p.heap.RangeTps(),
        static_cast<long long>(p.heap.heap_scans),
        static_cast<long long>(p.heap.index_scans), p.index.PointTps(),
        p.index.RangeTps(), static_cast<long long>(p.index.heap_scans),
        static_cast<long long>(p.index.index_scans), p.serial.PointTps(),
        p.serial.RangeTps(), p.index.PointTps() / p.heap.PointTps(),
        p.index.RangeTps() / p.heap.RangeTps(),
        static_cast<unsigned long long>(p.heap.state_hash),
        static_cast<unsigned long long>(p.index.state_hash),
        static_cast<unsigned long long>(p.serial.state_hash),
        p.consistent ? "true" : "false", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"point_speedup_at_max_rows\": %.2f,\n", point_speedup);
  std::fprintf(out, "  \"range_speedup_at_max_rows\": %.2f,\n", range_speedup);
  std::fprintf(out, "  \"target_speedup\": %.1f,\n", kTarget);
  std::fprintf(out, "  \"target_met\": %s\n}\n", target_met ? "true" : "false");
  std::fclose(out);
  std::printf("index: wrote %s\n", out_path.c_str());
  return target_met ? 0 : 1;
}

}  // namespace
}  // namespace irdb

int main(int argc, char** argv) { return irdb::Main(argc, argv); }
