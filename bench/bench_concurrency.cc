// Engine-side concurrency: serial-mode baseline vs the lock manager.
//
// The old engine serialized every statement behind one global mutex;
// Database::set_serial_mode(true) preserves that behaviour as a baseline
// leg. This bench sweeps connection counts {1, 2, 4, 8} over the full
// tracked network stack (NetProxyServer with server-side tracking proxies,
// TCP, rtt = 0 so the transport is never the bottleneck) and runs each
// point twice: once serial, once under the lock manager.
//
// The engine is made disk-bound the same way the paper's testbed was:
// IoCostParams with realtime_stall_scale > 0 turns charged I/O time
// (commit-time log flushes, per-statement CPU) into real sleeps taken with
// no lock held. A serialized engine can stall only one session at a time;
// the lock manager overlaps stalls from independent sessions, so the
// speedup at 8 connections approaches 8x even on a single-core host — and
// the acceptance floor is 3x.
//
// Each connection works a private table, so the sweep measures the engine's
// concurrency ceiling, not lock conflicts (tests/concurrency_test.cc and
// the lock-contention chaos profile cover conflicting workloads). After
// every leg the tracking_gaps table must be empty: concurrency must not
// cost tracking completeness.
//
// Emits BENCH_concurrency.json. Flags: --rounds=N (transactions per
// connection, default 40), --stall-scale=F (default 1.0), --out=PATH.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "obs/catalog.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace irdb {
namespace {

struct LegResult {
  double wall_seconds = 0;
  int64_t txns = 0;
  int64_t tracking_gaps = 0;
  int64_t lock_waits = 0;
  int64_t deadlocks = 0;
  bool accounting_ok = false;

  double Throughput() const {
    return static_cast<double>(txns) / wall_seconds;
  }
};

Result<LegResult> MeasureLeg(bool serial_mode, int connections, int rounds,
                             double stall_scale) {
  // Fresh stack per leg so tracking tables, lock stats, and the transport
  // accounting identity cover exactly this leg's traffic.
  Database db(FlavorTraits::Postgres());
  db.set_serial_mode(serial_mode);
  proxy::TxnIdAllocator alloc;
  net::NetServerOptions sopts;
  sopts.exec_threads = 8;
  sopts.track = true;  // server-side tracking proxies, paper Fig. 2
  net::NetProxyServer server(&db, &alloc, sopts);
  IRDB_RETURN_IF_ERROR(server.Start());
  IRDB_RETURN_IF_ERROR(server.Bootstrap());

  // Dial and create per-connection tables before the stalls switch on, so
  // setup cost stays out of the measurement.
  std::vector<std::unique_ptr<net::NetClient>> clients;
  for (int c = 0; c < connections; ++c) {
    net::TcpChannelOptions copts;
    copts.port = server.port();
    copts.simulated_rtt_seconds = 0.0;  // engine-side bench: no link delay
    IRDB_ASSIGN_OR_RETURN(auto client, net::NetClient::Dial(copts));
    const std::string table = "bt" + std::to_string(c);
    IRDB_RETURN_IF_ERROR(client->connection()
                             .Execute("CREATE TABLE " + table +
                                      " (k INTEGER NOT NULL, v INTEGER, "
                                      "PRIMARY KEY(k))")
                             .status());
    IRDB_RETURN_IF_ERROR(client->connection()
                             .Execute("INSERT INTO " + table +
                                      " (k, v) VALUES (1, 0)")
                             .status());
    clients.push_back(std::move(client));
  }

  // Disk-bound from here on: every charged I/O second sleeps scale real
  // seconds with no lock held (see engine/io_model.h).
  IoCostParams io;
  io.enabled = true;
  io.realtime_stall_scale = stall_scale;
  db.io_model().Configure(io);

  std::atomic<int> errors{0};
  Stopwatch sw;
  std::vector<std::thread> threads;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      DbConnection& conn = clients[static_cast<size_t>(c)]->connection();
      const std::string table = "bt" + std::to_string(c);
      for (int j = 0; j < rounds; ++j) {
        const bool ok =
            conn.Execute("BEGIN").ok() &&
            conn.Execute("SELECT v FROM " + table + " WHERE k = 1").ok() &&
            conn.Execute("UPDATE " + table + " SET v = v + 1 WHERE k = 1")
                .ok() &&
            conn.Execute("COMMIT").ok();
        if (!ok) {
          ++errors;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall = sw.ElapsedSeconds();
  if (errors.load() != 0) return Status::Internal("bench transactions failed");

  // Stop stalling before teardown and the gap check.
  db.io_model().Configure(IoCostParams{});

  LegResult r;
  r.wall_seconds = wall;
  r.txns = static_cast<int64_t>(connections) * rounds;
  {
    DirectConnection admin(&db);
    IRDB_ASSIGN_OR_RETURN(
        auto gaps, admin.Execute("SELECT tr_id FROM tracking_gaps"));
    r.tracking_gaps = static_cast<int64_t>(gaps.rows.size());
  }
  const auto lstats = db.txn_manager().locks().stats();
  r.lock_waits = lstats.waits;
  r.deadlocks = lstats.deadlocks;

  clients.clear();  // BYE
  server.Stop();
  const net::NetServerStats s = server.stats();
  r.accounting_ok =
      s.frames_in == s.frames_out && s.frames_in == s.requests_served;
  return r;
}

struct SweepPoint {
  int connections = 0;
  LegResult serial;
  LegResult concurrent;

  double Speedup() const {
    return concurrent.Throughput() / serial.Throughput();
  }
};

int Main(int argc, char** argv) {
  int rounds = 40;
  double stall_scale = 1.0;
  std::string out_path = "BENCH_concurrency.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rounds=", 9) == 0) {
      rounds = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--stall-scale=", 14) == 0) {
      stall_scale = std::atof(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--rounds=N] [--stall-scale=F] [--out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  const int kConns[] = {1, 2, 4, 8};
  constexpr double kTargetSpeedup = 3.0;
  std::vector<SweepPoint> points;
  for (int c : kConns) {
    SweepPoint p;
    p.connections = c;
    auto serial = MeasureLeg(/*serial_mode=*/true, c, rounds, stall_scale);
    if (!serial.ok()) {
      std::fprintf(stderr, "bench_concurrency serial leg: %s\n",
                   serial.status().ToString().c_str());
      return 1;
    }
    auto conc = MeasureLeg(/*serial_mode=*/false, c, rounds, stall_scale);
    if (!conc.ok()) {
      std::fprintf(stderr, "bench_concurrency concurrent leg: %s\n",
                   conc.status().ToString().c_str());
      return 1;
    }
    p.serial = *serial;
    p.concurrent = *conc;
    std::printf(
        "concurrency: conns=%d serial=%.0f txn/s concurrent=%.0f txn/s "
        "speedup=%.2fx gaps=%lld/%lld waits=%lld deadlocks=%lld%s\n",
        c, p.serial.Throughput(), p.concurrent.Throughput(), p.Speedup(),
        static_cast<long long>(p.serial.tracking_gaps),
        static_cast<long long>(p.concurrent.tracking_gaps),
        static_cast<long long>(p.concurrent.lock_waits),
        static_cast<long long>(p.concurrent.deadlocks),
        p.serial.accounting_ok && p.concurrent.accounting_ok
            ? ""
            : "  ACCOUNTING MISMATCH");
    if (!p.serial.accounting_ok || !p.concurrent.accounting_ok) return 1;
    if (p.serial.tracking_gaps != 0 || p.concurrent.tracking_gaps != 0) {
      std::fprintf(stderr, "bench_concurrency: tracking gaps at %d conns\n",
                   c);
      return 1;
    }
    points.push_back(p);
  }

  const double speedup8 = points.back().Speedup();
  const bool target_met = speedup8 >= kTargetSpeedup;
  std::printf("concurrency: serial -> lock manager at %d connections: "
              "%.2fx (target %.1fx: %s)\n",
              points.back().connections, speedup8, kTargetSpeedup,
              target_met ? "met" : "MISSED");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"concurrency\",\n");
  std::fprintf(out, "  \"rounds_per_connection\": %d,\n", rounds);
  std::fprintf(out, "  \"rtt_seconds\": 0.0,\n");
  std::fprintf(out, "  \"realtime_stall_scale\": %.3f,\n", stall_scale);
  std::fprintf(out, "  \"tracked\": true,\n");
  std::fprintf(out, "  \"sweep\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(
        out,
        "    {\"connections\": %d, \"txns_per_leg\": %lld, "
        "\"serial_wall_seconds\": %.6f, \"serial_txns_per_sec\": %.1f, "
        "\"concurrent_wall_seconds\": %.6f, "
        "\"concurrent_txns_per_sec\": %.1f, \"speedup\": %.3f, "
        "\"lock_waits\": %lld, \"deadlocks\": %lld, "
        "\"tracking_gaps\": %lld}%s\n",
        p.connections, static_cast<long long>(p.concurrent.txns),
        p.serial.wall_seconds, p.serial.Throughput(),
        p.concurrent.wall_seconds, p.concurrent.Throughput(), p.Speedup(),
        static_cast<long long>(p.concurrent.lock_waits),
        static_cast<long long>(p.concurrent.deadlocks),
        static_cast<long long>(p.serial.tracking_gaps +
                               p.concurrent.tracking_gaps),
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"speedup_at_8_connections\": %.3f,\n", speedup8);
  std::fprintf(out, "  \"target_speedup\": %.1f,\n", kTargetSpeedup);
  std::fprintf(out, "  \"target_met\": %s\n}\n",
               target_met ? "true" : "false");
  std::fclose(out);
  std::printf("concurrency: wrote %s\n", out_path.c_str());
  return target_met ? 0 : 1;
}

}  // namespace
}  // namespace irdb

int main(int argc, char** argv) { return irdb::Main(argc, argv); }
