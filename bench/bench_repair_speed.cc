// Ablation: mean time to repair (MTTR).
//
// The paper's motivation is availability: selective undo beats the
// conventional restore-backup-and-replay procedure because it only touches
// the corrupted transactions. This bench measures, for growing T_detect:
//   - selective repair: dependency analysis + compensation wall time and
//     compensating-statement count;
//   - the conventional baseline: restoring to the pre-attack state and
//     re-executing every benign transaction (estimated as the wall time of
//     replaying that many transactions).
// Expected shape: selective repair cost scales with the *damage* size,
// the baseline with the *history* size — selective wins whenever the damage
// perimeter is a minority of post-attack work, with a crossover when most
// transactions are polluted.
#include <cstring>

#include "bench_common.h"
#include "repair/repair_engine.h"

namespace irdb::bench {
namespace {

int Main(int argc, char** argv) {
  FlavorTraits traits = FlavorTraits::Postgres();
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--flavor=", 9) == 0) {
      std::string f = argv[i] + 9;
      traits = f == "oracle"   ? FlavorTraits::Oracle()
               : f == "sybase" ? FlavorTraits::Sybase()
                               : FlavorTraits::Postgres();
    }
  }
  std::printf("Ablation: repair time vs detection latency (flavor=%s)\n\n",
              traits.name.c_str());
  std::printf("%8s %8s %10s %12s %12s %14s\n", "T_detect", "undone",
              "comp.stmts", "analyze(ms)", "repair(ms)", "replay-est(ms)");

  for (int tdetect : {50, 100, 200, 400}) {
    DeploymentOptions opts;
    opts.traits = traits;
    opts.arch = ProxyArch::kSingleProxy;
    ResilientDb rdb(opts);
    if (!rdb.Bootstrap().ok()) return 1;
    auto conn = rdb.Connect();
    if (!conn.ok()) return 1;
    tpcc::TpccConfig config = tpcc::TpccConfig::Scaled(2);
    if (!tpcc::LoadDatabase(conn->get(), config).ok()) return 1;

    tpcc::TpccDriver driver(conn->get(), config, 7);
    for (int i = 0; i < 10; ++i) {
      if (!driver.RunMixed().ok()) return 1;
    }
    if (!driver.AttackInflateBalance(1, 1, 1, 1e6).ok()) return 1;
    // Measure the replay cost while generating the post-attack history: the
    // conventional procedure re-executes exactly these transactions.
    Stopwatch replay_watch;
    for (int i = 0; i < tdetect; ++i) {
      if (!driver.RunMixed().ok()) return 1;
    }
    const double replay_ms = replay_watch.ElapsedMillis();

    Stopwatch analyze_watch;
    auto analysis = rdb.repair().Analyze();
    if (!analysis.ok()) return 1;
    const double analyze_ms = analyze_watch.ElapsedMillis();

    int64_t attack_id = -1;
    for (int64_t node : analysis->graph.nodes()) {
      if (StartsWith(analysis->graph.Label(node), "Attack_")) attack_id = node;
    }
    if (attack_id < 0) return 1;

    auto policy = repair::DbaPolicy::TrackEverything();
    policy.IgnoreDerivedAttribute("warehouse", "Payment", &analysis->graph)
        .IgnoreDerivedAttribute("district", "Payment", &analysis->graph)
        .IgnoreDerivedAttribute("warehouse", "Attack", &analysis->graph)
        .IgnoreDerivedAttribute("district", "Attack", &analysis->graph);
    std::set<int64_t> undo =
        rdb.repair().ComputeUndoSet(*analysis, {attack_id}, policy);

    Stopwatch repair_watch;
    repair::RepairReport report;
    auto st = repair::Compensate(*analysis, undo, rdb.repair().admin(),
                                 rdb.db().traits(), &report);
    if (!st.ok()) {
      std::fprintf(stderr, "repair failed: %s\n", st.ToString().c_str());
      return 1;
    }
    const double repair_ms = repair_watch.ElapsedMillis();

    std::printf("%8d %8zu %10lld %12.1f %12.1f %14.1f\n", tdetect,
                report.undo_set.size(),
                static_cast<long long>(report.ops_compensated), analyze_ms,
                repair_ms, replay_ms);
  }
  std::printf(
      "\nSelective repair scales with damage size; restore+replay with\n"
      "history size. The paper's claim: selective undo keeps MTTR low when\n"
      "the damage perimeter is small.\n");
  return 0;
}

}  // namespace
}  // namespace irdb::bench

int main(int argc, char** argv) { return irdb::bench::Main(argc, argv); }
