// Ablation 1: mean time to repair (MTTR) vs detection latency.
//
// The paper's motivation is availability: selective undo beats the
// conventional restore-backup-and-replay procedure because it only touches
// the corrupted transactions. This bench measures, for growing T_detect:
//   - selective repair: dependency analysis + compensation wall time and
//     compensating-statement count;
//   - the conventional baseline: restoring to the pre-attack state and
//     re-executing every benign transaction (estimated as the wall time of
//     replaying that many transactions).
// Expected shape: selective repair cost scales with the *damage* size,
// the baseline with the *history* size — selective wins whenever the damage
// perimeter is a minority of post-attack work, with a crossover when most
// transactions are polluted.
//
// Ablation 2: parallel repair pipeline thread sweep (DESIGN.md §5c).
//
// Repeats one fixed attack+repair scenario with the repair engine at
// 1/2/4/8 threads and reports the per-phase wall + simulated-I/O time
// (scan / correlate / closure / compensate). The simulated component is the
// deterministic virtual-clock charge for the 2004-era disk-bound work
// (DESIGN.md §4a), so the reported speedup is reproducible on any host —
// including single-core CI containers where real threads cannot speed
// anything up. The sweep also asserts the parallel runs' undo sets and
// repaired table states are identical to the threads=1 run.
// Emits BENCH_repair.json.
//
// Flags: --flavor=postgres|oracle|sybase, --out=PATH, --skip-mttr.
#include <cstring>
#include <set>
#include <vector>

#include "bench_common.h"
#include "obs/catalog.h"
#include "repair/repair_engine.h"

namespace irdb::bench {
namespace {

struct SweepResult {
  int threads = 1;
  std::set<int64_t> undo;
  uint64_t state_hash = 0;
  repair::RepairPhaseStats phases;
  double wall_ms = 0;
};

// Per-phase registry counters as of now; the sweep reports deltas so each
// scenario's numbers are isolated even though the registry is process-global.
struct RepairCounterBaseline {
  int64_t scan_us, scan_sim_us, correlate_us, closure_us, compensate_us,
      compensate_sim_us, records;

  static RepairCounterBaseline Now() {
    const obs::Metrics& m = obs::Metrics::Get();
    RepairCounterBaseline b;
    b.scan_us = obs::CounterValue(m.repair_scan_us);
    b.scan_sim_us = obs::CounterValue(m.repair_scan_sim_us);
    b.correlate_us = obs::CounterValue(m.repair_correlate_us);
    b.closure_us = obs::CounterValue(m.repair_closure_us);
    b.compensate_us = obs::CounterValue(m.repair_compensate_us);
    b.compensate_sim_us = obs::CounterValue(m.repair_compensate_sim_us);
    b.records = obs::CounterValue(m.repair_records_scanned);
    return b;
  }

  // Overwrites the timed fields of `p` with the registry deltas since this
  // baseline (us -> ms). Structural fields (threads, lanes, ...) stay as the
  // engine reported them.
  void ApplyDeltas(repair::RepairPhaseStats* p) const {
    const RepairCounterBaseline now = Now();
    p->scan_wall_ms = static_cast<double>(now.scan_us - scan_us) / 1000.0;
    p->scan_sim_ms =
        static_cast<double>(now.scan_sim_us - scan_sim_us) / 1000.0;
    p->correlate_wall_ms =
        static_cast<double>(now.correlate_us - correlate_us) / 1000.0;
    p->closure_wall_ms =
        static_cast<double>(now.closure_us - closure_us) / 1000.0;
    p->compensate_wall_ms =
        static_cast<double>(now.compensate_us - compensate_us) / 1000.0;
    p->compensate_sim_ms =
        static_cast<double>(now.compensate_sim_us - compensate_sim_us) /
        1000.0;
    p->records_scanned = now.records - records;
  }
};

// One complete attack + repair scenario at the given thread count.
// Everything is seeded, so every invocation generates the identical history.
bool RunScenario(const FlavorTraits& traits, int threads, int tdetect,
                 SweepResult* result) {
  const RepairCounterBaseline baseline = RepairCounterBaseline::Now();
  DeploymentOptions opts;
  opts.traits = traits;
  opts.arch = ProxyArch::kSingleProxy;
  opts.repair_threads = threads;
  ResilientDb rdb(opts);
  if (!rdb.Bootstrap().ok()) return false;
  auto conn = rdb.Connect();
  if (!conn.ok()) return false;
  tpcc::TpccConfig config = tpcc::TpccConfig::Scaled(2);
  if (!tpcc::LoadDatabase(conn->get(), config).ok()) return false;

  tpcc::TpccDriver driver(conn->get(), config, 7);
  for (int i = 0; i < 10; ++i) {
    if (!driver.RunMixed().ok()) return false;
  }
  if (!driver.AttackInflateBalance(1, 1, 1, 1e6).ok()) return false;
  for (int i = 0; i < tdetect; ++i) {
    if (!driver.RunMixed().ok()) return false;
  }

  Stopwatch watch;
  auto analysis = rdb.repair().Analyze();
  if (!analysis.ok()) return false;

  int64_t attack_id = -1;
  for (int64_t node : analysis->graph.nodes()) {
    if (StartsWith(analysis->graph.Label(node), "Attack_")) attack_id = node;
  }
  if (attack_id < 0) return false;

  auto policy = repair::DbaPolicy::TrackEverything();
  policy.IgnoreDerivedAttribute("warehouse", "Payment", &analysis->graph)
      .IgnoreDerivedAttribute("district", "Payment", &analysis->graph)
      .IgnoreDerivedAttribute("warehouse", "Attack", &analysis->graph)
      .IgnoreDerivedAttribute("district", "Attack", &analysis->graph);
  std::set<int64_t> undo =
      rdb.repair().ComputeUndoSet(*analysis, {attack_id}, policy);

  auto report = rdb.repair().CompensateUndoSet(*analysis, undo);
  if (!report.ok()) {
    std::fprintf(stderr, "repair failed: %s\n",
                 report.status().ToString().c_str());
    return false;
  }
  result->threads = threads;
  result->undo = undo;
  // Phase times and record counts come from the obs registry (the engine
  // mirrors RepairPhaseStats there, microsecond-rounded); the struct supplies
  // the structural fields the registry doesn't carry.
  result->phases = rdb.repair().phase_stats();
  baseline.ApplyDeltas(&result->phases);
  result->wall_ms = watch.ElapsedMillis();
  result->state_hash = rdb.db().StateHash(rdb.db().catalog().TableNames());
  if (threads == 8) {
    std::printf("\n%s", rdb.StatsBlock().c_str());
  }
  return true;
}

int RunMttrAblation(const FlavorTraits& traits) {
  std::printf("Ablation: repair time vs detection latency (flavor=%s)\n\n",
              traits.name.c_str());
  std::printf("%8s %8s %10s %12s %12s %14s\n", "T_detect", "undone",
              "comp.stmts", "analyze(ms)", "repair(ms)", "replay-est(ms)");

  for (int tdetect : {50, 100, 200, 400}) {
    DeploymentOptions opts;
    opts.traits = traits;
    opts.arch = ProxyArch::kSingleProxy;
    ResilientDb rdb(opts);
    if (!rdb.Bootstrap().ok()) return 1;
    auto conn = rdb.Connect();
    if (!conn.ok()) return 1;
    tpcc::TpccConfig config = tpcc::TpccConfig::Scaled(2);
    if (!tpcc::LoadDatabase(conn->get(), config).ok()) return 1;

    tpcc::TpccDriver driver(conn->get(), config, 7);
    for (int i = 0; i < 10; ++i) {
      if (!driver.RunMixed().ok()) return 1;
    }
    if (!driver.AttackInflateBalance(1, 1, 1, 1e6).ok()) return 1;
    // Measure the replay cost while generating the post-attack history: the
    // conventional procedure re-executes exactly these transactions.
    Stopwatch replay_watch;
    for (int i = 0; i < tdetect; ++i) {
      if (!driver.RunMixed().ok()) return 1;
    }
    const double replay_ms = replay_watch.ElapsedMillis();

    Stopwatch analyze_watch;
    auto analysis = rdb.repair().Analyze();
    if (!analysis.ok()) return 1;
    const double analyze_ms = analyze_watch.ElapsedMillis();

    int64_t attack_id = -1;
    for (int64_t node : analysis->graph.nodes()) {
      if (StartsWith(analysis->graph.Label(node), "Attack_")) attack_id = node;
    }
    if (attack_id < 0) return 1;

    auto policy = repair::DbaPolicy::TrackEverything();
    policy.IgnoreDerivedAttribute("warehouse", "Payment", &analysis->graph)
        .IgnoreDerivedAttribute("district", "Payment", &analysis->graph)
        .IgnoreDerivedAttribute("warehouse", "Attack", &analysis->graph)
        .IgnoreDerivedAttribute("district", "Attack", &analysis->graph);
    std::set<int64_t> undo =
        rdb.repair().ComputeUndoSet(*analysis, {attack_id}, policy);

    Stopwatch repair_watch;
    auto report = rdb.repair().CompensateUndoSet(*analysis, undo);
    if (!report.ok()) {
      std::fprintf(stderr, "repair failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    const double repair_ms = repair_watch.ElapsedMillis();

    std::printf("%8d %8zu %10lld %12.1f %12.1f %14.1f\n", tdetect,
                report->undo_set.size(),
                static_cast<long long>(report->ops_compensated), analyze_ms,
                repair_ms, replay_ms);
  }
  std::printf(
      "\nSelective repair scales with damage size; restore+replay with\n"
      "history size. The paper's claim: selective undo keeps MTTR low when\n"
      "the damage perimeter is small.\n");
  return 0;
}

void AppendArray(std::string* json, const char* key,
                 const std::vector<double>& values) {
  char buf[64];
  *json += std::string("  \"") + key + "\": [";
  for (size_t i = 0; i < values.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%.2f", i ? ", " : "", values[i]);
    *json += buf;
  }
  *json += "],\n";
}

int Main(int argc, char** argv) {
  FlavorTraits traits = FlavorTraits::Postgres();
  std::string out_path = "BENCH_repair.json";
  bool skip_mttr = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--flavor=", 9) == 0) {
      std::string f = argv[i] + 9;
      traits = f == "oracle"   ? FlavorTraits::Oracle()
               : f == "sybase" ? FlavorTraits::Sybase()
                               : FlavorTraits::Postgres();
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--skip-mttr") == 0) {
      skip_mttr = true;
    } else {
      std::fprintf(stderr, "usage: %s [--flavor=F] [--out=PATH] [--skip-mttr]\n",
                   argv[0]);
      return 2;
    }
  }

  if (!skip_mttr && RunMttrAblation(traits) != 0) return 1;

  const int tdetect = 400;
  std::printf(
      "\nAblation: parallel repair pipeline, thread sweep "
      "(flavor=%s, T_detect=%d)\n\n",
      traits.name.c_str(), tdetect);
  std::printf("%7s %10s %12s %11s %14s %10s %9s\n", "threads", "scan(ms)",
              "correlate(ms)", "closure(ms)", "compensate(ms)", "total(ms)",
              "speedup");

  std::vector<SweepResult> results;
  for (int threads : {1, 2, 4, 8}) {
    SweepResult r;
    if (!RunScenario(traits, threads, tdetect, &r)) return 1;
    results.push_back(std::move(r));
  }

  const SweepResult& base = results.front();
  bool undo_identical = true, state_identical = true;
  std::vector<double> scan_ms, correlate_ms, closure_ms, compensate_ms,
      total_ms, wall_ms;
  for (const SweepResult& r : results) {
    undo_identical = undo_identical && r.undo == base.undo;
    state_identical = state_identical && r.state_hash == base.state_hash;
    const repair::RepairPhaseStats& p = r.phases;
    scan_ms.push_back(p.scan_wall_ms + p.scan_sim_ms);
    correlate_ms.push_back(p.correlate_wall_ms);
    closure_ms.push_back(p.closure_wall_ms);
    compensate_ms.push_back(p.compensate_wall_ms + p.compensate_sim_ms);
    total_ms.push_back(p.total_ms());
    wall_ms.push_back(r.wall_ms);
    std::printf("%7d %10.1f %12.1f %11.1f %14.1f %10.1f %8.2fx\n", r.threads,
                scan_ms.back(), correlate_ms.back(), closure_ms.back(),
                compensate_ms.back(), total_ms.back(),
                results.front().phases.total_ms() / p.total_ms());
  }
  if (!undo_identical || !state_identical) {
    std::fprintf(stderr,
                 "FAIL: parallel repair diverged from serial "
                 "(undo_identical=%d state_identical=%d)\n",
                 undo_identical, state_identical);
    return 1;
  }
  std::printf(
      "\nTimes are wall + simulated 2004-era disk time (DESIGN.md §4a);\n"
      "parallel phases charge the longest lane. Undo sets and repaired\n"
      "states verified identical across all thread counts.\n");

  const double speedup_2t = total_ms[0] / total_ms[1];
  const double speedup_4t = total_ms[0] / total_ms[2];
  const double speedup_8t = total_ms[0] / total_ms[3];

  std::string json = "{\n  \"benchmark\": \"parallel_repair\",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"flavor\": \"%s\",\n  \"tdetect\": %d,\n"
                "  \"records_scanned\": %lld,\n  \"undo_set_size\": %zu,\n"
                "  \"threads\": [1, 2, 4, 8],\n",
                traits.name.c_str(), tdetect,
                static_cast<long long>(base.phases.records_scanned),
                base.undo.size());
  json += buf;
  AppendArray(&json, "scan_ms", scan_ms);
  AppendArray(&json, "correlate_ms", correlate_ms);
  AppendArray(&json, "closure_ms", closure_ms);
  AppendArray(&json, "compensate_ms", compensate_ms);
  AppendArray(&json, "total_ms", total_ms);
  AppendArray(&json, "wall_ms", wall_ms);
  std::snprintf(buf, sizeof(buf),
                "  \"undo_identical\": %s,\n  \"state_identical\": %s,\n"
                "  \"speedup_2t\": %.2f,\n  \"speedup_4t\": %.2f,\n"
                "  \"speedup_8t\": %.2f,\n  \"speedup\": %.2f\n}\n",
                undo_identical ? "true" : "false",
                state_identical ? "true" : "false", speedup_2t, speedup_4t,
                speedup_8t, speedup_4t);
  json += buf;

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), out);
  std::fclose(out);
  std::printf("wrote %s (speedup_4t=%.2fx, speedup_8t=%.2fx)\n",
              out_path.c_str(), speedup_4t, speedup_8t);
  return 0;
}

}  // namespace
}  // namespace irdb::bench

int main(int argc, char** argv) { return irdb::bench::Main(argc, argv); }
