// The minidb engine: executes SQL text against the catalog/storage layers,
// writes per-row WAL records in the active flavor's style, and supports
// sessions with BEGIN/COMMIT/ROLLBACK (plus autocommit).
//
// Concurrency model (DESIGN.md §5f): statements from different sessions
// execute concurrently under strict two-phase locking. Before a statement
// runs, the engine derives a lock plan from its AST — an intention mode on
// each referenced table plus S/X key locks when the statement provably
// touches single primary keys, coarsening to table S/X otherwise — and
// acquires it through the transaction manager (src/concurrency). Locks are
// held until COMMIT/ROLLBACK; waits-for-graph detection aborts deadlocked
// requesters with a "[deadlock]"-tagged kAborted status (retryable for
// autocommit statements, whose transaction the abort fully undoes).
// Physical safety inside a statement comes from per-table latches (shared
// for reads, exclusive for writes), always taken after every 2PL lock is
// granted and in table-id order, so latches never deadlock.
//
// set_serial_mode(true) restores the pre-lock-manager behaviour — one
// global mutex around every statement — and exists as the baseline leg of
// bench_concurrency.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "concurrency/quarantine.h"
#include "concurrency/transaction_manager.h"
#include "engine/expr_eval.h"
#include "engine/io_model.h"
#include "engine/result_set.h"
#include "flavor/flavor_traits.h"
#include "sql/ast.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"
#include "txn/stmt_journal.h"
#include "txn/wal_log.h"
#include "util/status.h"

namespace irdb {

struct DbStats {
  int64_t statements = 0;
  int64_t selects = 0;
  int64_t inserts = 0;
  int64_t updates = 0;
  int64_t deletes = 0;
  int64_t commits = 0;
  int64_t rollbacks = 0;
  int64_t deadlock_aborts = 0;
};

class Database {
 public:
  explicit Database(FlavorTraits traits, IoCostParams io_params = {});
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Session lifecycle. Session 0 is pre-opened for convenience.
  int64_t OpenSession();
  void CloseSession(int64_t session_id);

  // Parses and executes one statement.
  Result<ResultSet> Execute(int64_t session_id, std::string_view sql_text);

  // Executes an already-parsed statement (used by tests; the wire path always
  // carries text, as the paper's portability argument requires).
  Result<ResultSet> ExecuteParsed(int64_t session_id, const sql::Statement& stmt);

  const FlavorTraits& traits() const { return traits_; }
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  WalLog& wal() { return wal_; }
  const WalLog& wal() const { return wal_; }

  // Statement journal: logical statement text of committed transactions,
  // sealed at COMMIT, discarded at ROLLBACK. The reenactment repair's replay
  // source (DESIGN.md §5i).
  StmtJournal& stmt_journal() { return stmt_journal_; }
  const StmtJournal& stmt_journal() const { return stmt_journal_; }
  IoModel& io_model() { return io_model_; }
  const IoModel& io_model() const { return io_model_; }
  DbStats stats() const;

  concurrency::TransactionManager& txn_manager() { return txn_mgr_; }
  const concurrency::TransactionManager& txn_manager() const { return txn_mgr_; }

  // Buffer pool every table of this engine pins pages through. Unbounded by
  // default; benches/tests cap it with set_capacity to exercise eviction.
  BufferPool& buffer_pool() { return buffer_pool_; }
  const BufferPool& buffer_pool() const { return buffer_pool_; }

  // Online-repair quarantine gate (DESIGN.md §5g). Consulted on the
  // concurrent statement path after lock planning: statements whose plan
  // touches a quarantined slice — or whose open transaction already pins
  // one — are rejected with a "[quarantine]"-tagged kUnavailable before any
  // lock is acquired. Sessions marked exempt (the repair engine's own
  // connections) bypass the gate.
  concurrency::QuarantineManager& quarantine() { return quarantine_; }
  const concurrency::QuarantineManager& quarantine() const {
    return quarantine_;
  }
  void SetSessionQuarantineExempt(int64_t session_id, bool exempt);

  // Force-aborts open transactions that hold locks overlapping the active
  // quarantine (the gate only catches them on their NEXT statement; an idle
  // transaction would pin its slice and stall the repair's drain forever).
  // Victims are rolled back, their locks released, and their session
  // poisoned with the retryable quarantine status. Sessions currently
  // executing a statement are skipped (best effort — callers retry around
  // the drain). Returns how many transactions were evicted.
  int EvictQuarantinePinnedTxns();

  // Allocates an engine transaction id without a session — the online
  // repair's drain pass uses one to X-lock quarantined slices through the
  // lock manager (txn_manager().Begin/Abort bracket the locks).
  int64_t AllocateTxnId() {
    return next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- key-hash bridge for the quarantine partition (src/repair) ---
  // Hash of `table`'s primary key as assembled from (column, value) pairs,
  // in the exact space PlanStatementLocks uses for key locks. nullopt when
  // the table/index is missing or the pairs don't cover the whole key.
  std::optional<uint64_t> KeyHashForValues(
      const std::string& table,
      const std::vector<std::pair<std::string, Value>>& row_values) const;
  // Primary-key values of the live rows whose row address (hidden rowid,
  // or the `address_column` identity value when the flavor has no rowid)
  // is in `addresses`. Takes the catalog and table latches shared — safe
  // against concurrent traffic. Addresses of deleted rows are simply
  // absent from the result.
  std::vector<std::pair<int64_t, std::vector<std::pair<std::string, Value>>>>
  KeyValuesForRowAddresses(const std::string& table,
                           const std::vector<int64_t>& addresses,
                           const std::string& address_column) const;
  // (table id, primary-key column names) under the catalog latch; nullopt
  // when the table is missing, empty names when it has no primary-key index
  // (key-slicing impossible — callers fall back to whole-table).
  std::optional<std::pair<int32_t, std::vector<std::string>>> TableKeyInfo(
      const std::string& table) const;

  // Baseline mode for bench_concurrency: serializes every statement under
  // one mutex and bypasses the lock manager, reproducing the engine this PR
  // replaced. Setup-only — flip it before concurrent sessions start.
  void set_serial_mode(bool on) { serial_mode_ = on; }
  bool serial_mode() const { return serial_mode_; }

  // Canonical fingerprint of user-visible table contents: rows of each listed
  // table, decoded, sorted, hashed. Hidden rowids and (optionally) named
  // columns are excluded. Quiesced-state only (no latches taken).
  uint64_t StateHash(const std::vector<std::string>& tables,
                     const std::vector<std::string>& exclude_columns = {}) const;

 private:
  struct UndoEntry {
    LogOp op;
    int32_t table_id;
    int32_t page_hint;
    std::string before;  // encoded row (delete/update)
    std::string after;   // encoded row (insert/update)
  };

  struct Session {
    bool in_txn = false;
    int64_t txn_id = 0;
    std::vector<UndoEntry> undo;
    int64_t txn_log_bytes = 0;
    // Set when a deadlock abort rolled back an explicit transaction out
    // from under the client: every statement fails until the client
    // acknowledges with ROLLBACK (or COMMIT, which reports the abort).
    bool poisoned = false;
    // Distinguishes a quarantine-gate abort from a deadlock abort: the
    // poisoned-statement error stays kUnavailable/"[quarantine]" (retryable)
    // instead of the deadlock wording.
    bool quarantine_poisoned = false;
    // Repair-engine connections bypass the quarantine gate (they heal the
    // slices everyone else is fenced away from).
    bool quarantine_exempt = false;
    // Serializes statements of one session (the wire layer already does;
    // this keeps direct multi-threaded use of a session id safe too).
    std::mutex mu;
  };

  // One entry of a statement's pre-declared lock plan.
  struct LockPlanEntry {
    concurrency::ResourceId res;
    concurrency::LockMode mode;
  };

  // Atomic mirrors of DbStats (sessions update them concurrently).
  struct StatCounters {
    std::atomic<int64_t> statements{0};
    std::atomic<int64_t> selects{0};
    std::atomic<int64_t> inserts{0};
    std::atomic<int64_t> updates{0};
    std::atomic<int64_t> deletes{0};
    std::atomic<int64_t> commits{0};
    std::atomic<int64_t> rollbacks{0};
    std::atomic<int64_t> deadlock_aborts{0};
  };

  std::shared_ptr<Session> FindSession(int64_t session_id);

  // Shared statement path; `concurrent` selects 2PL + latches vs the
  // serial-mode baseline (caller already holds serial_mu_ in that case).
  Result<ResultSet> StatementOnSession(Session& s, const sql::Statement& stmt,
                                       bool concurrent);

  Result<ResultSet> Dispatch(Session& s, const sql::Statement& stmt);
  // Dispatch under the catalog latch and per-table latches.
  Result<ResultSet> DispatchConcurrent(Session& s, const sql::Statement& stmt);

  Result<ResultSet> ExecSelect(Session& s, const sql::Statement& stmt);
  Result<ResultSet> ExecInsert(Session& s, const sql::Statement& stmt);
  Result<ResultSet> ExecUpdate(Session& s, const sql::Statement& stmt);
  Result<ResultSet> ExecDelete(Session& s, const sql::Statement& stmt);
  Result<ResultSet> ExecCreateTable(const sql::Statement& stmt);
  Result<ResultSet> ExecDropTable(const sql::Statement& stmt);
  Result<ResultSet> ExecCreateIndex(const sql::Statement& stmt);
  Result<ResultSet> ExecDropIndex(const sql::Statement& stmt);

  // Appends a successful DML/SELECT to the statement journal's pending
  // buffer for the session's open transaction.
  void JournalStmt(Session& s, const sql::Statement& stmt,
                   const ResultSet& result);

  void BeginTxn(Session& s);
  void CommitTxn(Session& s);
  Status RollbackTxn(Session& s);
  // RollbackTxn with the catalog latch and exclusive latches on every table
  // the transaction touched (concurrent-mode physical safety).
  Status RollbackTxnConcurrent(Session& s);

  // --- lock planning (concurrent mode) ---
  // Derives the statement's lock plan from its AST. Called under the shared
  // catalog latch; conservative — anything not provably key-local coarsens
  // to a table lock. Never fails: unresolvable names produce an empty or
  // partial plan and the executor reports the real error.
  void PlanStatementLocks(const sql::Statement& stmt,
                          std::vector<LockPlanEntry>* plan);
  // SELECT leg, defined in select_exec.cc next to the access-path planner
  // it mirrors.
  void PlanSelectLocks(const sql::Statement& stmt,
                       std::vector<LockPlanEntry>* plan);
  // Acquires the plan in deterministic order (tables before keys, ids
  // ascending). On deadlock the transaction keeps already-held locks; the
  // caller rolls back.
  Status AcquirePlanLocks(int64_t txn_id,
                          const std::vector<LockPlanEntry>& plan);
  // FNV hash of a full literal primary key; nullopt when `exprs` are not
  // all literal-evaluable/coercible. `exprs` are in key-column order.
  std::optional<uint64_t> HashKeyLiterals(
      const Schema& schema, const std::vector<int>& key_columns,
      const std::vector<const sql::Expr*>& exprs);

  // Appends a row-op WAL record in the flavor's style and tracks undo info.
  void LogRowOp(Session& s, LogOp op, int32_t table_id, const HeapTable& table,
                RowLoc loc, std::string before, std::string after);

  Result<HeapTable*> RequireTable(const std::string& name);

  // Aggregate-path SELECT executor (GROUP BY / aggregate functions).
  Result<ResultSet> ExecAggregateSelect(
      const sql::Statement& stmt,
      const std::vector<std::pair<HeapTable*, std::string>>& tables);

  // Recursively enumerates the (filtered) cross product of `tables`,
  // invoking `fn` with a complete RowBinding for each surviving tuple.
  // Uses primary-key index prefixes (index nested-loop join) where the WHERE
  // clause provides equality bindings; falls back to page scans.
  Status JoinScan(
      const sql::Statement& stmt,
      const std::vector<std::pair<HeapTable*, std::string>>& tables,
      const std::function<Status(const RowBinding&)>& fn);

  // Single-table row collection for UPDATE/DELETE: locations plus a copy of
  // the row bytes for every row satisfying `where` (index-accelerated).
  Result<std::vector<std::pair<RowLoc, std::string>>> CollectMatching(
      HeapTable* table, int32_t table_id, const std::string& effective_name,
      const sql::Expr* where);

  FlavorTraits traits_;
  BufferPool buffer_pool_;  // declared before catalog_ (tables pin through it)
  Catalog catalog_;
  WalLog wal_;
  StmtJournal stmt_journal_;
  IoModel io_model_;
  StatCounters stats_;

  concurrency::TransactionManager txn_mgr_;
  concurrency::QuarantineManager quarantine_;
  // Guards the catalog map: statements hold it shared while resolving and
  // executing; DDL holds it exclusive. Never held while blocking on a 2PL
  // lock (plan under the latch, release, acquire locks, re-take).
  mutable std::shared_mutex catalog_latch_;

  bool serial_mode_ = false;
  std::mutex serial_mu_;  // the old global mutex, serial mode only

  std::mutex sessions_mu_;
  std::unordered_map<int64_t, std::shared_ptr<Session>> sessions_;
  std::atomic<int64_t> next_session_id_{1};
  std::atomic<int64_t> next_txn_id_{1};
};

}  // namespace irdb
