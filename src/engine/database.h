// The minidb engine: executes SQL text against the catalog/storage layers,
// writes per-row WAL records in the active flavor's style, and supports
// sessions with BEGIN/COMMIT/ROLLBACK (plus autocommit).
//
// Concurrency model: statements execute serially under a global mutex.
// Multiple sessions may hold open transactions, but no isolation between
// them is enforced — the framework's workloads run transactions to
// completion one at a time, matching the paper's single-client-driver setup.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/expr_eval.h"
#include "engine/io_model.h"
#include "engine/result_set.h"
#include "flavor/flavor_traits.h"
#include "sql/ast.h"
#include "storage/catalog.h"
#include "txn/wal_log.h"
#include "util/status.h"

namespace irdb {

struct DbStats {
  int64_t statements = 0;
  int64_t selects = 0;
  int64_t inserts = 0;
  int64_t updates = 0;
  int64_t deletes = 0;
  int64_t commits = 0;
  int64_t rollbacks = 0;
};

class Database {
 public:
  explicit Database(FlavorTraits traits, IoCostParams io_params = {});
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Session lifecycle. Session 0 is pre-opened for convenience.
  int64_t OpenSession();
  void CloseSession(int64_t session_id);

  // Parses and executes one statement.
  Result<ResultSet> Execute(int64_t session_id, std::string_view sql_text);

  // Executes an already-parsed statement (used by tests; the wire path always
  // carries text, as the paper's portability argument requires).
  Result<ResultSet> ExecuteParsed(int64_t session_id, const sql::Statement& stmt);

  const FlavorTraits& traits() const { return traits_; }
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  WalLog& wal() { return wal_; }
  const WalLog& wal() const { return wal_; }
  IoModel& io_model() { return io_model_; }
  const IoModel& io_model() const { return io_model_; }
  const DbStats& stats() const { return stats_; }

  // Canonical fingerprint of user-visible table contents: rows of each listed
  // table, decoded, sorted, hashed. Hidden rowids and (optionally) named
  // columns are excluded. Used by repair-soundness tests and benches.
  uint64_t StateHash(const std::vector<std::string>& tables,
                     const std::vector<std::string>& exclude_columns = {}) const;

 private:
  struct UndoEntry {
    LogOp op;
    int32_t table_id;
    int32_t page_hint;
    std::string before;  // encoded row (delete/update)
    std::string after;   // encoded row (insert/update)
  };

  struct Session {
    bool in_txn = false;
    int64_t txn_id = 0;
    std::vector<UndoEntry> undo;
    int64_t txn_log_bytes = 0;
  };

  Result<ResultSet> Dispatch(Session& s, const sql::Statement& stmt);

  Result<ResultSet> ExecSelect(Session& s, const sql::Statement& stmt);
  Result<ResultSet> ExecInsert(Session& s, const sql::Statement& stmt);
  Result<ResultSet> ExecUpdate(Session& s, const sql::Statement& stmt);
  Result<ResultSet> ExecDelete(Session& s, const sql::Statement& stmt);
  Result<ResultSet> ExecCreateTable(const sql::Statement& stmt);
  Result<ResultSet> ExecDropTable(const sql::Statement& stmt);

  void BeginTxn(Session& s);
  void CommitTxn(Session& s);
  Status RollbackTxn(Session& s);

  // Appends a row-op WAL record in the flavor's style and tracks undo info.
  void LogRowOp(Session& s, LogOp op, int32_t table_id, const HeapTable& table,
                RowLoc loc, std::string before, std::string after);

  Result<HeapTable*> RequireTable(const std::string& name);

  // Aggregate-path SELECT executor (GROUP BY / aggregate functions).
  Result<ResultSet> ExecAggregateSelect(
      const sql::Statement& stmt,
      const std::vector<std::pair<HeapTable*, std::string>>& tables);

  // Recursively enumerates the (filtered) cross product of `tables`,
  // invoking `fn` with a complete RowBinding for each surviving tuple.
  // Uses primary-key index prefixes (index nested-loop join) where the WHERE
  // clause provides equality bindings; falls back to page scans.
  Status JoinScan(
      const sql::Statement& stmt,
      const std::vector<std::pair<HeapTable*, std::string>>& tables,
      const std::function<Status(const RowBinding&)>& fn);

  // Single-table row collection for UPDATE/DELETE: locations plus a copy of
  // the row bytes for every row satisfying `where` (index-accelerated).
  Result<std::vector<std::pair<RowLoc, std::string>>> CollectMatching(
      HeapTable* table, int32_t table_id, const std::string& effective_name,
      const sql::Expr* where);

  FlavorTraits traits_;
  Catalog catalog_;
  WalLog wal_;
  IoModel io_model_;
  DbStats stats_;

  std::mutex mu_;
  std::unordered_map<int64_t, Session> sessions_;
  int64_t next_session_id_ = 1;
  int64_t next_txn_id_ = 1;
};

}  // namespace irdb
