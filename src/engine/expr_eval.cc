#include "engine/expr_eval.h"

#include "util/string_utils.h"

namespace irdb {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::UnaryOp;

Result<Value> RowBinding::ResolveColumn(const std::string& table,
                                        const std::string& column) const {
  const TableBinding* hit = nullptr;
  int hit_col = -1;
  bool hit_rowid = false;
  for (const TableBinding& tb : tables) {
    if (!table.empty() && !EqualsIgnoreCase(tb.effective_name, table)) continue;
    int col = tb.GetSchema().FindColumn(column);
    bool is_rowid = traits != nullptr && traits->has_rowid &&
                    EqualsIgnoreCase(column, traits->rowid_name);
    if (col < 0 && !is_rowid) {
      if (!table.empty()) {
        return Status::InvalidArgument("no column " + column + " in table " + table);
      }
      continue;
    }
    if (hit != nullptr && table.empty()) {
      return Status::InvalidArgument("ambiguous column " + column);
    }
    hit = &tb;
    hit_col = col;
    hit_rowid = col < 0 && is_rowid;
    if (!table.empty()) break;
  }
  if (hit == nullptr) {
    return Status::InvalidArgument("unknown column " +
                                   (table.empty() ? column : table + "." + column));
  }
  if (hit_rowid) {
    return Value::Int(hit->row != nullptr ? hit->row->rowid() : hit->mat->rowid);
  }
  if (hit->row != nullptr) return hit->row->Get(static_cast<size_t>(hit_col));
  return hit->mat->values[static_cast<size_t>(hit_col)];
}

void CollectColumnRefs(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kColumnRef) out->push_back(&e);
  if (e.lhs) CollectColumnRefs(*e.lhs, out);
  if (e.rhs) CollectColumnRefs(*e.rhs, out);
  if (e.low) CollectColumnRefs(*e.low, out);
  if (e.high) CollectColumnRefs(*e.high, out);
  for (const auto& item : e.list) CollectColumnRefs(*item, out);
}

Status ValidateColumnRefs(
    const Expr& e,
    const std::vector<std::pair<const Schema*, std::string>>& scope,
    const FlavorTraits& traits) {
  std::vector<const Expr*> refs;
  CollectColumnRefs(e, &refs);
  for (const Expr* ref : refs) {
    int hits = 0;
    for (const auto& [schema, name] : scope) {
      if (!ref->table.empty() && !EqualsIgnoreCase(name, ref->table)) continue;
      bool has = schema->FindColumn(ref->column) >= 0 ||
                 (traits.has_rowid &&
                  EqualsIgnoreCase(ref->column, traits.rowid_name));
      if (has) ++hits;
    }
    if (hits == 0) {
      return Status::InvalidArgument(
          "unknown column " +
          (ref->table.empty() ? ref->column : ref->table + "." + ref->column));
    }
    if (hits > 1 && ref->table.empty()) {
      return Status::InvalidArgument("ambiguous column " + ref->column);
    }
  }
  return Status::Ok();
}

Result<bool> IsTruthy(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull: return false;
    case ValueType::kInt: return v.as_int() != 0;
    case ValueType::kDouble: return v.as_double() != 0.0;
    case ValueType::kString:
      return Status::InvalidArgument("string used in boolean context");
  }
  return false;
}

bool SqlLike(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer match with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

namespace {

Result<Value> EvalArithmetic(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_numeric() || !b.is_numeric()) {
    return Status::InvalidArgument("arithmetic on non-numeric values");
  }
  const bool ints = a.is_int() && b.is_int();
  switch (op) {
    case BinaryOp::kAdd:
      return ints ? Value::Int(a.as_int() + b.as_int())
                  : Value::Double(a.as_double() + b.as_double());
    case BinaryOp::kSub:
      return ints ? Value::Int(a.as_int() - b.as_int())
                  : Value::Double(a.as_double() - b.as_double());
    case BinaryOp::kMul:
      return ints ? Value::Int(a.as_int() * b.as_int())
                  : Value::Double(a.as_double() * b.as_double());
    case BinaryOp::kDiv:
      if (ints) {
        if (b.as_int() == 0) return Status::InvalidArgument("division by zero");
        return Value::Int(a.as_int() / b.as_int());
      }
      if (b.as_double() == 0.0) return Status::InvalidArgument("division by zero");
      return Value::Double(a.as_double() / b.as_double());
    case BinaryOp::kMod:
      if (!ints) return Status::InvalidArgument("% requires integers");
      if (b.as_int() == 0) return Status::InvalidArgument("modulo by zero");
      return Value::Int(a.as_int() % b.as_int());
    default:
      return Status::Internal("not an arithmetic op");
  }
}

Result<Value> EvalComparison(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (a.is_string() != b.is_string()) {
    return Status::InvalidArgument("comparing string with non-string");
  }
  const int c = a.Compare(b);
  bool r = false;
  switch (op) {
    case BinaryOp::kEq: r = c == 0; break;
    case BinaryOp::kNeq: r = c != 0; break;
    case BinaryOp::kLt: r = c < 0; break;
    case BinaryOp::kLe: r = c <= 0; break;
    case BinaryOp::kGt: r = c > 0; break;
    case BinaryOp::kGe: r = c >= 0; break;
    default: return Status::Internal("not a comparison op");
  }
  return Value::Int(r ? 1 : 0);
}

// Kleene three-valued AND/OR over {false, true, null}.
Result<Value> EvalLogical(BinaryOp op, const Expr& lhs, const Expr& rhs,
                          const RowBinding& binding) {
  IRDB_ASSIGN_OR_RETURN(Value a, Eval(lhs, binding));
  // Short circuit where the result is determined.
  if (!a.is_null()) {
    IRDB_ASSIGN_OR_RETURN(bool at, IsTruthy(a));
    if (op == BinaryOp::kAnd && !at) return Value::Int(0);
    if (op == BinaryOp::kOr && at) return Value::Int(1);
  }
  IRDB_ASSIGN_OR_RETURN(Value b, Eval(rhs, binding));
  if (b.is_null()) {
    if (a.is_null()) return Value::Null();
    // a is the non-determining operand value here.
    return Value::Null();
  }
  IRDB_ASSIGN_OR_RETURN(bool bt, IsTruthy(b));
  if (op == BinaryOp::kAnd) {
    if (!bt) return Value::Int(0);
    return a.is_null() ? Value::Null() : Value::Int(1);
  }
  if (bt) return Value::Int(1);
  return a.is_null() ? Value::Null() : Value::Int(0);
}

}  // namespace

Result<Value> Eval(const Expr& e, const RowBinding& binding) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kColumnRef:
      return binding.ResolveColumn(e.table, e.column);
    case ExprKind::kBinary: {
      switch (e.bin_op) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          return EvalLogical(e.bin_op, *e.lhs, *e.rhs, binding);
        case BinaryOp::kEq: case BinaryOp::kNeq: case BinaryOp::kLt:
        case BinaryOp::kLe: case BinaryOp::kGt: case BinaryOp::kGe: {
          IRDB_ASSIGN_OR_RETURN(Value a, Eval(*e.lhs, binding));
          IRDB_ASSIGN_OR_RETURN(Value b, Eval(*e.rhs, binding));
          return EvalComparison(e.bin_op, a, b);
        }
        case BinaryOp::kLike: {
          IRDB_ASSIGN_OR_RETURN(Value a, Eval(*e.lhs, binding));
          IRDB_ASSIGN_OR_RETURN(Value b, Eval(*e.rhs, binding));
          if (a.is_null() || b.is_null()) return Value::Null();
          if (!a.is_string() || !b.is_string()) {
            return Status::InvalidArgument("LIKE requires strings");
          }
          return Value::Int(SqlLike(a.as_string(), b.as_string()) ? 1 : 0);
        }
        default: {
          IRDB_ASSIGN_OR_RETURN(Value a, Eval(*e.lhs, binding));
          IRDB_ASSIGN_OR_RETURN(Value b, Eval(*e.rhs, binding));
          return EvalArithmetic(e.bin_op, a, b);
        }
      }
    }
    case ExprKind::kUnary: {
      IRDB_ASSIGN_OR_RETURN(Value v, Eval(*e.lhs, binding));
      switch (e.un_op) {
        case UnaryOp::kNot: {
          if (v.is_null()) return Value::Null();
          IRDB_ASSIGN_OR_RETURN(bool t, IsTruthy(v));
          return Value::Int(t ? 0 : 1);
        }
        case UnaryOp::kNeg:
          if (v.is_null()) return Value::Null();
          if (v.is_int()) return Value::Int(-v.as_int());
          if (v.is_double()) return Value::Double(-v.as_double());
          return Status::InvalidArgument("negating non-numeric value");
        case UnaryOp::kIsNull:
          return Value::Int(v.is_null() ? 1 : 0);
        case UnaryOp::kIsNotNull:
          return Value::Int(v.is_null() ? 0 : 1);
      }
      return Status::Internal("bad unary op");
    }
    case ExprKind::kBetween: {
      IRDB_ASSIGN_OR_RETURN(Value v, Eval(*e.lhs, binding));
      IRDB_ASSIGN_OR_RETURN(Value lo, Eval(*e.low, binding));
      IRDB_ASSIGN_OR_RETURN(Value hi, Eval(*e.high, binding));
      IRDB_ASSIGN_OR_RETURN(Value ge, EvalComparison(BinaryOp::kGe, v, lo));
      IRDB_ASSIGN_OR_RETURN(Value le, EvalComparison(BinaryOp::kLe, v, hi));
      if (ge.is_null() || le.is_null()) return Value::Null();
      return Value::Int(ge.as_int() != 0 && le.as_int() != 0 ? 1 : 0);
    }
    case ExprKind::kInList: {
      IRDB_ASSIGN_OR_RETURN(Value v, Eval(*e.lhs, binding));
      if (v.is_null()) return Value::Null();
      bool saw_null = false;
      for (const auto& item : e.list) {
        IRDB_ASSIGN_OR_RETURN(Value w, Eval(*item, binding));
        if (w.is_null()) {
          saw_null = true;
          continue;
        }
        IRDB_ASSIGN_OR_RETURN(Value eq, EvalComparison(BinaryOp::kEq, v, w));
        if (!eq.is_null() && eq.as_int() != 0) return Value::Int(1);
      }
      return saw_null ? Value::Null() : Value::Int(0);
    }
    case ExprKind::kFuncCall: {
      if (binding.aggregates != nullptr) {
        auto it = binding.aggregates->find(&e);
        if (it != binding.aggregates->end()) return it->second;
      }
      return Status::InvalidArgument("aggregate " + e.func_name +
                                     " outside aggregate context");
    }
  }
  return Status::Internal("bad expression kind");
}

}  // namespace irdb
