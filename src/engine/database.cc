#include "engine/database.h"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "obs/catalog.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "util/failpoint.h"
#include "util/string_utils.h"

namespace irdb {

namespace {

Status PoisonedTxnError() {
  return Status::FailedPrecondition(
      "transaction aborted by deadlock; issue ROLLBACK before continuing");
}

// Retryable, like the gate rejection itself: the client backs off and
// re-runs the transaction once the slice is released.
Status QuarantinePoisonedError() {
  return Status::Unavailable(
      std::string(kQuarantineTag) +
      " transaction was rolled back by online repair; issue ROLLBACK and "
      "retry after release");
}

// True if the expression reads any column (i.e. is not evaluable against an
// empty binding). Used by the lock planner to decide whether a key value is
// known before execution.
bool ExprHasColumnRef(const sql::Expr& e) {
  if (e.kind == sql::ExprKind::kColumnRef) return true;
  if (e.lhs && ExprHasColumnRef(*e.lhs)) return true;
  if (e.rhs && ExprHasColumnRef(*e.rhs)) return true;
  if (e.low && ExprHasColumnRef(*e.low)) return true;
  if (e.high && ExprHasColumnRef(*e.high)) return true;
  for (const auto& child : e.list) {
    if (child && ExprHasColumnRef(*child)) return true;
  }
  return false;
}

// Collects `col = <column-free expr>` bindings from the AND-conjuncts of
// `where`, keyed by lower-cased column name. Qualifiers that name another
// table disqualify the conjunct; the first binding per column wins.
void CollectKeyEqExprs(
    const sql::Expr* where, const std::string& table_name,
    std::unordered_map<std::string, const sql::Expr*>* out) {
  if (where == nullptr || where->kind != sql::ExprKind::kBinary) return;
  if (where->bin_op == sql::BinaryOp::kAnd) {
    CollectKeyEqExprs(where->lhs.get(), table_name, out);
    CollectKeyEqExprs(where->rhs.get(), table_name, out);
    return;
  }
  if (where->bin_op != sql::BinaryOp::kEq) return;
  const sql::Expr* col = nullptr;
  const sql::Expr* val = nullptr;
  for (int flip = 0; flip < 2; ++flip) {
    const sql::Expr* a = flip == 0 ? where->lhs.get() : where->rhs.get();
    const sql::Expr* b = flip == 0 ? where->rhs.get() : where->lhs.get();
    if (a != nullptr && a->kind == sql::ExprKind::kColumnRef && b != nullptr &&
        !ExprHasColumnRef(*b)) {
      col = a;
      val = b;
      break;
    }
  }
  if (col == nullptr) return;
  if (!col->table.empty() && !EqualsIgnoreCase(col->table, table_name)) return;
  out->emplace(ToLowerAscii(col->column), val);
}

}  // namespace

Database::Database(FlavorTraits traits, IoCostParams io_params)
    : traits_(std::move(traits)), io_model_(io_params) {
  catalog_.AttachBufferPool(&buffer_pool_);
  sessions_[0] = std::make_shared<Session>();  // convenience session
}

Database::~Database() = default;

int64_t Database::OpenSession() {
  const int64_t id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_[id] = std::make_shared<Session>();
  return id;
}

void Database::CloseSession(int64_t session_id) {
  std::shared_ptr<Session> sp;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) return;
    sp = it->second;
    sessions_.erase(it);
  }
  if (serial_mode_) {
    std::lock_guard<std::mutex> global(serial_mu_);
    if (sp->in_txn) (void)RollbackTxn(*sp);  // abandon open work
    return;
  }
  std::lock_guard<std::mutex> session_lock(sp->mu);
  if (sp->in_txn) {
    (void)RollbackTxnConcurrent(*sp);
    txn_mgr_.Abort(sp->txn_id);
  }
  sp->poisoned = false;
  sp->quarantine_poisoned = false;
}

std::shared_ptr<Database::Session> Database::FindSession(int64_t session_id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : it->second;
}

Result<ResultSet> Database::Execute(int64_t session_id, std::string_view sql_text) {
  auto parsed = sql::Parse(sql_text);
  if (!parsed.ok()) return parsed.status();
  return ExecuteParsed(session_id, **parsed);
}

Result<ResultSet> Database::ExecuteParsed(int64_t session_id,
                                          const sql::Statement& stmt) {
  // Injected before any state change: a triggered fault behaves like a
  // statement that never arrived, so retrying it is always safe.
  if (fail::Triggered("engine.execute")) return fail::Inject("engine.execute");
  std::shared_ptr<Session> sp = FindSession(session_id);
  if (sp == nullptr) {
    return Status::InvalidArgument("unknown session " + std::to_string(session_id));
  }
  if (serial_mode_) {
    std::lock_guard<std::mutex> global(serial_mu_);
    return StatementOnSession(*sp, stmt, /*concurrent=*/false);
  }
  std::lock_guard<std::mutex> session_lock(sp->mu);
  return StatementOnSession(*sp, stmt, /*concurrent=*/true);
}

Result<ResultSet> Database::StatementOnSession(Session& s,
                                               const sql::Statement& stmt,
                                               bool concurrent) {
  stats_.statements.fetch_add(1, std::memory_order_relaxed);
  io_model_.AccountStatement();

  switch (stmt.kind) {
    case sql::StatementKind::kBegin:
      if (s.in_txn) return Status::FailedPrecondition("transaction already open");
      s.poisoned = false;  // starting fresh acknowledges a prior abort
      s.quarantine_poisoned = false;
      BeginTxn(s);
      if (concurrent) txn_mgr_.Begin(s.txn_id);
      return ResultSet{};
    case sql::StatementKind::kCommit: {
      if (s.poisoned) {
        // The transaction is already gone; report the abort once.
        s.poisoned = false;
        if (s.quarantine_poisoned) {
          s.quarantine_poisoned = false;
          return QuarantinePoisonedError();
        }
        return Status::Aborted(
            "[deadlock] transaction was aborted by deadlock and rolled back");
      }
      if (!s.in_txn) return Status::FailedPrecondition("no open transaction");
      CommitTxn(s);
      if (concurrent) txn_mgr_.Commit(s.txn_id);
      return ResultSet{};
    }
    case sql::StatementKind::kRollback: {
      if (s.poisoned) {
        s.poisoned = false;  // acknowledged; nothing left to undo
        s.quarantine_poisoned = false;
        return ResultSet{};
      }
      if (!s.in_txn) return Status::FailedPrecondition("no open transaction");
      Status rb = concurrent ? RollbackTxnConcurrent(s) : RollbackTxn(s);
      if (concurrent) txn_mgr_.Abort(s.txn_id);
      IRDB_RETURN_IF_ERROR(rb);
      return ResultSet{};
    }
    case sql::StatementKind::kCreateTable:
      if (s.poisoned) {
        return s.quarantine_poisoned ? QuarantinePoisonedError()
                                     : PoisonedTxnError();
      }
      if (concurrent) {
        std::unique_lock<std::shared_mutex> ddl(catalog_latch_);
        return ExecCreateTable(stmt);
      }
      return ExecCreateTable(stmt);
    case sql::StatementKind::kDropTable:
      if (s.poisoned) {
        return s.quarantine_poisoned ? QuarantinePoisonedError()
                                     : PoisonedTxnError();
      }
      if (concurrent) {
        std::unique_lock<std::shared_mutex> ddl(catalog_latch_);
        // DDL bypasses the lock planner, so the quarantine gate is applied
        // here: dropping a table with fenced slices would yank storage out
        // from under the repair's compensation lanes.
        if (quarantine_.active() && !s.quarantine_exempt) {
          auto id = catalog_.TableId(stmt.table);
          if (id.ok() &&
              quarantine_.Blocks(concurrency::ResourceId::Table(*id),
                                 concurrency::LockMode::kExclusive)) {
            quarantine_.CountReject();
            return Status::Unavailable(
                std::string(kQuarantineTag) +
                " table quarantined by online repair; retry after release");
          }
        }
        return ExecDropTable(stmt);
      }
      return ExecDropTable(stmt);
    case sql::StatementKind::kCreateIndex:
    case sql::StatementKind::kDropIndex: {
      if (s.poisoned) {
        return s.quarantine_poisoned ? QuarantinePoisonedError()
                                     : PoisonedTxnError();
      }
      auto exec = [&]() -> Result<ResultSet> {
        return stmt.kind == sql::StatementKind::kCreateIndex
                   ? ExecCreateIndex(stmt)
                   : ExecDropIndex(stmt);
      };
      if (!concurrent) return exec();
      std::unique_lock<std::shared_mutex> ddl(catalog_latch_);
      // Same gate as DROP TABLE: index DDL rewrites table metadata the
      // repair's compensation lanes may be standing on.
      if (quarantine_.active() && !s.quarantine_exempt) {
        const HeapTable* owner =
            stmt.kind == sql::StatementKind::kCreateIndex
                ? catalog_.Find(stmt.table)
                : catalog_.FindTableOfIndex(stmt.index_name);
        if (owner != nullptr) {
          auto id = catalog_.TableId(owner->name());
          if (id.ok() &&
              quarantine_.Blocks(concurrency::ResourceId::Table(*id),
                                 concurrency::LockMode::kExclusive)) {
            quarantine_.CountReject();
            return Status::Unavailable(
                std::string(kQuarantineTag) +
                " table quarantined by online repair; retry after release");
          }
        }
      }
      return exec();
    }
    default:
      break;
  }

  if (s.poisoned) {
    return s.quarantine_poisoned ? QuarantinePoisonedError()
                                 : PoisonedTxnError();
  }

  // DML / SELECT: autocommit when no transaction is open.
  const bool autocommit = !s.in_txn;

  if (!concurrent) {
    if (autocommit) BeginTxn(s);
    Result<ResultSet> result = Dispatch(s, stmt);
    if (result.ok()) {
      JournalStmt(s, stmt, *result);
      if (autocommit) CommitTxn(s);
      return result;
    }
    // A failed statement aborts the enclosing transaction (statement-level
    // atomicity is not implemented; the whole transaction is undone instead,
    // like PostgreSQL's abort-until-rollback behaviour collapsed into one
    // step).
    (void)RollbackTxn(s);
    return result;
  }

  // Concurrent path: derive the lock plan under the shared catalog latch,
  // release it, then block on the 2PL locks (never wait on a lock while
  // holding any latch), then execute under per-table latches.
  std::vector<LockPlanEntry> plan;
  {
    std::shared_lock<std::shared_mutex> cat(catalog_latch_);
    PlanStatementLocks(stmt, &plan);
  }
  // Quarantine gate (DESIGN.md §5g): while an online repair holds a
  // quarantine, statements whose lock plan touches a fenced slice are
  // rejected with a retryable, "[quarantine]"-tagged kUnavailable before
  // acquiring any lock. A session whose OPEN transaction already pins a
  // quarantined slice is aborted outright — letting it continue could
  // deadlock the repair's drain pass against locks the gate would never
  // let the session extend past.
  if (quarantine_.active() && !s.quarantine_exempt) {
    bool blocked = false;
    for (const LockPlanEntry& e : plan) {
      if (quarantine_.Blocks(e.res, e.mode)) {
        blocked = true;
        break;
      }
    }
    if (!blocked && s.in_txn &&
        quarantine_.HoldsOverlapping(txn_mgr_.locks(), s.txn_id)) {
      blocked = true;
    }
    if (blocked) {
      quarantine_.CountReject();
      if (s.in_txn) {
        Status rb = RollbackTxnConcurrent(s);
        txn_mgr_.Abort(s.txn_id);
        s.poisoned = true;
        s.quarantine_poisoned = true;
        IRDB_RETURN_IF_ERROR(rb);
      }
      return Status::Unavailable(
          std::string(kQuarantineTag) +
          " slice quarantined by online repair; retry after release");
    }
  }
  if (autocommit) {
    BeginTxn(s);
    txn_mgr_.Begin(s.txn_id);
  }
  if (Status locked = AcquirePlanLocks(s.txn_id, plan); !locked.ok()) {
    // This transaction is the deadlock victim: undo everything it has done
    // (no effects from *this* statement exist yet — locks come first),
    // release its locks, and surface the tagged abort. For autocommit the
    // statement was the whole transaction, so retrying it is safe and the
    // tag is widened to the retryable form; an explicit transaction's
    // client must acknowledge the abort with ROLLBACK before continuing.
    stats_.deadlock_aborts.fetch_add(1, std::memory_order_relaxed);
    Status rb = RollbackTxnConcurrent(s);
    txn_mgr_.Abort(s.txn_id);
    IRDB_RETURN_IF_ERROR(rb);
    if (autocommit) {
      return Status::Aborted(std::string(kRetryableAbortTag) + " " +
                             locked.message());
    }
    s.poisoned = true;
    return locked;
  }
  Result<ResultSet> result = DispatchConcurrent(s, stmt);
  if (result.ok()) {
    JournalStmt(s, stmt, *result);
    if (autocommit) {
      CommitTxn(s);
      txn_mgr_.Commit(s.txn_id);
    }
    return result;
  }
  (void)RollbackTxnConcurrent(s);
  txn_mgr_.Abort(s.txn_id);
  return result;
}

Result<ResultSet> Database::Dispatch(Session& s, const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::StatementKind::kSelect:
      stats_.selects.fetch_add(1, std::memory_order_relaxed);
      return ExecSelect(s, stmt);
    case sql::StatementKind::kInsert:
      stats_.inserts.fetch_add(1, std::memory_order_relaxed);
      return ExecInsert(s, stmt);
    case sql::StatementKind::kUpdate:
      stats_.updates.fetch_add(1, std::memory_order_relaxed);
      return ExecUpdate(s, stmt);
    case sql::StatementKind::kDelete:
      stats_.deletes.fetch_add(1, std::memory_order_relaxed);
      return ExecDelete(s, stmt);
    default:
      return Status::Internal("Dispatch: unexpected statement kind");
  }
}

Result<ResultSet> Database::DispatchConcurrent(Session& s,
                                               const sql::Statement& stmt) {
  std::shared_lock<std::shared_mutex> cat(catalog_latch_);
  if (stmt.kind == sql::StatementKind::kSelect) {
    // Shared latches on every resolvable FROM table, in table-id order.
    std::vector<std::pair<int32_t, HeapTable*>> tabs;
    for (const sql::TableRef& tr : stmt.from) {
      HeapTable* t = catalog_.Find(tr.name);
      if (t == nullptr) continue;  // executor reports the missing table
      auto id = catalog_.TableId(tr.name);
      if (id.ok()) tabs.emplace_back(*id, t);
    }
    std::sort(tabs.begin(), tabs.end());
    tabs.erase(std::unique(tabs.begin(), tabs.end()), tabs.end());
    std::vector<std::shared_lock<std::shared_mutex>> latches;
    latches.reserve(tabs.size());
    for (auto& [id, t] : tabs) latches.emplace_back(t->latch());
    return Dispatch(s, stmt);
  }
  // DML targets one table: exclusive latch for the statement's duration.
  HeapTable* t = catalog_.Find(stmt.table);
  if (t == nullptr) return Dispatch(s, stmt);  // error path
  std::unique_lock<std::shared_mutex> latch(t->latch());
  return Dispatch(s, stmt);
}

Result<HeapTable*> Database::RequireTable(const std::string& name) {
  HeapTable* t = catalog_.Find(name);
  if (t == nullptr) return Status::NotFound("no table named " + name);
  return t;
}

DbStats Database::stats() const {
  DbStats d;
  d.statements = stats_.statements.load(std::memory_order_relaxed);
  d.selects = stats_.selects.load(std::memory_order_relaxed);
  d.inserts = stats_.inserts.load(std::memory_order_relaxed);
  d.updates = stats_.updates.load(std::memory_order_relaxed);
  d.deletes = stats_.deletes.load(std::memory_order_relaxed);
  d.commits = stats_.commits.load(std::memory_order_relaxed);
  d.rollbacks = stats_.rollbacks.load(std::memory_order_relaxed);
  d.deadlock_aborts = stats_.deadlock_aborts.load(std::memory_order_relaxed);
  return d;
}

// ------------------------------------------------------------ lock planning

void Database::PlanStatementLocks(const sql::Statement& stmt,
                                  std::vector<LockPlanEntry>* plan) {
  using concurrency::LockMode;
  using concurrency::ResourceId;

  const auto coarse = [&](int32_t table_id, LockMode mode) {
    plan->clear();
    plan->push_back({ResourceId::Table(table_id), mode});
  };

  switch (stmt.kind) {
    case sql::StatementKind::kSelect:
      PlanSelectLocks(stmt, plan);
      return;

    case sql::StatementKind::kInsert: {
      auto id = catalog_.TableId(stmt.table);
      HeapTable* table = catalog_.Find(stmt.table);
      if (!id.ok() || table == nullptr) return;  // executor reports
      const Schema& schema = table->schema();
      const TableIndex* index = table->index();
      plan->push_back({ResourceId::Table(*id), LockMode::kIntentionExclusive});
      if (index == nullptr) return;  // appends under IX; no keys to name

      // Map provided values to column indices (mirrors ExecInsert).
      std::vector<int> target_cols;
      if (stmt.insert_columns.empty()) {
        for (size_t i = 0; i < schema.num_columns(); ++i) {
          target_cols.push_back(static_cast<int>(i));
        }
      } else {
        for (const std::string& name : stmt.insert_columns) {
          const int idx = schema.FindColumn(name);
          if (idx < 0) return;  // executor reports
          target_cols.push_back(idx);
        }
      }
      for (const auto& value_exprs : stmt.insert_rows) {
        std::vector<const sql::Expr*> key_exprs;
        for (int kc : index->key_columns()) {
          const sql::Expr* e = nullptr;
          for (size_t j = 0; j < target_cols.size(); ++j) {
            if (target_cols[j] == kc && j < value_exprs.size()) {
              e = value_exprs[j].get();
              break;
            }
          }
          key_exprs.push_back(e);  // nullptr → identity/default-assigned
        }
        auto h = HashKeyLiterals(schema, index->key_columns(), key_exprs);
        if (!h.has_value()) {
          // Key not known before execution (identity column, expression):
          // coarsen to table X so no reader can miss the new row.
          coarse(*id, LockMode::kExclusive);
          return;
        }
        plan->push_back({ResourceId::Key(*id, *h), LockMode::kExclusive});
      }
      return;
    }

    case sql::StatementKind::kUpdate:
    case sql::StatementKind::kDelete: {
      auto id = catalog_.TableId(stmt.table);
      HeapTable* table = catalog_.Find(stmt.table);
      if (!id.ok() || table == nullptr) return;
      const Schema& schema = table->schema();
      const TableIndex* index = table->index();
      if (index == nullptr) {
        coarse(*id, concurrency::LockMode::kExclusive);
        return;
      }
      // An UPDATE that assigns a key column would change the row's lock
      // name mid-transaction; coarsen to table X.
      for (const auto& [name, expr] : stmt.assignments) {
        (void)expr;
        for (int kc : index->key_columns()) {
          if (EqualsIgnoreCase(schema.column(static_cast<size_t>(kc)).name,
                               name)) {
            coarse(*id, LockMode::kExclusive);
            return;
          }
        }
      }
      std::unordered_map<std::string, const sql::Expr*> eq;
      CollectKeyEqExprs(stmt.where.get(), stmt.table, &eq);
      std::vector<const sql::Expr*> key_exprs;
      for (int kc : index->key_columns()) {
        auto it = eq.find(
            ToLowerAscii(schema.column(static_cast<size_t>(kc)).name));
        key_exprs.push_back(it == eq.end() ? nullptr : it->second);
      }
      auto h = HashKeyLiterals(schema, index->key_columns(), key_exprs);
      if (!h.has_value()) {
        coarse(*id, LockMode::kExclusive);  // predicate not key-local
        return;
      }
      plan->push_back({ResourceId::Table(*id), LockMode::kIntentionExclusive});
      plan->push_back({ResourceId::Key(*id, *h), LockMode::kExclusive});
      return;
    }

    default:
      return;  // txn control & DDL handled elsewhere
  }
}

std::optional<uint64_t> Database::HashKeyLiterals(
    const Schema& schema, const std::vector<int>& key_columns,
    const std::vector<const sql::Expr*>& exprs) {
  if (exprs.size() != key_columns.size()) return std::nullopt;
  RowBinding empty_binding;
  empty_binding.traits = &traits_;
  std::string repr;
  for (size_t i = 0; i < exprs.size(); ++i) {
    const sql::Expr* e = exprs[i];
    if (e == nullptr || ExprHasColumnRef(*e)) return std::nullopt;
    auto v = Eval(*e, empty_binding);
    if (!v.ok()) return std::nullopt;
    auto coerced =
        schema.CoerceForColumn(static_cast<size_t>(key_columns[i]), *v);
    if (!coerced.ok()) return std::nullopt;
    coerced->AppendTo(&repr);
  }
  return Fnv1a(repr);
}

Status Database::AcquirePlanLocks(int64_t txn_id,
                                  const std::vector<LockPlanEntry>& plan) {
  // Deterministic global order (tables before their keys, ids ascending)
  // keeps single-statement plans deadlock-free against each other; cycles
  // can only come from multi-statement transactions, which is what the
  // waits-for detector is for. Duplicate resources merge to the supremum.
  std::vector<LockPlanEntry> sorted = plan;
  std::sort(sorted.begin(), sorted.end(),
            [](const LockPlanEntry& a, const LockPlanEntry& b) {
              if (a.res.table_id != b.res.table_id) {
                return a.res.table_id < b.res.table_id;
              }
              return a.res.key_hash < b.res.key_hash;
            });
  size_t out = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (out > 0 && sorted[out - 1].res == sorted[i].res) {
      sorted[out - 1].mode =
          concurrency::LockSupremum(sorted[out - 1].mode, sorted[i].mode);
    } else {
      sorted[out++] = sorted[i];
    }
  }
  sorted.resize(out);
  for (const LockPlanEntry& e : sorted) {
    IRDB_RETURN_IF_ERROR(txn_mgr_.locks().Acquire(txn_id, e.res, e.mode));
  }
  return Status::Ok();
}

// ------------------------------------------------------------------ txn ctl

void Database::JournalStmt(Session& s, const sql::Statement& stmt,
                           const ResultSet& result) {
  StmtRecord rec;
  rec.is_select = stmt.kind == sql::StatementKind::kSelect;
  rec.text = sql::PrintStatement(stmt);
  rec.rows_returned = static_cast<int64_t>(result.rows.size());
  rec.rows_affected = result.affected;
  stmt_journal_.Record(s.txn_id, std::move(rec));
}

void Database::BeginTxn(Session& s) {
  s.in_txn = true;
  s.txn_id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  s.undo.clear();
  s.txn_log_bytes = 0;
  LogRecord rec;
  rec.txn_id = s.txn_id;
  rec.op = LogOp::kBegin;
  wal_.Append(std::move(rec));
}

void Database::CommitTxn(Session& s) {
  LogRecord rec;
  rec.txn_id = s.txn_id;
  rec.op = LogOp::kCommit;
  s.txn_log_bytes += rec.ByteSize();
  wal_.Append(std::move(rec));
  // Read-only transactions have nothing to make durable — no flush.
  if (!s.undo.empty()) {
    io_model_.AccountLogFlush(s.txn_log_bytes);
    wal_.AccountBytes(s.txn_log_bytes);
    obs::Count(obs::Metrics::Get().wal_fsyncs);
    obs::Count(obs::Metrics::Get().wal_fsync_bytes, s.txn_log_bytes);
  }
  s.in_txn = false;
  s.undo.clear();
  stmt_journal_.Seal(s.txn_id);
  stats_.commits.fetch_add(1, std::memory_order_relaxed);
  obs::Count(obs::Metrics::Get().txn_commits);
}

namespace {

// Locates a row by exact byte equality, preferring `page_hint`.
// Returns {-1,-1} when absent.
RowLoc FindRowByBytes(const HeapTable& table, int32_t page_hint,
                      std::string_view bytes) {
  auto search_page = [&](int p) -> int {
    const Page* page = table.GetPage(p);
    if (page == nullptr) return -1;
    for (int s = 0; s < page->slot_count(); ++s) {
      if (page->SlotLive(s) && page->RowAt(s) == bytes) return s;
    }
    return -1;
  };
  if (page_hint >= 0) {
    int slot = search_page(page_hint);
    if (slot >= 0) return RowLoc{page_hint, slot};
  }
  for (int p = 0; p < table.page_count(); ++p) {
    if (p == page_hint) continue;
    int slot = search_page(p);
    if (slot >= 0) return RowLoc{p, slot};
  }
  return RowLoc{-1, -1};
}

}  // namespace

Status Database::RollbackTxn(Session& s) {
  // Physically revert this transaction's changes, newest first. Rows are
  // relocated by byte equality (they only move within their page, and only
  // on DELETE compaction).
  for (auto it = s.undo.rbegin(); it != s.undo.rend(); ++it) {
    HeapTable* table = catalog_.FindById(it->table_id);
    if (table == nullptr) {
      return Status::Internal("rollback: table vanished");
    }
    // Each physical undo step writes a compensation record (CLR) so that
    // replaying the full WAL at recovery reproduces the page layout exactly.
    LogRecord clr;
    clr.txn_id = s.txn_id;
    clr.table_id = it->table_id;
    clr.len = table->schema().row_size();
    clr.is_clr = true;
    switch (it->op) {
      case LogOp::kInsert: {
        RowLoc loc = FindRowByBytes(*table, it->page_hint, it->after);
        if (loc.page < 0) return Status::Internal("rollback: inserted row missing");
        clr.op = LogOp::kDelete;
        clr.page = loc.page;
        clr.offset = table->OffsetOf(loc);
        clr.before_image = it->after;
        table->DeleteAt(loc);
        break;
      }
      case LogOp::kDelete: {
        RowLoc loc = table->Insert(it->before);
        clr.op = LogOp::kInsert;
        clr.page = loc.page;
        clr.offset = table->OffsetOf(loc);
        clr.after_image = it->before;
        break;
      }
      case LogOp::kUpdate: {
        RowLoc loc = FindRowByBytes(*table, it->page_hint, it->after);
        if (loc.page < 0) return Status::Internal("rollback: updated row missing");
        clr.op = LogOp::kUpdate;
        clr.page = loc.page;
        clr.offset = table->OffsetOf(loc);
        clr.before_image = it->after;
        clr.after_image = it->before;
        table->UpdateAt(loc, it->before);
        break;
      }
      default:
        return Status::Internal("rollback: bad undo op");
    }
    wal_.Append(std::move(clr));
  }
  LogRecord rec;
  rec.txn_id = s.txn_id;
  rec.op = LogOp::kAbort;
  wal_.Append(std::move(rec));
  s.in_txn = false;
  s.undo.clear();
  stmt_journal_.Discard(s.txn_id);
  stats_.rollbacks.fetch_add(1, std::memory_order_relaxed);
  obs::Count(obs::Metrics::Get().txn_aborts);
  return Status::Ok();
}

Status Database::RollbackTxnConcurrent(Session& s) {
  // The transaction's 2PL locks still cover every row it wrote; latches
  // make the physical page edits safe against readers of those tables.
  std::shared_lock<std::shared_mutex> cat(catalog_latch_);
  std::vector<int32_t> ids;
  ids.reserve(s.undo.size());
  for (const UndoEntry& ue : s.undo) ids.push_back(ue.table_id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  std::vector<std::unique_lock<std::shared_mutex>> latches;
  latches.reserve(ids.size());
  for (int32_t id : ids) {
    HeapTable* t = catalog_.FindById(id);
    if (t != nullptr) latches.emplace_back(t->latch());
  }
  return RollbackTxn(s);
}

void Database::LogRowOp(Session& s, LogOp op, int32_t table_id,
                        const HeapTable& table, RowLoc loc, std::string before,
                        std::string after) {
  LogRecord rec;
  rec.txn_id = s.txn_id;
  rec.op = op;
  rec.table_id = table_id;
  rec.page = loc.page;
  rec.offset = table.OffsetOf(loc);
  rec.len = table.schema().row_size();

  UndoEntry undo;
  undo.op = op;
  undo.table_id = table_id;
  undo.page_hint = loc.page;
  undo.before = before;
  undo.after = after;
  s.undo.push_back(std::move(undo));

  if (op == LogOp::kUpdate && traits_.diff_update_log) {
    // Sybase MODIFY: log only the changed column slots.
    const Schema& schema = table.schema();
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      const size_t off = static_cast<size_t>(schema.ColumnOffset(i));
      const size_t sz = static_cast<size_t>(schema.column(i).EncodedSize());
      std::string_view b = std::string_view(before).substr(off, sz);
      std::string_view a = std::string_view(after).substr(off, sz);
      if (b != a) {
        rec.diff.push_back(ColumnDiff{static_cast<int32_t>(i),
                                      std::string(b), std::string(a)});
      }
    }
  } else {
    if (op != LogOp::kInsert) rec.before_image = std::move(before);
    if (op != LogOp::kDelete) rec.after_image = std::move(after);
  }
  s.txn_log_bytes += rec.ByteSize();
  wal_.Append(std::move(rec));
}

// --------------------------------------------------------------------- DDL

Result<ResultSet> Database::ExecCreateTable(const sql::Statement& stmt) {
  std::vector<Column> cols;
  cols.reserve(stmt.columns.size());
  for (const sql::ColumnDef& def : stmt.columns) {
    if (traits_.has_rowid && EqualsIgnoreCase(def.name, traits_.rowid_name)) {
      return Status::InvalidArgument("column name " + def.name +
                                     " collides with the rowid pseudo-column");
    }
    for (const Column& existing : cols) {
      if (EqualsIgnoreCase(existing.name, def.name)) {
        return Status::InvalidArgument("duplicate column " + def.name);
      }
    }
    Column c;
    c.name = def.name;
    switch (def.type) {
      case sql::ColumnTypeKind::kInt: c.type = ValueType::kInt; break;
      case sql::ColumnTypeKind::kDouble: c.type = ValueType::kDouble; break;
      case sql::ColumnTypeKind::kVarchar:
      case sql::ColumnTypeKind::kChar:
        c.type = ValueType::kString;
        c.length = def.length;
        break;
    }
    c.not_null = def.not_null;
    c.identity = def.identity;
    if (c.identity && c.type != ValueType::kInt) {
      return Status::InvalidArgument("IDENTITY column must be INTEGER");
    }
    cols.push_back(std::move(c));
  }
  if (cols.empty()) return Status::InvalidArgument("table needs columns");
  Schema schema(std::move(cols), traits_.has_rowid);

  // PRIMARY KEY installs an equality-prefix index (uniqueness itself is not
  // enforced — the framework's workloads are key-disciplined, and neither
  // were the paper's TPC-C kits relying on engine-side checks).
  std::vector<int> key_columns;
  for (const std::string& pk : stmt.primary_key) {
    int idx = schema.FindColumn(pk);
    if (idx < 0) {
      return Status::InvalidArgument("PRIMARY KEY column " + pk + " undefined");
    }
    key_columns.push_back(idx);
  }

  auto created = catalog_.CreateTable(stmt.table, std::move(schema));
  if (!created.ok()) return created.status();
  if (!key_columns.empty()) (*created)->SetPrimaryIndex(std::move(key_columns));

  LogRecord rec;
  rec.op = LogOp::kDdl;
  rec.ddl_text = sql::PrintStatement(stmt);
  wal_.Append(std::move(rec));
  return ResultSet{};
}

Result<ResultSet> Database::ExecDropTable(const sql::Statement& stmt) {
  IRDB_RETURN_IF_ERROR(catalog_.DropTable(stmt.table));
  LogRecord rec;
  rec.op = LogOp::kDdl;
  rec.ddl_text = sql::PrintStatement(stmt);
  wal_.Append(std::move(rec));
  return ResultSet{};
}

Result<ResultSet> Database::ExecCreateIndex(const sql::Statement& stmt) {
  IRDB_ASSIGN_OR_RETURN(HeapTable* table, RequireTable(stmt.table));
  std::vector<int> key_columns;
  key_columns.reserve(stmt.index_columns.size());
  for (const std::string& col : stmt.index_columns) {
    int idx = table->schema().FindColumn(col);
    if (idx < 0) {
      return Status::InvalidArgument("CREATE INDEX: no column " + col + " in " +
                                     stmt.table);
    }
    key_columns.push_back(idx);
  }
  if (key_columns.empty()) {
    return Status::InvalidArgument("CREATE INDEX needs at least one column");
  }
  if (catalog_.FindTableOfIndex(stmt.index_name) != nullptr) {
    return Status::AlreadyExists("index " + stmt.index_name + " already exists");
  }
  IRDB_RETURN_IF_ERROR(
      table->AddSecondaryIndex(stmt.index_name, std::move(key_columns)));
  LogRecord rec;
  rec.op = LogOp::kDdl;
  rec.ddl_text = sql::PrintStatement(stmt);
  wal_.Append(std::move(rec));
  return ResultSet{};
}

Result<ResultSet> Database::ExecDropIndex(const sql::Statement& stmt) {
  HeapTable* table = catalog_.FindTableOfIndex(stmt.index_name);
  if (table == nullptr) {
    return Status::NotFound("no index named " + stmt.index_name);
  }
  IRDB_CHECK(table->DropSecondaryIndex(stmt.index_name));
  LogRecord rec;
  rec.op = LogOp::kDdl;
  rec.ddl_text = sql::PrintStatement(stmt);
  wal_.Append(std::move(rec));
  return ResultSet{};
}

// --------------------------------------------------------------------- DML

Result<ResultSet> Database::ExecInsert(Session& s, const sql::Statement& stmt) {
  IRDB_ASSIGN_OR_RETURN(HeapTable* table, RequireTable(stmt.table));
  IRDB_ASSIGN_OR_RETURN(int32_t table_id, catalog_.TableId(stmt.table));
  const Schema& schema = table->schema();
  const size_t ncols = schema.num_columns();

  // Map provided values to column indices.
  std::vector<int> target_cols;
  if (stmt.insert_columns.empty()) {
    for (size_t i = 0; i < ncols; ++i) target_cols.push_back(static_cast<int>(i));
  } else {
    for (const std::string& name : stmt.insert_columns) {
      int idx = schema.FindColumn(name);
      if (idx < 0) {
        return Status::InvalidArgument("INSERT: no column " + name + " in " +
                                       stmt.table);
      }
      target_cols.push_back(idx);
    }
  }

  ResultSet rs;
  RowBinding empty_binding;
  empty_binding.traits = &traits_;
  for (const auto& value_exprs : stmt.insert_rows) {
    if (value_exprs.size() != target_cols.size()) {
      return Status::InvalidArgument(
          "INSERT: " + std::to_string(value_exprs.size()) + " values for " +
          std::to_string(target_cols.size()) + " columns");
    }
    Row row;
    row.values.assign(ncols, Value::Null());
    for (size_t i = 0; i < value_exprs.size(); ++i) {
      IRDB_ASSIGN_OR_RETURN(Value v, Eval(*value_exprs[i], empty_binding));
      row.values[static_cast<size_t>(target_cols[i])] = std::move(v);
    }
    // IDENTITY auto-assignment (explicit non-NULL values are honoured, which
    // is how the repair engine restores deleted Sybase rows with their
    // original identity — the equivalent of SET IDENTITY_INSERT ON).
    for (size_t i = 0; i < ncols; ++i) {
      if (schema.column(i).identity && row.values[i].is_null()) {
        row.values[i] = Value::Int(table->NextIdentity());
      }
      if (schema.column(i).identity) rs.last_identity = row.values[i].as_int();
    }
    for (size_t i = 0; i < ncols; ++i) {
      IRDB_ASSIGN_OR_RETURN(row.values[i], schema.CoerceForColumn(i, row.values[i]));
    }
    if (schema.has_hidden_rowid()) {
      row.rowid = table->NextRowId();
      rs.last_rowid = row.rowid;
    }
    IRDB_ASSIGN_OR_RETURN(std::string bytes, table->codec().Encode(row));
    RowLoc loc = table->Insert(bytes);
    io_model_.TouchPageWrite(table_id, loc.page);
    LogRowOp(s, LogOp::kInsert, table_id, *table, loc, "", std::move(bytes));
    ++rs.affected;
  }
  return rs;
}

Result<ResultSet> Database::ExecUpdate(Session& s, const sql::Statement& stmt) {
  IRDB_ASSIGN_OR_RETURN(HeapTable* table, RequireTable(stmt.table));
  IRDB_ASSIGN_OR_RETURN(int32_t table_id, catalog_.TableId(stmt.table));
  const Schema& schema = table->schema();
  const RowCodec& codec = table->codec();

  // Resolve assignment targets once.
  std::vector<int> assign_cols;
  for (const auto& [name, expr] : stmt.assignments) {
    (void)expr;
    if (traits_.has_rowid && EqualsIgnoreCase(name, traits_.rowid_name)) {
      return Status::InvalidArgument("cannot assign to rowid");
    }
    int idx = schema.FindColumn(name);
    if (idx < 0) {
      return Status::InvalidArgument("UPDATE: no column " + name + " in " +
                                     stmt.table);
    }
    assign_cols.push_back(idx);
  }

  std::vector<std::pair<const Schema*, std::string>> scope{
      {&schema, stmt.table}};
  if (stmt.where) {
    IRDB_RETURN_IF_ERROR(ValidateColumnRefs(*stmt.where, scope, traits_));
  }
  for (const auto& [name, expr] : stmt.assignments) {
    (void)name;
    IRDB_RETURN_IF_ERROR(ValidateColumnRefs(*expr, scope, traits_));
  }

  // Phase 1: collect matching rows (updates do not move rows, so locations
  // collected here stay valid through phase 2).
  IRDB_ASSIGN_OR_RETURN(auto matches,
                        CollectMatching(table, table_id, stmt.table,
                                        stmt.where.get()));

  // Phase 2: evaluate assignments against the OLD row, patch, write, log.
  for (auto& [loc, old_bytes] : matches) {
    LazyRow lazy(&codec, old_bytes);
    RowBinding binding;
    binding.traits = &traits_;
    binding.tables.push_back(TableBinding{stmt.table, &lazy, nullptr, nullptr});
    std::vector<Value> new_values;
    new_values.reserve(stmt.assignments.size());
    for (const auto& [name, expr] : stmt.assignments) {
      (void)name;
      IRDB_ASSIGN_OR_RETURN(Value v, Eval(*expr, binding));
      new_values.push_back(std::move(v));
    }
    std::string new_bytes = old_bytes;
    for (size_t i = 0; i < assign_cols.size(); ++i) {
      const size_t col = static_cast<size_t>(assign_cols[i]);
      IRDB_ASSIGN_OR_RETURN(Value v, schema.CoerceForColumn(col, new_values[i]));
      IRDB_RETURN_IF_ERROR(codec.EncodeColumnInPlace(&new_bytes, col, v));
    }
    if (new_bytes == old_bytes) {
      // No-op update: still counts as affected, but nothing to log.
      continue;
    }
    table->UpdateAt(loc, new_bytes);
    LogRowOp(s, LogOp::kUpdate, table_id, *table, loc, std::move(old_bytes),
             std::move(new_bytes));
  }
  ResultSet rs;
  rs.affected = static_cast<int64_t>(matches.size());
  return rs;
}

Result<ResultSet> Database::ExecDelete(Session& s, const sql::Statement& stmt) {
  IRDB_ASSIGN_OR_RETURN(HeapTable* table, RequireTable(stmt.table));
  IRDB_ASSIGN_OR_RETURN(int32_t table_id, catalog_.TableId(stmt.table));

  if (stmt.where) {
    std::vector<std::pair<const Schema*, std::string>> scope{
        {&table->schema(), stmt.table}};
    IRDB_RETURN_IF_ERROR(ValidateColumnRefs(*stmt.where, scope, traits_));
  }

  IRDB_ASSIGN_OR_RETURN(auto matches,
                        CollectMatching(table, table_id, stmt.table,
                                        stmt.where.get()));

  // Deletes tombstone slots in place, so pending locations stay valid in
  // any order.
  for (auto& [loc, bytes] : matches) {
    // Log with the offset as of this operation.
    LogRowOp(s, LogOp::kDelete, table_id, *table, loc, std::move(bytes), "");
    table->DeleteAt(loc);
  }
  ResultSet rs;
  rs.affected = static_cast<int64_t>(matches.size());
  return rs;
}

// --------------------------------------------------------------- state hash

uint64_t Database::StateHash(const std::vector<std::string>& tables,
                             const std::vector<std::string>& exclude_columns) const {
  uint64_t h = 1469598103934665603ull;
  std::vector<std::string> names = tables;
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    const HeapTable* table = catalog_.Find(name);
    if (table == nullptr) continue;
    const Schema& schema = table->schema();
    std::vector<bool> keep(schema.num_columns(), true);
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      for (const std::string& ex : exclude_columns) {
        if (EqualsIgnoreCase(schema.column(i).name, ex)) keep[i] = false;
      }
    }
    std::vector<std::string> rows;
    table->Scan([&](RowLoc, std::string_view bytes) {
      std::string repr;
      for (size_t i = 0; i < schema.num_columns(); ++i) {
        if (!keep[i]) continue;
        auto v = table->codec().DecodeColumn(bytes, i);
        IRDB_CHECK(v.ok());
        v->AppendTo(&repr);
      }
      rows.push_back(std::move(repr));
    });
    std::sort(rows.begin(), rows.end());
    h = Fnv1a(name, h);
    for (const std::string& r : rows) h = Fnv1a(r, h);
  }
  return h;
}

void Database::SetSessionQuarantineExempt(int64_t session_id, bool exempt) {
  std::shared_ptr<Session> sp = FindSession(session_id);
  if (sp == nullptr) return;
  std::lock_guard<std::mutex> lock(sp->mu);
  sp->quarantine_exempt = exempt;
}

int Database::EvictQuarantinePinnedTxns() {
  std::vector<std::shared_ptr<Session>> snapshot;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    snapshot.reserve(sessions_.size());
    for (auto& [id, sp] : sessions_) snapshot.push_back(sp);
  }
  int evicted = 0;
  for (auto& sp : snapshot) {
    // try_lock, not lock: a session blocked in a lock wait holds its mu,
    // and waiting for it here could chain back to a transaction only THIS
    // eviction pass can release. Busy sessions either finish and hit the
    // gate on their next statement, or get caught by a later pass.
    std::unique_lock<std::mutex> session_lock(sp->mu, std::try_to_lock);
    if (!session_lock.owns_lock()) continue;
    if (!sp->in_txn || sp->quarantine_exempt) continue;
    if (!quarantine_.HoldsOverlapping(txn_mgr_.locks(), sp->txn_id)) continue;
    (void)RollbackTxnConcurrent(*sp);
    txn_mgr_.Abort(sp->txn_id);
    sp->poisoned = true;
    sp->quarantine_poisoned = true;
    ++evicted;
  }
  return evicted;
}

std::optional<uint64_t> Database::KeyHashForValues(
    const std::string& table,
    const std::vector<std::pair<std::string, Value>>& row_values) const {
  std::shared_lock<std::shared_mutex> cat(catalog_latch_);
  const HeapTable* t = catalog_.Find(table);
  if (t == nullptr || t->index() == nullptr) return std::nullopt;
  const Schema& schema = t->schema();
  std::string repr;
  for (int kc : t->index()->key_columns()) {
    const std::string& key_name = schema.column(static_cast<size_t>(kc)).name;
    const Value* found = nullptr;
    for (const auto& [name, v] : row_values) {
      if (EqualsIgnoreCase(name, key_name)) {
        found = &v;
        break;
      }
    }
    if (found == nullptr) return std::nullopt;
    auto coerced = schema.CoerceForColumn(static_cast<size_t>(kc), *found);
    if (!coerced.ok()) return std::nullopt;
    coerced->AppendTo(&repr);
  }
  return Fnv1a(repr);
}

std::optional<std::pair<int32_t, std::vector<std::string>>>
Database::TableKeyInfo(const std::string& table) const {
  std::shared_lock<std::shared_mutex> cat(catalog_latch_);
  const HeapTable* t = catalog_.Find(table);
  if (t == nullptr) return std::nullopt;
  auto id = catalog_.TableId(table);
  if (!id.ok()) return std::nullopt;
  std::vector<std::string> names;
  if (t->index() != nullptr) {
    for (int kc : t->index()->key_columns()) {
      names.push_back(t->schema().column(static_cast<size_t>(kc)).name);
    }
  }
  return std::make_pair(*id, std::move(names));
}

std::vector<std::pair<int64_t, std::vector<std::pair<std::string, Value>>>>
Database::KeyValuesForRowAddresses(const std::string& table,
                                   const std::vector<int64_t>& addresses,
                                   const std::string& address_column) const {
  std::vector<std::pair<int64_t, std::vector<std::pair<std::string, Value>>>>
      out;
  std::shared_lock<std::shared_mutex> cat(catalog_latch_);
  const HeapTable* t = catalog_.Find(table);
  if (t == nullptr || t->index() == nullptr) return out;
  const Schema& schema = t->schema();
  int addr_col = -1;
  if (!schema.has_hidden_rowid()) {
    addr_col = schema.FindColumn(address_column);
    if (addr_col < 0) return out;
  }
  std::unordered_set<int64_t> wanted(addresses.begin(), addresses.end());
  std::shared_lock<std::shared_mutex> latch(t->latch());

  // Extracts the primary-key (name, value) pairs of one row; false when a
  // column fails to decode.
  auto key_of = [&](std::string_view bytes,
                    std::vector<std::pair<std::string, Value>>* key) -> bool {
    for (int kc : t->index()->key_columns()) {
      auto v = t->codec().DecodeColumn(bytes, static_cast<size_t>(kc));
      if (!v.ok()) return false;
      key->emplace_back(schema.column(static_cast<size_t>(kc)).name,
                        std::move(*v));
    }
    return true;
  };

  // When the address column leads an index, probe each address directly
  // instead of scanning the heap (the repair engine calls this with a few
  // addresses against large tables).
  if (!schema.has_hidden_rowid()) {
    const TableIndex* probe = nullptr;
    if (t->index()->key_columns()[0] == addr_col) probe = t->index();
    for (const auto& si : t->secondary_indexes()) {
      if (probe != nullptr) break;
      if (si->key_columns()[0] == addr_col) probe = si.get();
    }
    if (probe != nullptr) {
      obs::Count(obs::Metrics::Get().index_scans);
      for (int64_t addr : wanted) {
        auto coerced = schema.CoerceForColumn(static_cast<size_t>(addr_col),
                                              Value::Int(addr));
        if (!coerced.ok()) continue;
        std::vector<RowLoc> locs;
        probe->LookupPrefix({*coerced}, &locs);
        for (RowLoc loc : locs) {
          std::vector<std::pair<std::string, Value>> key;
          if (key_of(t->ReadAt(loc), &key)) {
            out.emplace_back(addr, std::move(key));
          }
        }
      }
      return out;
    }
  }

  obs::Count(obs::Metrics::Get().heap_scans);
  t->Scan([&](RowLoc, std::string_view bytes) {
    int64_t addr;
    if (schema.has_hidden_rowid()) {
      addr = t->codec().DecodeRowId(bytes);
    } else {
      auto v = t->codec().DecodeColumn(bytes, static_cast<size_t>(addr_col));
      if (!v.ok() || !v->is_int()) return;
      addr = v->as_int();
    }
    if (wanted.count(addr) == 0) return;
    // Decoded values are already canonical for their columns, so they hash
    // into the same space as PlanStatementLocks' key hashes.
    std::vector<std::pair<std::string, Value>> key;
    if (key_of(bytes, &key)) out.emplace_back(addr, std::move(key));
  });
  return out;
}

}  // namespace irdb
