#include "engine/database.h"

#include <algorithm>

#include "obs/catalog.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "util/failpoint.h"
#include "util/string_utils.h"

namespace irdb {

Database::Database(FlavorTraits traits, IoCostParams io_params)
    : traits_(std::move(traits)), io_model_(io_params) {
  sessions_[0] = Session{};  // convenience session
}

Database::~Database() = default;

int64_t Database::OpenSession() {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t id = next_session_id_++;
  sessions_[id] = Session{};
  return id;
}

void Database::CloseSession(int64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  if (it->second.in_txn) RollbackTxn(it->second);  // abandon open work
  sessions_.erase(it);
}

Result<ResultSet> Database::Execute(int64_t session_id, std::string_view sql_text) {
  auto parsed = sql::Parse(sql_text);
  if (!parsed.ok()) return parsed.status();
  return ExecuteParsed(session_id, **parsed);
}

Result<ResultSet> Database::ExecuteParsed(int64_t session_id,
                                          const sql::Statement& stmt) {
  std::lock_guard<std::mutex> lock(mu_);
  // Injected before any state change: a triggered fault behaves like a
  // statement that never arrived, so retrying it is always safe.
  if (fail::Triggered("engine.execute")) return fail::Inject("engine.execute");
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::InvalidArgument("unknown session " + std::to_string(session_id));
  }
  Session& s = it->second;
  ++stats_.statements;
  io_model_.AccountStatement();

  switch (stmt.kind) {
    case sql::StatementKind::kBegin:
      if (s.in_txn) return Status::FailedPrecondition("transaction already open");
      BeginTxn(s);
      return ResultSet{};
    case sql::StatementKind::kCommit: {
      if (!s.in_txn) return Status::FailedPrecondition("no open transaction");
      CommitTxn(s);
      return ResultSet{};
    }
    case sql::StatementKind::kRollback: {
      if (!s.in_txn) return Status::FailedPrecondition("no open transaction");
      IRDB_RETURN_IF_ERROR(RollbackTxn(s));
      return ResultSet{};
    }
    case sql::StatementKind::kCreateTable:
      return ExecCreateTable(stmt);
    case sql::StatementKind::kDropTable:
      return ExecDropTable(stmt);
    default:
      break;
  }

  // DML / SELECT: autocommit when no transaction is open.
  const bool autocommit = !s.in_txn;
  if (autocommit) BeginTxn(s);
  Result<ResultSet> result = Dispatch(s, stmt);
  if (result.ok()) {
    if (autocommit) CommitTxn(s);
    return result;
  }
  // A failed statement aborts the enclosing transaction (statement-level
  // atomicity is not implemented; the whole transaction is undone instead,
  // like PostgreSQL's abort-until-rollback behaviour collapsed into one step).
  RollbackTxn(s);
  return result;
}

Result<ResultSet> Database::Dispatch(Session& s, const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::StatementKind::kSelect:
      ++stats_.selects;
      return ExecSelect(s, stmt);
    case sql::StatementKind::kInsert:
      ++stats_.inserts;
      return ExecInsert(s, stmt);
    case sql::StatementKind::kUpdate:
      ++stats_.updates;
      return ExecUpdate(s, stmt);
    case sql::StatementKind::kDelete:
      ++stats_.deletes;
      return ExecDelete(s, stmt);
    default:
      return Status::Internal("Dispatch: unexpected statement kind");
  }
}

Result<HeapTable*> Database::RequireTable(const std::string& name) {
  HeapTable* t = catalog_.Find(name);
  if (t == nullptr) return Status::NotFound("no table named " + name);
  return t;
}

// ------------------------------------------------------------------ txn ctl

void Database::BeginTxn(Session& s) {
  s.in_txn = true;
  s.txn_id = next_txn_id_++;
  s.undo.clear();
  s.txn_log_bytes = 0;
  LogRecord rec;
  rec.txn_id = s.txn_id;
  rec.op = LogOp::kBegin;
  wal_.Append(std::move(rec));
}

void Database::CommitTxn(Session& s) {
  LogRecord rec;
  rec.txn_id = s.txn_id;
  rec.op = LogOp::kCommit;
  s.txn_log_bytes += rec.ByteSize();
  wal_.Append(std::move(rec));
  // Read-only transactions have nothing to make durable — no flush.
  if (!s.undo.empty()) {
    io_model_.AccountLogFlush(s.txn_log_bytes);
    wal_.AccountBytes(s.txn_log_bytes);
    obs::Count(obs::Metrics::Get().wal_fsyncs);
    obs::Count(obs::Metrics::Get().wal_fsync_bytes, s.txn_log_bytes);
  }
  s.in_txn = false;
  s.undo.clear();
  ++stats_.commits;
  obs::Count(obs::Metrics::Get().txn_commits);
}

namespace {

// Locates a row by exact byte equality, preferring `page_hint`.
// Returns {-1,-1} when absent.
RowLoc FindRowByBytes(const HeapTable& table, int32_t page_hint,
                      std::string_view bytes) {
  auto search_page = [&](int p) -> int {
    const Page* page = table.GetPage(p);
    if (page == nullptr) return -1;
    for (int s = 0; s < page->row_count(); ++s) {
      if (page->RowAt(s) == bytes) return s;
    }
    return -1;
  };
  if (page_hint >= 0) {
    int slot = search_page(page_hint);
    if (slot >= 0) return RowLoc{page_hint, slot};
  }
  for (int p = 0; p < table.page_count(); ++p) {
    if (p == page_hint) continue;
    int slot = search_page(p);
    if (slot >= 0) return RowLoc{p, slot};
  }
  return RowLoc{-1, -1};
}

}  // namespace

Status Database::RollbackTxn(Session& s) {
  // Physically revert this transaction's changes, newest first. Rows are
  // relocated by byte equality (they only move within their page, and only
  // on DELETE compaction).
  for (auto it = s.undo.rbegin(); it != s.undo.rend(); ++it) {
    HeapTable* table = catalog_.FindById(it->table_id);
    if (table == nullptr) {
      return Status::Internal("rollback: table vanished");
    }
    // Each physical undo step writes a compensation record (CLR) so that
    // replaying the full WAL at recovery reproduces the page layout exactly.
    LogRecord clr;
    clr.txn_id = s.txn_id;
    clr.table_id = it->table_id;
    clr.len = table->schema().row_size();
    clr.is_clr = true;
    switch (it->op) {
      case LogOp::kInsert: {
        RowLoc loc = FindRowByBytes(*table, it->page_hint, it->after);
        if (loc.page < 0) return Status::Internal("rollback: inserted row missing");
        clr.op = LogOp::kDelete;
        clr.page = loc.page;
        clr.offset = table->OffsetOf(loc);
        clr.before_image = it->after;
        table->DeleteAt(loc);
        break;
      }
      case LogOp::kDelete: {
        RowLoc loc = table->Insert(it->before);
        clr.op = LogOp::kInsert;
        clr.page = loc.page;
        clr.offset = table->OffsetOf(loc);
        clr.after_image = it->before;
        break;
      }
      case LogOp::kUpdate: {
        RowLoc loc = FindRowByBytes(*table, it->page_hint, it->after);
        if (loc.page < 0) return Status::Internal("rollback: updated row missing");
        clr.op = LogOp::kUpdate;
        clr.page = loc.page;
        clr.offset = table->OffsetOf(loc);
        clr.before_image = it->after;
        clr.after_image = it->before;
        table->UpdateAt(loc, it->before);
        break;
      }
      default:
        return Status::Internal("rollback: bad undo op");
    }
    wal_.Append(std::move(clr));
  }
  LogRecord rec;
  rec.txn_id = s.txn_id;
  rec.op = LogOp::kAbort;
  wal_.Append(std::move(rec));
  s.in_txn = false;
  s.undo.clear();
  ++stats_.rollbacks;
  obs::Count(obs::Metrics::Get().txn_aborts);
  return Status::Ok();
}

void Database::LogRowOp(Session& s, LogOp op, int32_t table_id,
                        const HeapTable& table, RowLoc loc, std::string before,
                        std::string after) {
  LogRecord rec;
  rec.txn_id = s.txn_id;
  rec.op = op;
  rec.table_id = table_id;
  rec.page = loc.page;
  rec.offset = table.OffsetOf(loc);
  rec.len = table.schema().row_size();

  UndoEntry undo;
  undo.op = op;
  undo.table_id = table_id;
  undo.page_hint = loc.page;
  undo.before = before;
  undo.after = after;
  s.undo.push_back(std::move(undo));

  if (op == LogOp::kUpdate && traits_.diff_update_log) {
    // Sybase MODIFY: log only the changed column slots.
    const Schema& schema = table.schema();
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      const size_t off = static_cast<size_t>(schema.ColumnOffset(i));
      const size_t sz = static_cast<size_t>(schema.column(i).EncodedSize());
      std::string_view b = std::string_view(before).substr(off, sz);
      std::string_view a = std::string_view(after).substr(off, sz);
      if (b != a) {
        rec.diff.push_back(ColumnDiff{static_cast<int32_t>(i),
                                      std::string(b), std::string(a)});
      }
    }
  } else {
    if (op != LogOp::kInsert) rec.before_image = std::move(before);
    if (op != LogOp::kDelete) rec.after_image = std::move(after);
  }
  s.txn_log_bytes += rec.ByteSize();
  wal_.Append(std::move(rec));
}

// --------------------------------------------------------------------- DDL

Result<ResultSet> Database::ExecCreateTable(const sql::Statement& stmt) {
  std::vector<Column> cols;
  cols.reserve(stmt.columns.size());
  for (const sql::ColumnDef& def : stmt.columns) {
    if (traits_.has_rowid && EqualsIgnoreCase(def.name, traits_.rowid_name)) {
      return Status::InvalidArgument("column name " + def.name +
                                     " collides with the rowid pseudo-column");
    }
    for (const Column& existing : cols) {
      if (EqualsIgnoreCase(existing.name, def.name)) {
        return Status::InvalidArgument("duplicate column " + def.name);
      }
    }
    Column c;
    c.name = def.name;
    switch (def.type) {
      case sql::ColumnTypeKind::kInt: c.type = ValueType::kInt; break;
      case sql::ColumnTypeKind::kDouble: c.type = ValueType::kDouble; break;
      case sql::ColumnTypeKind::kVarchar:
      case sql::ColumnTypeKind::kChar:
        c.type = ValueType::kString;
        c.length = def.length;
        break;
    }
    c.not_null = def.not_null;
    c.identity = def.identity;
    if (c.identity && c.type != ValueType::kInt) {
      return Status::InvalidArgument("IDENTITY column must be INTEGER");
    }
    cols.push_back(std::move(c));
  }
  if (cols.empty()) return Status::InvalidArgument("table needs columns");
  Schema schema(std::move(cols), traits_.has_rowid);

  // PRIMARY KEY installs an equality-prefix index (uniqueness itself is not
  // enforced — the framework's workloads are key-disciplined, and neither
  // were the paper's TPC-C kits relying on engine-side checks).
  std::vector<int> key_columns;
  for (const std::string& pk : stmt.primary_key) {
    int idx = schema.FindColumn(pk);
    if (idx < 0) {
      return Status::InvalidArgument("PRIMARY KEY column " + pk + " undefined");
    }
    key_columns.push_back(idx);
  }

  auto created = catalog_.CreateTable(stmt.table, std::move(schema));
  if (!created.ok()) return created.status();
  if (!key_columns.empty()) (*created)->SetPrimaryIndex(std::move(key_columns));

  LogRecord rec;
  rec.op = LogOp::kDdl;
  rec.ddl_text = sql::PrintStatement(stmt);
  wal_.Append(std::move(rec));
  return ResultSet{};
}

Result<ResultSet> Database::ExecDropTable(const sql::Statement& stmt) {
  IRDB_RETURN_IF_ERROR(catalog_.DropTable(stmt.table));
  LogRecord rec;
  rec.op = LogOp::kDdl;
  rec.ddl_text = sql::PrintStatement(stmt);
  wal_.Append(std::move(rec));
  return ResultSet{};
}

// --------------------------------------------------------------------- DML

Result<ResultSet> Database::ExecInsert(Session& s, const sql::Statement& stmt) {
  IRDB_ASSIGN_OR_RETURN(HeapTable* table, RequireTable(stmt.table));
  IRDB_ASSIGN_OR_RETURN(int32_t table_id, catalog_.TableId(stmt.table));
  const Schema& schema = table->schema();
  const size_t ncols = schema.num_columns();

  // Map provided values to column indices.
  std::vector<int> target_cols;
  if (stmt.insert_columns.empty()) {
    for (size_t i = 0; i < ncols; ++i) target_cols.push_back(static_cast<int>(i));
  } else {
    for (const std::string& name : stmt.insert_columns) {
      int idx = schema.FindColumn(name);
      if (idx < 0) {
        return Status::InvalidArgument("INSERT: no column " + name + " in " +
                                       stmt.table);
      }
      target_cols.push_back(idx);
    }
  }

  ResultSet rs;
  RowBinding empty_binding;
  empty_binding.traits = &traits_;
  for (const auto& value_exprs : stmt.insert_rows) {
    if (value_exprs.size() != target_cols.size()) {
      return Status::InvalidArgument(
          "INSERT: " + std::to_string(value_exprs.size()) + " values for " +
          std::to_string(target_cols.size()) + " columns");
    }
    Row row;
    row.values.assign(ncols, Value::Null());
    for (size_t i = 0; i < value_exprs.size(); ++i) {
      IRDB_ASSIGN_OR_RETURN(Value v, Eval(*value_exprs[i], empty_binding));
      row.values[static_cast<size_t>(target_cols[i])] = std::move(v);
    }
    // IDENTITY auto-assignment (explicit non-NULL values are honoured, which
    // is how the repair engine restores deleted Sybase rows with their
    // original identity — the equivalent of SET IDENTITY_INSERT ON).
    for (size_t i = 0; i < ncols; ++i) {
      if (schema.column(i).identity && row.values[i].is_null()) {
        row.values[i] = Value::Int(table->NextIdentity());
      }
      if (schema.column(i).identity) rs.last_identity = row.values[i].as_int();
    }
    for (size_t i = 0; i < ncols; ++i) {
      IRDB_ASSIGN_OR_RETURN(row.values[i], schema.CoerceForColumn(i, row.values[i]));
    }
    if (schema.has_hidden_rowid()) {
      row.rowid = table->NextRowId();
      rs.last_rowid = row.rowid;
    }
    IRDB_ASSIGN_OR_RETURN(std::string bytes, table->codec().Encode(row));
    RowLoc loc = table->Insert(bytes);
    io_model_.TouchPageWrite(table_id, loc.page);
    LogRowOp(s, LogOp::kInsert, table_id, *table, loc, "", std::move(bytes));
    ++rs.affected;
  }
  return rs;
}

Result<ResultSet> Database::ExecUpdate(Session& s, const sql::Statement& stmt) {
  IRDB_ASSIGN_OR_RETURN(HeapTable* table, RequireTable(stmt.table));
  IRDB_ASSIGN_OR_RETURN(int32_t table_id, catalog_.TableId(stmt.table));
  const Schema& schema = table->schema();
  const RowCodec& codec = table->codec();

  // Resolve assignment targets once.
  std::vector<int> assign_cols;
  for (const auto& [name, expr] : stmt.assignments) {
    (void)expr;
    if (traits_.has_rowid && EqualsIgnoreCase(name, traits_.rowid_name)) {
      return Status::InvalidArgument("cannot assign to rowid");
    }
    int idx = schema.FindColumn(name);
    if (idx < 0) {
      return Status::InvalidArgument("UPDATE: no column " + name + " in " +
                                     stmt.table);
    }
    assign_cols.push_back(idx);
  }

  std::vector<std::pair<const Schema*, std::string>> scope{
      {&schema, stmt.table}};
  if (stmt.where) {
    IRDB_RETURN_IF_ERROR(ValidateColumnRefs(*stmt.where, scope, traits_));
  }
  for (const auto& [name, expr] : stmt.assignments) {
    (void)name;
    IRDB_RETURN_IF_ERROR(ValidateColumnRefs(*expr, scope, traits_));
  }

  // Phase 1: collect matching rows (updates do not move rows, so locations
  // collected here stay valid through phase 2).
  IRDB_ASSIGN_OR_RETURN(auto matches,
                        CollectMatching(table, table_id, stmt.table,
                                        stmt.where.get()));

  // Phase 2: evaluate assignments against the OLD row, patch, write, log.
  for (auto& [loc, old_bytes] : matches) {
    LazyRow lazy(&codec, old_bytes);
    RowBinding binding;
    binding.traits = &traits_;
    binding.tables.push_back(TableBinding{stmt.table, &lazy, nullptr, nullptr});
    std::vector<Value> new_values;
    new_values.reserve(stmt.assignments.size());
    for (const auto& [name, expr] : stmt.assignments) {
      (void)name;
      IRDB_ASSIGN_OR_RETURN(Value v, Eval(*expr, binding));
      new_values.push_back(std::move(v));
    }
    std::string new_bytes = old_bytes;
    for (size_t i = 0; i < assign_cols.size(); ++i) {
      const size_t col = static_cast<size_t>(assign_cols[i]);
      IRDB_ASSIGN_OR_RETURN(Value v, schema.CoerceForColumn(col, new_values[i]));
      IRDB_RETURN_IF_ERROR(codec.EncodeColumnInPlace(&new_bytes, col, v));
    }
    if (new_bytes == old_bytes) {
      // No-op update: still counts as affected, but nothing to log.
      continue;
    }
    table->UpdateAt(loc, new_bytes);
    LogRowOp(s, LogOp::kUpdate, table_id, *table, loc, std::move(old_bytes),
             std::move(new_bytes));
  }
  ResultSet rs;
  rs.affected = static_cast<int64_t>(matches.size());
  return rs;
}

Result<ResultSet> Database::ExecDelete(Session& s, const sql::Statement& stmt) {
  IRDB_ASSIGN_OR_RETURN(HeapTable* table, RequireTable(stmt.table));
  IRDB_ASSIGN_OR_RETURN(int32_t table_id, catalog_.TableId(stmt.table));

  if (stmt.where) {
    std::vector<std::pair<const Schema*, std::string>> scope{
        {&table->schema(), stmt.table}};
    IRDB_RETURN_IF_ERROR(ValidateColumnRefs(*stmt.where, scope, traits_));
  }

  IRDB_ASSIGN_OR_RETURN(auto matches,
                        CollectMatching(table, table_id, stmt.table,
                                        stmt.where.get()));

  // Delete highest slots first so pending locations stay valid (in-page
  // compaction only shifts rows at higher slots).
  std::sort(matches.begin(), matches.end(),
            [](const auto& a, const auto& b) {
              if (a.first.page != b.first.page) return a.first.page < b.first.page;
              return a.first.slot > b.first.slot;
            });
  for (auto& [loc, bytes] : matches) {
    // Log with the offset as of this operation.
    LogRowOp(s, LogOp::kDelete, table_id, *table, loc, std::move(bytes), "");
    table->DeleteAt(loc);
  }
  ResultSet rs;
  rs.affected = static_cast<int64_t>(matches.size());
  return rs;
}

// --------------------------------------------------------------- state hash

uint64_t Database::StateHash(const std::vector<std::string>& tables,
                             const std::vector<std::string>& exclude_columns) const {
  uint64_t h = 1469598103934665603ull;
  std::vector<std::string> names = tables;
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    const HeapTable* table = catalog_.Find(name);
    if (table == nullptr) continue;
    const Schema& schema = table->schema();
    std::vector<bool> keep(schema.num_columns(), true);
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      for (const std::string& ex : exclude_columns) {
        if (EqualsIgnoreCase(schema.column(i).name, ex)) keep[i] = false;
      }
    }
    std::vector<std::string> rows;
    table->Scan([&](RowLoc, std::string_view bytes) {
      std::string repr;
      for (size_t i = 0; i < schema.num_columns(); ++i) {
        if (!keep[i]) continue;
        auto v = table->codec().DecodeColumn(bytes, i);
        IRDB_CHECK(v.ok());
        v->AppendTo(&repr);
      }
      rows.push_back(std::move(repr));
    });
    std::sort(rows.begin(), rows.end());
    h = Fnv1a(name, h);
    for (const std::string& r : rows) h = Fnv1a(r, h);
  }
  return h;
}

}  // namespace irdb
