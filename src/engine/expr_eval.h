// Expression evaluation over (possibly joined) rows.
//
// LazyRow decodes columns on demand so WHERE predicates over wide TPC-C rows
// only pay for the columns they touch.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "flavor/flavor_traits.h"
#include "sql/ast.h"
#include "storage/row_codec.h"
#include "util/status.h"

namespace irdb {

// A row whose columns are decoded lazily from the page bytes.
// Does not own `bytes`; valid only while the underlying page is unchanged.
class LazyRow {
 public:
  LazyRow() = default;
  LazyRow(const RowCodec* codec, std::string_view bytes)
      : codec_(codec), bytes_(bytes),
        cache_(codec->schema().num_columns()) {}

  Result<Value> Get(size_t col) const {
    if (!cache_[col]) {
      auto v = codec_->DecodeColumn(bytes_, col);
      if (!v.ok()) return v;
      cache_[col] = std::move(v).value();
    }
    return *cache_[col];
  }

  int64_t rowid() const { return codec_->DecodeRowId(bytes_); }
  const RowCodec& codec() const { return *codec_; }
  std::string_view bytes() const { return bytes_; }

 private:
  const RowCodec* codec_ = nullptr;
  std::string_view bytes_;
  mutable std::vector<std::optional<Value>> cache_;
};

// One FROM-table's contribution to the evaluation scope. Exactly one of
// `row` (lazy, page-backed) or `mat` (materialized) is set; `schema` is
// required with `mat`.
struct TableBinding {
  std::string effective_name;  // alias if present, else table name
  const LazyRow* row = nullptr;
  const Row* mat = nullptr;
  const Schema* schema = nullptr;

  const Schema& GetSchema() const {
    return schema != nullptr ? *schema : row->codec().schema();
  }
};

// Name-resolution + row scope for one (joined) tuple.
struct RowBinding {
  std::vector<TableBinding> tables;
  const FlavorTraits* traits = nullptr;

  // Aggregate results keyed by the FuncCall node, supplied by the aggregate
  // executor; nullptr in row-level contexts (aggregates then error out).
  const std::unordered_map<const sql::Expr*, Value>* aggregates = nullptr;

  Result<Value> ResolveColumn(const std::string& table,
                              const std::string& column) const;
};

// Evaluates `e` in the given scope.
Result<Value> Eval(const sql::Expr& e, const RowBinding& binding);

// Collects every column reference in the subtree.
void CollectColumnRefs(const sql::Expr& e, std::vector<const sql::Expr*>* out);

// Plan-time name resolution: every column reference must resolve to exactly
// one of the scope's (schema, effective-name) entries — or the rowid
// pseudo-column — even when the tables hold no rows.
Status ValidateColumnRefs(
    const sql::Expr& e,
    const std::vector<std::pair<const Schema*, std::string>>& scope,
    const FlavorTraits& traits);

// SQL truthiness: NULL -> false; numeric nonzero -> true; strings invalid.
Result<bool> IsTruthy(const Value& v);

// SQL LIKE with % and _ wildcards.
bool SqlLike(std::string_view text, std::string_view pattern);

}  // namespace irdb
