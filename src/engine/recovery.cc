#include "engine/recovery.h"

#include <map>
#include <set>
#include <utility>

#include "txn/wal_codec.h"

namespace irdb {

namespace {

// Where the row a record addressed is now: still in its logged slot (deletes
// tombstone in place, so offsets never slide — a strictly stronger form of
// the §4.3 movement property) or consumed by a later DELETE record at the
// same offset (whose index is reported so loser-undo can chase rows it has
// itself revived). The first later DELETE at the row's offset is the row's
// own death: a reused slot requires a prior tombstone.
struct TrackedOffset {
  int32_t offset = -1;
  int64_t deleted_by = -1;  // index of the consuming DELETE record, if any
};

TrackedOffset AdjustOffset(const std::vector<LogRecord>& records, size_t index) {
  const LogRecord& rec = records[index];
  TrackedOffset out;
  for (size_t j = index + 1; j < records.size(); ++j) {
    const LogRecord& l = records[j];
    if (!l.IsRowOp() || l.table_id != rec.table_id || l.page != rec.page) {
      continue;
    }
    if (l.op == LogOp::kDelete && l.offset == rec.offset) {
      out.deleted_by = static_cast<int64_t>(j);
      return out;
    }
  }
  out.offset = rec.offset;
  return out;
}

Status ApplyDiff(HeapTable* table, RowLoc loc,
                 const std::vector<ColumnDiff>& diff, bool use_before) {
  std::string bytes(table->ReadAt(loc));
  const Schema& schema = table->schema();
  for (const ColumnDiff& d : diff) {
    const size_t off = static_cast<size_t>(schema.ColumnOffset(d.column));
    const std::string& slot = use_before ? d.before : d.after;
    if (off + slot.size() > bytes.size()) {
      return Status::Internal("recovery: diff slot out of range");
    }
    bytes.replace(off, slot.size(), slot);
  }
  table->UpdateAt(loc, bytes);
  return Status::Ok();
}

// Advances a table's rowid/identity floors past a recovered row image.
void BumpFromImage(HeapTable* table, const std::string& image) {
  const Schema& schema = table->schema();
  const RowCodec& codec = table->codec();
  int64_t rowid_floor = 0, identity_floor = 0;
  if (schema.has_hidden_rowid()) {
    rowid_floor = codec.DecodeRowId(image) + 1;
  }
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (!schema.column(i).identity) continue;
    auto v = codec.DecodeColumn(image, i);
    if (v.ok() && v->is_int()) identity_floor = v->as_int() + 1;
  }
  table->BumpCounters(rowid_floor, identity_floor);
}

}  // namespace

Result<std::unique_ptr<Database>> RecoverDatabase(const WalLog& wal,
                                                  const FlavorTraits& traits) {
  auto db = std::make_unique<Database>(traits);
  const std::vector<LogRecord>& records = wal.records();

  // Losers: transactions that neither committed nor aborted.
  std::set<int64_t> finished;
  std::set<int64_t> started;
  int64_t max_txn_id = 0;
  for (const LogRecord& rec : records) {
    if (rec.op == LogOp::kCommit || rec.op == LogOp::kAbort) {
      finished.insert(rec.txn_id);
    }
    if (rec.txn_id > 0) started.insert(rec.txn_id);
    if (rec.txn_id > max_txn_id) max_txn_id = rec.txn_id;
  }

  // Phase 1+2: catalog rebuild and physical redo, in one forward pass.
  for (const LogRecord& rec : records) {
    if (rec.op == LogOp::kDdl) {
      auto r = db->Execute(0, rec.ddl_text);
      if (!r.ok()) {
        return Status::Internal("recovery DDL failed: " + rec.ddl_text +
                                " — " + r.status().ToString());
      }
      continue;
    }
    if (!rec.IsRowOp()) continue;
    HeapTable* table = db->catalog().FindById(rec.table_id);
    if (table == nullptr) {
      return Status::Internal("recovery: record for unknown table " +
                              std::to_string(rec.table_id));
    }
    switch (rec.op) {
      case LogOp::kInsert: {
        RowLoc loc = table->Insert(rec.after_image);
        if (loc.page != rec.page || table->OffsetOf(loc) != rec.offset) {
          return Status::Internal(
              "recovery: replayed insert landed at (" +
              std::to_string(loc.page) + "," +
              std::to_string(table->OffsetOf(loc)) + "), log says (" +
              std::to_string(rec.page) + "," + std::to_string(rec.offset) + ")");
        }
        BumpFromImage(table, rec.after_image);
        break;
      }
      case LogOp::kDelete: {
        if (rec.offset % table->schema().row_size() != 0) {
          return Status::Internal("recovery: misaligned delete offset");
        }
        table->DeleteAt(RowLoc{rec.page, rec.offset / table->schema().row_size()});
        break;
      }
      case LogOp::kUpdate: {
        RowLoc loc{rec.page, rec.offset / table->schema().row_size()};
        if (!rec.diff.empty()) {
          IRDB_RETURN_IF_ERROR(ApplyDiff(table, loc, rec.diff, false));
        } else {
          table->UpdateAt(loc, rec.after_image);
          BumpFromImage(table, rec.after_image);
        }
        break;
      }
      default:
        break;
    }
  }

  // Phase 3: undo losers, newest record first, addressing each row at its
  // current (post-redo) location. Rows a loser deleted get revived by this
  // pass; older records of the same loser may address them, so revived
  // locations are tracked. Tombstoned slots never move, so undo's own
  // deletes need no location fixups.
  std::map<int64_t, std::pair<int32_t, RowLoc>> revived;  // delete idx -> loc
  // Resolves a record's row to its current location, chasing a revival.
  auto resolve = [&](size_t ri) -> RowLoc {
    const LogRecord& rec = records[ri];
    HeapTable* table = db->catalog().FindById(rec.table_id);
    TrackedOffset t = AdjustOffset(records, ri);
    if (t.deleted_by < 0) {
      return RowLoc{rec.page, t.offset / table->schema().row_size()};
    }
    auto it = revived.find(t.deleted_by);
    if (it == revived.end()) return RowLoc{-1, -1};  // row is truly gone
    return it->second.second;
  };

  for (size_t ri = records.size(); ri-- > 0;) {
    const LogRecord& rec = records[ri];
    if (!rec.IsRowOp() || finished.count(rec.txn_id)) continue;
    HeapTable* table = db->catalog().FindById(rec.table_id);
    if (table == nullptr) continue;
    switch (rec.op) {
      case LogOp::kInsert: {
        RowLoc loc = resolve(ri);
        if (loc.page < 0) break;  // deleted later and never revived
        table->DeleteAt(loc);
        break;
      }
      case LogOp::kDelete: {
        RowLoc loc = table->Insert(rec.before_image);
        revived[static_cast<int64_t>(ri)] = {rec.table_id, loc};
        break;
      }
      case LogOp::kUpdate: {
        RowLoc loc = resolve(ri);
        if (loc.page < 0) break;
        if (!rec.diff.empty()) {
          IRDB_RETURN_IF_ERROR(ApplyDiff(table, loc, rec.diff, true));
        } else {
          table->UpdateAt(loc, rec.before_image);
        }
        break;
      }
      default:
        break;
    }
  }
  (void)max_txn_id;  // internal txn ids restart; proxy ids live in trans_dep
  return db;
}

Result<std::unique_ptr<Database>> RecoverDatabaseFromBytes(
    std::string_view wal_bytes, const FlavorTraits& traits,
    WalRecoveryInfo* info) {
  IRDB_ASSIGN_OR_RETURN(WalDecodeResult decoded, DecodeWal(wal_bytes));
  WalLog wal;
  for (LogRecord& rec : decoded.records) wal.Append(std::move(rec));
  if (info != nullptr) {
    info->records_recovered = wal.size();
    info->truncated_tail = decoded.truncated_tail;
    info->dropped_bytes = decoded.dropped_bytes;
  }
  return RecoverDatabase(wal, traits);
}

}  // namespace irdb
