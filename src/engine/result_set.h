// Result of executing one SQL statement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/row_codec.h"
#include "storage/value.h"

namespace irdb {

struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;

  // DML row count (INSERT/UPDATE/DELETE).
  int64_t affected = 0;

  // Generated keys of the last INSERT (JDBC getGeneratedKeys equivalent);
  // kNoRowId when not applicable. `last_rowid` is the engine-assigned hidden
  // row ID (Postgres/Oracle flavors); `last_identity` is the value assigned
  // to an IDENTITY column (Sybase flavor).
  int64_t last_rowid = kNoRowId;
  int64_t last_identity = kNoRowId;

  // Approximate wire size, used by the simulated network cost model.
  int64_t ByteSize() const {
    int64_t n = 16;
    for (const auto& c : columns) n += 1 + static_cast<int64_t>(c.size());
    for (const auto& row : rows) {
      for (const Value& v : row) {
        n += 2;
        if (v.is_string()) {
          n += static_cast<int64_t>(v.as_string().size());
        } else if (!v.is_null()) {
          n += 8;
        }
      }
    }
    return n;
  }
};

}  // namespace irdb
