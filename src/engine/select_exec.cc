// SELECT execution: join scan with single-table predicate pushdown,
// projection, aggregation with GROUP BY, ORDER BY and LIMIT.
#include <algorithm>
#include <map>
#include <set>

#include "engine/database.h"
#include "obs/catalog.h"
#include "util/string_utils.h"

namespace irdb {

namespace {

using sql::Expr;
using sql::ExprKind;

void SplitConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary && e->bin_op == sql::BinaryOp::kAnd) {
    SplitConjuncts(e->lhs.get(), out);
    SplitConjuncts(e->rhs.get(), out);
    return;
  }
  out->push_back(e);
}

void CollectAggregates(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kFuncCall) {
    out->push_back(&e);
    return;  // no nested aggregates
  }
  if (e.lhs) CollectAggregates(*e.lhs, out);
  if (e.rhs) CollectAggregates(*e.rhs, out);
  if (e.low) CollectAggregates(*e.low, out);
  if (e.high) CollectAggregates(*e.high, out);
  for (const auto& item : e.list) CollectAggregates(*item, out);
}

// Index of the single table a conjunct references, or -1 when it spans
// several tables (or none — constants evaluate at the join level, cheaply).
Result<int> ConjunctTable(
    const Expr& conjunct,
    const std::vector<std::pair<HeapTable*, std::string>>& tables,
    const FlavorTraits& traits) {
  std::vector<const Expr*> refs;
  CollectColumnRefs(conjunct, &refs);
  int which = -2;  // -2 = none yet
  for (const Expr* ref : refs) {
    int idx = -1;
    if (!ref->table.empty()) {
      for (size_t i = 0; i < tables.size(); ++i) {
        if (EqualsIgnoreCase(tables[i].second, ref->table)) {
          idx = static_cast<int>(i);
          break;
        }
      }
      if (idx < 0) {
        return Status::InvalidArgument("unknown table qualifier " + ref->table);
      }
    } else {
      int hits = 0;
      for (size_t i = 0; i < tables.size(); ++i) {
        bool has = tables[i].first->schema().FindColumn(ref->column) >= 0;
        if (!has && traits.has_rowid &&
            EqualsIgnoreCase(ref->column, traits.rowid_name)) {
          has = true;
        }
        if (has) {
          idx = static_cast<int>(i);
          ++hits;
        }
      }
      if (hits != 1) return -1;  // unknown or ambiguous: defer to join level
    }
    if (which == -2) {
      which = idx;
    } else if (which != idx) {
      return -1;
    }
  }
  return which == -2 ? -1 : which;
}

struct SortableRow {
  std::vector<Value> out;
  std::vector<Value> keys;
};

void SortAndLimit(std::vector<SortableRow>* rows,
                  const std::vector<sql::OrderItem>& order_by,
                  const std::optional<int64_t>& limit,
                  std::vector<std::vector<Value>>* out) {
  if (!order_by.empty()) {
    std::stable_sort(rows->begin(), rows->end(),
                     [&](const SortableRow& a, const SortableRow& b) {
                       for (size_t i = 0; i < order_by.size(); ++i) {
                         int c = a.keys[i].Compare(b.keys[i]);
                         if (c != 0) return order_by[i].desc ? c > 0 : c < 0;
                       }
                       return false;
                     });
  }
  size_t n = rows->size();
  if (limit && static_cast<size_t>(*limit) < n) n = static_cast<size_t>(*limit);
  out->reserve(n);
  for (size_t i = 0; i < n; ++i) out->push_back(std::move((*rows)[i].out));
}

// Aggregate accumulator for one (group, aggregate-call) pair.
struct AggAccum {
  int64_t count = 0;       // non-null inputs (or all rows for COUNT(*))
  bool any = false;
  bool is_double = false;
  int64_t isum = 0;
  double dsum = 0;
  Value min, max;
  std::set<Value> distinct;

  void Add(const Value& v, bool use_distinct) {
    if (use_distinct) {
      distinct.insert(v);
      return;
    }
    AddRaw(v);
  }

  void AddRaw(const Value& v) {
    ++count;
    if (v.is_numeric()) {
      if (v.is_double()) is_double = true;
      if (v.is_int() && !is_double) {
        isum += v.as_int();
      } else {
        dsum = (is_double && !any ? 0 : dsum);  // keep dsum coherent
        dsum += v.as_double();
      }
    }
    if (!any || v.Compare(min) < 0) min = v;
    if (!any || v.Compare(max) > 0) max = v;
    any = true;
  }

  Value Finalize(const std::string& func, bool use_distinct) {
    if (use_distinct) {
      AggAccum flat;
      for (const Value& v : distinct) flat.AddRaw(v);
      return flat.Finalize(func, false);
    }
    if (func == "COUNT") return Value::Int(count);
    if (!any) return Value::Null();
    double total = is_double ? dsum + static_cast<double>(isum)
                             : static_cast<double>(isum);
    if (func == "SUM") {
      return is_double ? Value::Double(total) : Value::Int(isum);
    }
    if (func == "AVG") return Value::Double(total / static_cast<double>(count));
    if (func == "MIN") return min;
    if (func == "MAX") return max;
    return Value::Null();
  }
};

}  // namespace

namespace {

// Table indices referenced by `e`, as a bitmask over up to 64 FROM tables;
// returns nullopt when some reference does not resolve to a unique table.
std::optional<uint64_t> ReferencedTables(
    const Expr& e, const std::vector<std::pair<HeapTable*, std::string>>& tables,
    const FlavorTraits& traits) {
  std::vector<const Expr*> refs;
  CollectColumnRefs(e, &refs);
  uint64_t mask = 0;
  for (const Expr* ref : refs) {
    int idx = -1, hits = 0;
    for (size_t i = 0; i < tables.size(); ++i) {
      if (!ref->table.empty() &&
          !EqualsIgnoreCase(tables[i].second, ref->table)) {
        continue;
      }
      bool has = tables[i].first->schema().FindColumn(ref->column) >= 0 ||
                 (traits.has_rowid &&
                  EqualsIgnoreCase(ref->column, traits.rowid_name));
      if (has) {
        idx = static_cast<int>(i);
        ++hits;
      }
    }
    if (hits != 1) return std::nullopt;
    mask |= uint64_t{1} << idx;
  }
  return mask;
}

// A conjunct of the form <column of table d> = <expr over tables < d>,
// usable as an index bound when joining table d.
struct EqBinding {
  int column = -1;            // column index within table d's schema
  const Expr* value = nullptr;
};

// Range bounds on a column of table d collected from <, <=, >, >=, BETWEEN
// conjuncts whose value side only reads earlier tables. Strictness is not
// recorded: index bounds are inclusive over-approximations and the original
// conjunct still runs as a residual filter.
struct RangeBinding {
  int column = -1;
  const Expr* lo = nullptr;
  const Expr* hi = nullptr;
};

// Per-depth access path: an index with an equality prefix (and optionally
// range bounds on the key column right after the prefix), or a full heap
// scan when `index` is null. Choosing an index is a pure access-path
// decision — every WHERE conjunct is still evaluated against each row.
struct AccessPath {
  const TableIndex* index = nullptr;
  std::vector<const Expr*> prefix_exprs;
  const Expr* lo = nullptr;  // bounds on key column prefix_exprs.size()
  const Expr* hi = nullptr;
};

std::vector<AccessPath> PlanAccessPaths(
    const std::vector<const Expr*>& conjuncts,
    const std::vector<std::pair<HeapTable*, std::string>>& tables,
    const FlavorTraits& traits) {
  const size_t n = tables.size();

  // Resolves a (column expr, value expr) pair to (depth, column index) when
  // the column belongs to exactly one table and every table the value
  // expression touches is bound earlier in join order.
  auto bind_side = [&](const Expr* col_side, const Expr* val_side, int* d_out,
                       int* col_out) -> bool {
    if (col_side == nullptr || val_side == nullptr) return false;
    if (col_side->kind != ExprKind::kColumnRef) return false;
    auto col_mask = ReferencedTables(*col_side, tables, traits);
    auto val_mask = ReferencedTables(*val_side, tables, traits);
    if (!col_mask || !val_mask || *col_mask == 0) return false;
    const int d = __builtin_ctzll(*col_mask);
    if ((*val_mask >> d) != 0) return false;
    int col = tables[static_cast<size_t>(d)].first->schema().FindColumn(
        col_side->column);
    if (col < 0) return false;  // rowid pseudo-column: not indexed
    *d_out = d;
    *col_out = col;
    return true;
  };

  std::vector<std::vector<EqBinding>> eq(n);
  std::vector<std::vector<RangeBinding>> ranges(n);
  auto add_range = [&](int d, int col, const Expr* lo, const Expr* hi) {
    for (RangeBinding& rb : ranges[static_cast<size_t>(d)]) {
      if (rb.column != col) continue;
      if (lo != nullptr && rb.lo == nullptr) rb.lo = lo;
      if (hi != nullptr && rb.hi == nullptr) rb.hi = hi;
      return;
    }
    ranges[static_cast<size_t>(d)].push_back(RangeBinding{col, lo, hi});
  };

  for (const Expr* c : conjuncts) {
    if (c->kind == ExprKind::kBetween) {
      int d1, col1, d2, col2;
      if (bind_side(c->lhs.get(), c->low.get(), &d1, &col1) &&
          bind_side(c->lhs.get(), c->high.get(), &d2, &col2)) {
        add_range(d1, col1, c->low.get(), c->high.get());
      }
      continue;
    }
    if (c->kind != ExprKind::kBinary) continue;
    const sql::BinaryOp op = c->bin_op;
    const bool is_eq = op == sql::BinaryOp::kEq;
    const bool is_cmp = op == sql::BinaryOp::kLt || op == sql::BinaryOp::kLe ||
                        op == sql::BinaryOp::kGt || op == sql::BinaryOp::kGe;
    if (!is_eq && !is_cmp) continue;
    for (int side = 0; side < 2; ++side) {
      const Expr* col_side = side == 0 ? c->lhs.get() : c->rhs.get();
      const Expr* val_side = side == 0 ? c->rhs.get() : c->lhs.get();
      int d, col;
      if (!bind_side(col_side, val_side, &d, &col)) continue;
      if (is_eq) {
        eq[static_cast<size_t>(d)].push_back(EqBinding{col, val_side});
        continue;
      }
      // col < v / col <= v bound from above; flipped sides bound from below.
      const bool upper = (op == sql::BinaryOp::kLt ||
                          op == sql::BinaryOp::kLe) == (side == 0);
      add_range(d, col, upper ? nullptr : val_side, upper ? val_side : nullptr);
    }
  }

  // Pick the best index per depth: longest equality prefix wins; a usable
  // range bound breaks prefix-length ties; the primary index (listed first)
  // wins remaining ties.
  std::vector<AccessPath> paths(n);
  for (size_t d = 0; d < n; ++d) {
    HeapTable* t = tables[d].first;
    std::vector<const TableIndex*> candidates;
    if (t->index() != nullptr) candidates.push_back(t->index());
    for (const auto& si : t->secondary_indexes()) candidates.push_back(si.get());
    AccessPath best;
    for (const TableIndex* index : candidates) {
      AccessPath cand;
      cand.index = index;
      for (int key_col : index->key_columns()) {
        const Expr* bound = nullptr;
        for (const EqBinding& b : eq[d]) {
          if (b.column == key_col) {
            bound = b.value;
            break;
          }
        }
        if (bound == nullptr) break;  // prefix ends
        cand.prefix_exprs.push_back(bound);
      }
      if (cand.prefix_exprs.size() < index->key_columns().size()) {
        const int next_col = index->key_columns()[cand.prefix_exprs.size()];
        for (const RangeBinding& rb : ranges[d]) {
          if (rb.column == next_col) {
            cand.lo = rb.lo;
            cand.hi = rb.hi;
            break;
          }
        }
      }
      const bool has_range = cand.lo != nullptr || cand.hi != nullptr;
      if (cand.prefix_exprs.empty() && !has_range) continue;
      const bool best_range = best.lo != nullptr || best.hi != nullptr;
      if (best.index == nullptr ||
          cand.prefix_exprs.size() > best.prefix_exprs.size() ||
          (cand.prefix_exprs.size() == best.prefix_exprs.size() && has_range &&
           !best_range)) {
        best = std::move(cand);
      }
    }
    paths[d] = std::move(best);
  }
  return paths;
}

// Outcome of evaluating an access path's bound expressions at runtime.
enum class IndexProbe {
  kScan,      // locs filled from the index
  kNoRows,    // an equality value was NULL: nothing can match
  kFallback,  // a value failed to coerce to the key column's type — byte
              // order would disagree with SQL comparison; scan the heap
};

Result<IndexProbe> ProbeIndex(const AccessPath& path, const Schema& schema,
                              const RowBinding& binding,
                              std::vector<RowLoc>* locs) {
  const std::vector<int>& key_cols = path.index->key_columns();
  std::vector<Value> prefix;
  prefix.reserve(path.prefix_exprs.size());
  for (size_t i = 0; i < path.prefix_exprs.size(); ++i) {
    IRDB_ASSIGN_OR_RETURN(Value v, Eval(*path.prefix_exprs[i], binding));
    if (v.is_null()) return IndexProbe::kNoRows;
    auto coerced =
        schema.CoerceForColumn(static_cast<size_t>(key_cols[i]), v);
    if (!coerced.ok()) return IndexProbe::kFallback;
    prefix.push_back(std::move(*coerced));
  }
  // A NULL or uncoercible range bound degrades to unbounded on that side —
  // over-approximate, never wrong (the residual filter decides).
  std::optional<Value> lo, hi;
  const size_t range_col =
      prefix.size() < key_cols.size() ? prefix.size() : 0;
  auto bind_bound = [&](const Expr* e, std::optional<Value>* out) -> Status {
    if (e == nullptr) return Status::Ok();
    IRDB_ASSIGN_OR_RETURN(Value v, Eval(*e, binding));
    if (v.is_null()) return Status::Ok();
    auto coerced = schema.CoerceForColumn(
        static_cast<size_t>(key_cols[range_col]), v);
    if (coerced.ok()) *out = std::move(*coerced);
    return Status::Ok();
  };
  IRDB_RETURN_IF_ERROR(bind_bound(path.lo, &lo));
  IRDB_RETURN_IF_ERROR(bind_bound(path.hi, &hi));
  if (prefix.empty() && !lo.has_value() && !hi.has_value()) {
    return IndexProbe::kFallback;  // everything degraded: heap scan is honest
  }
  if (lo.has_value() || hi.has_value()) {
    path.index->ScanRange(prefix, lo, hi, locs);
  } else {
    path.index->LookupPrefix(prefix, locs);
  }
  return IndexProbe::kScan;
}

}  // namespace

Status Database::JoinScan(
    const sql::Statement& stmt,
    const std::vector<std::pair<HeapTable*, std::string>>& tables,
    const std::function<Status(const RowBinding&)>& fn) {
  IRDB_CHECK_MSG(tables.size() <= 64, "too many FROM tables");
  // Classify WHERE conjuncts: per-table filters run during that table's scan.
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(stmt.where.get(), &conjuncts);
  std::vector<std::vector<const Expr*>> table_filters(tables.size());
  std::vector<const Expr*> join_filters;
  for (const Expr* c : conjuncts) {
    IRDB_ASSIGN_OR_RETURN(int idx, ConjunctTable(*c, tables, traits_));
    if (idx >= 0) {
      table_filters[static_cast<size_t>(idx)].push_back(c);
    } else {
      join_filters.push_back(c);
    }
  }
  std::vector<AccessPath> paths = PlanAccessPaths(conjuncts, tables, traits_);

  const size_t n = tables.size();
  std::vector<LazyRow> rows(n);
  RowBinding full;
  full.traits = &traits_;
  full.tables.resize(n);
  for (size_t i = 0; i < n; ++i) {
    // Include the schema so name resolution works before a depth is bound
    // (index-prefix expressions only read already-bound depths).
    full.tables[i] = TableBinding{tables[i].second, &rows[i], nullptr,
                                  &tables[i].first->schema()};
  }

  std::vector<int32_t> table_ids(n);
  for (size_t i = 0; i < n; ++i) {
    IRDB_ASSIGN_OR_RETURN(table_ids[i], catalog_.TableId(tables[i].first->name()));
  }

  std::function<Status(size_t)> recurse = [&](size_t depth) -> Status {
    if (depth == n) {
      for (const Expr* c : join_filters) {
        IRDB_ASSIGN_OR_RETURN(Value v, Eval(*c, full));
        IRDB_ASSIGN_OR_RETURN(bool ok, IsTruthy(v));
        if (!ok) return Status::Ok();
      }
      return fn(full);
    }
    HeapTable* table = tables[depth].first;
    const RowCodec& codec = table->codec();
    RowBinding single;
    single.traits = &traits_;
    single.tables.push_back(TableBinding{tables[depth].second, &rows[depth],
                                         nullptr, &table->schema()});

    auto visit = [&](std::string_view row_bytes) -> Status {
      io_model_.AccountRowsExamined(1);
      rows[depth] = LazyRow(&codec, row_bytes);
      bool pass = true;
      for (const Expr* c : table_filters[depth]) {
        IRDB_ASSIGN_OR_RETURN(Value v, Eval(*c, single));
        IRDB_ASSIGN_OR_RETURN(pass, IsTruthy(v));
        if (!pass) break;
      }
      if (!pass) return Status::Ok();
      return recurse(depth + 1);
    };

    if (paths[depth].index != nullptr) {
      // Index nested-loop: bind the key prefix/bounds from the outer tuple.
      std::vector<RowLoc> locs;
      IRDB_ASSIGN_OR_RETURN(
          IndexProbe probe,
          ProbeIndex(paths[depth], table->schema(), full, &locs));
      if (probe == IndexProbe::kNoRows) return Status::Ok();
      if (probe == IndexProbe::kScan) {
        obs::Count(obs::Metrics::Get().index_scans);
        for (RowLoc loc : locs) {
          io_model_.TouchPage(table_ids[depth], loc.page);
          IRDB_RETURN_IF_ERROR(visit(table->ReadAt(loc)));
        }
        return Status::Ok();
      }
      // kFallback: heap scan below.
    }

    obs::Count(obs::Metrics::Get().heap_scans);
    for (int p = 0; p < table->page_count(); ++p) {
      io_model_.TouchPage(table_ids[depth], p);
      const Page* page = table->GetPage(p);
      for (int slot = 0; slot < page->slot_count(); ++slot) {
        if (!page->SlotLive(slot)) continue;
        IRDB_RETURN_IF_ERROR(visit(page->RowAt(slot)));
      }
    }
    return Status::Ok();
  };
  return recurse(0);
}

Result<std::vector<std::pair<RowLoc, std::string>>> Database::CollectMatching(
    HeapTable* table, int32_t table_id, const std::string& effective_name,
    const sql::Expr* where) {
  const RowCodec& codec = table->codec();
  std::vector<std::pair<HeapTable*, std::string>> tables{{table, effective_name}};

  std::vector<const Expr*> conjuncts;
  SplitConjuncts(where, &conjuncts);
  std::vector<AccessPath> paths = PlanAccessPaths(conjuncts, tables, traits_);

  std::vector<std::pair<RowLoc, std::string>> matches;
  LazyRow lazy;
  RowBinding binding;
  binding.traits = &traits_;
  binding.tables.push_back(
      TableBinding{effective_name, &lazy, nullptr, &table->schema()});

  auto visit = [&](RowLoc loc, std::string_view bytes) -> Status {
    io_model_.AccountRowsExamined(1);
    lazy = LazyRow(&codec, bytes);
    bool match = true;
    if (where != nullptr) {
      IRDB_ASSIGN_OR_RETURN(Value v, Eval(*where, binding));
      IRDB_ASSIGN_OR_RETURN(match, IsTruthy(v));
    }
    if (match) matches.emplace_back(loc, std::string(bytes));
    return Status::Ok();
  };

  if (paths[0].index != nullptr) {
    std::vector<RowLoc> locs;
    IRDB_ASSIGN_OR_RETURN(IndexProbe probe,
                          ProbeIndex(paths[0], table->schema(), binding, &locs));
    if (probe == IndexProbe::kNoRows) return matches;
    if (probe == IndexProbe::kScan) {
      obs::Count(obs::Metrics::Get().index_scans);
      for (RowLoc loc : locs) {
        io_model_.TouchPage(table_id, loc.page);
        IRDB_RETURN_IF_ERROR(visit(loc, table->ReadAt(loc)));
      }
      return matches;
    }
  }

  obs::Count(obs::Metrics::Get().heap_scans);
  for (int p = 0; p < table->page_count(); ++p) {
    io_model_.TouchPage(table_id, p);
    const Page* page = table->GetPage(p);
    for (int slot = 0; slot < page->slot_count(); ++slot) {
      if (!page->SlotLive(slot)) continue;
      IRDB_RETURN_IF_ERROR(visit(RowLoc{p, slot}, page->RowAt(slot)));
    }
  }
  return matches;
}

void Database::PlanSelectLocks(const sql::Statement& stmt,
                               std::vector<LockPlanEntry>* plan) {
  using concurrency::LockMode;
  using concurrency::ResourceId;
  // Resolve FROM tables; unresolvable names are the executor's problem.
  std::vector<std::pair<HeapTable*, std::string>> tables;
  std::vector<int32_t> ids;
  for (const sql::TableRef& ref : stmt.from) {
    HeapTable* t = catalog_.Find(ref.name);
    auto id = catalog_.TableId(ref.name);
    if (t == nullptr || !id.ok()) return;
    tables.emplace_back(t, ref.effective_name());
    ids.push_back(*id);
  }
  if (tables.empty()) return;

  if (tables.size() == 1 && tables[0].first->index() != nullptr) {
    // Mirror the access-path planner: a WHERE that pins the full primary
    // key with literal equality reads exactly one key, so an intention
    // lock plus a shared key lock suffices (equality predicates cannot see
    // phantoms — any INSERT of that key takes the same key X).
    std::vector<const Expr*> conjuncts;
    SplitConjuncts(stmt.where.get(), &conjuncts);
    std::vector<AccessPath> paths = PlanAccessPaths(conjuncts, tables, traits_);
    const TableIndex* index = tables[0].first->index();
    if (paths[0].index == index &&
        paths[0].prefix_exprs.size() == index->key_columns().size()) {
      auto h = HashKeyLiterals(tables[0].first->schema(), index->key_columns(),
                               paths[0].prefix_exprs);
      if (h.has_value()) {
        plan->push_back(
            {ResourceId::Table(ids[0]), LockMode::kIntentionShared});
        plan->push_back({ResourceId::Key(ids[0], *h), LockMode::kShared});
        return;
      }
    }
  }
  // Scans and joins read arbitrary rows: table S on every source.
  for (int32_t id : ids) {
    plan->push_back({ResourceId::Table(id), LockMode::kShared});
  }
}

Result<ResultSet> Database::ExecSelect(Session& s, const sql::Statement& stmt) {
  (void)s;
  std::vector<std::pair<HeapTable*, std::string>> tables;
  for (const sql::TableRef& ref : stmt.from) {
    IRDB_ASSIGN_OR_RETURN(HeapTable* t, RequireTable(ref.name));
    for (const auto& [_, name] : tables) {
      if (EqualsIgnoreCase(name, ref.effective_name())) {
        return Status::InvalidArgument("duplicate table name " +
                                       ref.effective_name() + " in FROM");
      }
    }
    tables.emplace_back(t, ref.effective_name());
  }
  if (tables.empty()) return Status::InvalidArgument("SELECT without FROM");

  // Resolve every referenced name up front (empty tables still type-check).
  std::vector<std::pair<const Schema*, std::string>> scope;
  scope.reserve(tables.size());
  for (const auto& [table, name] : tables) {
    scope.emplace_back(&table->schema(), name);
  }
  for (const sql::SelectItem& item : stmt.select_items) {
    if (item.star) continue;
    IRDB_RETURN_IF_ERROR(ValidateColumnRefs(*item.expr, scope, traits_));
  }
  if (stmt.where) {
    IRDB_RETURN_IF_ERROR(ValidateColumnRefs(*stmt.where, scope, traits_));
  }
  for (const auto& ge : stmt.group_by) {
    IRDB_RETURN_IF_ERROR(ValidateColumnRefs(*ge, scope, traits_));
  }
  for (const auto& oi : stmt.order_by) {
    IRDB_RETURN_IF_ERROR(ValidateColumnRefs(*oi.expr, scope, traits_));
  }

  bool aggregate = !stmt.group_by.empty();
  for (const sql::SelectItem& item : stmt.select_items) {
    if (!item.star && item.expr->ContainsAggregate()) aggregate = true;
  }
  if (aggregate) return ExecAggregateSelect(stmt, tables);

  // Expand the projection list.
  struct OutCol {
    int table_idx = -1;  // >=0: direct column fetch
    int col_idx = -1;
    const Expr* expr = nullptr;
    std::string name;
  };
  std::vector<OutCol> out_cols;
  for (const sql::SelectItem& item : stmt.select_items) {
    if (item.star) {
      for (size_t t = 0; t < tables.size(); ++t) {
        if (!item.star_table.empty() &&
            !EqualsIgnoreCase(tables[t].second, item.star_table)) {
          continue;
        }
        const Schema& schema = tables[t].first->schema();
        for (size_t c = 0; c < schema.num_columns(); ++c) {
          out_cols.push_back(OutCol{static_cast<int>(t), static_cast<int>(c),
                                    nullptr, schema.column(c).name});
        }
      }
    } else {
      OutCol oc;
      oc.expr = item.expr.get();
      if (!item.alias.empty()) {
        oc.name = item.alias;
      } else if (item.expr->kind == ExprKind::kColumnRef) {
        oc.name = item.expr->column;
      } else {
        oc.name = "expr";
      }
      out_cols.push_back(std::move(oc));
    }
  }

  std::vector<SortableRow> rows;
  IRDB_RETURN_IF_ERROR(JoinScan(stmt, tables, [&](const RowBinding& binding) -> Status {
    SortableRow row;
    row.out.reserve(out_cols.size());
    for (const OutCol& oc : out_cols) {
      if (oc.expr != nullptr) {
        IRDB_ASSIGN_OR_RETURN(Value v, Eval(*oc.expr, binding));
        row.out.push_back(std::move(v));
      } else {
        IRDB_ASSIGN_OR_RETURN(
            Value v, binding.tables[static_cast<size_t>(oc.table_idx)].row->Get(
                         static_cast<size_t>(oc.col_idx)));
        row.out.push_back(std::move(v));
      }
    }
    row.keys.reserve(stmt.order_by.size());
    for (const sql::OrderItem& oi : stmt.order_by) {
      IRDB_ASSIGN_OR_RETURN(Value v, Eval(*oi.expr, binding));
      row.keys.push_back(std::move(v));
    }
    rows.push_back(std::move(row));
    return Status::Ok();
  }));

  ResultSet rs;
  for (const OutCol& oc : out_cols) rs.columns.push_back(oc.name);
  SortAndLimit(&rows, stmt.order_by, stmt.limit, &rs.rows);
  return rs;
}

Result<ResultSet> Database::ExecAggregateSelect(
    const sql::Statement& stmt,
    const std::vector<std::pair<HeapTable*, std::string>>& tables) {
  // Gather the aggregate call sites.
  std::vector<const Expr*> agg_nodes;
  for (const sql::SelectItem& item : stmt.select_items) {
    if (item.star) {
      return Status::InvalidArgument("* not allowed with aggregates");
    }
    CollectAggregates(*item.expr, &agg_nodes);
  }
  for (const sql::OrderItem& oi : stmt.order_by) {
    CollectAggregates(*oi.expr, &agg_nodes);
  }
  for (const Expr* agg : agg_nodes) {
    const std::string& f = agg->func_name;
    if (f != "SUM" && f != "COUNT" && f != "MIN" && f != "MAX" && f != "AVG") {
      return Status::Unimplemented("aggregate function " + f);
    }
  }

  struct Group {
    std::vector<Value> keys;
    std::vector<Row> rep_rows;  // materialized first tuple, for key columns
    std::vector<AggAccum> accums;
  };
  std::map<std::string, Group> groups;

  IRDB_RETURN_IF_ERROR(JoinScan(stmt, tables, [&](const RowBinding& binding) -> Status {
    std::vector<Value> keys;
    keys.reserve(stmt.group_by.size());
    std::string key_repr;
    for (const auto& ge : stmt.group_by) {
      IRDB_ASSIGN_OR_RETURN(Value v, Eval(*ge, binding));
      v.AppendTo(&key_repr);
      keys.push_back(std::move(v));
    }
    auto [it, inserted] = groups.try_emplace(key_repr);
    Group& g = it->second;
    if (inserted) {
      g.keys = std::move(keys);
      g.accums.resize(agg_nodes.size());
      g.rep_rows.reserve(binding.tables.size());
      for (const TableBinding& tb : binding.tables) {
        auto mat = tb.row->codec().Decode(tb.row->bytes());
        if (!mat.ok()) return mat.status();
        g.rep_rows.push_back(std::move(mat).value());
      }
    }
    for (size_t a = 0; a < agg_nodes.size(); ++a) {
      const Expr* agg = agg_nodes[a];
      if (agg->star_arg) {
        ++g.accums[a].count;
        g.accums[a].any = true;
        continue;
      }
      IRDB_ASSIGN_OR_RETURN(Value v, Eval(*agg->list[0], binding));
      if (v.is_null()) continue;
      g.accums[a].Add(v, agg->distinct);
    }
    return Status::Ok();
  }));

  // A global aggregate over an empty input still yields one row.
  if (groups.empty() && stmt.group_by.empty()) {
    Group g;
    g.accums.resize(agg_nodes.size());
    for (const auto& [table, _] : tables) {
      Row blank;
      blank.values.assign(table->schema().num_columns(), Value::Null());
      g.rep_rows.push_back(std::move(blank));
    }
    groups.emplace("", std::move(g));
  }

  ResultSet rs;
  for (const sql::SelectItem& item : stmt.select_items) {
    if (!item.alias.empty()) {
      rs.columns.push_back(item.alias);
    } else if (item.expr->kind == ExprKind::kColumnRef) {
      rs.columns.push_back(item.expr->column);
    } else if (item.expr->kind == ExprKind::kFuncCall) {
      rs.columns.push_back(ToLowerAscii(item.expr->func_name));
    } else {
      rs.columns.push_back("expr");
    }
  }

  std::vector<SortableRow> rows;
  for (auto& [_, g] : groups) {
    std::unordered_map<const Expr*, Value> agg_values;
    for (size_t a = 0; a < agg_nodes.size(); ++a) {
      agg_values[agg_nodes[a]] =
          g.accums[a].Finalize(agg_nodes[a]->func_name, agg_nodes[a]->distinct);
    }
    RowBinding binding;
    binding.traits = &traits_;
    binding.aggregates = &agg_values;
    binding.tables.reserve(tables.size());
    for (size_t t = 0; t < tables.size(); ++t) {
      binding.tables.push_back(TableBinding{tables[t].second, nullptr,
                                            &g.rep_rows[t],
                                            &tables[t].first->schema()});
    }
    SortableRow row;
    for (const sql::SelectItem& item : stmt.select_items) {
      IRDB_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, binding));
      row.out.push_back(std::move(v));
    }
    for (const sql::OrderItem& oi : stmt.order_by) {
      IRDB_ASSIGN_OR_RETURN(Value v, Eval(*oi.expr, binding));
      row.keys.push_back(std::move(v));
    }
    rows.push_back(std::move(row));
  }
  SortAndLimit(&rows, stmt.order_by, stmt.limit, &rs.rows);
  return rs;
}

}  // namespace irdb
