// Crash recovery from the write-ahead log.
//
// The paper's framework assumes the DBMS's standard WAL recovery underneath
// ("standard recovery mechanisms in modern DBMSs are designed to recover
// from hardware failures"); this module is that substrate. ARIES-style:
//
//   1. rebuild the catalog from kDdl records;
//   2. REDO every row operation — of every transaction, including aborted
//      ones and their compensation records — in log order. Replayed inserts
//      deterministically land at the logged (page, offset), so the physical
//      page layout (and thus the §4.3 Sybase addressing) is reproduced
//      byte-exactly;
//   3. UNDO losers — transactions with neither COMMIT nor ABORT in the log —
//      newest-first, locating each affected row by adjusting the logged
//      offset across later same-page deletes (the §4.3 movement rule).
//
// Loser undo assumes a serial workload shape: a loser's rows were not
// concurrently deleted-and-rolled-back by other in-flight transactions
// (full ARIES page-LSN tracking is out of scope).
//
// The recovered database's own WAL restarts empty (a recovered instance
// begins a fresh log), with transaction/rowid/identity counters advanced
// past every recovered value.
#pragma once

#include <memory>
#include <string_view>

#include "engine/database.h"
#include "util/status.h"

namespace irdb {

// Builds a fresh Database holding exactly the state the crashed instance's
// log describes. `traits` must match the crashed instance's flavor.
Result<std::unique_ptr<Database>> RecoverDatabase(const WalLog& wal,
                                                  const FlavorTraits& traits);

struct WalRecoveryInfo {
  int64_t records_recovered = 0;
  bool truncated_tail = false;  // a torn final frame was dropped
  int64_t dropped_bytes = 0;
};

// Recovery from the durable byte encoding (txn/wal_codec.h): verifies
// per-record checksums, truncates a torn tail (the interrupted final frame),
// and refuses interior corruption. A record lost to the torn tail belongs to
// a transaction whose COMMIT never became durable, so the standard loser-undo
// pass yields a consistent state.
Result<std::unique_ptr<Database>> RecoverDatabaseFromBytes(
    std::string_view wal_bytes, const FlavorTraits& traits,
    WalRecoveryInfo* info = nullptr);

}  // namespace irdb
