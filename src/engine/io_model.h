// Simulated I/O cost model.
//
// The paper's testbed was disk-bound (4200/7200 RPM drives); our engine is
// in-memory, so the footprint-size effects of Fig. 4 (cache hit ratio, log
// write dominance) are reproduced with a virtual clock: page-cache misses and
// commit-time log flushes advance simulated time, which benches add to
// measured wall time when computing throughput. DESIGN.md documents this
// substitution.
//
// Thread-safety: the cache, the counters, and the clock may be touched by
// concurrent sessions. The virtual clock is a lone atomic (proxies advance
// it directly for retry backoff); everything else is guarded by an internal
// mutex that is only taken when the model is enabled, so the default
// (disabled) hot path stays lock-free. Configure() is setup-only — call it
// before the workload starts.
//
// realtime_stall_scale additionally turns charged I/O time into *real*
// sleeps, taken after the internal mutex is released. This emulates a
// disk-bound engine on real threads: statements spend most of their
// engine-resident time stalled, so a serialization point (the old global
// engine mutex) caps throughput at one stall at a time while the lock
// manager overlaps stalls from independent sessions. bench_concurrency uses
// it to measure the engine ceiling even on single-core hosts, where the
// in-memory engine alone is CPU-bound and would hide the serialization.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace irdb {

class VirtualClock {
 public:
  void Advance(double seconds) {
    double cur = seconds_.load(std::memory_order_relaxed);
    while (!seconds_.compare_exchange_weak(cur, cur + seconds,
                                           std::memory_order_relaxed)) {
    }
  }
  double seconds() const { return seconds_.load(std::memory_order_relaxed); }
  void Reset() { seconds_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> seconds_{0};
};

struct IoCostParams {
  bool enabled = false;
  // Page cache capacity in pages; misses cost a random read.
  int64_t cache_pages = 1 << 30;
  // 7200 RPM-era random read (the paper's server drive).
  double read_miss_seconds = 8.0e-3;
  // Commit-time log flush: an fsync on a 2004 disk without write cache
  // (half a rotation plus settling), plus sequential write time per byte.
  double log_flush_seconds = 1.5e-3;
  double log_write_seconds_per_byte = 6.0e-7;
  // Server CPU, scaled to a 2004-class machine: per-statement parse/plan
  // cost and per-examined-row processing cost. Charged to the virtual clock
  // so that in-memory wall time does not distort relative throughput.
  double statement_cpu_seconds = 1.0e-4;
  double row_cpu_seconds = 2.0e-6;
  // When > 0, every charge also sleeps charge * scale real seconds (see the
  // header comment). 0 keeps the model purely virtual.
  double realtime_stall_scale = 0.0;
  // Model ONE log device per engine: commit-time log flushes serialize on a
  // device mutex held across the (scaled) stall, the way fsyncs queue on a
  // single spindle. Caps a single engine's commit rate near
  // 1 / log_flush_seconds regardless of session concurrency — which is
  // exactly what sharding buys back (one log device per shard), so
  // bench_shard uses it to surface the scaling headroom on any host.
  // Off by default: read stalls and CPU charges still overlap freely.
  bool serialize_log_flush = false;
};

// LRU page cache keyed by (table_id, page_no).
class PageCache {
 public:
  explicit PageCache(int64_t capacity) : capacity_(capacity) {}

  void set_capacity(int64_t capacity) { capacity_ = capacity; }

  // Touches a page; returns true on hit.
  bool Touch(int32_t table_id, int32_t page_no) {
    const uint64_t key =
        (static_cast<uint64_t>(static_cast<uint32_t>(table_id)) << 32) |
        static_cast<uint32_t>(page_no);
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return true;
    }
    lru_.push_front(key);
    map_[key] = lru_.begin();
    if (static_cast<int64_t>(map_.size()) > capacity_) {
      map_.erase(lru_.back());
      lru_.pop_back();
    }
    return false;
  }

  void Clear() {
    map_.clear();
    lru_.clear();
  }

  int64_t size() const { return static_cast<int64_t>(map_.size()); }

 private:
  int64_t capacity_;
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
};

// Bundles the cache, the virtual clock, and the cost parameters.
class IoModel {
 public:
  explicit IoModel(IoCostParams params = {})
      : params_(params), enabled_(params.enabled), cache_(params.cache_pages) {}

  // Setup-only: not safe against in-flight statements.
  void Configure(IoCostParams params) {
    std::lock_guard<std::mutex> lk(mu_);
    params_ = params;
    enabled_.store(params.enabled, std::memory_order_release);
    cache_.set_capacity(params.cache_pages);
  }
  const IoCostParams& params() const { return params_; }

  void TouchPage(int32_t table_id, int32_t page_no) {
    if (!enabled()) return;
    double charge = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++page_touches_;
      if (!cache_.Touch(table_id, page_no)) {
        ++page_misses_;
        charge = params_.read_miss_seconds;
      }
    }
    Charge(charge);
  }

  // A write-only touch (INSERT appends): brings the page into the cache but
  // charges no synchronous read — durability is paid by the commit-time log
  // flush, and dirty-page writeback is asynchronous in a steal/no-force
  // engine.
  void TouchPageWrite(int32_t table_id, int32_t page_no) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lk(mu_);
    ++page_touches_;
    cache_.Touch(table_id, page_no);
  }

  void AccountLogFlush(int64_t bytes) {
    if (!enabled()) return;
    const double seconds =
        params_.log_flush_seconds +
        params_.log_write_seconds_per_byte * static_cast<double>(bytes);
    if (params_.serialize_log_flush) {
      // One flush at a time on this engine's log device; the realtime
      // stall (if any) happens while the device is held, so concurrent
      // commits queue behind it exactly like fsyncs on one spindle.
      std::lock_guard<std::mutex> lk(log_device_mu_);
      Charge(seconds);
      return;
    }
    Charge(seconds);
  }

  void AccountStatement() {
    if (!enabled()) return;
    Charge(params_.statement_cpu_seconds);
  }

  void AccountRowsExamined(int64_t rows) {
    if (!enabled()) return;
    {
      std::lock_guard<std::mutex> lk(mu_);
      rows_examined_ += rows;
    }
    Charge(params_.row_cpu_seconds * static_cast<double>(rows));
  }

  VirtualClock& clock() { return clock_; }
  const VirtualClock& clock() const { return clock_; }
  PageCache& cache() { return cache_; }

  int64_t page_touches() const {
    std::lock_guard<std::mutex> lk(mu_);
    return page_touches_;
  }
  int64_t page_misses() const {
    std::lock_guard<std::mutex> lk(mu_);
    return page_misses_;
  }
  int64_t rows_examined() const {
    std::lock_guard<std::mutex> lk(mu_);
    return rows_examined_;
  }

  void ResetStats() {
    std::lock_guard<std::mutex> lk(mu_);
    page_touches_ = 0;
    page_misses_ = 0;
    rows_examined_ = 0;
    clock_.Reset();
  }

 private:
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  // Advances the virtual clock and, in realtime-stall mode, sleeps the
  // scaled charge with no lock held so independent sessions overlap stalls.
  void Charge(double seconds) {
    if (seconds <= 0) return;
    clock_.Advance(seconds);
    const double scale = params_.realtime_stall_scale;
    if (scale > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(seconds * scale));
    }
  }

  IoCostParams params_;
  std::atomic<bool> enabled_;
  mutable std::mutex mu_;
  std::mutex log_device_mu_;  // serialize_log_flush: the engine's log disk
  PageCache cache_;
  VirtualClock clock_;
  int64_t page_touches_ = 0;
  int64_t page_misses_ = 0;
  int64_t rows_examined_ = 0;
};

}  // namespace irdb
