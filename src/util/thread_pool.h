// Fixed-size worker pool with a bounded task queue, built for the parallel
// repair pipeline (DESIGN.md §5c) but generic: submit fire-and-forget tasks
// via futures, or fan a half-open index range out with ParallelFor.
//
// Determinism contract: ParallelFor partitions [0, n) into exactly
// min(lanes(), n) contiguous chunks whose boundaries are a pure function of
// (n, lanes()) — see SplitRange. Callers that write per-chunk results and
// stitch them in chunk order therefore produce output independent of thread
// scheduling, which is what lets the parallel repair path promise results
// identical to the serial one.
//
// A pool constructed with threads <= 1 starts no workers: Submit and
// ParallelFor run inline on the caller, so `threads=1` exercises the exact
// same call sequence as the pre-parallel code.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace irdb::util {

struct ThreadPoolStats {
  int threads = 0;            // worker count (0 when running inline)
  int64_t tasks_run = 0;      // tasks executed (inline ones included)
  int64_t parallel_fors = 0;  // ParallelFor invocations
  int64_t max_queue_depth = 0;
};

class ThreadPool {
 public:
  // `threads` <= 1 means inline execution (no workers). `queue_capacity`
  // bounds the pending-task queue; Submit blocks when it is full so a fast
  // producer cannot balloon memory.
  explicit ThreadPool(int threads, size_t queue_capacity = 256);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Lanes available for concurrent work: worker count, or 1 when inline.
  int lanes() const { return workers_.empty() ? 1 : static_cast<int>(workers_.size()); }

  // Enqueues `fn`; the future resolves when it has run. Inline pools run it
  // before returning. Tasks must not throw.
  std::future<void> Submit(std::function<void()> fn);

  // Runs fn(begin, end, chunk) for each chunk of SplitRange(n, lanes()),
  // concurrently on the workers, and returns when all chunks are done.
  // `chunk` is the chunk's index, usable as a lock-free per-lane slot.
  void ParallelFor(int64_t n,
                   const std::function<void(int64_t, int64_t, int)>& fn);

  // The canonical chunking: min(chunks, n) contiguous ranges covering
  // [0, n), sizes differing by at most one, earlier chunks larger. Pure.
  static std::vector<std::pair<int64_t, int64_t>> SplitRange(int64_t n,
                                                             int chunks);

  ThreadPoolStats stats() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable space_ready_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t queue_capacity_;
  bool shutting_down_ = false;
  ThreadPoolStats stats_;
};

}  // namespace irdb::util
