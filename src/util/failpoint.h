// Deterministic failpoint subsystem for fault-injection testing.
//
// A failpoint is a named site in production code where a test (or the chaos
// harness) can ask for a failure to be injected. Sites are checked with
//
//   if (fail::Triggered("wire.roundtrip")) return fail::Inject("wire.roundtrip");
//
// and armed from test code via the global registry:
//
//   fail::Registry::Instance().Seed(seed);
//   fail::Registry::Instance().Arm("wire.roundtrip", fail::Trigger::Probability(0.05));
//
// Determinism: all probabilistic decisions draw from one seeded splitmix64
// stream inside the registry, so a run is reproduced exactly by its seed
// (given the same sequence of site evaluations, which the serial execution
// model guarantees).
//
// Trigger semantics (the order Evaluate applies the fields):
//   1. skip_first evaluations never fire (they do count as evaluations);
//   2. once max_hits >= 0 hits have fired, the site never fires again;
//   3. every_nth > 0 takes precedence over probability and fires
//      deterministically on each Nth post-skip evaluation (1-based);
//   4. otherwise probability >= 1.0 always fires, probability in (0, 1)
//      draws one Bernoulli from the shared seeded stream — and only this
//      case consumes randomness, so arming deterministic triggers never
//      shifts the rng sequence of a seeded run.
// Re-arming a site resets its evaluation/hit counts.
//
// Performance: when no site is armed, Triggered() is a single relaxed atomic
// load — the production (failpoints-disabled) cost is negligible. Armed
// evaluations and trips are also mirrored to the obs registry
// (irdb_failpoint_*) and each trip is journaled with its site name.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace irdb::fail {

// When and how often an armed site fires.
struct Trigger {
  double probability = 0.0;  // independent chance per evaluation
  int64_t every_nth = 0;     // > 0: fire on every Nth evaluation (1-based)
  int64_t max_hits = -1;     // >= 0: stop firing after this many hits
  int64_t skip_first = 0;    // let this many evaluations pass before firing

  static Trigger Probability(double p) {
    Trigger t;
    t.probability = p;
    return t;
  }
  static Trigger EveryNth(int64_t n) {
    Trigger t;
    t.every_nth = n;
    return t;
  }
  // Fires on the next evaluation, exactly once.
  static Trigger OneShot(int64_t skip = 0) {
    Trigger t;
    t.probability = 1.0;
    t.max_hits = 1;
    t.skip_first = skip;
    return t;
  }
  // Fires on every evaluation until a hit budget runs out (or forever).
  static Trigger Always(int64_t max_hits = -1) {
    Trigger t;
    t.probability = 1.0;
    t.max_hits = max_hits;
    return t;
  }
};

struct SiteStats {
  int64_t evaluations = 0;
  int64_t hits = 0;
};

class Registry {
 public:
  static Registry& Instance();

  // Arms (or re-arms, resetting counters for) the named site.
  void Arm(const std::string& site, Trigger trigger);
  // Disarms the site; its stats remain readable until ResetStats().
  void Disarm(const std::string& site);
  void DisarmAll();

  // Reseeds the shared random stream. Call before arming sites for a run.
  void Seed(uint64_t seed);
  uint64_t seed() const;

  // One evaluation of the named site; true means "fail here now".
  // Unarmed sites always return false (but still count evaluations if the
  // site has been seen before).
  bool Evaluate(std::string_view site);

  // A raw draw from the shared seeded stream, for fault shaping that needs
  // randomness outside Evaluate (e.g. how many tail bytes to tear off).
  uint64_t NextRandom();

  SiteStats Stats(const std::string& site) const;
  int64_t TotalHits() const;
  void ResetStats();

  // Fast path: false when no site is armed anywhere.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

 private:
  Registry() = default;

  struct Site {
    Trigger trigger;
    bool armed = false;
    SiteStats stats;
  };

  mutable std::mutex mu_;
  uint64_t seed_ = 0;
  Rng rng_{0};
  std::map<std::string, Site, std::less<>> sites_;
  static std::atomic<int> armed_count_;
};

// Hot-path check: free when nothing is armed.
inline bool Triggered(std::string_view site) {
  if (!Registry::AnyArmed()) return false;
  return Registry::Instance().Evaluate(site);
}

// The canonical status an injected fault produces: retryable, and tagged so
// observers (ProxyStats::injected_faults_hit) can tell injected failures from
// organic ones.
Status Inject(std::string_view site);

// True iff `s` was produced by Inject() (possibly relayed over the wire).
bool IsInjected(const Status& s);

}  // namespace irdb::fail
