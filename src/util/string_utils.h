// Small string helpers shared across modules.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace irdb {

// Splits `s` on `sep`, omitting empty pieces.
std::vector<std::string> SplitNonEmpty(std::string_view s, char sep);

// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

// ASCII case helpers (SQL keywords are case-insensitive).
std::string ToUpperAscii(std::string_view s);
std::string ToLowerAscii(std::string_view s);
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Trims ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);

// Escapes a string for inclusion in a single-quoted SQL literal
// (doubles embedded quotes).
std::string SqlQuote(std::string_view s);

// Parses a signed 64-bit integer; returns false on malformed input.
bool ParseInt64(std::string_view s, int64_t* out);
bool ParseDouble(std::string_view s, double* out);

// FNV-1a 64-bit hash, used for state fingerprints in tests/benches.
uint64_t Fnv1a(std::string_view s, uint64_t seed = 1469598103934665603ull);

}  // namespace irdb
