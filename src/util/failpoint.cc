// Registry implementation. One seeded rng stream serves every site
// (determinism contract, see the header); observability taps publish each
// evaluation/trip to obs counters and the event journal without touching
// the rng, so instrumentation can never perturb a seeded run.
#include "util/failpoint.h"

#include "obs/catalog.h"
#include "obs/journal.h"

namespace irdb::fail {

std::atomic<int> Registry::armed_count_{0};

namespace {
constexpr std::string_view kInjectedPrefix = "injected: ";
}  // namespace

Registry& Registry::Instance() {
  static Registry* instance = new Registry();
  return *instance;
}

void Registry::Arm(const std::string& site, Trigger trigger) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = sites_[site];
  if (!s.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  s.armed = true;
  s.trigger = trigger;
  s.stats = SiteStats{};
}

void Registry::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void Registry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, site] : sites_) {
    if (site.armed) {
      site.armed = false;
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void Registry::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  rng_ = Rng(seed);
}

uint64_t Registry::seed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seed_;
}

bool Registry::Evaluate(std::string_view site) {
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return false;
    Site& s = it->second;
    ++s.stats.evaluations;
    if (!s.armed) return false;
    const Trigger& t = s.trigger;
    if (s.stats.evaluations <= t.skip_first) return false;
    if (t.max_hits >= 0 && s.stats.hits >= t.max_hits) return false;
    if (t.every_nth > 0) {
      fire = (s.stats.evaluations - t.skip_first) % t.every_nth == 0;
    } else if (t.probability >= 1.0) {
      fire = true;
    } else if (t.probability > 0.0) {
      fire = rng_.Bernoulli(t.probability);
    }
    if (fire) ++s.stats.hits;
  }
  obs::Count(obs::Metrics::Get().failpoint_evaluations);
  if (fire) {
    obs::Count(obs::Metrics::Get().failpoint_trips);
    obs::EventJournal::Default().Append(obs::event::kFailpointTrip,
                                        {{"site", std::string(site)}});
  }
  return fire;
}

uint64_t Registry::NextRandom() {
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.Next();
}

SiteStats Registry::Stats(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return SiteStats{};
  return it->second.stats;
}

int64_t Registry::TotalHits() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [name, site] : sites_) total += site.stats.hits;
  return total;
}

void Registry::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, site] : sites_) site.stats = SiteStats{};
}

Status Inject(std::string_view site) {
  return Status(StatusCode::kUnavailable,
                std::string(kInjectedPrefix) + std::string(site));
}

bool IsInjected(const Status& s) {
  return !s.ok() && s.message().rfind(kInjectedPrefix, 0) == 0;
}

}  // namespace irdb::fail
