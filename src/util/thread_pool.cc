#include "util/thread_pool.h"

#include <algorithm>

#include "obs/catalog.h"
#include "obs/trace.h"

namespace irdb::util {

ThreadPool::ThreadPool(int threads, size_t queue_capacity)
    : queue_capacity_(std::max<size_t>(1, queue_capacity)) {
  if (threads <= 1) {
    obs::SetGauge(obs::Metrics::Get().pool_workers, 0);
    return;  // inline mode: no workers, no queue traffic
  }
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  stats_.threads = threads;
  obs::SetGauge(obs::Metrics::Get().pool_workers, threads);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++stats_.tasks_run;
    }
    space_ready_.notify_one();
    obs::Count(obs::Metrics::Get().pool_tasks);
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  if (workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.tasks_run;
    }
    obs::Count(obs::Metrics::Get().pool_tasks);
    task();
    return future;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    space_ready_.wait(lock, [this] {
      return shutting_down_ || queue_.size() < queue_capacity_;
    });
    // Post-shutdown submission would deadlock the future; run it inline.
    if (shutting_down_) {
      ++stats_.tasks_run;
      lock.unlock();
      obs::Count(obs::Metrics::Get().pool_tasks);
      task();
      return future;
    }
    queue_.push_back(std::move(task));
    stats_.max_queue_depth =
        std::max(stats_.max_queue_depth, static_cast<int64_t>(queue_.size()));
  }
  task_ready_.notify_one();
  return future;
}

std::vector<std::pair<int64_t, int64_t>> ThreadPool::SplitRange(int64_t n,
                                                                int chunks) {
  std::vector<std::pair<int64_t, int64_t>> out;
  if (n <= 0) return out;
  const int64_t k = std::min<int64_t>(std::max(1, chunks), n);
  const int64_t base = n / k;
  const int64_t extra = n % k;  // the first `extra` chunks take one more
  int64_t begin = 0;
  for (int64_t i = 0; i < k; ++i) {
    const int64_t size = base + (i < extra ? 1 : 0);
    out.emplace_back(begin, begin + size);
    begin += size;
  }
  return out;
}

void ThreadPool::ParallelFor(
    int64_t n, const std::function<void(int64_t, int64_t, int)>& fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.parallel_fors;
  }
  obs::Count(obs::Metrics::Get().pool_parallel_fors);
  obs::Span outer(obs::span::kPoolParallelFor);
  const auto chunks = SplitRange(n, lanes());
  outer.AddArg("n", n);
  outer.AddArg("chunks", static_cast<int64_t>(chunks.size()));
  auto run_chunk = [&fn](int64_t begin, int64_t end, int idx) {
    obs::Span s(obs::span::kPoolChunk);
    s.AddArg("chunk", idx);
    s.AddArg("begin", begin);
    s.AddArg("end", end);
    fn(begin, end, idx);
  };
  if (workers_.empty() || chunks.size() <= 1) {
    for (size_t c = 0; c < chunks.size(); ++c) {
      run_chunk(chunks[c].first, chunks[c].second, static_cast<int>(c));
    }
    return;
  }
  std::vector<std::future<void>> pending;
  pending.reserve(chunks.size());
  for (size_t c = 0; c < chunks.size(); ++c) {
    const auto [begin, end] = chunks[c];
    const int idx = static_cast<int>(c);
    pending.push_back(
        Submit([&run_chunk, begin, end, idx] { run_chunk(begin, end, idx); }));
  }
  for (std::future<void>& f : pending) f.wait();
}

ThreadPoolStats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ThreadPoolStats s = stats_;
  s.threads = lanes() == 1 ? 0 : lanes();
  return s;
}

}  // namespace irdb::util
