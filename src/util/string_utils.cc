#include "util/string_utils.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace irdb {

std::vector<std::string> SplitNonEmpty(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string_view::npos) end = s.size();
    if (end > start) out.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t end = s.find(sep, start);
    if (end == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string SqlQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('\'');
  for (char c : s) {
    if (c == '\'') out.push_back('\'');
    out.push_back(c);
  }
  out.push_back('\'');
  return out;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

uint64_t Fnv1a(std::string_view s, uint64_t seed) {
  uint64_t h = seed;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace irdb
