// Deterministic PRNG used by workload generators and property tests.
//
// splitmix64 core: fast, reproducible across platforms, no libstdc++
// distribution-implementation dependence (std::uniform_int_distribution is
// not portable across standard libraries).
#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace irdb {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    IRDB_CHECK(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  double UniformReal(double lo, double hi) {
    double u = static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
    return lo + u * (hi - lo);
  }

  bool Bernoulli(double p) { return UniformReal(0.0, 1.0) < p; }

  // TPC-C NURand non-uniform distribution (clause 2.1.6).
  int64_t NuRand(int64_t a, int64_t x, int64_t y, int64_t c) {
    return (((Uniform(0, a) | Uniform(x, y)) + c) % (y - x + 1)) + x;
  }

  // Random alphanumeric string of length in [min_len, max_len].
  std::string AlnumString(int min_len, int max_len) {
    static const char kChars[] =
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    int len = static_cast<int>(Uniform(min_len, max_len));
    std::string out;
    out.reserve(len);
    for (int i = 0; i < len; ++i) out.push_back(kChars[Next() % 62]);
    return out;
  }

 private:
  uint64_t state_;
};

}  // namespace irdb
