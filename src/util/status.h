// Lightweight Status / Result types used throughout the library.
//
// The engine is exception-free on hot paths: recoverable errors (bad SQL,
// constraint violations, repair conflicts) flow through Status / Result<T>.
// Programming errors use IRDB_CHECK which aborts with a diagnostic.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace irdb {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kAborted,          // transaction aborted (conflict / explicit rollback)
  kParseError,       // SQL syntax error
  kConstraint,       // schema or integrity constraint violation
  kUnavailable,      // transient infrastructure failure; safe to retry
};

const char* StatusCodeName(StatusCode code);

// Message prefix marking a kAborted status as safely retryable: the engine
// tags deadlock aborts of autocommit statements with it, because the aborted
// transaction consisted of exactly the failed statement and left no state
// behind — re-issuing the statement re-runs the whole transaction. Deadlock
// aborts of multi-statement transactions are tagged "[deadlock]" only (the
// caller must re-run the transaction, not the statement). The tag lives in
// the message so it survives the wire protocol's code+message round trip.
inline constexpr char kRetryableAbortTag[] = "[deadlock-retry]";

// Message prefix marking a kUnavailable status as a quarantine reject: the
// statement's lock plan touched a slice fenced off by an online repair
// (DESIGN.md §5g). Retryable like any kUnavailable — the slice is released
// as soon as its compensation lane commits — but machine-distinguishable
// from net/backpressure unavailability, and carried as an explicit reason
// token on the wire error frame (wire/protocol.h).
inline constexpr char kQuarantineTag[] = "[quarantine]";

// Message prefix marking a kUnavailable status as degraded-mode
// backpressure from the tracking proxy (tracked-commit protocol, DESIGN.md
// §5b), as opposed to transport loss or quarantine.
inline constexpr char kDegradedTag[] = "[degraded]";

// Message prefix marking a kUnavailable status as a misrouted statement in
// a sharded deployment (DESIGN.md §5j): the statement reached a shard that
// does not own its warehouse. Retryable — against the correct shard (or the
// router, which resolves ownership) — and carried as the `wrong_shard`
// reason token on the wire error frame so clients can tell a routing
// mistake from transport loss.
inline constexpr char kWrongShardTag[] = "[wrong-shard]";

// A success-or-error value. Cheap to copy on the OK path (no allocation).
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status NotFound(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status AlreadyExists(std::string m) {
    return {StatusCode::kAlreadyExists, std::move(m)};
  }
  static Status FailedPrecondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  static Status OutOfRange(std::string m) {
    return {StatusCode::kOutOfRange, std::move(m)};
  }
  static Status Unimplemented(std::string m) {
    return {StatusCode::kUnimplemented, std::move(m)};
  }
  static Status Internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }
  static Status Aborted(std::string m) {
    return {StatusCode::kAborted, std::move(m)};
  }
  static Status ParseError(std::string m) {
    return {StatusCode::kParseError, std::move(m)};
  }
  static Status Constraint(std::string m) {
    return {StatusCode::kConstraint, std::move(m)};
  }
  static Status Unavailable(std::string m) {
    return {StatusCode::kUnavailable, std::move(m)};
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  // True for transient failures where re-issuing the request is safe: either
  // it never took effect (lost round trip, injected infrastructure fault) or
  // it was an autocommit statement whose transaction the engine rolled back
  // completely before returning (tagged deadlock abort, see
  // kRetryableAbortTag).
  bool IsRetryable() const {
    return code_ == StatusCode::kUnavailable ||
           (code_ == StatusCode::kAborted &&
            message_.rfind(kRetryableAbortTag, 0) == 0);
  }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  bool operator==(const Status& o) const { return code_ == o.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Result<T>: either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);

#define IRDB_CHECK(expr)                                        \
  do {                                                          \
    if (!(expr)) ::irdb::CheckFailed(__FILE__, __LINE__, #expr, ""); \
  } while (0)

#define IRDB_CHECK_MSG(expr, msg)                                   \
  do {                                                              \
    if (!(expr)) ::irdb::CheckFailed(__FILE__, __LINE__, #expr, (msg)); \
  } while (0)

// Propagate a non-OK Status out of the current function.
#define IRDB_RETURN_IF_ERROR(expr)           \
  do {                                       \
    ::irdb::Status _st = (expr);             \
    if (!_st.ok()) return _st;               \
  } while (0)

// Assign an rvalue Result<T>'s value or propagate its Status.
#define IRDB_ASSIGN_OR_RETURN(lhs, rexpr)    \
  auto IRDB_CONCAT_(_res_, __LINE__) = (rexpr);              \
  if (!IRDB_CONCAT_(_res_, __LINE__).ok())                   \
    return IRDB_CONCAT_(_res_, __LINE__).status();           \
  lhs = std::move(IRDB_CONCAT_(_res_, __LINE__)).value()

#define IRDB_CONCAT_INNER_(a, b) a##b
#define IRDB_CONCAT_(a, b) IRDB_CONCAT_INNER_(a, b)

}  // namespace irdb
