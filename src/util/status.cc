#include "util/status.h"

namespace irdb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kParseError: return "PARSE_ERROR";
    case StatusCode::kConstraint: return "CONSTRAINT";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& extra) {
  std::fprintf(stderr, "IRDB_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, extra.empty() ? "" : " — ", extra.c_str());
  std::abort();
}

}  // namespace irdb
