// Dependency analysis (§3.3): correlates internal and proxy transaction IDs
// and assembles the full dependency graph from trans_dep rows (run-time
// SELECT dependencies) plus before-image trids (UPDATE/DELETE dependencies
// reconstructed from the log).
#pragma once

#include <map>
#include <set>
#include <vector>

#include "flavor/log_reader.h"
#include "repair/dependency_graph.h"
#include "repair/repair_stats.h"
#include "wire/connection.h"

namespace irdb::repair {

struct DependencyAnalysis {
  // Every committed row operation, in log order, fully reconstructed.
  std::vector<RepairOp> ops;

  // Transaction-ID correlation, established from the trans_dep insert that
  // precedes each commit (or the tracking_gaps insert of a degraded commit).
  std::map<int64_t, int64_t> internal_to_proxy;
  std::map<int64_t, int64_t> proxy_to_internal;

  // Proxy ids that committed without dependency metadata
  // (DegradedMode::kCommitUntracked). Each carries conservative edges to
  // every transaction committed before it.
  std::set<int64_t> tracking_gaps;

  DependencyGraph graph;
};

// Reads the whole log through `reader` and builds the analysis. When `admin`
// is non-null the annot table is consulted for node labels (Fig. 3).
//
// A multi-lane `pool` parallelizes the scan (inside the reader — the pool is
// handed to it) and the reconstructed-edge pass, with per-chunk results
// stitched in log order so the analysis is identical to the serial one.
// `phases` (optional) receives the scan / correlate wall-time split.
Result<DependencyAnalysis> Analyze(FlavorLogReader* reader, DbConnection* admin,
                                   util::ThreadPool* pool = nullptr,
                                   RepairPhaseStats* phases = nullptr);

}  // namespace irdb::repair
