// Reenactment planning and replay execution (see reenact.h for the
// contract, DESIGN.md §5i for the design).
#include "repair/reenact.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <thread>

#include "concurrency/lock_manager.h"
#include "engine/database.h"
#include "obs/catalog.h"
#include "obs/trace.h"
#include "wire/connection.h"

namespace irdb::repair {

const char* DemoteReasonName(DemoteReason r) {
  switch (r) {
    case DemoteReason::kTrackingGap: return "tracking_gap";
    case DemoteReason::kNoJournal: return "no_journal";
    case DemoteReason::kDiverged: return "diverged";
    case DemoteReason::kDownstream: return "downstream";
    case DemoteReason::kReplayFailed: return "replay_failed";
  }
  return "?";
}

namespace {

// Kept edges of the analysis graph with both endpoints in `members`, as
// reader -> sorted deduplicated writer lists. Every edge points from a later
// reader to an earlier writer, so walking readers in ascending id visits
// each one after all of its in-set writers — the order both demotion
// propagation and replay rely on.
std::map<int64_t, std::vector<int64_t>> KeptWritersWithin(
    const DependencyAnalysis& analysis, const std::set<int64_t>& members,
    const DbaPolicy& policy) {
  std::map<int64_t, std::vector<int64_t>> writers_of;
  for (const DepEdge& e : analysis.graph.edges()) {
    if (!members.count(e.reader) || !members.count(e.writer)) continue;
    if (e.reader == e.writer) continue;
    if (!policy.Keep(e)) continue;
    writers_of[e.reader].push_back(e.writer);
  }
  for (auto& [reader, writers] : writers_of) {
    std::sort(writers.begin(), writers.end());
    writers.erase(std::unique(writers.begin(), writers.end()), writers.end());
  }
  return writers_of;
}

}  // namespace

ReenactPlan PlanReenact(const DependencyAnalysis& analysis,
                        const std::set<int64_t>& closure,
                        const std::vector<int64_t>& seed_proxy_ids,
                        const DbaPolicy& policy, const StmtJournal& journal) {
  ReenactPlan plan;
  const std::set<int64_t> seeds(seed_proxy_ids.begin(), seed_proxy_ids.end());
  std::set<int64_t> candidates;
  for (int64_t id : closure) {
    if (!seeds.count(id)) candidates.insert(id);
  }
  if (candidates.empty()) return plan;

  // Up-front demotions: the replay inputs themselves are missing.
  for (int64_t id : candidates) {
    if (analysis.tracking_gaps.count(id)) {
      plan.pre_demoted[id] = DemoteReason::kTrackingGap;
      continue;
    }
    auto it = analysis.proxy_to_internal.find(id);
    if (it == analysis.proxy_to_internal.end() ||
        !journal.HasCommitted(it->second)) {
      plan.pre_demoted[id] = DemoteReason::kNoJournal;
    }
  }

  // Propagate demotion downstream through kept edges among the candidates.
  // One ascending pass suffices: every kept edge points back to an earlier
  // writer, so a reader is visited after all in-set transactions it depends
  // on. Dependence on a *seed* never demotes (seeds are not candidates) —
  // recomputing against the seed-free state is the point of reenactment.
  const auto writers_of = KeptWritersWithin(analysis, candidates, policy);
  for (int64_t id : candidates) {
    if (plan.pre_demoted.count(id)) continue;
    auto deps = writers_of.find(id);
    if (deps == writers_of.end()) continue;
    for (int64_t w : deps->second) {
      if (plan.pre_demoted.count(w)) {
        plan.pre_demoted[id] = DemoteReason::kDownstream;
        break;
      }
    }
  }

  for (int64_t id : candidates) {
    if (!plan.pre_demoted.count(id)) plan.replay_order.push_back(id);
  }

  // Connected components of the undirected kept-edge graph restricted to
  // the replay set. Components share no tracked dependency, so they replay
  // concurrently; 2PL arbitrates any untracked physical overlap. BFS from
  // ascending roots over sorted adjacency, components sorted ascending —
  // fully deterministic.
  std::map<int64_t, std::vector<int64_t>> adj;
  const std::set<int64_t> replay_set(plan.replay_order.begin(),
                                     plan.replay_order.end());
  for (const auto& [reader, writers] : writers_of) {
    if (!replay_set.count(reader)) continue;
    for (int64_t w : writers) {
      if (!replay_set.count(w)) continue;
      adj[reader].push_back(w);
      adj[w].push_back(reader);
    }
  }
  std::set<int64_t> visited;
  for (int64_t root : plan.replay_order) {
    if (visited.count(root)) continue;
    std::vector<int64_t> component;
    std::vector<int64_t> frontier{root};
    visited.insert(root);
    while (!frontier.empty()) {
      int64_t id = frontier.back();
      frontier.pop_back();
      component.push_back(id);
      auto nbrs = adj.find(id);
      if (nbrs == adj.end()) continue;
      for (int64_t n : nbrs->second) {
        if (visited.insert(n).second) frontier.push_back(n);
      }
    }
    std::sort(component.begin(), component.end());
    plan.components.push_back(std::move(component));
  }
  return plan;
}

namespace {

// Per-component replay results, merged in component order afterwards so the
// report is deterministic under any lane scheduling.
struct LaneOutcome {
  std::set<int64_t> replayed;
  std::map<int64_t, DemoteReason> demoted;
  int64_t diverged = 0;
  int64_t stmts_replayed = 0;
};

enum class ReplayResult { kCommitted, kDiverged, kFailed };

// Re-executes one transaction's journaled statements in a fresh transaction
// on its own connection. Divergence = statement error or row-count
// fingerprint mismatch (rolls back, no retry — the mismatch is a property
// of the corrected state, not of scheduling). Deadlock aborts retry the
// whole transaction bounded, mirroring RepairOnline's lanes.
ReplayResult ReplayOneTxn(Database* db, const std::vector<StmtRecord>& stmts,
                          int64_t* stmts_replayed) {
  static constexpr int kMaxAttempts = 4;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    DirectConnection conn(db);
    db->SetSessionQuarantineExempt(conn.session_id(), true);
    auto begin = conn.Execute("BEGIN");
    if (!begin.ok()) return ReplayResult::kFailed;
    Status st = Status::Ok();
    bool diverged = false;
    int64_t replayed_here = 0;
    for (const StmtRecord& rec : stmts) {
      auto res = conn.Execute(std::string_view(rec.text));
      if (!res.ok()) {
        st = res.status();
        if (!concurrency::IsDeadlockAbort(st)) diverged = true;
        break;
      }
      const int64_t got = rec.is_select
                              ? static_cast<int64_t>(res->rows.size())
                              : res->affected;
      const int64_t want = rec.is_select ? rec.rows_returned
                                         : rec.rows_affected;
      if (got != want) {
        diverged = true;
        break;
      }
      ++replayed_here;
    }
    if (diverged) {
      (void)conn.Execute("ROLLBACK");
      return ReplayResult::kDiverged;
    }
    if (st.ok()) {
      auto commit = conn.Execute("COMMIT");
      if (commit.ok()) {
        *stmts_replayed += replayed_here;
        return ReplayResult::kCommitted;
      }
      st = commit.status();
    } else {
      (void)conn.Execute("ROLLBACK");
    }
    if (!concurrency::IsDeadlockAbort(st)) return ReplayResult::kFailed;
    std::this_thread::sleep_for(std::chrono::milliseconds(1 + attempt));
  }
  return ReplayResult::kFailed;  // deadlock retries exhausted
}

}  // namespace

void ExecuteReenactPlan(Database* db, const DependencyAnalysis& analysis,
                        const DbaPolicy& policy, const StmtJournal& journal,
                        const ReenactPlan& plan, util::ThreadPool* pool,
                        ReenactReport* out) {
  const auto start = std::chrono::steady_clock::now();
  out->demoted = plan.pre_demoted;
  out->components = static_cast<int>(plan.components.size());

  const std::set<int64_t> replay_set(plan.replay_order.begin(),
                                     plan.replay_order.end());
  const auto writers_of = KeptWritersWithin(analysis, replay_set, policy);

  std::vector<LaneOutcome> lanes(plan.components.size());
  auto run_component = [&](size_t ci) {
    const std::vector<int64_t>& component = plan.components[ci];
    LaneOutcome& lane = lanes[ci];
    obs::Span span(obs::span::kReenactComponent);
    span.AddArg("component", static_cast<int64_t>(ci));
    span.AddArg("txns", static_cast<int64_t>(component.size()));
    for (int64_t id : component) {
      // A divergence demotes its own downstream closure; kept edges never
      // cross components, so propagation is complete within the lane.
      bool downstream = false;
      auto deps = writers_of.find(id);
      if (deps != writers_of.end()) {
        for (int64_t w : deps->second) {
          if (lane.demoted.count(w)) {
            downstream = true;
            break;
          }
        }
      }
      if (downstream) {
        lane.demoted[id] = DemoteReason::kDownstream;
        continue;
      }
      const int64_t internal = analysis.proxy_to_internal.at(id);
      switch (ReplayOneTxn(db, journal.Committed(internal),
                           &lane.stmts_replayed)) {
        case ReplayResult::kCommitted:
          lane.replayed.insert(id);
          break;
        case ReplayResult::kDiverged:
          lane.demoted[id] = DemoteReason::kDiverged;
          ++lane.diverged;
          break;
        case ReplayResult::kFailed:
          lane.demoted[id] = DemoteReason::kReplayFailed;
          break;
      }
    }
  };

  if (pool && plan.components.size() > 1) {
    out->replay_lanes =
        std::min<int>(pool->lanes(), static_cast<int>(plan.components.size()));
    std::vector<std::future<void>> pending;
    pending.reserve(plan.components.size());
    for (size_t ci = 0; ci < plan.components.size(); ++ci) {
      pending.push_back(pool->Submit([&, ci] { run_component(ci); }));
    }
    for (auto& f : pending) f.wait();
  } else {
    out->replay_lanes = 1;
    for (size_t ci = 0; ci < plan.components.size(); ++ci) run_component(ci);
  }

  for (const LaneOutcome& lane : lanes) {
    out->replayed.insert(lane.replayed.begin(), lane.replayed.end());
    out->demoted.insert(lane.demoted.begin(), lane.demoted.end());
    out->diverged += lane.diverged;
    out->stmts_replayed += lane.stmts_replayed;
  }
  out->replay_wall_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
}

}  // namespace irdb::repair
