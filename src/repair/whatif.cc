#include "repair/whatif.h"

#include <algorithm>

#include "util/string_utils.h"

namespace irdb::repair {

bool WhatIfSession::AddSeed(int64_t proxy_id) {
  if (!analysis_.graph.nodes().count(proxy_id)) return false;
  seeds_.insert(proxy_id);
  return true;
}

int WhatIfSession::AddSeedsByLabelPrefix(const std::string& prefix) {
  int matched = 0;
  for (int64_t node : analysis_.graph.nodes()) {
    if (StartsWith(analysis_.graph.Label(node), prefix)) {
      seeds_.insert(node);
      ++matched;
    }
  }
  return matched;
}

void WhatIfSession::ClearSeeds() { seeds_.clear(); }

std::set<int64_t> WhatIfSession::Perimeter() const {
  std::vector<int64_t> seeds(seeds_.begin(), seeds_.end());
  return analysis_.graph.Affected(seeds, policy_.AsFilter());
}

PerimeterDelta WhatIfSession::ApplyAndDiff(const std::function<void()>& mutate) {
  std::set<int64_t> before = Perimeter();
  mutate();
  std::set<int64_t> after = Perimeter();
  PerimeterDelta delta;
  std::set_difference(after.begin(), after.end(), before.begin(), before.end(),
                      std::back_inserter(delta.added));
  std::set_difference(before.begin(), before.end(), after.begin(), after.end(),
                      std::back_inserter(delta.removed));
  return delta;
}

PerimeterDelta WhatIfSession::IgnoreTable(const std::string& table) {
  return ApplyAndDiff([&] { policy_.IgnoreTable(table); });
}

PerimeterDelta WhatIfSession::IgnoreEdge(int64_t reader, int64_t writer) {
  return ApplyAndDiff([&] { policy_.IgnoreEdge(reader, writer); });
}

PerimeterDelta WhatIfSession::IgnoreDerived(const std::string& table,
                                            const std::string& writer_prefix) {
  return ApplyAndDiff([&] {
    policy_.IgnoreDerivedAttribute(table, writer_prefix, &analysis_.graph);
  });
}

PerimeterDelta WhatIfSession::Reset() {
  return ApplyAndDiff([&] { policy_ = DbaPolicy::TrackEverything(); });
}

std::string WhatIfSession::Explain() const {
  std::set<int64_t> perimeter = Perimeter();
  std::string out;
  for (int64_t node : perimeter) {
    out += analysis_.graph.Label(node);
    if (seeds_.count(node)) {
      out += "  [seed]\n";
      continue;
    }
    out += "  <-";
    // Inbound condemning edges from other perimeter members.
    std::set<std::string> sources;
    for (const DepEdge& e : analysis_.graph.edges()) {
      if (e.reader != node || !perimeter.count(e.writer)) continue;
      if (!policy_.Keep(e)) continue;
      sources.insert(" " + analysis_.graph.Label(e.writer) + "(" + e.table +
                     (e.kind == DepKind::kRuntime ? "" : ",log") + ")");
    }
    for (const std::string& s : sources) out += s;
    out += "\n";
  }
  return out;
}

std::string WhatIfSession::PreviewReenact(const StmtJournal& journal) const {
  const std::set<int64_t> perimeter = Perimeter();
  const std::vector<int64_t> seeds(seeds_.begin(), seeds_.end());
  const ReenactPlan plan =
      PlanReenact(analysis_, perimeter, seeds, policy_, journal);
  std::map<int64_t, int> component_of;
  for (size_t ci = 0; ci < plan.components.size(); ++ci) {
    for (int64_t id : plan.components[ci]) {
      component_of[id] = static_cast<int>(ci);
    }
  }
  std::string out;
  for (int64_t node : perimeter) {
    out += analysis_.graph.Label(node);
    if (seeds_.count(node)) {
      out += "  [seed: stays undone]\n";
    } else if (auto it = plan.pre_demoted.find(node);
               it != plan.pre_demoted.end()) {
      out += std::string("  [demoted: ") + DemoteReasonName(it->second) + "]\n";
    } else {
      out += "  [replay: component " +
             std::to_string(component_of[node]) + "]\n";
    }
  }
  out += "reenact would undo " +
         std::to_string(seeds_.size() + plan.pre_demoted.size()) + " of " +
         std::to_string(perimeter.size()) + " perimeter transactions and "
         "replay " + std::to_string(plan.replay_order.size()) + " across " +
         std::to_string(plan.components.size()) + " components\n";
  return out;
}

std::string WhatIfSession::Dot() const { return analysis_.graph.ToDot(Perimeter()); }

std::string WhatIfSession::Summary() const {
  int64_t kept = 0, ignored = 0;
  for (const DepEdge& e : analysis_.graph.edges()) {
    (policy_.Keep(e) ? kept : ignored) += 1;
  }
  return "transactions: " + std::to_string(analysis_.graph.nodes().size()) +
         ", edges kept: " + std::to_string(kept) +
         ", edges ignored: " + std::to_string(ignored) +
         ", seeds: " + std::to_string(seeds_.size()) +
         ", perimeter: " + std::to_string(Perimeter().size());
}

}  // namespace irdb::repair
