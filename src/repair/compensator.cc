#include "repair/compensator.h"

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <thread>

#include "engine/database.h"
#include "obs/catalog.h"
#include "storage/bptree.h"
#include "obs/trace.h"
#include "proxy/rewriter.h"
#include "sql/ast.h"
#include "sql/printer.h"
#include "util/string_utils.h"

namespace irdb::repair {

namespace {

// Per-table old→new row-ID remapping with chain chasing (a repaired row can
// be re-inserted more than once if several of its writers are undone).
// Backed by the storage layer's B+ tree on order-preserving encoded int64
// keys — the same structure the table indexes use, exercised here on a
// second key space (long repair streams touch many addresses).
class RowIdRemap {
 public:
  int64_t Resolve(const std::string& table, int64_t address) const {
    auto t = maps_.find(table);
    if (t == maps_.end()) return address;
    int64_t cur = address;
    // Chase the chain; cycles are impossible because new row IDs are fresh.
    uint64_t next = 0;
    while (t->second->LookupFirst(Encode(cur), &next)) {
      cur = static_cast<int64_t>(next);
    }
    return cur;
  }

  void Add(const std::string& table, int64_t old_address, int64_t new_address) {
    auto [it, inserted] = maps_.try_emplace(table, nullptr);
    if (inserted) it->second = std::make_unique<BPTree>();
    const std::string key = Encode(old_address);
    // One mapping per old address: replace any stale entry.
    uint64_t prev = 0;
    if (it->second->LookupFirst(key, &prev)) it->second->Erase(key, prev);
    it->second->Insert(key, static_cast<uint64_t>(new_address));
  }

  void Discard(const std::string& table, int64_t old_address) {
    auto t = maps_.find(table);
    if (t == maps_.end()) return;
    const std::string key = Encode(old_address);
    uint64_t prev = 0;
    if (t->second->LookupFirst(key, &prev)) t->second->Erase(key, prev);
  }

 private:
  static std::string Encode(int64_t address) {
    std::string key;
    AppendEncodedKeyValue(Value::Int(address), &key);
    return key;
  }

  std::map<std::string, std::unique_ptr<BPTree>> maps_;
};

sql::ExprPtr AddressPredicate(const std::string& column, int64_t address) {
  return sql::MakeBinary(sql::BinaryOp::kEq, sql::MakeColumnRef("", column),
                         sql::MakeLiteral(Value::Int(address)));
}

// Row address plus (optionally) the row's primary-key literals. The key
// conjuncts are redundant for row selection — the address is unique — but
// they let the engine's lock planner name a single key lock instead of
// coarsening to table X, which is what keeps clean keys of the table
// available while an online-repair lane heals the quarantined ones.
sql::ExprPtr RowPredicate(
    const std::string& address_column, int64_t address,
    const std::vector<std::pair<std::string, Value>>* key_literals) {
  sql::ExprPtr where = AddressPredicate(address_column, address);
  if (key_literals == nullptr) return where;
  for (const auto& [col, v] : *key_literals) {
    where = sql::MakeBinary(
        sql::BinaryOp::kAnd, std::move(where),
        sql::MakeBinary(sql::BinaryOp::kEq, sql::MakeColumnRef("", col),
                        sql::MakeLiteral(v)));
  }
  return where;
}

// Emits and executes the compensating statement for one op. Shared by the
// serial walk and each parallel table batch: both feed it ops in inverse log
// order, with a remap that has seen every earlier op of the same table.
// `key_literals` (nullable) adds PK conjuncts via RowPredicate.
Status CompensateOp(const RepairOp& op, DbConnection* admin,
                    const FlavorTraits& traits,
                    const std::string& address_column, RowIdRemap* remap,
                    RepairReport* report,
                    const std::vector<std::pair<std::string, Value>>*
                        key_literals = nullptr) {
  const std::string table_key = ToLowerAscii(op.table);
  auto run = [&](const sql::Statement& stmt,
                 int64_t expect_affected) -> Status {
    auto r = admin->Execute(sql::PrintStatement(stmt));
    if (!r.ok()) return r.status();
    if (expect_affected >= 0 && r->affected != expect_affected) {
      return Status::Internal("compensating statement touched " +
                              std::to_string(r->affected) + " rows, expected " +
                              std::to_string(expect_affected) + ": " +
                              sql::PrintStatement(stmt));
    }
    ++report->ops_compensated;
    return Status::Ok();
  };

  switch (op.op) {
    case LogOp::kInsert: {
      // Undo an insert: delete the row (at its possibly-remapped address).
      auto stmt = sql::MakeStatement(sql::StatementKind::kDelete);
      stmt->table = op.table;
      stmt->where = RowPredicate(address_column,
                                 remap->Resolve(table_key, op.row_address),
                                 key_literals);
      IRDB_RETURN_IF_ERROR(run(*stmt, 1));
      ++report->compensating_deletes;
      // The row's lifetime starts here; any mapping for it is now obsolete.
      remap->Discard(table_key, op.row_address);
      break;
    }
    case LogOp::kDelete: {
      // Undo a delete: put the row back. Flavors with a hidden rowid
      // cannot force the old one — record the fresh ID in the remap table.
      // The Sybase flavor's rid is an ordinary (identity) column carried in
      // op.values, so the original address is restored exactly.
      auto stmt = sql::MakeStatement(sql::StatementKind::kInsert);
      stmt->table = op.table;
      std::vector<sql::ExprPtr> row;
      for (const auto& [col, v] : op.values) {
        stmt->insert_columns.push_back(col);
        row.push_back(sql::MakeLiteral(v));
      }
      stmt->insert_rows.push_back(std::move(row));
      auto r = admin->Execute(sql::PrintStatement(*stmt));
      if (!r.ok()) return r.status();
      ++report->ops_compensated;
      ++report->compensating_inserts;
      if (traits.has_rowid) {
        IRDB_CHECK(r->last_rowid != kNoRowId);
        if (r->last_rowid != op.row_address) {
          remap->Add(table_key, op.row_address, r->last_rowid);
          ++report->rows_remapped;
        }
      }
      break;
    }
    case LogOp::kUpdate: {
      // Undo an update: restore the changed columns' before values.
      auto stmt = sql::MakeStatement(sql::StatementKind::kUpdate);
      stmt->table = op.table;
      for (const auto& [col, v] : op.values) {
        stmt->assignments.emplace_back(col, sql::MakeLiteral(v));
      }
      stmt->where = RowPredicate(address_column,
                                 remap->Resolve(table_key, op.row_address),
                                 key_literals);
      IRDB_RETURN_IF_ERROR(run(*stmt, 1));
      ++report->compensating_updates;
      break;
    }
    default:
      break;
  }
  return Status::Ok();
}

}  // namespace

namespace {

// Multi-lane compensation with one private engine session per table batch.
// Each lane brackets its own transaction, so lanes never serialize on a
// shared session (the admin session's statement mutex would otherwise turn
// the "parallel" walk into a serial one — on a disk-bound engine the stall
// charges only overlap across sessions). Mirrors the RepairOnline lane
// loop: gate-exempt connection, bounded deadlock retries, first failing
// lane in deterministic batch order wins.
Status CompensateLanes(const DependencyAnalysis& analysis,
                       const std::set<int64_t>& undo_proxy_ids, Database* db,
                       const FlavorTraits& traits, RepairReport* report,
                       util::ThreadPool* pool) {
  IRDB_ASSIGN_OR_RETURN(std::vector<CompensationBatch> batches,
                        BuildCompensationBatches(analysis, undo_proxy_ids));
  report->compensate_lanes = std::max<int>(1, static_cast<int>(batches.size()));
  std::vector<Status> lane_status(batches.size(), Status::Ok());
  std::vector<RepairReport> lane_report(batches.size());
  std::atomic<bool> abort{false};
  auto run_lane = [&](size_t idx) {
    if (abort.load(std::memory_order_relaxed)) return;
    const CompensationBatch& batch = batches[idx];
    obs::Span lane_span(obs::span::kRepairCompensateLane);
    lane_span.AddArg("lane", static_cast<int64_t>(idx));
    lane_span.AddArg("tables", 1);
    lane_span.AddArg("stmts", static_cast<int64_t>(batch.ops.size()));
    Status st = Status::Ok();
    for (int attempt = 0; attempt < 3; ++attempt) {
      DirectConnection conn(db);
      db->SetSessionQuarantineExempt(conn.session_id(), true);
      lane_report[idx] = RepairReport{};
      auto begin = conn.Execute("BEGIN");
      if (!begin.ok()) {
        st = begin.status();
        break;
      }
      st = CompensateBatch(batch, &conn, traits, &lane_report[idx]);
      if (st.ok()) {
        auto commit = conn.Execute("COMMIT");
        st = commit.ok() ? Status::Ok() : commit.status();
      } else {
        (void)conn.Execute("ROLLBACK");
      }
      if (st.ok() || st.code() != StatusCode::kAborted) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1 + attempt));
    }
    lane_status[idx] = st;
    if (!st.ok()) abort.store(true, std::memory_order_relaxed);
  };
  std::vector<std::future<void>> pending;
  pending.reserve(batches.size());
  for (size_t i = 0; i < batches.size(); ++i) {
    pending.push_back(pool->Submit([&, i] { run_lane(i); }));
  }
  for (std::future<void>& f : pending) f.wait();
  for (const RepairReport& part : lane_report) {
    report->ops_compensated += part.ops_compensated;
    report->compensating_inserts += part.compensating_inserts;
    report->compensating_deletes += part.compensating_deletes;
    report->compensating_updates += part.compensating_updates;
    report->rows_remapped += part.rows_remapped;
  }
  for (const Status& st : lane_status) {
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

}  // namespace

Status Compensate(const DependencyAnalysis& analysis,
                  const std::set<int64_t>& undo_proxy_ids, DbConnection* admin,
                  const FlavorTraits& traits, RepairReport* report,
                  util::ThreadPool* pool, Database* db) {
  report->undo_set = undo_proxy_ids;

  if (pool != nullptr && pool->lanes() > 1 && db != nullptr) {
    return CompensateLanes(analysis, undo_proxy_ids, db, traits, report, pool);
  }

  // Internal IDs of the transactions to undo.
  std::set<int64_t> undo_internal;
  for (int64_t proxy_id : undo_proxy_ids) {
    auto it = analysis.proxy_to_internal.find(proxy_id);
    if (it == analysis.proxy_to_internal.end()) {
      return Status::NotFound("proxy transaction " + std::to_string(proxy_id) +
                              " not found in the log");
    }
    undo_internal.insert(it->second);
  }

  const std::string address_column =
      traits.has_rowid ? traits.rowid_name : proxy::kSybaseRowIdColumn;

  // The plan: every op to undo, in inverse log order.
  std::vector<const RepairOp*> plan;
  for (auto it = analysis.ops.rbegin(); it != analysis.ops.rend(); ++it) {
    if (undo_internal.count(it->internal_txn_id)) plan.push_back(&*it);
  }

  {
    auto r = admin->Execute("BEGIN");
    if (!r.ok()) return r.status();
  }

  if (pool == nullptr || pool->lanes() <= 1) {
    RowIdRemap remap;
    for (const RepairOp* op : plan) {
      IRDB_RETURN_IF_ERROR(
          CompensateOp(*op, admin, traits, address_column, &remap, report));
    }
  } else {
    // Batched compensation: every compensating statement addresses rows by
    // row ID within a single table, and the remap is keyed per table, so the
    // plan splits into per-table batches — inverse-LSN order preserved
    // *within* each batch — whose row-id sets cannot overlap across tables.
    // The batches therefore commute and run concurrently, one lane per
    // table, each with its own remap and partial report (merged below).
    std::map<std::string, std::vector<const RepairOp*>> batches;
    for (const RepairOp* op : plan) {
      batches[ToLowerAscii(op->table)].push_back(op);
    }
    report->compensate_lanes = static_cast<int>(batches.size());
    std::vector<Status> lane_status(batches.size(), Status::Ok());
    std::vector<RepairReport> lane_report(batches.size());
    std::atomic<bool> abort{false};
    std::vector<std::future<void>> pending;
    pending.reserve(batches.size());
    size_t lane = 0;
    for (auto& [table, batch_ops] : batches) {
      const size_t idx = lane++;
      const std::vector<const RepairOp*>* batch = &batch_ops;
      pending.push_back(pool->Submit([&, idx, batch] {
        obs::Span lane_span(obs::span::kRepairCompensateLane);
        lane_span.AddArg("lane", static_cast<int64_t>(idx));
        lane_span.AddArg("tables", 1);
        lane_span.AddArg("stmts", static_cast<int64_t>(batch->size()));
        RowIdRemap remap;
        for (const RepairOp* op : *batch) {
          if (abort.load(std::memory_order_relaxed)) return;
          Status s = CompensateOp(*op, admin, traits, address_column, &remap,
                                  &lane_report[idx]);
          if (!s.ok()) {
            lane_status[idx] = std::move(s);
            abort.store(true, std::memory_order_relaxed);
            return;
          }
        }
      }));
    }
    for (std::future<void>& f : pending) f.wait();
    for (const RepairReport& part : lane_report) {
      report->ops_compensated += part.ops_compensated;
      report->compensating_inserts += part.compensating_inserts;
      report->compensating_deletes += part.compensating_deletes;
      report->compensating_updates += part.compensating_updates;
      report->rows_remapped += part.rows_remapped;
    }
    // First failing table in (deterministic) batch order wins.
    for (const Status& s : lane_status) {
      if (!s.ok()) return s;
    }
  }

  {
    auto r = admin->Execute("COMMIT");
    if (!r.ok()) return r.status();
  }
  return Status::Ok();
}

Result<std::vector<CompensationBatch>> BuildCompensationBatches(
    const DependencyAnalysis& analysis, const std::set<int64_t>& undo_proxy_ids,
    const std::map<const RepairOp*,
                   std::vector<std::pair<std::string, Value>>>* op_keys) {
  std::set<int64_t> undo_internal;
  for (int64_t proxy_id : undo_proxy_ids) {
    auto it = analysis.proxy_to_internal.find(proxy_id);
    if (it == analysis.proxy_to_internal.end()) {
      return Status::NotFound("proxy transaction " + std::to_string(proxy_id) +
                              " not found in the log");
    }
    undo_internal.insert(it->second);
  }
  std::map<std::string, CompensationBatch> by_table;
  for (auto it = analysis.ops.rbegin(); it != analysis.ops.rend(); ++it) {
    if (undo_internal.count(it->internal_txn_id) == 0) continue;
    const std::string table_key = ToLowerAscii(it->table);
    CompensationBatch& batch = by_table[table_key];
    batch.table = table_key;
    batch.ops.push_back(&*it);
    std::vector<std::pair<std::string, Value>> key;
    if (op_keys != nullptr) {
      auto hit = op_keys->find(&*it);
      if (hit != op_keys->end()) key = hit->second;
    }
    batch.keys.push_back(std::move(key));
  }
  std::vector<CompensationBatch> out;
  out.reserve(by_table.size());
  for (auto& [table, batch] : by_table) out.push_back(std::move(batch));
  return out;
}

Status CompensateBatch(const CompensationBatch& batch, DbConnection* admin,
                       const FlavorTraits& traits, RepairReport* report) {
  const std::string address_column =
      traits.has_rowid ? traits.rowid_name : proxy::kSybaseRowIdColumn;
  RowIdRemap remap;
  for (size_t i = 0; i < batch.ops.size(); ++i) {
    const std::vector<std::pair<std::string, Value>>* key = nullptr;
    if (i < batch.keys.size() && !batch.keys[i].empty()) key = &batch.keys[i];
    IRDB_RETURN_IF_ERROR(CompensateOp(*batch.ops[i], admin, traits,
                                      address_column, &remap, report, key));
  }
  return Status::Ok();
}

}  // namespace irdb::repair
