// Contaminated-partition computation for online ("serve-through") repair
// (DESIGN.md §5g).
//
// From the dependency closure, derives the set of (table, key-hash bucket)
// slices the undone transactions wrote — in the exact resource space the
// engine's lock planner uses — plus whole-table slices wherever key
// precision is unattainable: tables without a primary-key index, updates
// that rewrote a primary key, and row addresses that resolve to neither a
// live row nor a sibling op in the undo set. The result feeds
// QuarantineManager::Add (rejection fence), the repair's drain pass, and
// per-op primary-key annotations that let compensating statements plan key
// locks instead of coarse table X — the property that keeps clean keys of a
// partially contaminated table available while its lane heals.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "concurrency/quarantine.h"
#include "engine/database.h"
#include "repair/analyzer.h"

namespace irdb::repair {

// Primary-key literals per undone op (pointers into
// DependencyAnalysis::ops). Populated only for bucket-sliced tables, where
// no undone op rewrote a primary key — so the annotated key is stable for
// the whole lane.
using OpKeyMap =
    std::map<const RepairOp*, std::vector<std::pair<std::string, Value>>>;

struct ContaminatedPartition {
  // Rejection fence, ready for QuarantineManager::Add. Proxy-metadata
  // tables are excluded: fencing trans_dep would reject every tracked
  // commit in the system, so they are healed without being quarantined.
  std::vector<concurrency::QuarantineSlice> slices;

  // Lower-cased table name → table id, for every table with undone ops
  // (metadata tables included — lanes and release need the ids).
  std::map<std::string, int32_t> table_ids;

  // Tables sliced whole (lower-cased; metadata tables never appear here).
  std::set<std::string> whole_tables;

  // Proxy-metadata tables (trans_dep / tracking_gaps / annot) carrying
  // undone ops: compensated but never rejection-installed.
  std::set<std::string> metadata_tables;

  OpKeyMap op_keys;

  int key_buckets = 0;
  // Whole-table slices forced by lost precision (no PK index, primary key
  // rewritten by an undone update, or unresolvable row address).
  int fallback_whole_tables = 0;
};

// Pure computation — reads the catalog through Database's latched helpers,
// never writes. `undo_proxy_ids` must already be closed under the chosen
// dependency semantics (RepairEngine::ComputeUndoSet).
ContaminatedPartition ComputeContaminatedPartition(
    Database* db, const DependencyAnalysis& analysis,
    const std::set<int64_t>& undo_proxy_ids);

}  // namespace irdb::repair
