#include "repair/dependency_graph.h"

#include <deque>

namespace irdb::repair {

std::string DependencyGraph::Label(int64_t id) const {
  auto it = labels_.find(id);
  if (it != labels_.end()) return it->second;
  return "T" + std::to_string(id);
}

std::set<int64_t> DependencyGraph::Affected(
    const std::vector<int64_t>& seeds,
    const std::function<bool(const DepEdge&)>& keep_edge) const {
  // writer -> readers adjacency over kept edges.
  std::map<int64_t, std::vector<int64_t>> dependents;
  for (const DepEdge& e : edges_) {
    if (keep_edge && !keep_edge(e)) continue;
    dependents[e.writer].push_back(e.reader);
  }
  std::set<int64_t> out;
  std::deque<int64_t> frontier;
  for (int64_t s : seeds) {
    if (out.insert(s).second) frontier.push_back(s);
  }
  while (!frontier.empty()) {
    int64_t cur = frontier.front();
    frontier.pop_front();
    auto it = dependents.find(cur);
    if (it == dependents.end()) continue;
    for (int64_t r : it->second) {
      if (out.insert(r).second) frontier.push_back(r);
    }
  }
  return out;
}

std::string DependencyGraph::ToDot(const std::set<int64_t>& highlight) const {
  std::string out = "digraph trans_dep {\n  rankdir=TB;\n  node [shape=ellipse];\n";
  for (int64_t id : nodes_) {
    out += "  n" + std::to_string(id) + " [label=\"" + Label(id) + "\"";
    if (highlight.count(id)) out += ", style=filled, fillcolor=lightcoral";
    out += "];\n";
  }
  // Draw edges writer -> reader (the direction damage propagates) and
  // deduplicate parallel edges from different tables into one line each.
  std::set<std::string> seen;
  for (const DepEdge& e : edges_) {
    std::string line = "  n" + std::to_string(e.writer) + " -> n" +
                       std::to_string(e.reader);
    if (e.kind == DepKind::kReconstructed) line += " [style=dashed]";
    if (e.kind == DepKind::kConservative) line += " [style=dotted]";
    line += ";\n";
    if (seen.insert(line).second) out += line;
  }
  out += "}\n";
  return out;
}

}  // namespace irdb::repair
