#include "repair/dependency_graph.h"

#include <cstdint>
#include <deque>
#include <unordered_map>

namespace irdb::repair {

namespace {

size_t ShardOf(int64_t id, int nshards) {
  return static_cast<size_t>(static_cast<uint64_t>(id) %
                             static_cast<uint64_t>(nshards));
}

}  // namespace

std::string DependencyGraph::Label(int64_t id) const {
  auto it = labels_.find(id);
  if (it != labels_.end()) return it->second;
  return "T" + std::to_string(id);
}

std::set<int64_t> DependencyGraph::Affected(
    const std::vector<int64_t>& seeds,
    const std::function<bool(const DepEdge&)>& keep_edge,
    util::ThreadPool* pool) const {
  if (pool == nullptr || pool->lanes() <= 1) {
    // Serial path: writer -> readers adjacency over kept edges, then BFS.
    std::map<int64_t, std::vector<int64_t>> dependents;
    for (const DepEdge& e : edges_) {
      if (keep_edge && !keep_edge(e)) continue;
      dependents[e.writer].push_back(e.reader);
    }
    std::set<int64_t> out;
    std::deque<int64_t> frontier;
    for (int64_t s : seeds) {
      if (out.insert(s).second) frontier.push_back(s);
    }
    while (!frontier.empty()) {
      int64_t cur = frontier.front();
      frontier.pop_front();
      auto it = dependents.find(cur);
      if (it == dependents.end()) continue;
      for (int64_t r : it->second) {
        if (out.insert(r).second) frontier.push_back(r);
      }
    }
    return out;
  }

  // Sharded adjacency: lane s owns writers with tr_id % nshards == s and
  // fills only its own shard's map — lock-free within a shard.
  const int nshards = pool->lanes();
  std::vector<std::unordered_map<int64_t, std::vector<int64_t>>> shards(
      static_cast<size_t>(nshards));
  pool->ParallelFor(nshards, [&](int64_t begin, int64_t end, int) {
    for (int64_t s = begin; s < end; ++s) {
      auto& shard = shards[static_cast<size_t>(s)];
      for (const DepEdge& e : edges_) {
        if (ShardOf(e.writer, nshards) != static_cast<size_t>(s)) continue;
        if (keep_edge && !keep_edge(e)) continue;
        shard[e.writer].push_back(e.reader);
      }
    }
  });

  // Level-synchronous frontier expansion. Each level's lookups fan out in
  // contiguous frontier chunks; candidates merge in chunk order, so the
  // visit set (and hence the result) matches the serial BFS exactly.
  std::set<int64_t> out;
  std::vector<int64_t> frontier;
  for (int64_t s : seeds) {
    if (out.insert(s).second) frontier.push_back(s);
  }
  while (!frontier.empty()) {
    const size_t nchunks =
        util::ThreadPool::SplitRange(static_cast<int64_t>(frontier.size()),
                                     nshards)
            .size();
    std::vector<std::vector<int64_t>> found(nchunks);
    pool->ParallelFor(static_cast<int64_t>(frontier.size()),
                      [&](int64_t begin, int64_t end, int chunk) {
                        for (int64_t i = begin; i < end; ++i) {
                          const int64_t cur =
                              frontier[static_cast<size_t>(i)];
                          const auto& shard = shards[ShardOf(cur, nshards)];
                          auto it = shard.find(cur);
                          if (it == shard.end()) continue;
                          found[chunk].insert(found[chunk].end(),
                                              it->second.begin(),
                                              it->second.end());
                        }
                      });
    std::vector<int64_t> next;
    for (const std::vector<int64_t>& chunk : found) {
      for (int64_t r : chunk) {
        if (out.insert(r).second) next.push_back(r);
      }
    }
    frontier.swap(next);
  }
  return out;
}

std::string DependencyGraph::ToDot(const std::set<int64_t>& highlight) const {
  std::string out =
      "digraph trans_dep {\n"
      "  // Legend: nodes are proxy transaction ids (filled lightcoral when\n"
      "  // in the highlight/undo set). Edges point writer -> reader, the\n"
      "  // direction damage propagates: solid = kRuntime (observed SELECT\n"
      "  // read), dashed = kReconstructed (before-image trid), dotted =\n"
      "  // kConservative (tracking-gap txn, dependency set unknown).\n"
      "  rankdir=TB;\n  node [shape=ellipse];\n";
  for (int64_t id : nodes_) {
    out += "  n" + std::to_string(id) + " [label=\"" + Label(id) + "\"";
    if (highlight.count(id)) out += ", style=filled, fillcolor=lightcoral";
    out += "];\n";
  }
  // Draw edges writer -> reader (the direction damage propagates),
  // deduplicating parallel edges from different tables and emitting the
  // lines in sorted order so the rendering is deterministic.
  std::set<std::string> lines;
  for (const DepEdge& e : edges_) {
    std::string line = "  n" + std::to_string(e.writer) + " -> n" +
                       std::to_string(e.reader);
    if (e.kind == DepKind::kReconstructed) line += " [style=dashed]";
    if (e.kind == DepKind::kConservative) line += " [style=dotted]";
    line += ";\n";
    lines.insert(std::move(line));
  }
  for (const std::string& line : lines) out += line;
  out += "}\n";
  return out;
}

}  // namespace irdb::repair
