// Inter-transaction dependency graph (nodes = proxy transaction IDs).
//
// Edges carry provenance — the table through which the dependency arose and
// whether it was observed at run time (SELECT read-set tracking) or
// reconstructed at repair time from UPDATE/DELETE before-images — so the DBA
// policy can discard *false dependencies* (§5.3) selectively.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/thread_pool.h"

namespace irdb::repair {

enum class DepKind {
  kRuntime,        // observed at run time (SELECT read-set tracking)
  kReconstructed,  // rebuilt at repair time from before-image trids
  kConservative,   // assumed: reader is a tracking_gaps txn whose real
                   // dependency set was lost; it may depend on anything
                   // committed before it
};

struct DepEdge {
  int64_t reader = 0;  // depends on ...
  int64_t writer = 0;  // ... this transaction
  std::string table;   // lower-cased provenance table
  DepKind kind = DepKind::kRuntime;
};

class DependencyGraph {
 public:
  void AddNode(int64_t id) { nodes_.insert(id); }

  void AddEdge(DepEdge edge) {
    nodes_.insert(edge.reader);
    nodes_.insert(edge.writer);
    edges_.push_back(std::move(edge));
  }

  const std::set<int64_t>& nodes() const { return nodes_; }
  const std::vector<DepEdge>& edges() const { return edges_; }

  void SetLabel(int64_t id, std::string label) {
    labels_[id] = std::move(label);
  }
  // Falls back to "T<id>" when unlabelled.
  std::string Label(int64_t id) const;

  // Every transaction transitively affected by `seeds` (the damage
  // perimeter): seeds plus all transactions with a dependency path back to a
  // seed, considering only edges the filter keeps.
  //
  // A multi-lane `pool` switches to the parallel closure: the adjacency is
  // sharded by writer id (tr_id % lanes, each lane filling only its own
  // shard, so no locks within a shard), then a level-synchronous frontier
  // expansion fans each level out across the lanes and merges candidates in
  // chunk order. The result set is identical to the serial BFS.
  std::set<int64_t> Affected(
      const std::vector<int64_t>& seeds,
      const std::function<bool(const DepEdge&)>& keep_edge,
      util::ThreadPool* pool = nullptr) const;

  // GraphViz rendering (paper Fig. 3). Nodes in `highlight` are drawn filled.
  // Node and edge lines are emitted in sorted order, so the same graph
  // always renders to the same bytes regardless of edge insertion order.
  std::string ToDot(const std::set<int64_t>& highlight = {}) const;

 private:
  std::set<int64_t> nodes_;
  std::vector<DepEdge> edges_;
  std::map<int64_t, std::string> labels_;
};

}  // namespace irdb::repair
