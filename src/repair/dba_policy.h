// DbaPolicy — site-specific domain knowledge about false dependencies.
//
// §5.3: "One way to minimize the number of legitimate transactions that are
// incorrectly flagged as corruptive is to allow the DBA to specify
// transaction dependencies that should be ignored." The canonical example is
// a derivable attribute (TPC-C's w_ytd is the sum of payments): transactions
// sharing only that attribute's row are not truly dependent.
#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "repair/dependency_graph.h"
#include "util/string_utils.h"

namespace irdb::repair {

// How the damage perimeter is healed once it is known (DESIGN.md §5i and
// docs/repair-strategies.md):
//   kUndoOnly — the paper's procedure: every transaction in the closure is
//               compensated away, innocent dependents included.
//   kReenact  — compensate the closure, then re-execute the innocent
//               dependents from the statement journal against the corrected
//               state, so only the seeds (plus replay divergences, demoted
//               conservatively) stay undone.
enum class RepairStrategy {
  kUndoOnly,
  kReenact,
};

class DbaPolicy {
 public:
  // Keep every dependency (the paper's "tracking all dependencies" mode).
  static DbaPolicy TrackEverything() { return DbaPolicy(); }

  // Repair strategy selection; RepairEngine::Repair dispatches on it.
  // Default is the paper's undo-only procedure.
  DbaPolicy& WithStrategy(RepairStrategy s) {
    strategy_ = s;
    return *this;
  }
  RepairStrategy strategy() const { return strategy_; }

  // Ignore all dependencies that arose through `table` (e.g. a temporary
  // table with no semantic significance, §3.3).
  DbaPolicy& IgnoreTable(const std::string& table) {
    ignored_tables_.insert(ToLowerAscii(table));
    return *this;
  }

  // Ignore one specific edge (interactive "what-if" pruning).
  DbaPolicy& IgnoreEdge(int64_t reader, int64_t writer) {
    ignored_edges_.insert({reader, writer});
    return *this;
  }

  // Ignore dependencies through `table` whose *writer* transaction carries a
  // label starting with `writer_label_prefix` — expresses "writes of this
  // transaction type to this table only touch derivable attributes" (the
  // w_ytd example: Payment writes to warehouse/district rows are false
  // sharing for readers of the same rows).
  DbaPolicy& IgnoreDerivedAttribute(const std::string& table,
                                    const std::string& writer_label_prefix,
                                    const DependencyGraph* graph) {
    std::string t = ToLowerAscii(table);
    std::string prefix = writer_label_prefix;
    custom_.push_back([t, prefix, graph](const DepEdge& e) {
      return e.table == t && StartsWith(graph->Label(e.writer), prefix);
    });
    return *this;
  }

  // Fully custom predicate; return true to IGNORE the edge.
  DbaPolicy& IgnoreIf(std::function<bool(const DepEdge&)> pred) {
    custom_.push_back(std::move(pred));
    return *this;
  }

  // True when the edge participates in damage-perimeter computation.
  bool Keep(const DepEdge& e) const {
    if (ignored_tables_.count(e.table)) return false;
    if (ignored_edges_.count({e.reader, e.writer})) return false;
    for (const auto& pred : custom_) {
      if (pred(e)) return false;
    }
    return true;
  }

  // Adapter for DependencyGraph::Affected.
  std::function<bool(const DepEdge&)> AsFilter() const {
    return [this](const DepEdge& e) { return Keep(e); };
  }

 private:
  RepairStrategy strategy_ = RepairStrategy::kUndoOnly;
  std::set<std::string> ignored_tables_;
  std::set<std::pair<int64_t, int64_t>> ignored_edges_;
  std::vector<std::function<bool(const DepEdge&)>> custom_;
};

}  // namespace irdb::repair
