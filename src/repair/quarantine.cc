#include "repair/quarantine.h"

#include <unordered_map>

#include "proxy/rewriter.h"
#include "util/string_utils.h"

namespace irdb::repair {

namespace {

bool IsMetadataTable(const std::string& lower_name) {
  return lower_name == proxy::kTransDepTable ||
         lower_name == proxy::kTrackingGapsTable ||
         lower_name == proxy::kAnnotTable;
}

// Working state per table while classifying the undo set's ops.
struct TableAccum {
  int32_t table_id = 0;
  std::vector<std::string> key_columns;  // empty → no PK index
  bool whole = false;
  bool fallback = false;  // whole because precision was lost
  // Ops keyed by their PK literals (populated as resolved); buckets derive
  // from these at the end so a late whole-table escalation discards them.
  std::vector<std::pair<const RepairOp*, std::vector<std::pair<std::string, Value>>>>
      keyed_ops;
  // kUpdate ops whose PK must come from the row address.
  std::vector<const RepairOp*> pending_updates;
  // row address → PK literals, learned from sibling kInsert/kDelete ops
  // (full-row values) of the same undo set.
  std::unordered_map<int64_t, std::vector<std::pair<std::string, Value>>>
      address_keys;
};

std::vector<std::pair<std::string, Value>> ExtractKey(
    const std::vector<std::string>& key_columns,
    const std::vector<std::pair<std::string, Value>>& values) {
  std::vector<std::pair<std::string, Value>> out;
  for (const std::string& kc : key_columns) {
    const Value* found = nullptr;
    for (const auto& [name, v] : values) {
      if (EqualsIgnoreCase(name, kc)) {
        found = &v;
        break;
      }
    }
    if (found == nullptr) return {};
    out.emplace_back(kc, *found);
  }
  return out;
}

bool TouchesKeyColumn(const std::vector<std::string>& key_columns,
                      const std::vector<std::pair<std::string, Value>>& values) {
  for (const auto& [name, v] : values) {
    (void)v;
    for (const std::string& kc : key_columns) {
      if (EqualsIgnoreCase(name, kc)) return true;
    }
  }
  return false;
}

}  // namespace

ContaminatedPartition ComputeContaminatedPartition(
    Database* db, const DependencyAnalysis& analysis,
    const std::set<int64_t>& undo_proxy_ids) {
  ContaminatedPartition part;

  std::set<int64_t> undo_internal;
  for (int64_t proxy_id : undo_proxy_ids) {
    auto it = analysis.proxy_to_internal.find(proxy_id);
    if (it != analysis.proxy_to_internal.end()) undo_internal.insert(it->second);
  }
  if (undo_internal.empty()) return part;

  const FlavorTraits& traits = db->traits();
  const std::string address_column =
      traits.has_rowid ? traits.rowid_name : proxy::kSybaseRowIdColumn;

  std::map<std::string, TableAccum> accum;
  for (const RepairOp& op : analysis.ops) {
    if (undo_internal.count(op.internal_txn_id) == 0) continue;
    const std::string table_key = ToLowerAscii(op.table);
    auto it = accum.find(table_key);
    if (it == accum.end()) {
      auto info = db->TableKeyInfo(op.table);
      if (!info.has_value()) continue;  // table dropped since; nothing to fence
      TableAccum t;
      t.table_id = info->first;
      t.key_columns = std::move(info->second);
      it = accum.emplace(table_key, std::move(t)).first;
    }
    TableAccum& t = it->second;
    if (t.key_columns.empty()) {
      // No primary-key index: key-slicing impossible.
      if (!t.whole) t.fallback = true;
      t.whole = true;
    }
    if (t.whole) continue;

    switch (op.op) {
      case LogOp::kInsert:
      case LogOp::kDelete: {
        // Full-row values: the key is right there.
        auto key = ExtractKey(t.key_columns, op.values);
        if (key.empty()) {
          t.whole = true;
          t.fallback = true;
          break;
        }
        if (op.row_address >= 0) t.address_keys[op.row_address] = key;
        t.keyed_ops.emplace_back(&op, std::move(key));
        break;
      }
      case LogOp::kUpdate: {
        // Before-values carry only the changed columns; a key column among
        // them means the update rewrote the primary key — both old and new
        // buckets are dirty and the row's lane-time key is unstable, so the
        // whole table is fenced.
        if (TouchesKeyColumn(t.key_columns, op.values)) {
          t.whole = true;
          t.fallback = true;
          break;
        }
        t.pending_updates.push_back(&op);
        break;
      }
      default:
        break;
    }
  }

  // Resolve pending updates: sibling ops first (an undone insert or delete
  // of the same row carries its key), live-row lookup for the rest.
  for (auto& [table_key, t] : accum) {
    if (t.whole || t.pending_updates.empty()) continue;
    std::vector<const RepairOp*> unresolved;
    for (const RepairOp* op : t.pending_updates) {
      auto hit = t.address_keys.find(op->row_address);
      if (hit != t.address_keys.end()) {
        t.keyed_ops.emplace_back(op, hit->second);
      } else {
        unresolved.push_back(op);
      }
    }
    if (!unresolved.empty()) {
      std::vector<int64_t> addresses;
      addresses.reserve(unresolved.size());
      for (const RepairOp* op : unresolved) addresses.push_back(op->row_address);
      // table_key is the catalog's lower-cased name; lookups are
      // case-insensitive anyway.
      auto live = db->KeyValuesForRowAddresses(table_key, addresses,
                                               address_column);
      std::unordered_map<int64_t, size_t> by_addr;
      for (size_t i = 0; i < live.size(); ++i) by_addr[live[i].first] = i;
      for (const RepairOp* op : unresolved) {
        auto hit = by_addr.find(op->row_address);
        if (hit == by_addr.end()) {
          // Neither live nor covered by a sibling op: the row's key is
          // unknowable without replaying the log — fence the table.
          t.whole = true;
          t.fallback = true;
          break;
        }
        t.keyed_ops.emplace_back(op, live[hit->second].second);
      }
    }
  }

  // Materialize slices and annotations.
  for (auto& [table_key, t] : accum) {
    part.table_ids[table_key] = t.table_id;
    const bool metadata = IsMetadataTable(table_key);
    if (metadata) part.metadata_tables.insert(table_key);
    if (t.whole) {
      if (!metadata) {
        part.slices.push_back({t.table_id, 0});
        part.whole_tables.insert(table_key);
        if (t.fallback) ++part.fallback_whole_tables;
      }
      continue;  // annotations dropped: lanes take coarse locks anyway
    }
    std::set<uint64_t> buckets;
    for (auto& [op, key] : t.keyed_ops) {
      auto h = db->KeyHashForValues(table_key, key);
      if (!h.has_value()) {
        // Coercion failed late (schema changed under us): degrade to whole.
        buckets.clear();
        if (!metadata) {
          part.slices.push_back({t.table_id, 0});
          part.whole_tables.insert(table_key);
          ++part.fallback_whole_tables;
        }
        break;
      }
      buckets.insert(
          concurrency::ResourceId::Key(t.table_id, *h).key_hash);
      part.op_keys[op] = std::move(key);
    }
    if (!metadata) {
      for (uint64_t b : buckets) part.slices.push_back({t.table_id, b});
    }
    part.key_buckets += static_cast<int>(buckets.size());
  }
  return part;
}

}  // namespace irdb::repair
