// Reenactment repair (DESIGN.md §5i) — replay innocent dependents instead of
// cascading the undo.
//
// The paper's repair only *undoes*: every transaction in the dependency
// closure of a malicious seed is compensated away, destroying the intended
// effects of innocent dependents. Reenactment (Ultraverse / the Reenactment
// papers) heals differently: after the closure is mechanically compensated —
// which is exactly the state "history minus the closure" — the closure's
// innocent members are re-executed from the statement journal in dependency
// order, so their intent is recomputed against the corrected state and only
// the seeds stay undone.
//
// Replay contract:
//   - Order: ascending proxy id. Proxy ids are assigned in commit order and
//     every trans_dep edge points from a later reader to an earlier writer,
//     so ascending id is a topological order of the kept dependency graph.
//   - Parallelism: connected components of the kept-edge graph restricted to
//     the replay set share no tracked dependency and are replayed
//     concurrently (one lane per component); members of one component replay
//     serially in ascending id. 2PL arbitrates physical conflicts between
//     lanes; deadlocked replays retry bounded.
//   - Divergence: a replayed statement that errors, or whose result
//     fingerprint (SELECT row count / DML affected count) differs from the
//     journaled one, demotes its transaction to undo — the replay rolls back
//     and the transaction's downstream closure within the replay set stays
//     undone too. Value-level differences do NOT demote: recomputing new
//     values against the corrected state is the point of reenactment.
//   - Demotion is conservative: tracking-gap transactions (dependency set
//     lost) and transactions with no journal entry (e.g. history predating a
//     recovery) are demoted up front, with their downstream closure.
//     Dependence on a *seed* never demotes — that would collapse
//     reenactment back into undo-only.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "repair/analyzer.h"
#include "repair/compensator.h"
#include "repair/dba_policy.h"
#include "txn/stmt_journal.h"

namespace irdb::repair {

// Why a closure member stayed undone instead of being replayed.
enum class DemoteReason {
  kTrackingGap,   // dependency metadata lost; replay order unknowable
  kNoJournal,     // no journaled statements (history predates the journal)
  kDiverged,      // replay fingerprint mismatch or statement error
  kDownstream,    // depends (through kept edges) on a demoted transaction
  kReplayFailed,  // infrastructure failure (e.g. deadlock retries exhausted)
};

const char* DemoteReasonName(DemoteReason r);

// Outcome of RepairEngine::RepairReenact.
struct ReenactReport {
  // Compensation accounting for the mechanical closure undo. `undo_set` is
  // rewritten to the transactions that STAYED undone after replay: the
  // seeds plus every demotion.
  RepairReport repair;
  std::set<int64_t> closure;   // full dependency closure of the seeds
  std::set<int64_t> replayed;  // innocent members successfully re-executed
  std::map<int64_t, DemoteReason> demoted;
  int64_t diverged = 0;        // demotions caused by a fingerprint mismatch
  int64_t stmts_replayed = 0;
  int components = 0;          // independent subgraphs replayed
  int replay_lanes = 1;        // concurrent component lanes (1 when serial)
  double replay_wall_ms = 0;
};

// The deterministic part of reenactment: which closure members replay, in
// what order, grouped how. Pure function of its inputs — the parallel replay
// consumes the same plan the serial one does.
struct ReenactPlan {
  // Replayable members in ascending proxy id (global replay order).
  std::vector<int64_t> replay_order;
  // Members demoted before any replay ran (gaps, missing journal entries,
  // and their kept-edge downstream closure).
  std::map<int64_t, DemoteReason> pre_demoted;
  // Connected components of the kept-edge graph restricted to
  // `replay_order`, each sorted ascending; components are mutually
  // dependency-free and safe to replay concurrently.
  std::vector<std::vector<int64_t>> components;
};

ReenactPlan PlanReenact(const DependencyAnalysis& analysis,
                        const std::set<int64_t>& closure,
                        const std::vector<int64_t>& seed_proxy_ids,
                        const DbaPolicy& policy, const StmtJournal& journal);

// Replays the plan against `db` (closure already compensated), filling the
// replay fields of `out`. A multi-lane `pool` replays components
// concurrently; pass nullptr for the serial walk. Never fails the repair:
// replay problems demote the transaction involved (plus its downstream
// within its component) and the report says so.
void ExecuteReenactPlan(Database* db, const DependencyAnalysis& analysis,
                        const DbaPolicy& policy, const StmtJournal& journal,
                        const ReenactPlan& plan, util::ThreadPool* pool,
                        ReenactReport* out);

}  // namespace irdb::repair
