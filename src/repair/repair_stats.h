// Per-phase accounting for the repair pipeline (DESIGN.md §5c).
//
// Each phase records two durations:
//   - wall:  measured on the machine running the experiment;
//   - sim:   the deterministic virtual-clock charge for the disk-bound work
//            the 2004 testbed would have performed (DESIGN.md §4a) — log
//            reads during the scan, random page I/O per compensating
//            statement. Parallel phases charge the *maximum* over their
//            lanes (lanes proceed concurrently on independent spindles);
//            serial runs charge the sum. The charge is a pure function of
//            (workload, thread count), so reported speedups are
//            reproducible on any host.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>

namespace irdb::repair {

// Simulated costs, scaled to engine/io_model.h's 2004-class device.
// Scanning dominates: repair must read and decode the *entire* log
// (sequential I/O plus per-record image reconstruction — the Oracle flavor
// renders SQL text, the Sybase flavor replays page offsets), while each
// compensating statement is a rowid-addressed lookup (index walk, mostly
// cache-resident after the scan) plus a log append.
struct RepairCostParams {
  double scan_record_seconds = 4.0e-4;      // per log record
  double scan_byte_seconds = 6.0e-7;        // per image byte (sequential read)
  double compensate_stmt_seconds = 1.0e-3;  // per compensating statement
};

struct RepairPhaseStats {
  int threads = 1;

  double scan_wall_ms = 0;
  double scan_sim_ms = 0;
  double correlate_wall_ms = 0;
  double closure_wall_ms = 0;
  double compensate_wall_ms = 0;
  double compensate_sim_ms = 0;
  double replay_wall_ms = 0;  // reenactment only (0 under undo-only)

  int64_t records_scanned = 0;
  int64_t image_bytes_scanned = 0;
  int scan_segments = 1;      // chunks the log was split into
  int compensate_lanes = 1;   // concurrent table batches
  int64_t compensate_stmts = 0;
  int64_t replay_stmts = 0;    // journaled statements re-executed
  int replay_components = 0;   // independent subgraphs replayed

  double total_wall_ms() const {
    return scan_wall_ms + correlate_wall_ms + closure_wall_ms +
           compensate_wall_ms + replay_wall_ms;
  }
  double total_sim_ms() const { return scan_sim_ms + compensate_sim_ms; }
  // The headline metric: wall + virtual clock, as in ResilientDb's
  // TotalSeconds.
  double total_ms() const { return total_wall_ms() + total_sim_ms(); }

  std::string ToString() const {
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "repair phases (threads=%d): scan %.2f ms wall + %.2f ms sim "
        "(%lld records, %lld image bytes, %d segments) | correlate %.2f ms | "
        "closure %.2f ms | compensate %.2f ms wall + %.2f ms sim "
        "(%lld stmts, %d lanes) | replay %.2f ms (%lld stmts, "
        "%d components) | total %.2f ms",
        threads, scan_wall_ms, scan_sim_ms,
        static_cast<long long>(records_scanned),
        static_cast<long long>(image_bytes_scanned), scan_segments,
        correlate_wall_ms, closure_wall_ms, compensate_wall_ms,
        compensate_sim_ms, static_cast<long long>(compensate_stmts),
        compensate_lanes, replay_wall_ms,
        static_cast<long long>(replay_stmts), replay_components, total_ms());
    return std::string(buf);
  }
};

}  // namespace irdb::repair
