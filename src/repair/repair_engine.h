// RepairEngine — one-stop post-intrusion repair facade.
//
// Typical flow (mirrors the paper's repair procedure):
//   RepairEngine eng(&db, /*threads=*/4);
//   auto analysis = eng.Analyze();                   // read + correlate log
//   std::string dot = RepairEngine::ExportDot(...);  // show the DBA (Fig. 3)
//   auto undo = eng.ComputeUndoSet(*analysis, seeds, policy);
//   auto report = eng.Repair(seeds, policy);         // selective rollback
//
// `threads` > 1 switches every phase to the parallel pipeline (DESIGN.md
// §5c): segmented log scan over the durable WAL bytes, sharded dependency
// closure, per-table batched compensation. Results are identical to
// threads=1, which in turn runs the exact serial code paths. Per-phase
// wall/simulated timings accumulate in phase_stats().
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "flavor/log_reader.h"
#include "repair/analyzer.h"
#include "repair/compensator.h"
#include "repair/dba_policy.h"
#include "repair/quarantine.h"
#include "repair/reenact.h"
#include "repair/repair_stats.h"
#include "util/thread_pool.h"

namespace irdb::repair {

// Outcome of RepairOnline (serve-through repair, DESIGN.md §5g).
struct OnlineRepairReport {
  RepairReport repair;         // merged compensation accounting
  int rounds = 0;              // analyze→quarantine→drain fixpoint iterations
  int slices_installed = 0;    // rejection slices at the hold point
  int whole_table_slices = 0;
  int key_bucket_slices = 0;
  int fallback_whole_tables = 0;  // precision lost (no PK / PK rewritten)
  int lanes = 0;               // per-table compensation transactions
  int slices_released = 0;     // released incrementally as lanes committed
  int64_t rejects_during = 0;  // statements the gate turned away meanwhile
};

class RepairEngine {
 public:
  explicit RepairEngine(Database* db, int threads = 1)
      : db_(db), admin_(db), reader_(MakeLogReader(db)) {
    set_threads(threads);
  }

  // Resizes the worker pool; threads <= 1 tears it down (serial mode).
  void set_threads(int threads);
  int threads() const { return threads_; }

  Result<DependencyAnalysis> Analyze();

  // Damage perimeter: seeds plus everything transitively dependent on them,
  // honouring the DBA's false-dependency policy.
  std::set<int64_t> ComputeUndoSet(const DependencyAnalysis& analysis,
                                   const std::vector<int64_t>& seed_proxy_ids,
                                   const DbaPolicy& policy) const;

  // Compensation with phase accounting (the building block of Repair, also
  // usable directly after an explicit Analyze/ComputeUndoSet).
  Result<RepairReport> CompensateUndoSet(const DependencyAnalysis& analysis,
                                         const std::set<int64_t>& undo);

  // Full repair, dispatching on policy.strategy(): undo-only runs
  // analyze → closure → compensate; kReenact runs RepairReenact below and
  // returns its embedded RepairReport (undo_set = what STAYED undone).
  Result<RepairReport> Repair(const std::vector<int64_t>& seed_proxy_ids,
                              const DbaPolicy& policy);

  // Reenactment repair (DESIGN.md §5i): compensates the FULL dependency
  // closure mechanically — producing exactly the state "history minus the
  // closure" — then re-executes the closure's innocent members from the
  // statement journal in dependency order, so their intent is recomputed
  // against the corrected state and only the seeds (plus conservative
  // demotions, see reenact.h) stay undone. Independent subgraphs replay
  // concurrently when threads > 1; results are merged deterministically.
  // Replay problems never fail the repair — they demote.
  Result<ReenactReport> RepairReenact(
      const std::vector<int64_t>& seed_proxy_ids, const DbaPolicy& policy);

  // Serve-through repair (DESIGN.md §5g): the database keeps serving
  // traffic while the contaminated partition is fenced off and healed.
  //
  //   1. Fixpoint: analyze → close → compute the contaminated partition →
  //      install it in the engine's quarantine gate → drain in-flight
  //      holders by X-locking the slices through the lock manager →
  //      re-analyze, until the undo set is stable (writes that slipped in
  //      before the fence are caught by the next round).
  //   2. Heal: one compensation lane per table, each its own transaction on
  //      its own gate-exempt connection (per-table batches commute — the
  //      same argument that parallelizes offline Compensate). Compensating
  //      WHEREs carry PK literals where known, so lanes take key locks and
  //      clean keys of a partially contaminated table stay available.
  //   3. Release: a table's slices leave the quarantine the moment its lane
  //      commits — availability recovers incrementally, not at the end.
  //
  // Requires the concurrent engine (fails under serial_mode) and the single
  // online-repair slot (a second concurrent call gets kFailedPrecondition).
  // On a lane failure the unhealed tables STAY quarantined and the claim
  // stays held — run an offline Repair and then db->quarantine().End() to
  // recover; releasing the fence on error would re-expose contaminated rows.
  Result<OnlineRepairReport> RepairOnline(
      const std::vector<int64_t>& seed_proxy_ids, const DbaPolicy& policy);

  static std::string ExportDot(const DependencyAnalysis& analysis,
                               const std::set<int64_t>& highlight = {}) {
    return analysis.graph.ToDot(highlight);
  }

  // Accumulated per-phase timings since the last Analyze() (Analyze resets
  // them; ComputeUndoSet and CompensateUndoSet add to them).
  const RepairPhaseStats& phase_stats() const { return phases_; }
  util::ThreadPoolStats pool_stats() const {
    return pool_ ? pool_->stats() : util::ThreadPoolStats{};
  }

  FlavorLogReader* reader() { return reader_.get(); }
  DbConnection* admin() { return &admin_; }

 private:
  Database* db_;
  DirectConnection admin_;
  std::unique_ptr<FlavorLogReader> reader_;
  int threads_ = 1;
  std::unique_ptr<util::ThreadPool> pool_;
  RepairCostParams costs_;
  // ComputeUndoSet is logically const; timing it is bookkeeping.
  mutable RepairPhaseStats phases_;
};

}  // namespace irdb::repair
