// RepairEngine — one-stop post-intrusion repair facade.
//
// Typical flow (mirrors the paper's repair procedure):
//   RepairEngine eng(&db);
//   auto analysis = eng.Analyze();                   // read + correlate log
//   std::string dot = RepairEngine::ExportDot(...);  // show the DBA (Fig. 3)
//   auto undo = eng.ComputeUndoSet(*analysis, seeds, policy);
//   auto report = eng.Repair(seeds, policy);         // selective rollback
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "flavor/log_reader.h"
#include "repair/analyzer.h"
#include "repair/compensator.h"
#include "repair/dba_policy.h"

namespace irdb::repair {

class RepairEngine {
 public:
  explicit RepairEngine(Database* db)
      : db_(db), admin_(db), reader_(MakeLogReader(db)) {}

  Result<DependencyAnalysis> Analyze() {
    return repair::Analyze(reader_.get(), &admin_);
  }

  // Damage perimeter: seeds plus everything transitively dependent on them,
  // honouring the DBA's false-dependency policy.
  std::set<int64_t> ComputeUndoSet(const DependencyAnalysis& analysis,
                                   const std::vector<int64_t>& seed_proxy_ids,
                                   const DbaPolicy& policy) const {
    return analysis.graph.Affected(seed_proxy_ids, policy.AsFilter());
  }

  // Full repair: analyze, close over dependencies, compensate.
  Result<RepairReport> Repair(const std::vector<int64_t>& seed_proxy_ids,
                              const DbaPolicy& policy) {
    IRDB_ASSIGN_OR_RETURN(DependencyAnalysis analysis, Analyze());
    std::set<int64_t> undo = ComputeUndoSet(analysis, seed_proxy_ids, policy);
    RepairReport report;
    IRDB_RETURN_IF_ERROR(
        Compensate(analysis, undo, &admin_, db_->traits(), &report));
    return report;
  }

  static std::string ExportDot(const DependencyAnalysis& analysis,
                               const std::set<int64_t>& highlight = {}) {
    return analysis.graph.ToDot(highlight);
  }

  FlavorLogReader* reader() { return reader_.get(); }
  DbConnection* admin() { return &admin_; }

 private:
  Database* db_;
  DirectConnection admin_;
  std::unique_ptr<FlavorLogReader> reader_;
};

}  // namespace irdb::repair
