// RepairEngine — one-stop post-intrusion repair facade.
//
// Typical flow (mirrors the paper's repair procedure):
//   RepairEngine eng(&db, /*threads=*/4);
//   auto analysis = eng.Analyze();                   // read + correlate log
//   std::string dot = RepairEngine::ExportDot(...);  // show the DBA (Fig. 3)
//   auto undo = eng.ComputeUndoSet(*analysis, seeds, policy);
//   auto report = eng.Repair(seeds, policy);         // selective rollback
//
// `threads` > 1 switches every phase to the parallel pipeline (DESIGN.md
// §5c): segmented log scan over the durable WAL bytes, sharded dependency
// closure, per-table batched compensation. Results are identical to
// threads=1, which in turn runs the exact serial code paths. Per-phase
// wall/simulated timings accumulate in phase_stats().
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "flavor/log_reader.h"
#include "repair/analyzer.h"
#include "repair/compensator.h"
#include "repair/dba_policy.h"
#include "repair/repair_stats.h"
#include "util/thread_pool.h"

namespace irdb::repair {

class RepairEngine {
 public:
  explicit RepairEngine(Database* db, int threads = 1)
      : db_(db), admin_(db), reader_(MakeLogReader(db)) {
    set_threads(threads);
  }

  // Resizes the worker pool; threads <= 1 tears it down (serial mode).
  void set_threads(int threads);
  int threads() const { return threads_; }

  Result<DependencyAnalysis> Analyze();

  // Damage perimeter: seeds plus everything transitively dependent on them,
  // honouring the DBA's false-dependency policy.
  std::set<int64_t> ComputeUndoSet(const DependencyAnalysis& analysis,
                                   const std::vector<int64_t>& seed_proxy_ids,
                                   const DbaPolicy& policy) const;

  // Compensation with phase accounting (the building block of Repair, also
  // usable directly after an explicit Analyze/ComputeUndoSet).
  Result<RepairReport> CompensateUndoSet(const DependencyAnalysis& analysis,
                                         const std::set<int64_t>& undo);

  // Full repair: analyze, close over dependencies, compensate.
  Result<RepairReport> Repair(const std::vector<int64_t>& seed_proxy_ids,
                              const DbaPolicy& policy);

  static std::string ExportDot(const DependencyAnalysis& analysis,
                               const std::set<int64_t>& highlight = {}) {
    return analysis.graph.ToDot(highlight);
  }

  // Accumulated per-phase timings since the last Analyze() (Analyze resets
  // them; ComputeUndoSet and CompensateUndoSet add to them).
  const RepairPhaseStats& phase_stats() const { return phases_; }
  util::ThreadPoolStats pool_stats() const {
    return pool_ ? pool_->stats() : util::ThreadPoolStats{};
  }

  FlavorLogReader* reader() { return reader_.get(); }
  DbConnection* admin() { return &admin_; }

 private:
  Database* db_;
  DirectConnection admin_;
  std::unique_ptr<FlavorLogReader> reader_;
  int threads_ = 1;
  std::unique_ptr<util::ThreadPool> pool_;
  RepairCostParams costs_;
  // ComputeUndoSet is logically const; timing it is bookkeeping.
  mutable RepairPhaseStats phases_;
};

}  // namespace irdb::repair
