// Compensator — selective undo of committed transactions (§3.3).
//
// Walks the reconstructed log backwards; for every row operation belonging
// to a transaction in the undo set it executes the compensating statement
// immediately: DELETE→INSERT, INSERT→DELETE, UPDATE→reverse UPDATE, each
// addressed by row ID. Rows re-inserted during repair receive fresh row IDs,
// so an old→new row-ID mapping is maintained per table and consulted by all
// subsequent compensating statements; the mapping is discarded when the
// row's original INSERT log entry is reached.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "flavor/flavor_traits.h"
#include "repair/analyzer.h"
#include "wire/connection.h"

namespace irdb::repair {

struct RepairReport {
  std::set<int64_t> undo_set;  // proxy txn ids rolled back
  int64_t ops_compensated = 0;
  int64_t compensating_inserts = 0;
  int64_t compensating_deletes = 0;
  int64_t compensating_updates = 0;
  int64_t rows_remapped = 0;
  int compensate_lanes = 1;  // concurrent per-table batches (1 when serial)
};

// Executes the compensation through `admin` (an untracked connection),
// wrapped in a single repair transaction. `undo_proxy_ids` must be closed
// under the chosen dependency semantics — Compensate does not re-derive it.
//
// A multi-lane `pool` batches the plan per table and applies the batches
// concurrently: compensating statements address rows by row ID within one
// table (and the old→new remap is per table), so batches of distinct tables
// touch disjoint row sets and commute; inverse-LSN order is preserved where
// it matters — within each table. The resulting database state is identical
// to the serial walk's.
//
// When `db` is also given, each lane runs as its own transaction on a
// private gate-exempt engine session instead of sharing `admin` — the
// shared session's statement mutex would serialize the lanes (on the
// disk-bound I/O model, stall charges only overlap across sessions). The
// trade: the repair is no longer one atomic transaction; a lane that fails
// leaves the other tables' (committed, commuting) compensation in place,
// the same per-lane semantics RepairOnline has always had. Without `db`
// the single-transaction shared-session walk is used.
Status Compensate(const DependencyAnalysis& analysis,
                  const std::set<int64_t>& undo_proxy_ids, DbConnection* admin,
                  const FlavorTraits& traits, RepairReport* report,
                  util::ThreadPool* pool = nullptr, Database* db = nullptr);

// One per-table compensation batch: the table's undone ops in inverse log
// order. Per-table batches address disjoint row sets and commute (the same
// argument that parallelizes Compensate), so online repair runs each in its
// own transaction and releases the table's quarantine slices at its commit.
struct CompensationBatch {
  std::string table;  // lower-cased catalog name
  std::vector<const RepairOp*> ops;
  // Parallel to `ops` (or empty): primary-key literals appended to each
  // compensating WHERE, so the statement's lock plan names a single key
  // instead of coarsening to table X — clean keys of the same table stay
  // lockable while the lane runs. An empty inner vector means rowid-only
  // addressing for that op.
  std::vector<std::vector<std::pair<std::string, Value>>> keys;
};

// Splits the undo set into per-table batches; `op_keys` (optional) supplies
// the PK literals per op (repair/quarantine.h's OpKeyMap). Fails when a
// proxy id is missing from the log.
Result<std::vector<CompensationBatch>> BuildCompensationBatches(
    const DependencyAnalysis& analysis, const std::set<int64_t>& undo_proxy_ids,
    const std::map<const RepairOp*,
                   std::vector<std::pair<std::string, Value>>>* op_keys =
        nullptr);

// Applies one batch through `admin`. The caller brackets the transaction
// (BEGIN before, COMMIT after) — online repair holds one per lane.
Status CompensateBatch(const CompensationBatch& batch, DbConnection* admin,
                       const FlavorTraits& traits, RepairReport* report);

}  // namespace irdb::repair
