// Compensator — selective undo of committed transactions (§3.3).
//
// Walks the reconstructed log backwards; for every row operation belonging
// to a transaction in the undo set it executes the compensating statement
// immediately: DELETE→INSERT, INSERT→DELETE, UPDATE→reverse UPDATE, each
// addressed by row ID. Rows re-inserted during repair receive fresh row IDs,
// so an old→new row-ID mapping is maintained per table and consulted by all
// subsequent compensating statements; the mapping is discarded when the
// row's original INSERT log entry is reached.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "flavor/flavor_traits.h"
#include "repair/analyzer.h"
#include "wire/connection.h"

namespace irdb::repair {

struct RepairReport {
  std::set<int64_t> undo_set;  // proxy txn ids rolled back
  int64_t ops_compensated = 0;
  int64_t compensating_inserts = 0;
  int64_t compensating_deletes = 0;
  int64_t compensating_updates = 0;
  int64_t rows_remapped = 0;
  int compensate_lanes = 1;  // concurrent per-table batches (1 when serial)
};

// Executes the compensation through `admin` (an untracked connection),
// wrapped in a single repair transaction. `undo_proxy_ids` must be closed
// under the chosen dependency semantics — Compensate does not re-derive it.
//
// A multi-lane `pool` batches the plan per table and applies the batches
// concurrently: compensating statements address rows by row ID within one
// table (and the old→new remap is per table), so batches of distinct tables
// touch disjoint row sets and commute; inverse-LSN order is preserved where
// it matters — within each table. The resulting database state is identical
// to the serial walk's.
Status Compensate(const DependencyAnalysis& analysis,
                  const std::set<int64_t>& undo_proxy_ids, DbConnection* admin,
                  const FlavorTraits& traits, RepairReport* report,
                  util::ThreadPool* pool = nullptr);

}  // namespace irdb::repair
