#include "repair/analyzer.h"

#include <chrono>
#include <cmath>

#include "obs/catalog.h"
#include "obs/trace.h"
#include "proxy/tracking_proxy.h"
#include "util/string_utils.h"

namespace irdb::repair {

Result<DependencyAnalysis> Analyze(FlavorLogReader* reader, DbConnection* admin,
                                   util::ThreadPool* pool,
                                   RepairPhaseStats* phases) {
  DependencyAnalysis out;
  reader->set_pool(pool);
  obs::Span scan_span(obs::span::kRepairScanFlavorRead);
  IRDB_ASSIGN_OR_RETURN(out.ops, reader->ReadCommitted());
  scan_span.AddArg("ops", static_cast<int64_t>(out.ops.size()));
  {
    // One measurement serves phase stats, the registry, and the trace.
    const double ms = scan_span.End();
    if (phases != nullptr) phases->scan_wall_ms += ms;
    obs::Count(obs::Metrics::Get().repair_scan_us, std::llround(ms * 1000.0));
  }
  obs::Span correlate_span(obs::span::kRepairCorrelate);

  // Pass 1 — ID correlation: each tracked transaction ends with insert(s)
  // into trans_dep carrying its proxy ID; collect those plus the dependency
  // payloads (which may span several rows when chunked).
  std::map<int64_t, std::string> payload_by_proxy;
  for (const RepairOp& op : out.ops) {
    if (!op.is_trans_dep_insert || !op.inserted_tr_id) continue;
    const int64_t proxy_id = *op.inserted_tr_id;
    auto it = out.internal_to_proxy.find(op.internal_txn_id);
    if (it != out.internal_to_proxy.end() && it->second != proxy_id) {
      return Status::Internal(
          "transaction " + std::to_string(op.internal_txn_id) +
          " carries two distinct proxy IDs (" + std::to_string(it->second) +
          ", " + std::to_string(proxy_id) + ")");
    }
    out.internal_to_proxy[op.internal_txn_id] = proxy_id;
    out.proxy_to_internal[proxy_id] = op.internal_txn_id;
    std::string& payload = payload_by_proxy[proxy_id];
    if (!payload.empty() && !op.inserted_dep_payload.empty()) {
      payload.push_back(' ');
    }
    payload.append(op.inserted_dep_payload);
    out.graph.AddNode(proxy_id);
  }

  // Pass 1b — tracking gaps: a degraded commit has no trans_dep rows, but
  // its tracking_gaps insert carries the proxy id, so it still anchors the
  // internal<->proxy correlation (compensation needs it).
  for (const RepairOp& op : out.ops) {
    if (!op.is_tracking_gap_insert || !op.inserted_tr_id) continue;
    const int64_t proxy_id = *op.inserted_tr_id;
    auto it = out.internal_to_proxy.find(op.internal_txn_id);
    if (it != out.internal_to_proxy.end() && it->second != proxy_id) {
      return Status::Internal(
          "transaction " + std::to_string(op.internal_txn_id) +
          " carries two distinct proxy IDs (" + std::to_string(it->second) +
          ", " + std::to_string(proxy_id) + ")");
    }
    out.internal_to_proxy[op.internal_txn_id] = proxy_id;
    out.proxy_to_internal[proxy_id] = op.internal_txn_id;
    out.tracking_gaps.insert(proxy_id);
    out.graph.AddNode(proxy_id);
  }

  // Pass 2 — explicit (run-time) dependencies from the payloads.
  for (const auto& [proxy_id, payload] : payload_by_proxy) {
    IRDB_ASSIGN_OR_RETURN(std::vector<proxy::DepEntry> deps,
                          proxy::ParseDepTokens(payload));
    for (const auto& [table, writer] : deps) {
      if (writer == proxy_id) continue;
      out.graph.AddEdge(DepEdge{proxy_id, writer, table, DepKind::kRuntime});
    }
  }

  // Pass 3 — reconstructed dependencies: every UPDATE/DELETE before-image
  // names the previous writer in its trid column (§3.3: these were skipped at
  // run time to keep tracking cheap). Each op is examined independently
  // against the (now frozen) correlation maps, so the pass fans out in
  // contiguous op chunks whose edge lists concatenate in chunk order —
  // yielding the exact edge sequence of the serial loop.
  auto reconstruct_edge =
      [&](const RepairOp& op) -> std::optional<DepEdge> {
    if (op.op != LogOp::kUpdate && op.op != LogOp::kDelete) return std::nullopt;
    if (!op.before_trid) return std::nullopt;
    auto it = out.internal_to_proxy.find(op.internal_txn_id);
    if (it == out.internal_to_proxy.end()) return std::nullopt;  // untracked
    const int64_t reader_proxy = it->second;
    const int64_t writer_proxy = *op.before_trid;
    if (writer_proxy == reader_proxy) return std::nullopt;
    return DepEdge{reader_proxy, writer_proxy, ToLowerAscii(op.table),
                   DepKind::kReconstructed};
  };
  if (pool != nullptr && pool->lanes() > 1 && !out.ops.empty()) {
    const size_t nchunks =
        util::ThreadPool::SplitRange(static_cast<int64_t>(out.ops.size()),
                                     pool->lanes())
            .size();
    std::vector<std::vector<DepEdge>> chunk_edges(nchunks);
    pool->ParallelFor(static_cast<int64_t>(out.ops.size()),
                      [&](int64_t begin, int64_t end, int chunk) {
                        for (int64_t i = begin; i < end; ++i) {
                          auto edge =
                              reconstruct_edge(out.ops[static_cast<size_t>(i)]);
                          if (edge) chunk_edges[chunk].push_back(*edge);
                        }
                      });
    for (std::vector<DepEdge>& edges : chunk_edges) {
      for (DepEdge& edge : edges) out.graph.AddEdge(std::move(edge));
    }
  } else {
    for (const RepairOp& op : out.ops) {
      auto edge = reconstruct_edge(op);
      if (edge) out.graph.AddEdge(std::move(*edge));
    }
  }

  // Pass 4 — conservative edges for tracking gaps: the gap txn's real read
  // set is unknown, so assume it read from every transaction committed
  // before it (proxy-id order is commit order under the serial execution
  // model). Sound — never misses a real dependency — at the cost of
  // over-approximating the damage perimeter.
  const std::set<int64_t> known_nodes = out.graph.nodes();
  for (int64_t gap : out.tracking_gaps) {
    for (int64_t writer : known_nodes) {
      if (writer >= gap) continue;
      out.graph.AddEdge(DepEdge{gap, writer,
                                std::string(proxy::kTrackingGapsTable),
                                DepKind::kConservative});
    }
  }

  // Labels from the annot table, when reachable.
  if (admin != nullptr) {
    auto rs = admin->Execute("SELECT tr_id, descr FROM annot");
    if (rs.ok()) {
      for (const auto& row : rs->rows) {
        if (row.size() == 2 && row[0].is_int() && row[1].is_string()) {
          out.graph.SetLabel(row[0].as_int(), row[1].as_string());
        }
      }
    }
  }
  {
    const double ms = correlate_span.End();
    if (phases != nullptr) phases->correlate_wall_ms += ms;
    obs::Count(obs::Metrics::Get().repair_correlate_us,
               std::llround(ms * 1000.0));
  }
  return out;
}

}  // namespace irdb::repair
