// Interactive "what-if" damage-perimeter exploration (paper §6 future work:
// "a full-scale interactive database damage repair tool that allows a DBA to
// interact with the transaction dependency graph ... and explore the damage
// perimeter by conducting what-if analysis").
//
// A WhatIfSession wraps one DependencyAnalysis with a mutable DbaPolicy.
// Every mutation (ignore a table, prune an edge, change seeds) recomputes
// the perimeter and reports the delta, so the DBA sees exactly which
// transactions each assumption saves or condemns.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "repair/analyzer.h"
#include "repair/dba_policy.h"
#include "repair/reenact.h"

namespace irdb::repair {

struct PerimeterDelta {
  std::vector<int64_t> added;    // now considered corrupted
  std::vector<int64_t> removed;  // saved by the latest assumption
};

class WhatIfSession {
 public:
  explicit WhatIfSession(DependencyAnalysis analysis)
      : analysis_(std::move(analysis)) {}

  const DependencyAnalysis& analysis() const { return analysis_; }
  const DbaPolicy& policy() const { return policy_; }
  const std::set<int64_t>& seeds() const { return seeds_; }

  // --- seeds ---------------------------------------------------------
  bool AddSeed(int64_t proxy_id);
  // Seeds every transaction whose label starts with `prefix`; returns how
  // many matched.
  int AddSeedsByLabelPrefix(const std::string& prefix);
  void ClearSeeds();

  // --- policy mutations (each returns the perimeter delta) ------------
  PerimeterDelta IgnoreTable(const std::string& table);
  PerimeterDelta IgnoreEdge(int64_t reader, int64_t writer);
  // "Writes of transactions labelled `writer_prefix`* to `table` touch only
  // derivable attributes" — the w_ytd-style false-dependency rule.
  PerimeterDelta IgnoreDerived(const std::string& table,
                               const std::string& writer_prefix);
  // Drops all accumulated assumptions.
  PerimeterDelta Reset();

  // --- inspection ------------------------------------------------------
  std::set<int64_t> Perimeter() const;

  // One line per perimeter transaction: label plus the inbound edges that
  // condemn it under the current policy.
  std::string Explain() const;

  // What reenactment (DESIGN.md §5i) would do with the current perimeter:
  // the deterministic replay plan against `journal`, without touching the
  // database. One line per perimeter transaction — seed, replay (with its
  // component), or the up-front demotion reason — plus a summary line, so
  // the DBA can compare "undo everything" against "undo seeds + demotions"
  // before committing to either strategy.
  std::string PreviewReenact(const StmtJournal& journal) const;

  // GraphViz rendering with the current perimeter highlighted.
  std::string Dot() const;

  // Summary counts: nodes, edges kept/ignored, perimeter size.
  std::string Summary() const;

 private:
  PerimeterDelta ApplyAndDiff(const std::function<void()>& mutate);

  DependencyAnalysis analysis_;
  DbaPolicy policy_;
  std::set<int64_t> seeds_;
};

}  // namespace irdb::repair
