#include "repair/repair_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>

#include "obs/catalog.h"
#include "obs/journal.h"
#include "obs/trace.h"
#include "txn/wal_codec.h"
#include "util/string_utils.h"

namespace irdb::repair {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

int64_t ImageBytes(const LogRecord& rec) {
  return static_cast<int64_t>(rec.before_image.size() +
                              rec.after_image.size() + rec.ddl_text.size());
}

}  // namespace

void RepairEngine::set_threads(int threads) {
  threads_ = std::max(1, threads);
  obs::SetGauge(obs::Metrics::Get().repair_threads, threads_);
  if (threads_ <= 1) {
    pool_.reset();
  } else if (!pool_ || pool_->lanes() != threads_) {
    pool_ = std::make_unique<util::ThreadPool>(threads_);
  }
}

Result<DependencyAnalysis> RepairEngine::Analyze() {
  phases_ = RepairPhaseStats{};
  phases_.threads = threads_;
  obs::Count(obs::Metrics::Get().repair_runs);
  obs::Span analyze(obs::span::kRepairAnalyze);
  analyze.AddArg("records", static_cast<int64_t>(db_->wal().records().size()));
  analyze.AddArg("threads", threads_);

  if (pool_) {
    // Durable-bytes leg of the segmented scan: frame-split the serialized
    // WAL and decode the segments concurrently. The decoded records are the
    // same content as the in-memory log, handed to the reader as its scan
    // source; if the bytes carry a torn tail (only possible under fault
    // injection) the live WAL stays authoritative and the reader scans it
    // directly instead.
    obs::Span scan(obs::span::kRepairScanWalDecode);
    const std::string bytes = SerializeWal(db_->wal());
    scan.AddArg("bytes", static_cast<int64_t>(bytes.size()));
    IRDB_ASSIGN_OR_RETURN(WalDecodeResult decoded,
                          DecodeWalParallel(bytes, pool_.get()));
    if (!decoded.truncated_tail &&
        decoded.records.size() == db_->wal().records().size()) {
      reader_->set_scan_override(std::move(decoded.records));
    } else {
      reader_->clear_scan_override();
    }
    // The span's own measurement feeds the phase accumulator and the
    // registry, so the trace always sums to RepairPhaseStats.
    const double ms = scan.End();
    phases_.scan_wall_ms += ms;
    obs::Count(obs::Metrics::Get().repair_scan_us, std::llround(ms * 1000.0));
  } else {
    reader_->clear_scan_override();
  }

  auto analysis = repair::Analyze(reader_.get(), &admin_, pool_.get(), &phases_);
  reader_->clear_scan_override();
  if (!analysis.ok()) return analysis.status();

  // Simulated scan charge: sequential log read + per-record image decoding,
  // split into the same contiguous segments the parallel scan uses. Lanes
  // run concurrently, so the parallel charge is the largest segment's.
  const std::vector<LogRecord>& records = db_->wal().records();
  phases_.records_scanned = static_cast<int64_t>(records.size());
  for (const LogRecord& rec : records) {
    phases_.image_bytes_scanned += ImageBytes(rec);
  }
  const auto segments = util::ThreadPool::SplitRange(
      static_cast<int64_t>(records.size()), threads_);
  phases_.scan_segments = std::max<int>(1, static_cast<int>(segments.size()));
  double max_segment_s = 0, total_s = 0;
  for (const auto& [begin, end] : segments) {
    double segment_s = 0;
    for (int64_t i = begin; i < end; ++i) {
      segment_s +=
          costs_.scan_record_seconds +
          costs_.scan_byte_seconds *
              static_cast<double>(ImageBytes(records[static_cast<size_t>(i)]));
    }
    max_segment_s = std::max(max_segment_s, segment_s);
    total_s += segment_s;
  }
  phases_.scan_sim_ms += (threads_ > 1 ? max_segment_s : total_s) * 1000.0;
  obs::Count(obs::Metrics::Get().repair_records_scanned,
             phases_.records_scanned);
  obs::Count(obs::Metrics::Get().repair_scan_sim_us,
             std::llround(phases_.scan_sim_ms * 1000.0));
  obs::EventJournal::Default().Append(
      obs::event::kRepairAnalyzeDone,
      {{"records", std::to_string(phases_.records_scanned)},
       {"nodes", std::to_string(analysis->graph.nodes().size())},
       {"edges", std::to_string(analysis->graph.edges().size())},
       {"gaps", std::to_string(analysis->tracking_gaps.size())}});
  return analysis;
}

std::set<int64_t> RepairEngine::ComputeUndoSet(
    const DependencyAnalysis& analysis,
    const std::vector<int64_t>& seed_proxy_ids, const DbaPolicy& policy) const {
  obs::Span span(obs::span::kRepairClosure);
  span.AddArg("seeds", static_cast<int64_t>(seed_proxy_ids.size()));
  std::set<int64_t> out =
      analysis.graph.Affected(seed_proxy_ids, policy.AsFilter(), pool_.get());
  span.AddArg("undo", static_cast<int64_t>(out.size()));
  const double ms = span.End();
  phases_.closure_wall_ms += ms;
  obs::Count(obs::Metrics::Get().repair_closure_us, std::llround(ms * 1000.0));
  return out;
}

Result<RepairReport> RepairEngine::CompensateUndoSet(
    const DependencyAnalysis& analysis, const std::set<int64_t>& undo) {
  obs::Span span(obs::span::kRepairCompensate);
  RepairReport report;
  IRDB_RETURN_IF_ERROR(Compensate(analysis, undo, &admin_, db_->traits(),
                                  &report, pool_.get()));
  span.AddArg("stmts", report.ops_compensated);
  span.AddArg("lanes", report.compensate_lanes);
  const double wall_ms = span.End();
  phases_.compensate_wall_ms += wall_ms;
  phases_.compensate_lanes = report.compensate_lanes;
  phases_.compensate_stmts += report.ops_compensated;
  obs::Count(obs::Metrics::Get().repair_compensate_us,
             std::llround(wall_ms * 1000.0));
  obs::Count(obs::Metrics::Get().repair_compensations, report.ops_compensated);

  // Simulated compensation charge: one random page read + log append per
  // compensating statement. The parallel path runs one lane per table, so
  // its charge is the makespan of the per-table batch costs over `threads_`
  // lanes under the deterministic longest-batch-first assignment; the serial
  // path pays the sum.
  std::set<int64_t> undo_internal;
  for (int64_t proxy_id : undo) {
    auto it = analysis.proxy_to_internal.find(proxy_id);
    if (it != analysis.proxy_to_internal.end()) undo_internal.insert(it->second);
  }
  std::map<std::string, int64_t> stmts_per_table;
  for (const RepairOp& op : analysis.ops) {
    if (undo_internal.count(op.internal_txn_id)) {
      ++stmts_per_table[ToLowerAscii(op.table)];
    }
  }
  double sim_s = 0;
  if (threads_ <= 1) {
    for (const auto& [table, n] : stmts_per_table) {
      sim_s += static_cast<double>(n) * costs_.compensate_stmt_seconds;
    }
  } else {
    std::vector<std::pair<int64_t, std::string>> batches;
    for (const auto& [table, n] : stmts_per_table) batches.emplace_back(n, table);
    std::sort(batches.begin(), batches.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first > b.first
                                          : a.second < b.second;
              });
    std::vector<double> lane_s(static_cast<size_t>(threads_), 0.0);
    for (const auto& [n, table] : batches) {
      auto lane = std::min_element(lane_s.begin(), lane_s.end());
      *lane += static_cast<double>(n) * costs_.compensate_stmt_seconds;
    }
    sim_s = *std::max_element(lane_s.begin(), lane_s.end());
  }
  phases_.compensate_sim_ms += sim_s * 1000.0;
  obs::Count(obs::Metrics::Get().repair_compensate_sim_us,
             std::llround(sim_s * 1000.0 * 1000.0));
  obs::EventJournal::Default().Append(
      obs::event::kRepairDone,
      {{"undone", std::to_string(undo.size())},
       {"stmts", std::to_string(report.ops_compensated)}});
  return report;
}

Result<RepairReport> RepairEngine::Repair(
    const std::vector<int64_t>& seed_proxy_ids, const DbaPolicy& policy) {
  const auto start = Clock::now();
  IRDB_ASSIGN_OR_RETURN(DependencyAnalysis analysis, Analyze());
  std::set<int64_t> undo = ComputeUndoSet(analysis, seed_proxy_ids, policy);
  auto report = CompensateUndoSet(analysis, undo);
  if (report.ok()) {
    obs::Observe(obs::Metrics::Get().repair_run_latency, MsSince(start));
  }
  return report;
}

}  // namespace irdb::repair
