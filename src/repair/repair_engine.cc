#include "repair/repair_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <map>
#include <thread>

#include "obs/catalog.h"
#include "obs/journal.h"
#include "obs/trace.h"
#include "txn/wal_codec.h"
#include "util/string_utils.h"

namespace irdb::repair {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

int64_t ImageBytes(const LogRecord& rec) {
  return static_cast<int64_t>(rec.before_image.size() +
                              rec.after_image.size() + rec.ddl_text.size());
}

// Drains in-flight holders of the quarantined slices: X-locks every slice
// through the lock manager under a throwaway transaction, which blocks
// until every transaction that held a lock overlapping the quarantine has
// committed or rolled back, then releases immediately — the rejection gate
// (already installed) keeps new entrants out, so the locks only need to
// prove the slices are quiet, not keep them so. Bounded deadlock retries:
// the drain can lose a waits-for cycle against a multi-statement client.
Status DrainQuarantinedSlices(Database* db) {
  auto plan = db->quarantine().DrainPlan();
  std::sort(plan.begin(), plan.end(), [](const auto& a, const auto& b) {
    if (a.first.table_id != b.first.table_id) {
      return a.first.table_id < b.first.table_id;
    }
    return a.first.key_hash < b.first.key_hash;  // table (0) before keys
  });
  Status last = Status::Ok();
  for (int attempt = 0; attempt < 16; ++attempt) {
    // Transactions already pinning a fenced slice would never release it
    // (the gate only fires on their next statement, which may never come):
    // roll them back here so the X-pass below cannot wait on a dead hand.
    (void)db->EvictQuarantinePinnedTxns();
    const int64_t txn = db->AllocateTxnId();
    db->txn_manager().Begin(txn);
    Status st = Status::Ok();
    for (const auto& [res, mode] : plan) {
      st = db->txn_manager().locks().Acquire(txn, res, mode);
      if (!st.ok()) break;
    }
    db->txn_manager().Abort(txn);  // release everything either way
    if (st.ok()) return st;
    if (st.code() != StatusCode::kAborted) return st;
    last = std::move(st);
    std::this_thread::sleep_for(std::chrono::milliseconds(1 + attempt));
  }
  return last;
}

}  // namespace

void RepairEngine::set_threads(int threads) {
  threads_ = std::max(1, threads);
  obs::SetGauge(obs::Metrics::Get().repair_threads, threads_);
  if (threads_ <= 1) {
    pool_.reset();
  } else if (!pool_ || pool_->lanes() != threads_) {
    pool_ = std::make_unique<util::ThreadPool>(threads_);
  }
}

Result<DependencyAnalysis> RepairEngine::Analyze() {
  phases_ = RepairPhaseStats{};
  phases_.threads = threads_;
  obs::Count(obs::Metrics::Get().repair_runs);
  obs::Span analyze(obs::span::kRepairAnalyze);
  analyze.AddArg("records", static_cast<int64_t>(db_->wal().records().size()));
  analyze.AddArg("threads", threads_);

  if (pool_) {
    // Durable-bytes leg of the segmented scan: frame-split the serialized
    // WAL and decode the segments concurrently. The decoded records are the
    // same content as the in-memory log, handed to the reader as its scan
    // source; if the bytes carry a torn tail (only possible under fault
    // injection) the live WAL stays authoritative and the reader scans it
    // directly instead.
    obs::Span scan(obs::span::kRepairScanWalDecode);
    const std::string bytes = SerializeWal(db_->wal());
    scan.AddArg("bytes", static_cast<int64_t>(bytes.size()));
    IRDB_ASSIGN_OR_RETURN(WalDecodeResult decoded,
                          DecodeWalParallel(bytes, pool_.get()));
    if (!decoded.truncated_tail &&
        decoded.records.size() == db_->wal().records().size()) {
      reader_->set_scan_override(std::move(decoded.records));
    } else {
      reader_->clear_scan_override();
    }
    // The span's own measurement feeds the phase accumulator and the
    // registry, so the trace always sums to RepairPhaseStats.
    const double ms = scan.End();
    phases_.scan_wall_ms += ms;
    obs::Count(obs::Metrics::Get().repair_scan_us, std::llround(ms * 1000.0));
  } else {
    reader_->clear_scan_override();
  }

  auto analysis = repair::Analyze(reader_.get(), &admin_, pool_.get(), &phases_);
  reader_->clear_scan_override();
  if (!analysis.ok()) return analysis.status();

  // Simulated scan charge: sequential log read + per-record image decoding,
  // split into the same contiguous segments the parallel scan uses. Lanes
  // run concurrently, so the parallel charge is the largest segment's.
  const std::vector<LogRecord>& records = db_->wal().records();
  phases_.records_scanned = static_cast<int64_t>(records.size());
  for (const LogRecord& rec : records) {
    phases_.image_bytes_scanned += ImageBytes(rec);
  }
  const auto segments = util::ThreadPool::SplitRange(
      static_cast<int64_t>(records.size()), threads_);
  phases_.scan_segments = std::max<int>(1, static_cast<int>(segments.size()));
  double max_segment_s = 0, total_s = 0;
  for (const auto& [begin, end] : segments) {
    double segment_s = 0;
    for (int64_t i = begin; i < end; ++i) {
      segment_s +=
          costs_.scan_record_seconds +
          costs_.scan_byte_seconds *
              static_cast<double>(ImageBytes(records[static_cast<size_t>(i)]));
    }
    max_segment_s = std::max(max_segment_s, segment_s);
    total_s += segment_s;
  }
  phases_.scan_sim_ms += (threads_ > 1 ? max_segment_s : total_s) * 1000.0;
  obs::Count(obs::Metrics::Get().repair_records_scanned,
             phases_.records_scanned);
  obs::Count(obs::Metrics::Get().repair_scan_sim_us,
             std::llround(phases_.scan_sim_ms * 1000.0));
  obs::EventJournal::Default().Append(
      obs::event::kRepairAnalyzeDone,
      {{"records", std::to_string(phases_.records_scanned)},
       {"nodes", std::to_string(analysis->graph.nodes().size())},
       {"edges", std::to_string(analysis->graph.edges().size())},
       {"gaps", std::to_string(analysis->tracking_gaps.size())}});
  return analysis;
}

std::set<int64_t> RepairEngine::ComputeUndoSet(
    const DependencyAnalysis& analysis,
    const std::vector<int64_t>& seed_proxy_ids, const DbaPolicy& policy) const {
  obs::Span span(obs::span::kRepairClosure);
  span.AddArg("seeds", static_cast<int64_t>(seed_proxy_ids.size()));
  std::set<int64_t> out =
      analysis.graph.Affected(seed_proxy_ids, policy.AsFilter(), pool_.get());
  span.AddArg("undo", static_cast<int64_t>(out.size()));
  const double ms = span.End();
  phases_.closure_wall_ms += ms;
  obs::Count(obs::Metrics::Get().repair_closure_us, std::llround(ms * 1000.0));
  return out;
}

Result<RepairReport> RepairEngine::CompensateUndoSet(
    const DependencyAnalysis& analysis, const std::set<int64_t>& undo) {
  obs::Span span(obs::span::kRepairCompensate);
  RepairReport report;
  IRDB_RETURN_IF_ERROR(Compensate(analysis, undo, &admin_, db_->traits(),
                                  &report, pool_.get(), db_));
  span.AddArg("stmts", report.ops_compensated);
  span.AddArg("lanes", report.compensate_lanes);
  const double wall_ms = span.End();
  phases_.compensate_wall_ms += wall_ms;
  phases_.compensate_lanes = report.compensate_lanes;
  phases_.compensate_stmts += report.ops_compensated;
  obs::Count(obs::Metrics::Get().repair_compensate_us,
             std::llround(wall_ms * 1000.0));
  obs::Count(obs::Metrics::Get().repair_compensations, report.ops_compensated);

  // Simulated compensation charge: one random page read + log append per
  // compensating statement. The parallel path runs one lane per table, so
  // its charge is the makespan of the per-table batch costs over `threads_`
  // lanes under the deterministic longest-batch-first assignment; the serial
  // path pays the sum.
  std::set<int64_t> undo_internal;
  for (int64_t proxy_id : undo) {
    auto it = analysis.proxy_to_internal.find(proxy_id);
    if (it != analysis.proxy_to_internal.end()) undo_internal.insert(it->second);
  }
  std::map<std::string, int64_t> stmts_per_table;
  for (const RepairOp& op : analysis.ops) {
    if (undo_internal.count(op.internal_txn_id)) {
      ++stmts_per_table[ToLowerAscii(op.table)];
    }
  }
  double sim_s = 0;
  if (threads_ <= 1) {
    for (const auto& [table, n] : stmts_per_table) {
      sim_s += static_cast<double>(n) * costs_.compensate_stmt_seconds;
    }
  } else {
    std::vector<std::pair<int64_t, std::string>> batches;
    for (const auto& [table, n] : stmts_per_table) batches.emplace_back(n, table);
    std::sort(batches.begin(), batches.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first > b.first
                                          : a.second < b.second;
              });
    std::vector<double> lane_s(static_cast<size_t>(threads_), 0.0);
    for (const auto& [n, table] : batches) {
      auto lane = std::min_element(lane_s.begin(), lane_s.end());
      *lane += static_cast<double>(n) * costs_.compensate_stmt_seconds;
    }
    sim_s = *std::max_element(lane_s.begin(), lane_s.end());
  }
  phases_.compensate_sim_ms += sim_s * 1000.0;
  obs::Count(obs::Metrics::Get().repair_compensate_sim_us,
             std::llround(sim_s * 1000.0 * 1000.0));
  obs::EventJournal::Default().Append(
      obs::event::kRepairDone,
      {{"undone", std::to_string(undo.size())},
       {"stmts", std::to_string(report.ops_compensated)}});
  return report;
}

Result<OnlineRepairReport> RepairEngine::RepairOnline(
    const std::vector<int64_t>& seed_proxy_ids, const DbaPolicy& policy) {
  if (db_->serial_mode()) {
    return Status::FailedPrecondition(
        "online repair requires the concurrent engine (serial_mode off)");
  }
  // Claim the single online-repair slot; an overlapping repair is rejected
  // here with kFailedPrecondition and holds nothing.
  IRDB_RETURN_IF_ERROR(db_->quarantine().Begin());
  obs::Count(obs::Metrics::Get().repair_online_runs);
  db_->SetSessionQuarantineExempt(admin_.session_id(), true);
  const int64_t rejects_before = db_->quarantine().stats().rejects_total;

  OnlineRepairReport out;
  DependencyAnalysis analysis;
  std::set<int64_t> undo;
  ContaminatedPartition part;

  // Fixpoint: install → drain → re-analyze until the undo set stops
  // growing. Round N's drain guarantees every write that raced round N's
  // fence is durable in the log, so round N+1's analysis sees it; once two
  // consecutive rounds agree, nothing can still be missing.
  {
    obs::Span compute(obs::span::kQuarantineCompute);
    std::set<int64_t> prev;
    bool stable = false;
    static constexpr int kMaxRounds = 8;
    for (out.rounds = 1; out.rounds <= kMaxRounds; ++out.rounds) {
      auto a = Analyze();
      if (!a.ok()) {
        db_->quarantine().End();  // nothing healed, nothing fenced: safe
        return a.status();
      }
      analysis = std::move(*a);
      undo = ComputeUndoSet(analysis, seed_proxy_ids, policy);
      part = ComputeContaminatedPartition(db_, analysis, undo);
      db_->quarantine().Add(part.slices);
      if (undo.empty() && part.slices.empty()) {
        stable = true;  // empty closure: nothing to fence, nothing to drain
        break;
      }
      if (out.rounds > 1 && undo == prev) {
        stable = true;
        break;
      }
      prev = undo;
      if (Status st = DrainQuarantinedSlices(db_); !st.ok()) {
        db_->quarantine().End();
        return st;
      }
    }
    if (!stable) {
      db_->quarantine().End();
      return Status::Internal(
          "online repair: undo set did not stabilize after 8 rounds "
          "(sustained contaminated-slice traffic?)");
    }
    out.slices_installed = static_cast<int>(part.slices.size());
    out.whole_table_slices = static_cast<int>(part.whole_tables.size());
    out.key_bucket_slices = part.key_buckets;
    out.fallback_whole_tables = part.fallback_whole_tables;
    compute.AddArg("slices", out.slices_installed);
    compute.AddArg("tables", static_cast<int64_t>(part.table_ids.size()));
    compute.AddArg("rounds", out.rounds);
  }
  obs::EventJournal::Default().Append(
      obs::event::kQuarantineInstalled,
      {{"slices", std::to_string(out.slices_installed)},
       {"tables", std::to_string(part.table_ids.size())},
       {"round", std::to_string(out.rounds)}});

  obs::Span hold(obs::span::kQuarantineHold);
  hold.AddArg("slices", out.slices_installed);

  auto batches =
      BuildCompensationBatches(analysis, undo, &part.op_keys);
  if (!batches.ok()) {
    db_->quarantine().End();  // nothing compensated yet
    return batches.status();
  }
  out.lanes = static_cast<int>(batches->size());
  out.repair.undo_set = undo;
  out.repair.compensate_lanes = std::max(1, out.lanes);

  // One lane per table, each a transaction on its own gate-exempt
  // connection; a table's slices leave the quarantine when its lane
  // commits. Bounded deadlock retries per lane (a metadata lane's coarse
  // lock can lose a cycle against a tracked commit); any other failure
  // leaves the lane's tables fenced and surfaces the error.
  std::vector<Status> lane_status(batches->size(), Status::Ok());
  std::vector<RepairReport> lane_report(batches->size());
  std::atomic<int> released{0};
  auto run_lane = [&](size_t idx) {
    const CompensationBatch& batch = (*batches)[idx];
    obs::Span lane_span(obs::span::kRepairCompensateLane);
    lane_span.AddArg("lane", static_cast<int64_t>(idx));
    lane_span.AddArg("tables", 1);
    lane_span.AddArg("stmts", static_cast<int64_t>(batch.ops.size()));
    Status st = Status::Ok();
    for (int attempt = 0; attempt < 3; ++attempt) {
      DirectConnection conn(db_);
      db_->SetSessionQuarantineExempt(conn.session_id(), true);
      lane_report[idx] = RepairReport{};
      auto begin = conn.Execute("BEGIN");
      if (!begin.ok()) {
        st = begin.status();
        break;
      }
      st = CompensateBatch(batch, &conn, db_->traits(), &lane_report[idx]);
      if (st.ok()) {
        auto commit = conn.Execute("COMMIT");
        st = commit.ok() ? Status::Ok() : commit.status();
      } else {
        (void)conn.Execute("ROLLBACK");
      }
      if (st.ok() || st.code() != StatusCode::kAborted) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1 + attempt));
    }
    lane_status[idx] = st;
    if (!st.ok()) return;
    // Healed: release the table's slices. Metadata tables were never
    // installed, so their release count is 0 — the lane still ran.
    auto id = part.table_ids.find(batch.table);
    if (id != part.table_ids.end()) {
      obs::Span rel(obs::span::kQuarantineRelease);
      const int n = db_->quarantine().ReleaseTable(id->second);
      released.fetch_add(n, std::memory_order_relaxed);
      rel.AddArg("table", batch.table);
      rel.AddArg("slices", n);
      if (n > 0) {
        obs::Count(obs::Metrics::Get().repair_online_releases, n);
        obs::EventJournal::Default().Append(
            obs::event::kQuarantineReleased,
            {{"table", batch.table},
             {"slices", std::to_string(n)},
             {"remaining",
              std::to_string(db_->quarantine().stats().slices)}});
      }
    }
  };
  if (pool_ && batches->size() > 1) {
    std::vector<std::future<void>> pending;
    pending.reserve(batches->size());
    for (size_t i = 0; i < batches->size(); ++i) {
      pending.push_back(pool_->Submit([&, i] { run_lane(i); }));
    }
    for (auto& f : pending) f.wait();
  } else {
    for (size_t i = 0; i < batches->size(); ++i) run_lane(i);
  }

  for (const RepairReport& part_report : lane_report) {
    out.repair.ops_compensated += part_report.ops_compensated;
    out.repair.compensating_inserts += part_report.compensating_inserts;
    out.repair.compensating_deletes += part_report.compensating_deletes;
    out.repair.compensating_updates += part_report.compensating_updates;
    out.repair.rows_remapped += part_report.rows_remapped;
  }
  out.slices_released = released.load(std::memory_order_relaxed);
  out.rejects_during =
      db_->quarantine().stats().rejects_total - rejects_before;
  hold.AddArg("released", out.slices_released);
  hold.End();

  for (const Status& st : lane_status) {
    // First failing lane in deterministic batch order wins; unhealed
    // tables stay quarantined (see header contract).
    if (!st.ok()) return st;
  }
  db_->quarantine().End();
  obs::EventJournal::Default().Append(
      obs::event::kRepairDone,
      {{"undone", std::to_string(undo.size())},
       {"stmts", std::to_string(out.repair.ops_compensated)}});
  return out;
}

Result<RepairReport> RepairEngine::Repair(
    const std::vector<int64_t>& seed_proxy_ids, const DbaPolicy& policy) {
  if (policy.strategy() == RepairStrategy::kReenact) {
    IRDB_ASSIGN_OR_RETURN(ReenactReport reenacted,
                          RepairReenact(seed_proxy_ids, policy));
    return reenacted.repair;
  }
  const auto start = Clock::now();
  IRDB_ASSIGN_OR_RETURN(DependencyAnalysis analysis, Analyze());
  std::set<int64_t> undo = ComputeUndoSet(analysis, seed_proxy_ids, policy);
  auto report = CompensateUndoSet(analysis, undo);
  if (report.ok()) {
    obs::Observe(obs::Metrics::Get().repair_run_latency, MsSince(start));
  }
  return report;
}

Result<ReenactReport> RepairEngine::RepairReenact(
    const std::vector<int64_t>& seed_proxy_ids, const DbaPolicy& policy) {
  const auto start = Clock::now();
  obs::Count(obs::Metrics::Get().reenact_runs);
  obs::Span run(obs::span::kReenact);
  run.AddArg("seeds", static_cast<int64_t>(seed_proxy_ids.size()));
  run.AddArg("threads", threads_);

  IRDB_ASSIGN_OR_RETURN(DependencyAnalysis analysis, Analyze());
  ReenactReport out;
  out.closure = ComputeUndoSet(analysis, seed_proxy_ids, policy);
  // Mechanical undo of the ENTIRE closure: this is the state "history minus
  // the closure", the baseline every replay recomputes against. Selective
  // effects come from the replay, not from a selective compensation.
  IRDB_ASSIGN_OR_RETURN(out.repair, CompensateUndoSet(analysis, out.closure));

  obs::Span replay(obs::span::kReenactReplay);
  const ReenactPlan plan = PlanReenact(analysis, out.closure, seed_proxy_ids,
                                       policy, db_->stmt_journal());
  ExecuteReenactPlan(db_, analysis, policy, db_->stmt_journal(), plan,
                     pool_.get(), &out);
  replay.AddArg("txns", static_cast<int64_t>(plan.replay_order.size()));
  replay.AddArg("components", out.components);
  replay.AddArg("lanes", out.replay_lanes);
  const double replay_ms = replay.End();
  phases_.replay_wall_ms += replay_ms;
  phases_.replay_stmts += out.stmts_replayed;
  phases_.replay_components = out.components;
  obs::Count(obs::Metrics::Get().reenact_replay_us,
             std::llround(replay_ms * 1000.0));

  // What STAYED undone: the seeds plus every demotion. The full closure was
  // compensated, but the replayed members' effects are back.
  out.repair.undo_set =
      std::set<int64_t>(seed_proxy_ids.begin(), seed_proxy_ids.end());
  for (const auto& [id, reason] : out.demoted) {
    out.repair.undo_set.insert(id);
    obs::EventJournal::Default().Append(
        obs::event::kReenactDemoted,
        {{"trid", std::to_string(id)}, {"reason", DemoteReasonName(reason)}});
  }

  obs::Count(obs::Metrics::Get().reenact_replayed_txns,
             static_cast<int64_t>(out.replayed.size()));
  obs::Count(obs::Metrics::Get().reenact_demoted_txns,
             static_cast<int64_t>(out.demoted.size()));
  obs::Count(obs::Metrics::Get().reenact_diverged_txns, out.diverged);
  obs::Count(obs::Metrics::Get().reenact_stmts_replayed, out.stmts_replayed);
  obs::Count(obs::Metrics::Get().reenact_components, out.components);
  obs::EventJournal::Default().Append(
      obs::event::kReenactDone,
      {{"closure", std::to_string(out.closure.size())},
       {"replayed", std::to_string(out.replayed.size())},
       {"demoted", std::to_string(out.demoted.size())},
       {"diverged", std::to_string(out.diverged)}});
  obs::Observe(obs::Metrics::Get().reenact_run_latency, MsSince(start));
  obs::Observe(obs::Metrics::Get().repair_run_latency, MsSince(start));
  return out;
}

}  // namespace irdb::repair
