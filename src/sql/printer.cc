#include "sql/printer.h"

#include "util/status.h"

namespace irdb::sql {

namespace {

// Operator precedence for minimal parenthesization.
int Precedence(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kBinary:
      switch (e.bin_op) {
        case BinaryOp::kOr: return 1;
        case BinaryOp::kAnd: return 2;
        case BinaryOp::kEq: case BinaryOp::kNeq: case BinaryOp::kLt:
        case BinaryOp::kLe: case BinaryOp::kGt: case BinaryOp::kGe:
        case BinaryOp::kLike:
          return 4;
        case BinaryOp::kAdd: case BinaryOp::kSub: return 5;
        case BinaryOp::kMul: case BinaryOp::kDiv: case BinaryOp::kMod: return 6;
      }
      return 0;
    case ExprKind::kUnary:
      return e.un_op == UnaryOp::kNot ? 3 : 7;
    case ExprKind::kBetween:
    case ExprKind::kInList:
      return 4;
    default:
      return 100;  // atoms never need parens
  }
}

void PrintChild(const Expr& child, int parent_prec, std::string* out) {
  bool parens = Precedence(child) < parent_prec;
  if (parens) out->push_back('(');
  out->append(PrintExpr(child));
  if (parens) out->push_back(')');
}

}  // namespace

std::string PrintExpr(const Expr& e) {
  std::string out;
  switch (e.kind) {
    case ExprKind::kLiteral:
      out = e.literal.ToSqlLiteral();
      break;
    case ExprKind::kColumnRef:
      if (!e.table.empty()) {
        out = e.table + "." + e.column;
      } else {
        out = e.column;
      }
      break;
    case ExprKind::kBinary: {
      int prec = Precedence(e);
      PrintChild(*e.lhs, prec, &out);
      out.push_back(' ');
      out.append(BinaryOpSymbol(e.bin_op));
      out.push_back(' ');
      // Right operand needs parens at equal precedence for non-associative
      // rendering correctness (a - (b - c)).
      PrintChild(*e.rhs, prec + 1, &out);
      break;
    }
    case ExprKind::kUnary:
      switch (e.un_op) {
        case UnaryOp::kNot:
          out = "NOT ";
          PrintChild(*e.lhs, Precedence(e) + 1, &out);
          break;
        case UnaryOp::kNeg:
          out = "-";
          PrintChild(*e.lhs, Precedence(e), &out);
          break;
        case UnaryOp::kIsNull:
          PrintChild(*e.lhs, Precedence(e), &out);
          out.append(" IS NULL");
          break;
        case UnaryOp::kIsNotNull:
          PrintChild(*e.lhs, Precedence(e), &out);
          out.append(" IS NOT NULL");
          break;
      }
      break;
    case ExprKind::kFuncCall:
      out = e.func_name + "(";
      if (e.star_arg) {
        out.append("*");
      } else {
        if (e.distinct) out.append("DISTINCT ");
        IRDB_CHECK(!e.list.empty());
        out.append(PrintExpr(*e.list[0]));
      }
      out.push_back(')');
      break;
    case ExprKind::kBetween: {
      int prec = Precedence(e);
      PrintChild(*e.lhs, prec + 1, &out);
      out.append(" BETWEEN ");
      PrintChild(*e.low, prec + 1, &out);
      out.append(" AND ");
      PrintChild(*e.high, prec + 1, &out);
      break;
    }
    case ExprKind::kInList: {
      int prec = Precedence(e);
      PrintChild(*e.lhs, prec + 1, &out);
      out.append(" IN (");
      for (size_t i = 0; i < e.list.size(); ++i) {
        if (i) out.append(", ");
        out.append(PrintExpr(*e.list[i]));
      }
      out.push_back(')');
      break;
    }
  }
  return out;
}

namespace {

std::string PrintSelect(const Statement& s) {
  std::string out = "SELECT ";
  for (size_t i = 0; i < s.select_items.size(); ++i) {
    if (i) out.append(", ");
    const SelectItem& item = s.select_items[i];
    if (item.star) {
      if (!item.star_table.empty()) out.append(item.star_table).append(".");
      out.append("*");
    } else {
      out.append(PrintExpr(*item.expr));
      if (!item.alias.empty()) out.append(" AS ").append(item.alias);
    }
  }
  out.append(" FROM ");
  for (size_t i = 0; i < s.from.size(); ++i) {
    if (i) out.append(", ");
    out.append(s.from[i].name);
    if (!s.from[i].alias.empty()) out.append(" ").append(s.from[i].alias);
  }
  if (s.where) out.append(" WHERE ").append(PrintExpr(*s.where));
  if (!s.group_by.empty()) {
    out.append(" GROUP BY ");
    for (size_t i = 0; i < s.group_by.size(); ++i) {
      if (i) out.append(", ");
      out.append(PrintExpr(*s.group_by[i]));
    }
  }
  if (!s.order_by.empty()) {
    out.append(" ORDER BY ");
    for (size_t i = 0; i < s.order_by.size(); ++i) {
      if (i) out.append(", ");
      out.append(PrintExpr(*s.order_by[i].expr));
      if (s.order_by[i].desc) out.append(" DESC");
    }
  }
  if (s.limit) out.append(" LIMIT ").append(std::to_string(*s.limit));
  return out;
}

std::string PrintInsert(const Statement& s) {
  std::string out = "INSERT INTO " + s.table;
  if (!s.insert_columns.empty()) {
    out.append("(");
    for (size_t i = 0; i < s.insert_columns.size(); ++i) {
      if (i) out.append(", ");
      out.append(s.insert_columns[i]);
    }
    out.append(")");
  }
  out.append(" VALUES ");
  for (size_t r = 0; r < s.insert_rows.size(); ++r) {
    if (r) out.append(", ");
    out.append("(");
    const auto& row = s.insert_rows[r];
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out.append(", ");
      out.append(PrintExpr(*row[i]));
    }
    out.append(")");
  }
  return out;
}

std::string PrintUpdate(const Statement& s) {
  std::string out = "UPDATE " + s.table + " SET ";
  for (size_t i = 0; i < s.assignments.size(); ++i) {
    if (i) out.append(", ");
    out.append(s.assignments[i].first).append(" = ");
    out.append(PrintExpr(*s.assignments[i].second));
  }
  if (s.where) out.append(" WHERE ").append(PrintExpr(*s.where));
  return out;
}

std::string PrintDelete(const Statement& s) {
  std::string out = "DELETE FROM " + s.table;
  if (s.where) out.append(" WHERE ").append(PrintExpr(*s.where));
  return out;
}

std::string PrintCreateTable(const Statement& s) {
  std::string out = "CREATE TABLE " + s.table + " (";
  for (size_t i = 0; i < s.columns.size(); ++i) {
    if (i) out.append(", ");
    const ColumnDef& c = s.columns[i];
    out.append(c.name).append(" ");
    switch (c.type) {
      case ColumnTypeKind::kInt: out.append("INTEGER"); break;
      case ColumnTypeKind::kDouble: out.append("DOUBLE"); break;
      case ColumnTypeKind::kVarchar:
        out.append("VARCHAR(").append(std::to_string(c.length)).append(")");
        break;
      case ColumnTypeKind::kChar:
        out.append("CHAR(").append(std::to_string(c.length)).append(")");
        break;
    }
    if (c.identity) out.append(" IDENTITY");
    if (c.not_null) out.append(" NOT NULL");
  }
  if (!s.primary_key.empty()) {
    out.append(", PRIMARY KEY (");
    for (size_t i = 0; i < s.primary_key.size(); ++i) {
      if (i) out.append(", ");
      out.append(s.primary_key[i]);
    }
    out.append(")");
  }
  out.append(")");
  return out;
}

}  // namespace

std::string PrintStatement(const Statement& s) {
  switch (s.kind) {
    case StatementKind::kSelect: return PrintSelect(s);
    case StatementKind::kInsert: return PrintInsert(s);
    case StatementKind::kUpdate: return PrintUpdate(s);
    case StatementKind::kDelete: return PrintDelete(s);
    case StatementKind::kCreateTable: return PrintCreateTable(s);
    case StatementKind::kDropTable: return "DROP TABLE " + s.table;
    case StatementKind::kCreateIndex: {
      std::string out = "CREATE INDEX " + s.index_name + " ON " + s.table + " (";
      for (size_t i = 0; i < s.index_columns.size(); ++i) {
        if (i) out.append(", ");
        out.append(s.index_columns[i]);
      }
      out.append(")");
      return out;
    }
    case StatementKind::kDropIndex: return "DROP INDEX " + s.index_name;
    case StatementKind::kBegin: return "BEGIN";
    case StatementKind::kCommit: return "COMMIT";
    case StatementKind::kRollback: return "ROLLBACK";
  }
  return "";
}

}  // namespace irdb::sql
