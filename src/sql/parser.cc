#include "sql/parser.h"

#include <utility>

#include "sql/lexer.h"
#include "util/string_utils.h"

namespace irdb::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<StatementPtr> ParseStatement() {
    const Token& t = Peek();
    Result<StatementPtr> result = [&]() -> Result<StatementPtr> {
      if (t.IsKeyword("SELECT")) return ParseSelect();
      if (t.IsKeyword("INSERT")) return ParseInsert();
      if (t.IsKeyword("UPDATE")) return ParseUpdate();
      if (t.IsKeyword("DELETE")) return ParseDelete();
      if (t.IsKeyword("CREATE")) return ParseCreateTable();
      if (t.IsKeyword("DROP")) return ParseDropTable();
      if (t.IsKeyword("BEGIN")) return ParseTxnControl(StatementKind::kBegin);
      if (t.IsKeyword("COMMIT")) return ParseTxnControl(StatementKind::kCommit);
      if (t.IsKeyword("ROLLBACK")) return ParseTxnControl(StatementKind::kRollback);
      return Err("expected a statement keyword, got '" + t.text + "'");
    }();
    if (!result.ok()) return result;
    // Optional trailing semicolon, then EOF.
    if (Peek().kind == TokenKind::kSemicolon) Advance();
    if (Peek().kind != TokenKind::kEof) {
      return Err("unexpected trailing input starting with '" + Peek().text + "'");
    }
    return result;
  }

  Result<ExprPtr> ParseLoneExpression() {
    auto e = ParseExpr();
    if (!e.ok()) return e;
    if (Peek().kind != TokenKind::kEof) {
      return Status::ParseError("unexpected trailing input in expression");
    }
    return e;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool AcceptKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  bool Accept(TokenKind k) {
    if (Peek().kind == k) {
      Advance();
      return true;
    }
    return false;
  }

  Status Expect(TokenKind k, const char* what) {
    if (!Accept(k)) {
      return Status::ParseError(std::string("expected ") + what + ", got '" +
                                Peek().text + "' at offset " +
                                std::to_string(Peek().offset));
    }
    return Status::Ok();
  }

  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Status::ParseError(std::string("expected ") + kw + ", got '" +
                                Peek().text + "' at offset " +
                                std::to_string(Peek().offset));
    }
    return Status::Ok();
  }

  static Status Err(std::string m) { return Status::ParseError(std::move(m)); }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Err(std::string("expected ") + what + ", got '" + Peek().text + "'");
    }
    return Advance().text;
  }

  // ---- expressions -------------------------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    IRDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (AcceptKeyword("OR")) {
      IRDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    IRDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (AcceptKeyword("AND")) {
      IRDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      IRDB_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return MakeUnary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    IRDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    const Token& t = Peek();
    auto cmp = [&](BinaryOp op) -> Result<ExprPtr> {
      Advance();
      IRDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      return MakeBinary(op, std::move(lhs), std::move(rhs));
    };
    switch (t.kind) {
      case TokenKind::kEq: return cmp(BinaryOp::kEq);
      case TokenKind::kNeq: return cmp(BinaryOp::kNeq);
      case TokenKind::kLt: return cmp(BinaryOp::kLt);
      case TokenKind::kLe: return cmp(BinaryOp::kLe);
      case TokenKind::kGt: return cmp(BinaryOp::kGt);
      case TokenKind::kGe: return cmp(BinaryOp::kGe);
      default: break;
    }
    if (t.IsKeyword("LIKE")) return cmp(BinaryOp::kLike);
    if (t.IsKeyword("BETWEEN")) {
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBetween;
      e->lhs = std::move(lhs);
      IRDB_ASSIGN_OR_RETURN(e->low, ParseAdditive());
      IRDB_RETURN_IF_ERROR(ExpectKeyword("AND"));
      IRDB_ASSIGN_OR_RETURN(e->high, ParseAdditive());
      return ExprPtr(std::move(e));
    }
    if (t.IsKeyword("IN")) {
      Advance();
      IRDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kInList;
      e->lhs = std::move(lhs);
      do {
        IRDB_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
        e->list.push_back(std::move(item));
      } while (Accept(TokenKind::kComma));
      IRDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
      return ExprPtr(std::move(e));
    }
    if (t.IsKeyword("IS")) {
      Advance();
      bool negated = AcceptKeyword("NOT");
      IRDB_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      return MakeUnary(negated ? UnaryOp::kIsNotNull : UnaryOp::kIsNull,
                       std::move(lhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    IRDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      if (Accept(TokenKind::kPlus)) {
        IRDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = MakeBinary(BinaryOp::kAdd, std::move(lhs), std::move(rhs));
      } else if (Accept(TokenKind::kMinus)) {
        IRDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = MakeBinary(BinaryOp::kSub, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    IRDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      if (Accept(TokenKind::kStar)) {
        IRDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = MakeBinary(BinaryOp::kMul, std::move(lhs), std::move(rhs));
      } else if (Accept(TokenKind::kSlash)) {
        IRDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = MakeBinary(BinaryOp::kDiv, std::move(lhs), std::move(rhs));
      } else if (Accept(TokenKind::kPercent)) {
        IRDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = MakeBinary(BinaryOp::kMod, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (Accept(TokenKind::kMinus)) {
      IRDB_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return MakeUnary(UnaryOp::kNeg, std::move(operand));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kIntLiteral) {
      int64_t v = 0;
      if (!ParseInt64(t.text, &v)) return Err("bad integer literal " + t.text);
      Advance();
      return MakeLiteral(Value::Int(v));
    }
    if (t.kind == TokenKind::kDoubleLiteral) {
      double v = 0;
      if (!ParseDouble(t.text, &v)) return Err("bad double literal " + t.text);
      Advance();
      return MakeLiteral(Value::Double(v));
    }
    if (t.kind == TokenKind::kStringLiteral) {
      std::string s = t.text;
      Advance();
      return MakeLiteral(Value::Str(std::move(s)));
    }
    if (t.IsKeyword("NULL")) {
      Advance();
      return MakeLiteral(Value::Null());
    }
    if (t.IsKeyword("SUM") || t.IsKeyword("COUNT") || t.IsKeyword("MIN") ||
        t.IsKeyword("MAX") || t.IsKeyword("AVG")) {
      std::string name = Advance().text;
      IRDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
      if (Accept(TokenKind::kStar)) {
        IRDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
        if (name != "COUNT") return Err(name + "(*) is not valid");
        return MakeCountStar();
      }
      bool distinct = AcceptKeyword("DISTINCT");
      // Tolerate COUNT(DISTINCT(x)) spelling used in TPC-C kits.
      bool extra_paren = distinct && Accept(TokenKind::kLParen);
      IRDB_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
      if (extra_paren) IRDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
      IRDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
      return MakeFuncCall(std::move(name), std::move(arg), distinct);
    }
    if (t.kind == TokenKind::kLParen) {
      Advance();
      IRDB_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      IRDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
      return inner;
    }
    if (t.kind == TokenKind::kIdentifier) {
      std::string first = Advance().text;
      if (Accept(TokenKind::kDot)) {
        IRDB_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
        return MakeColumnRef(std::move(first), std::move(col));
      }
      return MakeColumnRef("", std::move(first));
    }
    return Err("expected expression, got '" + t.text + "' at offset " +
               std::to_string(t.offset));
  }

  // ---- statements --------------------------------------------------------

  Result<StatementPtr> ParseSelect() {
    IRDB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    auto stmt = MakeStatement(StatementKind::kSelect);
    do {
      SelectItem item;
      if (Accept(TokenKind::kStar)) {
        item.star = true;
      } else if (Peek().kind == TokenKind::kIdentifier &&
                 Peek(1).kind == TokenKind::kDot &&
                 Peek(2).kind == TokenKind::kStar) {
        item.star = true;
        item.star_table = Advance().text;
        Advance();  // dot
        Advance();  // star
      } else {
        IRDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("AS")) {
          IRDB_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
        } else if (Peek().kind == TokenKind::kIdentifier) {
          item.alias = Advance().text;
        }
      }
      stmt->select_items.push_back(std::move(item));
    } while (Accept(TokenKind::kComma));

    IRDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    do {
      TableRef ref;
      IRDB_ASSIGN_OR_RETURN(ref.name, ExpectIdentifier("table name"));
      if (AcceptKeyword("AS")) {
        IRDB_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier("table alias"));
      } else if (Peek().kind == TokenKind::kIdentifier) {
        ref.alias = Advance().text;
      }
      stmt->from.push_back(std::move(ref));
    } while (Accept(TokenKind::kComma));

    if (AcceptKeyword("WHERE")) {
      IRDB_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (AcceptKeyword("GROUP")) {
      IRDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        IRDB_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
      } while (Accept(TokenKind::kComma));
    }
    if (AcceptKeyword("ORDER")) {
      IRDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        OrderItem oi;
        IRDB_ASSIGN_OR_RETURN(oi.expr, ParseExpr());
        if (AcceptKeyword("DESC")) {
          oi.desc = true;
        } else {
          AcceptKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(oi));
      } while (Accept(TokenKind::kComma));
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kIntLiteral) return Err("expected LIMIT count");
      int64_t v = 0;
      ParseInt64(Advance().text, &v);
      stmt->limit = v;
    }
    return stmt;
  }

  Result<StatementPtr> ParseInsert() {
    IRDB_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    IRDB_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    auto stmt = MakeStatement(StatementKind::kInsert);
    IRDB_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
    if (Accept(TokenKind::kLParen)) {
      do {
        IRDB_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
        stmt->insert_columns.push_back(std::move(col));
      } while (Accept(TokenKind::kComma));
      IRDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    }
    IRDB_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    do {
      IRDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
      std::vector<ExprPtr> row;
      do {
        IRDB_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
      } while (Accept(TokenKind::kComma));
      IRDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
      stmt->insert_rows.push_back(std::move(row));
    } while (Accept(TokenKind::kComma));
    return stmt;
  }

  Result<StatementPtr> ParseUpdate() {
    IRDB_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
    auto stmt = MakeStatement(StatementKind::kUpdate);
    IRDB_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
    IRDB_RETURN_IF_ERROR(ExpectKeyword("SET"));
    do {
      IRDB_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
      IRDB_RETURN_IF_ERROR(Expect(TokenKind::kEq, "="));
      IRDB_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt->assignments.emplace_back(std::move(col), std::move(e));
    } while (Accept(TokenKind::kComma));
    if (AcceptKeyword("WHERE")) {
      IRDB_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return stmt;
  }

  Result<StatementPtr> ParseDelete() {
    IRDB_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
    IRDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    auto stmt = MakeStatement(StatementKind::kDelete);
    IRDB_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
    if (AcceptKeyword("WHERE")) {
      IRDB_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return stmt;
  }

  Result<StatementPtr> ParseCreateTable() {
    IRDB_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    if (AcceptKeyword("INDEX")) return ParseCreateIndexTail();
    IRDB_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    auto stmt = MakeStatement(StatementKind::kCreateTable);
    IRDB_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
    IRDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
    do {
      if (AcceptKeyword("PRIMARY")) {
        IRDB_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        IRDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
        do {
          IRDB_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("pk column"));
          stmt->primary_key.push_back(std::move(col));
        } while (Accept(TokenKind::kComma));
        IRDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
        continue;
      }
      ColumnDef def;
      IRDB_ASSIGN_OR_RETURN(def.name, ExpectIdentifier("column name"));
      const Token& ty = Peek();
      if (ty.IsKeyword("INTEGER") || ty.IsKeyword("INT") || ty.IsKeyword("BIGINT")) {
        def.type = ColumnTypeKind::kInt;
        Advance();
      } else if (ty.IsKeyword("DOUBLE") || ty.IsKeyword("FLOAT")) {
        def.type = ColumnTypeKind::kDouble;
        Advance();
      } else if (ty.IsKeyword("NUMERIC") || ty.IsKeyword("DECIMAL")) {
        // NUMERIC(p[,s]) — scale 0 maps to int, otherwise double.
        Advance();
        int precision = 0, scale = 0;
        if (Accept(TokenKind::kLParen)) {
          if (Peek().kind != TokenKind::kIntLiteral) return Err("expected precision");
          int64_t p = 0;
          ParseInt64(Advance().text, &p);
          precision = static_cast<int>(p);
          if (Accept(TokenKind::kComma)) {
            if (Peek().kind != TokenKind::kIntLiteral) return Err("expected scale");
            int64_t s = 0;
            ParseInt64(Advance().text, &s);
            scale = static_cast<int>(s);
          }
          IRDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
        }
        (void)precision;
        def.type = scale > 0 ? ColumnTypeKind::kDouble : ColumnTypeKind::kInt;
      } else if (ty.IsKeyword("VARCHAR") || ty.IsKeyword("CHAR") || ty.IsKeyword("TEXT")) {
        def.type = ty.IsKeyword("CHAR") ? ColumnTypeKind::kChar : ColumnTypeKind::kVarchar;
        bool is_text = ty.IsKeyword("TEXT");
        Advance();
        def.length = 255;
        if (!is_text && Accept(TokenKind::kLParen)) {
          if (Peek().kind != TokenKind::kIntLiteral) return Err("expected length");
          int64_t len = 0;
          ParseInt64(Advance().text, &len);
          def.length = static_cast<int>(len);
          IRDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
        }
      } else {
        return Err("unknown column type '" + ty.text + "'");
      }
      while (true) {
        if (AcceptKeyword("NOT")) {
          IRDB_RETURN_IF_ERROR(ExpectKeyword("NULL"));
          def.not_null = true;
        } else if (AcceptKeyword("IDENTITY")) {
          def.identity = true;
        } else {
          break;
        }
      }
      stmt->columns.push_back(std::move(def));
    } while (Accept(TokenKind::kComma));
    IRDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    return stmt;
  }

  Result<StatementPtr> ParseDropTable() {
    IRDB_RETURN_IF_ERROR(ExpectKeyword("DROP"));
    if (AcceptKeyword("INDEX")) {
      auto stmt = MakeStatement(StatementKind::kDropIndex);
      IRDB_ASSIGN_OR_RETURN(stmt->index_name, ExpectIdentifier("index name"));
      return stmt;
    }
    IRDB_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    auto stmt = MakeStatement(StatementKind::kDropTable);
    IRDB_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
    return stmt;
  }

  // CREATE INDEX name ON table (col [, col ...]) — CREATE INDEX consumed.
  Result<StatementPtr> ParseCreateIndexTail() {
    auto stmt = MakeStatement(StatementKind::kCreateIndex);
    IRDB_ASSIGN_OR_RETURN(stmt->index_name, ExpectIdentifier("index name"));
    IRDB_RETURN_IF_ERROR(ExpectKeyword("ON"));
    IRDB_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
    IRDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
    do {
      IRDB_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("index column"));
      stmt->index_columns.push_back(std::move(col));
    } while (Accept(TokenKind::kComma));
    IRDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    return stmt;
  }

  Result<StatementPtr> ParseTxnControl(StatementKind kind) {
    Advance();  // BEGIN/COMMIT/ROLLBACK
    AcceptKeyword("TRANSACTION");
    AcceptKeyword("WORK");
    return MakeStatement(kind);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<StatementPtr> Parse(std::string_view input) {
  auto tokens = Lex(input);
  if (!tokens.ok()) return tokens.status();
  Parser p(std::move(tokens).value());
  return p.ParseStatement();
}

Result<ExprPtr> ParseExpression(std::string_view input) {
  auto tokens = Lex(input);
  if (!tokens.ok()) return tokens.status();
  Parser p(std::move(tokens).value());
  return p.ParseLoneExpression();
}

}  // namespace irdb::sql
