// Renders an AST back to SQL text.
//
// Parse(Print(ast)) is the identity on everything the parser accepts — the
// intercepting proxy relies on this to forward rewritten statements to the
// DBMS engine as plain text (the only portable interface, per the paper).
#pragma once

#include <string>

#include "sql/ast.h"

namespace irdb::sql {

std::string PrintExpr(const Expr& e);
std::string PrintStatement(const Statement& s);

}  // namespace irdb::sql
