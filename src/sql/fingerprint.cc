#include "sql/fingerprint.h"

#include "sql/lexer.h"
#include "util/string_utils.h"

namespace irdb::sql {

namespace {

// True when `tok` is the NULL of IS NULL / IS NOT NULL (operator syntax, not
// a literal). `prev` / `prev2` are the one- and two-back tokens.
bool IsOperatorNull(const Token* prev, const Token* prev2) {
  if (prev == nullptr) return false;
  if (prev->IsKeyword("IS")) return true;
  return prev->IsKeyword("NOT") && prev2 != nullptr && prev2->IsKeyword("IS");
}

}  // namespace

Result<StatementShape> FingerprintStatement(std::string_view sql) {
  IRDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  StatementShape shape;
  shape.key.reserve(sql.size());
  const Token* prev = nullptr;
  const Token* prev2 = nullptr;
  auto append = [&](std::string_view piece) {
    if (!shape.key.empty()) shape.key.push_back(' ');
    shape.key.append(piece);
  };
  for (const Token& tok : tokens) {
    if (tok.kind == TokenKind::kEof) break;
    // The parser only accepts a trailing semicolon; it never changes shape.
    if (tok.kind == TokenKind::kSemicolon) continue;
    switch (tok.kind) {
      case TokenKind::kIdentifier:
        append(ToLowerAscii(tok.text));
        break;
      case TokenKind::kKeyword:
        if (tok.text == "NULL" && !IsOperatorNull(prev, prev2)) {
          append("?");
          shape.params.push_back(Value::Null());
        } else {
          append(tok.text);
        }
        break;
      case TokenKind::kIntLiteral: {
        // LIMIT counts live outside the expression tree; keep them in the key.
        if (prev != nullptr && prev->IsKeyword("LIMIT")) {
          append(tok.text);
          break;
        }
        int64_t v = 0;
        if (!ParseInt64(tok.text, &v)) {
          return Status::ParseError("bad integer literal " + tok.text);
        }
        append("?");
        shape.params.push_back(Value::Int(v));
        break;
      }
      case TokenKind::kDoubleLiteral: {
        double v = 0;
        if (!ParseDouble(tok.text, &v)) {
          return Status::ParseError("bad double literal " + tok.text);
        }
        append("?");
        shape.params.push_back(Value::Double(v));
        break;
      }
      case TokenKind::kStringLiteral:
        append("?");
        shape.params.push_back(Value::Str(tok.text));
        break;
      default:
        append(TokenKindName(tok.kind));
        break;
    }
    prev2 = prev;
    prev = &tok;
  }
  return shape;
}

void CollectExprLiterals(Expr* e, std::vector<Value*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kLiteral) {
    out->push_back(&e->literal);
    return;
  }
  // Child order mirrors the grammar's source order for every node kind:
  // binary lhs/rhs, unary operand (lhs), BETWEEN subject/low/high, IN-list
  // subject (lhs) then elements, function args (list).
  CollectExprLiterals(e->lhs.get(), out);
  CollectExprLiterals(e->rhs.get(), out);
  CollectExprLiterals(e->low.get(), out);
  CollectExprLiterals(e->high.get(), out);
  for (auto& child : e->list) CollectExprLiterals(child.get(), out);
}

void CollectStatementLiterals(Statement* stmt, std::vector<Value*>* out) {
  switch (stmt->kind) {
    case StatementKind::kSelect:
      for (auto& item : stmt->select_items) {
        CollectExprLiterals(item.expr.get(), out);
      }
      CollectExprLiterals(stmt->where.get(), out);
      for (auto& e : stmt->group_by) CollectExprLiterals(e.get(), out);
      for (auto& o : stmt->order_by) CollectExprLiterals(o.expr.get(), out);
      break;
    case StatementKind::kInsert:
      for (auto& row : stmt->insert_rows) {
        for (auto& e : row) CollectExprLiterals(e.get(), out);
      }
      break;
    case StatementKind::kUpdate:
      for (auto& [col, e] : stmt->assignments) {
        (void)col;
        CollectExprLiterals(e.get(), out);
      }
      CollectExprLiterals(stmt->where.get(), out);
      break;
    case StatementKind::kDelete:
      CollectExprLiterals(stmt->where.get(), out);
      break;
    default:
      break;  // DDL / txn control carry no bindable literals.
  }
}

}  // namespace irdb::sql
