// Statement-shape fingerprinting for the proxy's plan cache.
//
// A TPC-C workload repeats the same ~30 statement shapes with only the
// literals changing, so the proxy normalizes each statement's token stream
// into a shape key (literals replaced by '?') plus the extracted literal
// values in lexical order. Two statements with the same key share lex,
// parse, and Table-1 rewrite work; only the literals are re-bound.
//
// The shape key preserves every non-literal token (identifiers lower-cased,
// keywords upper-cased), so equal keys imply an identical parse tree modulo
// literal values. Two deliberate exceptions keep the scheme sound:
//   - the NULL in IS [NOT] NULL is part of the operator, not a literal, and
//     stays verbatim in the key;
//   - a LIMIT count is stored in the AST as a plain integer (not an Expr
//     slot), so it stays verbatim too — different limits are different
//     shapes.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sql/ast.h"
#include "util/status.h"

namespace irdb::sql {

struct StatementShape {
  // Normalized token stream, literals replaced by '?'.
  std::string key;
  // Literal values in lexical (source) order.
  std::vector<Value> params;
};

// Lexes `sql` and produces its shape. Fails only when lexing fails (the
// caller falls back to the ordinary parse path, which reports the error).
Result<StatementShape> FingerprintStatement(std::string_view sql);

// Appends a mutable pointer to every literal Value in `e`, in source order.
void CollectExprLiterals(Expr* e, std::vector<Value*>* out);

// Appends every literal slot of `stmt` in source order: SELECT items,
// WHERE, GROUP BY, ORDER BY for selects; VALUES rows for inserts; SET
// expressions then WHERE for updates; WHERE for deletes. The order matches
// FingerprintStatement's param order for every statement the parser accepts
// (the plan cache re-validates this before trusting a shape).
void CollectStatementLiterals(Statement* stmt, std::vector<Value*>* out);

}  // namespace irdb::sql
