// SQL abstract syntax tree.
//
// The AST is the interchange format of the whole framework: the intercepting
// proxy parses client SQL, rewrites the tree (Table 1 of the paper), prints
// it back to text, and forwards it to the DBMS engine, which parses it again.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/value.h"

namespace irdb::sql {

// ---------------------------------------------------------------- Expressions

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kBinary,
  kUnary,
  kFuncCall,
  kBetween,
  kInList,
};

enum class BinaryOp {
  kAnd, kOr,
  kEq, kNeq, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv, kMod,
  kLike,
};

enum class UnaryOp { kNot, kNeg, kIsNull, kIsNotNull };

const char* BinaryOpSymbol(BinaryOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;

  // kLiteral
  Value literal;

  // kColumnRef
  std::string table;   // optional qualifier (empty = unqualified)
  std::string column;

  // kBinary / kUnary / kBetween / kInList
  BinaryOp bin_op = BinaryOp::kAnd;
  UnaryOp un_op = UnaryOp::kNot;
  ExprPtr lhs;                 // binary lhs / unary operand / between subject
  ExprPtr rhs;                 // binary rhs
  ExprPtr low, high;           // between bounds
  std::vector<ExprPtr> list;   // IN list elements / function args

  // kFuncCall
  std::string func_name;  // upper-cased: SUM COUNT MIN MAX AVG
  bool distinct = false;  // COUNT(DISTINCT x)
  bool star_arg = false;  // COUNT(*)

  ExprPtr Clone() const;

  // True if this subtree contains an aggregate function call.
  bool ContainsAggregate() const;
};

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string table, std::string column);
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
ExprPtr MakeFuncCall(std::string name, ExprPtr arg, bool distinct = false);
ExprPtr MakeCountStar();

// ---------------------------------------------------------------- Statements

enum class StatementKind {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kCreateTable,
  kDropTable,
  kCreateIndex,
  kDropIndex,
  kBegin,
  kCommit,
  kRollback,
};

struct SelectItem {
  bool star = false;        // `*` or `t.*`
  std::string star_table;   // qualifier for `t.*` (empty for bare `*`)
  ExprPtr expr;             // when !star
  std::string alias;        // optional AS alias

  SelectItem Clone() const;
};

struct TableRef {
  std::string name;
  std::string alias;  // optional

  // Name clients use to qualify columns of this table.
  const std::string& effective_name() const { return alias.empty() ? name : alias; }
};

struct OrderItem {
  ExprPtr expr;
  bool desc = false;
};

enum class ColumnTypeKind { kInt, kDouble, kVarchar, kChar };

struct ColumnDef {
  std::string name;
  ColumnTypeKind type = ColumnTypeKind::kInt;
  int length = 0;          // VARCHAR(n)/CHAR(n)
  bool not_null = false;
  bool identity = false;   // Sybase-style NUMERIC IDENTITY column
};

struct Statement;
using StatementPtr = std::unique_ptr<Statement>;

struct Statement {
  StatementKind kind;

  // SELECT
  std::vector<SelectItem> select_items;
  std::vector<TableRef> from;
  ExprPtr where;                  // nullable
  std::vector<ExprPtr> group_by;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;

  // INSERT
  std::string table;                       // also UPDATE/DELETE/CREATE/DROP target
  std::vector<std::string> insert_columns; // empty = positional
  std::vector<std::vector<ExprPtr>> insert_rows;

  // UPDATE
  std::vector<std::pair<std::string, ExprPtr>> assignments;

  // CREATE TABLE
  std::vector<ColumnDef> columns;
  std::vector<std::string> primary_key;

  // CREATE INDEX / DROP INDEX (`table` holds the indexed table for CREATE)
  std::string index_name;
  std::vector<std::string> index_columns;

  StatementPtr Clone() const;
};

StatementPtr MakeStatement(StatementKind k);

}  // namespace irdb::sql
