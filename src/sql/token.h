// SQL token definitions.
#pragma once

#include <string>

namespace irdb::sql {

enum class TokenKind {
  kEof,
  kIdentifier,   // table/column names (case preserved, matched case-insensitively)
  kKeyword,      // normalized to upper case in `text`
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,  // text holds the unescaped contents
  // punctuation / operators
  kComma, kLParen, kRParen, kDot, kSemicolon, kStar,
  kEq, kNeq, kLt, kLe, kGt, kGe,
  kPlus, kMinus, kSlash, kPercent,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;   // identifier/keyword/literal payload
  size_t offset = 0;  // byte offset in the source, for error messages

  bool IsKeyword(const char* kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }
};

const char* TokenKindName(TokenKind k);

}  // namespace irdb::sql
