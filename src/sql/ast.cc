#include "sql/ast.h"

namespace irdb::sql {

const char* BinaryOpSymbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNeq: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kLike: return "LIKE";
  }
  return "?";
}

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->table = table;
  out->column = column;
  out->bin_op = bin_op;
  out->un_op = un_op;
  if (lhs) out->lhs = lhs->Clone();
  if (rhs) out->rhs = rhs->Clone();
  if (low) out->low = low->Clone();
  if (high) out->high = high->Clone();
  out->list.reserve(list.size());
  for (const auto& e : list) out->list.push_back(e->Clone());
  out->func_name = func_name;
  out->distinct = distinct;
  out->star_arg = star_arg;
  return out;
}

bool Expr::ContainsAggregate() const {
  if (kind == ExprKind::kFuncCall) return true;
  if (lhs && lhs->ContainsAggregate()) return true;
  if (rhs && rhs->ContainsAggregate()) return true;
  if (low && low->ContainsAggregate()) return true;
  if (high && high->ContainsAggregate()) return true;
  for (const auto& e : list) {
    if (e->ContainsAggregate()) return true;
  }
  return false;
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->un_op = op;
  e->lhs = std::move(operand);
  return e;
}

ExprPtr MakeFuncCall(std::string name, ExprPtr arg, bool distinct) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFuncCall;
  e->func_name = std::move(name);
  e->distinct = distinct;
  if (arg) e->list.push_back(std::move(arg));
  return e;
}

ExprPtr MakeCountStar() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFuncCall;
  e->func_name = "COUNT";
  e->star_arg = true;
  return e;
}

SelectItem SelectItem::Clone() const {
  SelectItem out;
  out.star = star;
  out.star_table = star_table;
  if (expr) out.expr = expr->Clone();
  out.alias = alias;
  return out;
}

StatementPtr Statement::Clone() const {
  auto out = std::make_unique<Statement>();
  out->kind = kind;
  out->select_items.reserve(select_items.size());
  for (const auto& it : select_items) out->select_items.push_back(it.Clone());
  out->from = from;
  if (where) out->where = where->Clone();
  out->group_by.reserve(group_by.size());
  for (const auto& e : group_by) out->group_by.push_back(e->Clone());
  out->order_by.reserve(order_by.size());
  for (const auto& o : order_by) {
    OrderItem oi;
    oi.expr = o.expr->Clone();
    oi.desc = o.desc;
    out->order_by.push_back(std::move(oi));
  }
  out->limit = limit;
  out->table = table;
  out->insert_columns = insert_columns;
  out->insert_rows.reserve(insert_rows.size());
  for (const auto& row : insert_rows) {
    std::vector<ExprPtr> r;
    r.reserve(row.size());
    for (const auto& e : row) r.push_back(e->Clone());
    out->insert_rows.push_back(std::move(r));
  }
  out->assignments.reserve(assignments.size());
  for (const auto& [col, e] : assignments) {
    out->assignments.emplace_back(col, e->Clone());
  }
  out->columns = columns;
  out->primary_key = primary_key;
  out->index_name = index_name;
  out->index_columns = index_columns;
  return out;
}

StatementPtr MakeStatement(StatementKind k) {
  auto s = std::make_unique<Statement>();
  s->kind = k;
  return s;
}

}  // namespace irdb::sql
