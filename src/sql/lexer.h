// Hand-written SQL lexer.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sql/token.h"
#include "util/status.h"

namespace irdb::sql {

// Tokenizes `input`; on success the final token is kEof.
Result<std::vector<Token>> Lex(std::string_view input);

// True if `word` (upper-cased) is a reserved SQL keyword of our dialect.
bool IsReservedKeyword(std::string_view upper);

}  // namespace irdb::sql
