// Recursive-descent SQL parser for the minidb dialect.
//
// Supported statements: SELECT (joins via comma FROM list, WHERE, GROUP BY,
// ORDER BY, LIMIT, aggregates incl. COUNT(DISTINCT x)), INSERT (multi-row),
// UPDATE, DELETE, CREATE TABLE (with PRIMARY KEY and Sybase-style IDENTITY),
// DROP TABLE, BEGIN/COMMIT/ROLLBACK.
#pragma once

#include <string_view>

#include "sql/ast.h"
#include "util/status.h"

namespace irdb::sql {

// Parses a single SQL statement (trailing semicolon optional).
Result<StatementPtr> Parse(std::string_view input);

// Parses an expression in isolation (used by tests and the repair engine).
Result<ExprPtr> ParseExpression(std::string_view input);

}  // namespace irdb::sql
