#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "util/string_utils.h"

namespace irdb::sql {

namespace {

const std::unordered_set<std::string>& KeywordSet() {
  static const auto* kSet = new std::unordered_set<std::string>{
      "SELECT", "FROM",   "WHERE",  "GROUP",  "BY",     "ORDER",  "ASC",
      "DESC",   "LIMIT",  "INSERT", "INTO",   "VALUES", "UPDATE", "SET",
      "DELETE", "CREATE", "TABLE",  "DROP",   "PRIMARY", "KEY",   "NOT",
      "NULL",   "AND",    "OR",     "BETWEEN", "IN",     "AS",    "DISTINCT",
      "BEGIN",  "COMMIT", "ROLLBACK", "INTEGER", "INT",  "BIGINT", "DOUBLE",
      "FLOAT",  "NUMERIC", "DECIMAL", "VARCHAR", "CHAR", "TEXT",  "IDENTITY",
      "SUM",    "COUNT",  "MIN",    "MAX",    "AVG",    "LIKE",   "IS",
      "FOR",    "TRANSACTION", "WORK",
  };
  return *kSet;
}

}  // namespace

bool IsReservedKeyword(std::string_view upper) {
  return KeywordSet().count(std::string(upper)) > 0;
}

const char* TokenKindName(TokenKind k) {
  switch (k) {
    case TokenKind::kEof: return "<eof>";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kKeyword: return "keyword";
    case TokenKind::kIntLiteral: return "int literal";
    case TokenKind::kDoubleLiteral: return "double literal";
    case TokenKind::kStringLiteral: return "string literal";
    case TokenKind::kComma: return ",";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kDot: return ".";
    case TokenKind::kSemicolon: return ";";
    case TokenKind::kStar: return "*";
    case TokenKind::kEq: return "=";
    case TokenKind::kNeq: return "<>";
    case TokenKind::kLt: return "<";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGt: return ">";
    case TokenKind::kGe: return ">=";
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kSlash: return "/";
    case TokenKind::kPercent: return "%";
  }
  return "?";
}

Result<std::vector<Token>> Lex(std::string_view input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  auto push = [&](TokenKind k, std::string text, size_t off) {
    out.push_back(Token{k, std::move(text), off});
  };
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {  // line comment
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_' || input[j] == '$')) {
        ++j;
      }
      std::string word(input.substr(i, j - i));
      std::string upper = ToUpperAscii(word);
      if (IsReservedKeyword(upper)) {
        push(TokenKind::kKeyword, std::move(upper), start);
      } else {
        push(TokenKind::kIdentifier, std::move(word), start);
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_double = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      if (j < n && input[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[j + 1]))) {
        is_double = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      }
      if (j < n && (input[j] == 'e' || input[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (input[k] == '+' || input[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(input[k]))) {
          is_double = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
        }
      }
      push(is_double ? TokenKind::kDoubleLiteral : TokenKind::kIntLiteral,
           std::string(input.substr(i, j - i)), start);
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {  // escaped quote
            text.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text.push_back(input[j]);
        ++j;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      push(TokenKind::kStringLiteral, std::move(text), start);
      i = j;
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && input[i + 1] == b;
    };
    if (two('<', '=')) { push(TokenKind::kLe, "<=", start); i += 2; continue; }
    if (two('>', '=')) { push(TokenKind::kGe, ">=", start); i += 2; continue; }
    if (two('<', '>')) { push(TokenKind::kNeq, "<>", start); i += 2; continue; }
    if (two('!', '=')) { push(TokenKind::kNeq, "<>", start); i += 2; continue; }
    switch (c) {
      case ',': push(TokenKind::kComma, ",", start); break;
      case '(': push(TokenKind::kLParen, "(", start); break;
      case ')': push(TokenKind::kRParen, ")", start); break;
      case '.': push(TokenKind::kDot, ".", start); break;
      case ';': push(TokenKind::kSemicolon, ";", start); break;
      case '*': push(TokenKind::kStar, "*", start); break;
      case '=': push(TokenKind::kEq, "=", start); break;
      case '<': push(TokenKind::kLt, "<", start); break;
      case '>': push(TokenKind::kGt, ">", start); break;
      case '+': push(TokenKind::kPlus, "+", start); break;
      case '-': push(TokenKind::kMinus, "-", start); break;
      case '/': push(TokenKind::kSlash, "/", start); break;
      case '%': push(TokenKind::kPercent, "%", start); break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
    ++i;
  }
  out.push_back(Token{TokenKind::kEof, "", n});
  return out;
}

}  // namespace irdb::sql
