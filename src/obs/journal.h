// EventJournal — append-only structured record of the rare-but-important
// events an operator audits after the fact: failpoint trips, degraded
// commits, tracking-gap quarantines, torn WAL tails, repair milestones.
//
// Counters say HOW OFTEN; the journal says WHICH transaction / site / byte
// count, in order. Events carry a monotone sequence number, a timestamp,
// a type from the documented catalog (obs/catalog.h), and small string
// fields.
//
// Invariants:
//   - Per-type counts are exact forever: the ring buffer keeps only the most
//     recent kMaxEvents events, but CountType() reads a dedicated counter
//     that is never dropped — so invariant checks such as
//     "degraded_commits == #proxy.degraded_commit events" hold regardless of
//     buffer pressure.
//   - Appending is mutex-serialized; journal events must be rare (no
//     per-row or per-statement types).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace irdb::obs {

struct JournalEvent {
  int64_t seq = 0;    // monotone, starts at 1
  int64_t ts_us = 0;  // microseconds since the journal was created/cleared
  std::string type;   // from the event catalog (docs/metrics.md)
  std::vector<std::pair<std::string, std::string>> fields;
};

class EventJournal {
 public:
  static constexpr size_t kMaxEvents = 8192;

  EventJournal();

  // Process-wide journal every subsystem appends to.
  static EventJournal& Default();

  void Append(std::string_view type,
              std::vector<std::pair<std::string, std::string>> fields = {});

  // The retained tail (most recent kMaxEvents events).
  std::vector<JournalEvent> Snapshot() const;

  // Exact count of events of `type` ever appended (survives ring eviction).
  int64_t CountType(std::string_view type) const;
  int64_t total_appended() const;
  int64_t dropped() const;

  // JSON-lines rendering of the retained tail, one event per line.
  std::string RenderJsonl() const;

  void Clear();

 private:
  mutable std::mutex mu_;
  std::deque<JournalEvent> events_;
  std::map<std::string, int64_t, std::less<>> counts_by_type_;
  int64_t next_seq_ = 1;
  int64_t dropped_ = 0;
  int64_t epoch_us_ = 0;  // steady-clock baseline
};

}  // namespace irdb::obs
