// Event buffering and Chrome trace_event rendering for SpanTracer (see
// trace.h for the measurement and bounding invariants).
#include "obs/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace irdb::obs {

namespace {

std::atomic<int> g_next_tid{1};

// JSON string escaping for names and arg values (ASCII control chars only;
// span names and args are framework-internal identifiers).
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool IsIntegerLiteral(const std::string& s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
  }
  return true;
}

}  // namespace

SpanTracer::SpanTracer() : epoch_(std::chrono::steady_clock::now()) {}

SpanTracer& SpanTracer::Default() {
  static SpanTracer* instance = new SpanTracer();  // never destroyed
  return *instance;
}

int SpanTracer::ThisThreadTid() {
  thread_local int tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

int64_t SpanTracer::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void SpanTracer::Record(SpanEvent event) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<SpanEvent> SpanTracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

int64_t SpanTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void SpanTracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
  epoch_ = std::chrono::steady_clock::now();
}

std::string SpanTracer::RenderChromeTrace() const {
  std::vector<SpanEvent> events = Snapshot();
  // Stable order: by start time, then name — the viewer does not care, but
  // tests and diffs do.
  std::stable_sort(events.begin(), events.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     if (a.start_us != b.start_us) return a.start_us < b.start_us;
                     return a.name < b.name;
                   });
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"" + JsonEscape(e.name) +
           "\",\"cat\":\"irdb\",\"ph\":\"X\",\"ts\":" +
           std::to_string(e.start_us) + ",\"dur\":" + std::to_string(e.dur_us) +
           ",\"pid\":1,\"tid\":" + std::to_string(e.tid);
    if (!e.args.empty()) {
      out += ",\"args\":{";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i) out += ",";
        out += "\"" + JsonEscape(e.args[i].first) + "\":";
        if (IsIntegerLiteral(e.args[i].second)) {
          out += e.args[i].second;
        } else {
          out += "\"" + JsonEscape(e.args[i].second) + "\"";
        }
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

double Span::End() {
  if (ended_) return recorded_ms_;
  ended_ = true;
  recorded_ms_ = ElapsedMs();
  if (tracer_->enabled()) {
    SpanEvent event;
    event.name = name_;
    event.start_us = start_us_;
    event.dur_us = std::llround(recorded_ms_ * 1000.0);
    event.tid = SpanTracer::ThisThreadTid();
    event.args = std::move(args_);
    tracer_->Record(std::move(event));
  }
  return recorded_ms_;
}

}  // namespace irdb::obs
