// SpanTracer — lightweight duration spans with thread/lane attribution,
// exported as Chrome trace_event JSON (chrome://tracing, Perfetto).
//
// A Span measures wall time from construction to End() (or destruction) with
// the steady clock and, when the tracer is enabled, records one complete
// "X"-phase event: name, start timestamp, duration, a small per-thread
// integer tid, and optional key/value args (the repair pipeline attaches
// lane indices and record counts). Nesting is by time containment per tid —
// exactly how the Chrome trace viewer builds its flame graph — so a span
// opened inside another span on the same thread renders as its child.
//
// Invariants:
//   - Span ALWAYS measures (ElapsedMs() is valid even when tracing is off),
//     so callers may use one measurement for both their own accounting and
//     the trace; this is what keeps RepairPhaseStats and the exported span
//     tree byte-consistent (tests assert the sums match).
//   - The completed-event buffer is bounded (kMaxEvents); once full, new
//     events are dropped and counted, never blocking the instrumented path.
//   - Recording takes a mutex; spans are for phase-grain work (repairs,
//     pool chunks), not per-row operations.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace irdb::obs {

struct SpanEvent {
  std::string name;
  int64_t start_us = 0;  // relative to the tracer epoch
  int64_t dur_us = 0;
  int tid = 0;  // small per-thread integer (allocation order, process-wide)
  std::vector<std::pair<std::string, std::string>> args;
};

class SpanTracer {
 public:
  static constexpr size_t kMaxEvents = 65536;

  SpanTracer();

  // Process-wide tracer; enabled by default (recording is phase-grain).
  static SpanTracer& Default();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Record(SpanEvent event);

  std::vector<SpanEvent> Snapshot() const;
  int64_t dropped() const;
  // Drops all recorded events and restarts the epoch at now.
  void Clear();

  // Microseconds since the tracer epoch (start timestamps use this base).
  int64_t NowUs() const;

  // Chrome trace_event JSON: {"traceEvents":[{"name":...,"ph":"X",...}]}.
  std::string RenderChromeTrace() const;

  // The calling thread's small integer id (assigned on first use).
  static int ThisThreadTid();

 private:
  std::atomic<bool> enabled_{true};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;
  int64_t dropped_ = 0;
};

// RAII span over the default tracer. Move-free, stack-only by design.
class Span {
 public:
  explicit Span(std::string_view name)
      : tracer_(&SpanTracer::Default()),
        name_(name),
        start_(std::chrono::steady_clock::now()),
        start_us_(tracer_->NowUs()) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { End(); }

  void AddArg(std::string_view key, int64_t value) {
    args_.emplace_back(std::string(key), std::to_string(value));
  }
  void AddArg(std::string_view key, std::string_view value) {
    args_.emplace_back(std::string(key), std::string(value));
  }

  // Wall time since construction; valid before and after End(), and
  // independent of whether tracing is enabled.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  // Records the completed event once; later calls (and the destructor
  // afterwards) are no-ops. Returns the recorded duration in ms.
  double End();

 private:
  SpanTracer* tracer_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  int64_t start_us_;
  std::vector<std::pair<std::string, std::string>> args_;
  bool ended_ = false;
  double recorded_ms_ = 0;
};

}  // namespace irdb::obs
