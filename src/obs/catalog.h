// The observability catalog — every metric, span name, and journal event
// type the framework emits, in ONE place.
//
// Instrumented code never registers metrics ad hoc: it reads pre-registered
// ids off Metrics::Get(), so the set of exported series is closed and
// documented. docs/metrics.md is GENERATED from this catalog
// (tools/gen_metrics_doc renders RenderMetricsDoc()), and tools/check_docs.sh
// fails the `docs` ctest label if the file and the catalog ever diverge —
// the reference documentation cannot drift from the code.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace irdb::obs {

// Pre-registered ids for every metric in the catalog, all on
// MetricsRegistry::Default(). First Get() registers; later calls are free.
struct Metrics {
  static const Metrics& Get();

  // --- tracking proxy (src/proxy) ---
  MetricId proxy_client_statements;
  MetricId proxy_backend_statements;
  MetricId proxy_dep_fetches;
  MetricId proxy_trans_dep_inserts;
  MetricId proxy_deps_recorded;
  MetricId proxy_plan_cache_hits;
  MetricId proxy_plan_cache_misses;
  MetricId proxy_plan_cache_invalidations;
  MetricId proxy_plan_cache_bypasses;
  MetricId proxy_retries;
  MetricId proxy_deadlock_retries;
  MetricId proxy_injected_faults_hit;
  MetricId proxy_degraded_commits;
  MetricId proxy_tracking_gap_txns;
  MetricId proxy_statement_latency;  // histogram, ms

  // --- failpoints (src/util/failpoint) ---
  MetricId failpoint_evaluations;
  MetricId failpoint_trips;

  // --- WAL / transactions (src/txn, src/engine) ---
  MetricId wal_appends;
  MetricId wal_fsyncs;
  MetricId wal_fsync_bytes;
  MetricId wal_torn_tails;
  MetricId txn_commits;
  MetricId txn_aborts;

  // --- lock manager (src/concurrency) ---
  MetricId engine_lock_waits;
  MetricId engine_deadlock_aborts;

  // --- storage: access paths + buffer pool (src/storage, src/engine) ---
  MetricId index_scans;
  MetricId heap_scans;
  MetricId bufferpool_hits;
  MetricId bufferpool_misses;
  MetricId bufferpool_evictions;
  MetricId bufferpool_resident;  // gauge

  // --- online-repair quarantine (src/concurrency, src/repair) ---
  MetricId quarantine_slices;  // gauge
  MetricId quarantine_rejects;
  MetricId repair_online_releases;
  MetricId repair_online_runs;

  // --- repair pipeline (src/repair) ---
  MetricId repair_runs;
  MetricId repair_records_scanned;
  MetricId repair_compensations;
  MetricId repair_scan_us;
  MetricId repair_scan_sim_us;
  MetricId repair_correlate_us;
  MetricId repair_closure_us;
  MetricId repair_compensate_us;
  MetricId repair_compensate_sim_us;
  MetricId repair_run_latency;  // histogram, ms (wall per full repair)
  MetricId repair_threads;     // gauge

  // --- reenactment repair (src/repair/reenact) ---
  MetricId reenact_runs;
  MetricId reenact_replayed_txns;
  MetricId reenact_demoted_txns;
  MetricId reenact_diverged_txns;
  MetricId reenact_stmts_replayed;
  MetricId reenact_components;
  MetricId reenact_replay_us;
  MetricId reenact_run_latency;  // histogram, ms (wall per RepairReenact)

  // --- worker pool (src/util/thread_pool) ---
  MetricId pool_workers;  // gauge
  MetricId pool_tasks;
  MetricId pool_parallel_fors;

  // --- networked front-end (src/net) ---
  MetricId net_connections_accepted;
  MetricId net_connections_active;  // gauge
  MetricId net_sessions_active;     // gauge
  MetricId net_frames_in;
  MetricId net_frames_out;
  MetricId net_bytes_in;
  MetricId net_bytes_out;
  MetricId net_requests;
  MetricId net_frame_latency;  // histogram, ms
  MetricId net_outbox_bytes;   // gauge
  MetricId net_backpressure_stalls;
  MetricId net_idle_disconnects;
  MetricId net_protocol_errors;
  MetricId net_session_resets;

  // --- sharded deployment: router tier (src/shard) ---
  MetricId router_stmts_routed;
  MetricId router_broadcasts;
  MetricId router_cross_shard_txns;
  MetricId router_twopc_commits;
  MetricId router_twopc_aborts;
  MetricId router_deps_merged;
  MetricId router_wrong_shard_rejects;
  MetricId router_shard_down_rejects;

  // --- sharded deployment: cluster + coordinated repair (src/shard) ---
  MetricId shard_clusters_built;
  MetricId shard_repair_runs;
  MetricId shard_closure_rounds;
  MetricId shard_repairs_dispatched;
};

// Span names recorded through obs::Span, with one-line descriptions
// (docs/metrics.md §Spans).
struct SpanDoc {
  const char* name;
  const char* description;
};
const std::vector<SpanDoc>& SpanCatalog();

// Journal event types appended through EventJournal, with their fields
// (docs/metrics.md §Events).
struct EventDoc {
  const char* name;
  const char* fields;  // comma-separated field names, "" when none
  const char* description;
};
const std::vector<EventDoc>& EventCatalog();

// Span and journal event names, as constants so call sites cannot typo a
// name out of the documented catalog.
namespace span {
inline constexpr const char* kRepairAnalyze = "repair.analyze";
inline constexpr const char* kRepairScanWalDecode = "repair.scan.wal_decode";
inline constexpr const char* kRepairScanFlavorRead = "repair.scan.flavor_read";
inline constexpr const char* kRepairCorrelate = "repair.correlate";
inline constexpr const char* kRepairClosure = "repair.closure";
inline constexpr const char* kRepairCompensate = "repair.compensate";
inline constexpr const char* kRepairCompensateLane = "repair.compensate.lane";
inline constexpr const char* kReenact = "repair.reenact";
inline constexpr const char* kReenactReplay = "repair.reenact.replay";
inline constexpr const char* kReenactComponent = "repair.reenact.component";
inline constexpr const char* kQuarantineCompute = "repair.quarantine.compute";
inline constexpr const char* kQuarantineHold = "repair.quarantine.hold";
inline constexpr const char* kQuarantineRelease = "repair.quarantine.release";
inline constexpr const char* kPoolParallelFor = "pool.parallel_for";
inline constexpr const char* kPoolChunk = "pool.chunk";
inline constexpr const char* kShardClosure = "shard.closure";
inline constexpr const char* kShardRepair = "shard.repair";
}  // namespace span

namespace event {
inline constexpr const char* kFailpointTrip = "failpoint.trip";
inline constexpr const char* kProxyDegradedCommit = "proxy.degraded_commit";
inline constexpr const char* kProxyTrackingGap = "proxy.tracking_gap";
inline constexpr const char* kProxyCacheInvalidation = "proxy.cache_invalidation";
inline constexpr const char* kWalTornTail = "wal.torn_tail";
inline constexpr const char* kRepairAnalyzeDone = "repair.analyze_done";
inline constexpr const char* kRepairDone = "repair.done";
inline constexpr const char* kReenactDone = "repair.reenact_done";
inline constexpr const char* kReenactDemoted = "repair.reenact_demoted";
inline constexpr const char* kQuarantineInstalled = "repair.quarantine_installed";
inline constexpr const char* kQuarantineReleased = "repair.quarantine_released";
inline constexpr const char* kNetSessionReset = "net.session_reset";
inline constexpr const char* kNetIdleDisconnect = "net.idle_disconnect";
inline constexpr const char* kShardRepairDone = "shard.repair_done";
}  // namespace event

// The full docs/metrics.md content: a reference table for every counter,
// gauge, histogram, span, and journal event above. Deterministic — the
// `docs` ctest label asserts docs/metrics.md is byte-identical to this.
std::string RenderMetricsDoc();

}  // namespace irdb::obs
