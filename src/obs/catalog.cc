// Registration of the closed metric catalog and the docs/metrics.md
// generator (see catalog.h).
#include "obs/catalog.h"

#include <cstdio>

namespace irdb::obs {

const Metrics& Metrics::Get() {
  static const Metrics* metrics = [] {
    MetricsRegistry& r = MetricsRegistry::Default();
    auto* m = new Metrics();

    m->proxy_client_statements = r.RegisterCounter(
        "irdb_proxy_client_statements_total",
        "Client statements received by tracking proxies");
    m->proxy_backend_statements = r.RegisterCounter(
        "irdb_proxy_backend_statements_total",
        "Statements forwarded to the backend, including dep fetches, "
        "trans_dep/annot inserts, and retry re-sends");
    m->proxy_dep_fetches = r.RegisterCounter(
        "irdb_proxy_dep_fetches_total",
        "Extra dep-fetch SELECTs issued for aggregate queries (Table 1)");
    m->proxy_trans_dep_inserts = r.RegisterCounter(
        "irdb_proxy_trans_dep_inserts_total",
        "trans_dep rows written at COMMIT (chunked payloads count per row)");
    m->proxy_deps_recorded = r.RegisterCounter(
        "irdb_proxy_deps_recorded_total",
        "Deduplicated (table, writer-trid) dependencies recorded at COMMIT");
    m->proxy_plan_cache_hits = r.RegisterCounter(
        "irdb_proxy_plan_cache_hits_total",
        "Statement-shape cache hits (lex+parse+rewrite skipped)");
    m->proxy_plan_cache_misses = r.RegisterCounter(
        "irdb_proxy_plan_cache_misses_total",
        "Statement shapes seen for the first time (plan built and cached)");
    m->proxy_plan_cache_invalidations = r.RegisterCounter(
        "irdb_proxy_plan_cache_invalidations_total",
        "Whole-cache flushes caused by DDL through the connection");
    m->proxy_plan_cache_bypasses = r.RegisterCounter(
        "irdb_proxy_plan_cache_bypasses_total",
        "Statements whose shape is cached as not-safely-bindable (negative "
        "entry); the full parse path was taken");
    m->proxy_retries = r.RegisterCounter(
        "irdb_proxy_retries_total",
        "Backend calls re-attempted after a retryable failure");
    m->proxy_deadlock_retries = r.RegisterCounter(
        "irdb_proxy_deadlock_retries_total",
        "Autocommit transaction wraps re-run after a deadlock abort "
        "(whole BEGIN..COMMIT re-executed, capped by the retry policy)");
    m->proxy_injected_faults_hit = r.RegisterCounter(
        "irdb_proxy_injected_faults_hit_total",
        "Failpoint-injected errors observed by proxies");
    m->proxy_degraded_commits = r.RegisterCounter(
        "irdb_proxy_degraded_commits_total",
        "Transactions committed untracked after metadata loss "
        "(DegradedMode::kCommitUntracked)");
    m->proxy_tracking_gap_txns = r.RegisterCounter(
        "irdb_proxy_tracking_gap_txns_total",
        "Transaction ids quarantined in the tracking_gaps side table");
    m->proxy_statement_latency = r.RegisterHistogram(
        "irdb_proxy_statement_latency_ms",
        "Client-statement latency through the tracking proxy (rewrite + "
        "backend round trips + dependency harvesting)");

    m->failpoint_evaluations = r.RegisterCounter(
        "irdb_failpoint_evaluations_total",
        "Failpoint site evaluations while at least one site was armed");
    m->failpoint_trips = r.RegisterCounter(
        "irdb_failpoint_trips_total",
        "Failpoint evaluations that fired an injected fault");

    m->wal_appends = r.RegisterCounter(
        "irdb_wal_appends_total", "Records appended to the write-ahead log");
    m->wal_fsyncs = r.RegisterCounter(
        "irdb_wal_fsyncs_total",
        "Commit-time log flushes (read-only transactions flush nothing)");
    m->wal_fsync_bytes = r.RegisterCounter(
        "irdb_wal_fsync_bytes_total",
        "Bytes made durable by commit-time log flushes", "bytes");
    m->wal_torn_tails = r.RegisterCounter(
        "irdb_wal_torn_tails_total",
        "Torn final WAL frames truncated during decode (crash mid-write)");
    m->txn_commits = r.RegisterCounter("irdb_txn_commits_total",
                                       "Engine transactions committed");
    m->txn_aborts = r.RegisterCounter("irdb_txn_aborts_total",
                                      "Engine transactions rolled back");

    m->engine_lock_waits = r.RegisterCounter(
        "irdb_engine_lock_waits_total",
        "Lock requests that blocked at least once before being granted or "
        "aborted (engine.lock.waits)");
    m->engine_deadlock_aborts = r.RegisterCounter(
        "irdb_engine_deadlock_aborts_total",
        "Lock requests aborted by waits-for cycle detection; the victim "
        "transaction is rolled back (engine.deadlocks.aborted)");

    m->index_scans = r.RegisterCounter(
        "irdb_index_scans_total",
        "Table accesses served through a B+ tree index (equality-prefix or "
        "range access path chosen by the planner)");
    m->heap_scans = r.RegisterCounter(
        "irdb_heap_scans_total",
        "Table accesses that fell back to a full heap scan (no usable "
        "index prefix for the predicate)");
    m->bufferpool_hits = r.RegisterCounter(
        "irdb_bufferpool_hits_total",
        "Page pins satisfied by an already-resident buffer-pool frame");
    m->bufferpool_misses = r.RegisterCounter(
        "irdb_bufferpool_misses_total",
        "Page pins that had to admit the page into the buffer pool "
        "(charged as a simulated disk read)");
    m->bufferpool_evictions = r.RegisterCounter(
        "irdb_bufferpool_evictions_total",
        "Frames evicted by the LRU-K replacer to stay under the configured "
        "frame capacity");
    m->bufferpool_resident = r.RegisterGauge(
        "irdb_bufferpool_resident",
        "Buffer-pool frames currently resident");

    m->quarantine_slices = r.RegisterGauge(
        "irdb_quarantine_slices",
        "Slices (whole tables + key-hash buckets) currently quarantined by "
        "an online repair; 0 when no quarantine is active");
    m->quarantine_rejects = r.RegisterCounter(
        "irdb_quarantine_rejects_total",
        "Statements rejected with [quarantine]-tagged kUnavailable because "
        "their lock plan touched a quarantined slice (or their open "
        "transaction pinned one)");
    m->repair_online_releases = r.RegisterCounter(
        "irdb_repair_online_releases_total",
        "Quarantined slices released incrementally by RepairOnline as their "
        "table's compensation lane committed");
    m->repair_online_runs = r.RegisterCounter(
        "irdb_repair_online_runs_total",
        "RepairOnline invocations (serve-through repairs started)");

    m->repair_runs = r.RegisterCounter(
        "irdb_repair_runs_total",
        "Dependency analyses started (RepairEngine::Analyze)");
    m->repair_records_scanned = r.RegisterCounter(
        "irdb_repair_records_scanned_total",
        "Log records scanned by dependency analyses");
    m->repair_compensations = r.RegisterCounter(
        "irdb_repair_compensations_total",
        "Compensating statements executed by selective undo");
    m->repair_scan_us = r.RegisterCounter(
        "irdb_repair_scan_us_total",
        "Wall time in the scan phase (log read + decode)", "us");
    m->repair_scan_sim_us = r.RegisterCounter(
        "irdb_repair_scan_sim_us_total",
        "Simulated 2004-era disk time charged to the scan phase "
        "(DESIGN.md §4a)", "us");
    m->repair_correlate_us = r.RegisterCounter(
        "irdb_repair_correlate_us_total",
        "Wall time in the correlate phase (ID correlation + graph build)",
        "us");
    m->repair_closure_us = r.RegisterCounter(
        "irdb_repair_closure_us_total",
        "Wall time in the closure phase (damage-perimeter BFS)", "us");
    m->repair_compensate_us = r.RegisterCounter(
        "irdb_repair_compensate_us_total",
        "Wall time in the compensate phase (selective undo execution)", "us");
    m->repair_compensate_sim_us = r.RegisterCounter(
        "irdb_repair_compensate_sim_us_total",
        "Simulated 2004-era disk time charged to the compensate phase", "us");
    m->repair_run_latency = r.RegisterHistogram(
        "irdb_repair_run_latency_ms",
        "Wall time of full Repair() invocations (analyze + closure + "
        "compensate)");
    m->repair_threads = r.RegisterGauge(
        "irdb_repair_threads",
        "Worker threads configured on the most recently (re)configured "
        "repair engine (1 = serial)");

    m->reenact_runs = r.RegisterCounter(
        "irdb_reenact_runs_total",
        "Reenactment repairs started (RepairEngine::RepairReenact)");
    m->reenact_replayed_txns = r.RegisterCounter(
        "irdb_reenact_replayed_txns_total",
        "Innocent closure transactions successfully re-executed from the "
        "statement journal (their effects survived the repair)");
    m->reenact_demoted_txns = r.RegisterCounter(
        "irdb_reenact_demoted_txns_total",
        "Closure transactions demoted to undo instead of replayed (tracking "
        "gap, missing journal, divergence, or downstream of a demotion)");
    m->reenact_diverged_txns = r.RegisterCounter(
        "irdb_reenact_diverged_txns_total",
        "Demotions caused by a replay divergence: a statement errored or its "
        "row-count fingerprint differed from the journaled execution");
    m->reenact_stmts_replayed = r.RegisterCounter(
        "irdb_reenact_stmts_replayed_total",
        "Journaled statements re-executed by committed replays");
    m->reenact_components = r.RegisterCounter(
        "irdb_reenact_components_total",
        "Independent dependency subgraphs replayed (the unit of replay "
        "parallelism)");
    m->reenact_replay_us = r.RegisterCounter(
        "irdb_reenact_replay_us_total",
        "Wall time in the replay phase of reenactment repairs", "us");
    m->reenact_run_latency = r.RegisterHistogram(
        "irdb_reenact_run_latency_ms",
        "Wall time of full RepairReenact() invocations (analyze + closure + "
        "compensate + replay)");

    m->pool_workers = r.RegisterGauge(
        "irdb_pool_workers",
        "Worker threads of the most recently constructed thread pool "
        "(0 = inline execution)");
    m->pool_tasks = r.RegisterCounter(
        "irdb_pool_tasks_total",
        "Tasks executed by worker pools (inline ones included)");
    m->pool_parallel_fors = r.RegisterCounter(
        "irdb_pool_parallel_fors_total", "ParallelFor invocations");

    m->net_connections_accepted = r.RegisterCounter(
        "irdb_net_connections_accepted_total",
        "TCP connections accepted by the networked proxy front-end");
    m->net_connections_active = r.RegisterGauge(
        "irdb_net_connections_active",
        "TCP connections currently open on the networked front-end");
    m->net_sessions_active = r.RegisterGauge(
        "irdb_net_sessions_active",
        "Wire sessions currently open (sessions outlive TCP connections "
        "until BYE or server stop)");
    m->net_frames_in = r.RegisterCounter(
        "irdb_net_frames_in_total",
        "Complete request frames decoded from client sockets");
    m->net_frames_out = r.RegisterCounter(
        "irdb_net_frames_out_total",
        "Reply frames enqueued to client outboxes");
    m->net_bytes_in = r.RegisterCounter(
        "irdb_net_bytes_in_total",
        "Bytes read from client sockets", "bytes");
    m->net_bytes_out = r.RegisterCounter(
        "irdb_net_bytes_out_total",
        "Bytes written to client sockets", "bytes");
    m->net_requests = r.RegisterCounter(
        "irdb_net_requests_total",
        "Requests executed to completion by the executor pool (after a "
        "clean drain, equals both frame counters)");
    m->net_frame_latency = r.RegisterHistogram(
        "irdb_net_frame_latency_ms",
        "Frame service latency: request dispatched to the executor until "
        "its reply frame is enqueued");
    m->net_outbox_bytes = r.RegisterGauge(
        "irdb_net_outbox_bytes",
        "Queued reply bytes of the most recently flushed connection "
        "(backpressure watermark input)", "bytes");
    m->net_backpressure_stalls = r.RegisterCounter(
        "irdb_net_backpressure_stalls_total",
        "Read-side pauses because a connection's outbox crossed the high "
        "watermark");
    m->net_idle_disconnects = r.RegisterCounter(
        "irdb_net_idle_disconnects_total",
        "Connections closed by the idle-timeout sweep");
    m->net_protocol_errors = r.RegisterCounter(
        "irdb_net_protocol_errors_total",
        "Corrupt/oversized frames and undecodable requests");
    m->net_session_resets = r.RegisterCounter(
        "irdb_net_session_resets_total",
        "Connections that died on EOF/error or a poisoned frame stream "
        "(their wire sessions survive for reconnects)");

    m->router_stmts_routed = r.RegisterCounter(
        "irdb_router_stmts_routed_total",
        "Statements the shard router forwarded to exactly one shard "
        "(warehouse-keyed or pinned replicated reads)");
    m->router_broadcasts = r.RegisterCounter(
        "irdb_router_broadcasts_total",
        "Statements the shard router scattered to every shard (DDL and "
        "replicated-table writes)");
    m->router_cross_shard_txns = r.RegisterCounter(
        "irdb_router_cross_shard_txns_total",
        "Client transactions that reached COMMIT with two or more "
        "participant shards (two-phase commits attempted)");
    m->router_twopc_commits = r.RegisterCounter(
        "irdb_router_twopc_commits_total",
        "Two-phase commits where every participant branch committed");
    m->router_twopc_aborts = r.RegisterCounter(
        "irdb_router_twopc_aborts_total",
        "Two-phase commits aborted (an unreachable participant at "
        "validation, or a branch commit failure)");
    m->router_deps_merged = r.RegisterCounter(
        "irdb_router_deps_merged_total",
        "Dependency entries injected into participant branches at 2PC: the "
        "merged union plus cross_shard sibling links");
    m->router_wrong_shard_rejects = r.RegisterCounter(
        "irdb_router_wrong_shard_rejects_total",
        "Statements a per-shard endpoint rejected with the [wrong-shard] "
        "retryable tag because their warehouse key belongs to another shard");
    m->router_shard_down_rejects = r.RegisterCounter(
        "irdb_router_shard_down_rejects_total",
        "Statements (and 2PC validations) turned away because the target "
        "shard was marked down/partitioned");

    m->shard_clusters_built = r.RegisterCounter(
        "irdb_shard_clusters_built_total",
        "ShardCluster instances constructed");
    m->shard_repair_runs = r.RegisterCounter(
        "irdb_shard_repair_runs_total",
        "Coordinated cross-shard repairs started "
        "(ShardRepairCoordinator::Repair)");
    m->shard_closure_rounds = r.RegisterCounter(
        "irdb_shard_closure_rounds_total",
        "Frontier-exchange rounds run by cross-shard closure computations "
        "(each round re-seeds every shard's local closure)");
    m->shard_repairs_dispatched = r.RegisterCounter(
        "irdb_shard_repairs_dispatched_total",
        "Per-shard repair legs dispatched by coordinated repairs (offline "
        "compensation, online serve-through, or reenactment)");

    return m;
  }();
  return *metrics;
}

const std::vector<SpanDoc>& SpanCatalog() {
  static const std::vector<SpanDoc>* catalog = new std::vector<SpanDoc>{
      {span::kRepairAnalyze,
       "Whole dependency analysis: scan + correlate. Parent of the scan and "
       "correlate spans; args: records, threads."},
      {span::kRepairScanWalDecode,
       "Durable-bytes leg of the scan: segmented CRC check + decode of the "
       "serialized WAL (threads > 1 only); args: bytes."},
      {span::kRepairScanFlavorRead,
       "Flavor log-reader leg of the scan: ReadCommitted over the "
       "PostgreSQL/Oracle/Sybase view of the log; args: ops."},
      {span::kRepairCorrelate,
       "ID correlation, dependency-payload parsing, and graph construction "
       "(analysis passes 1-4)."},
      {span::kRepairClosure,
       "Damage-perimeter closure over the dependency graph; args: seeds, "
       "undo."},
      {span::kRepairCompensate,
       "Selective-undo execution (compensating statements); args: stmts, "
       "lanes."},
      {span::kRepairCompensateLane,
       "One per-table compensation batch lane (threads > 1); args: lane, "
       "tables, stmts."},
      {span::kReenact,
       "Whole reenactment repair: analyze + closure + compensate + replay. "
       "Parent of the repair-phase spans and the replay span; args: seeds, "
       "threads."},
      {span::kReenactReplay,
       "Replay phase of one reenactment repair: every planned component, "
       "serial or fanned out; args: txns, components, lanes."},
      {span::kReenactComponent,
       "One kept-edge connected component replayed serially in ascending "
       "proxy-id order (the unit of replay parallelism); args: component, "
       "txns."},
      {span::kQuarantineCompute,
       "Contaminated-partition computation: undo-set ops mapped to (table, "
       "key-hash-bucket) slices, coarsening to whole tables where the key "
       "cannot be named; args: slices, tables, rounds."},
      {span::kQuarantineHold,
       "Quarantine window of one online repair: install through final "
       "release. Clean traffic keeps flowing; quarantined slices reject with "
       "[quarantine]-tagged kUnavailable; args: slices."},
      {span::kQuarantineRelease,
       "Incremental release of one healed table's slices after its "
       "compensation lane committed; args: table, slices."},
      {span::kPoolParallelFor,
       "One ParallelFor fan-out on a worker pool; args: n, chunks."},
      {span::kPoolChunk,
       "One contiguous chunk of a ParallelFor, on the worker that ran it; "
       "args: chunk, begin, end."},
      {span::kShardClosure,
       "Cross-shard damage-perimeter computation: per-shard analyses, guilty "
       "expansion over cross_shard sibling links, then frontier-exchange "
       "rounds to the fixpoint; args: shards, seeds, guilty, closure, "
       "rounds."},
      {span::kShardRepair,
       "Whole coordinated cross-shard repair: closure computation plus one "
       "repair leg per shard. Parent of the per-shard repair spans; args: "
       "shards, strategy."},
  };
  return *catalog;
}

const std::vector<EventDoc>& EventCatalog() {
  static const std::vector<EventDoc>* catalog = new std::vector<EventDoc>{
      {event::kFailpointTrip, "site",
       "An armed failpoint fired an injected fault."},
      {event::kProxyDegradedCommit, "trid",
       "A transaction committed untracked after its dependency metadata was "
       "lost (DegradedMode::kCommitUntracked). Count always equals "
       "irdb_proxy_degraded_commits_total."},
      {event::kProxyTrackingGap, "trid",
       "A transaction id was quarantined in tracking_gaps. Count always "
       "equals irdb_proxy_tracking_gap_txns_total."},
      {event::kProxyCacheInvalidation, "reason",
       "A connection's plan cache was flushed (DDL)."},
      {event::kWalTornTail, "dropped_bytes",
       "WAL decode truncated a torn final frame and recovered from the "
       "intact prefix."},
      {event::kRepairAnalyzeDone, "records, nodes, edges, gaps",
       "A dependency analysis completed."},
      {event::kRepairDone, "undone, stmts",
       "A selective undo completed."},
      {event::kReenactDone, "closure, replayed, demoted, diverged",
       "A reenactment repair completed: the closure was compensated, "
       "`replayed` innocents were re-executed, `demoted` stayed undone "
       "(`diverged` of them because replay diverged)."},
      {event::kReenactDemoted, "trid, reason",
       "A closure transaction was demoted to undo instead of replayed; "
       "reason is tracking_gap, no_journal, diverged, downstream, or "
       "replay_failed."},
      {event::kQuarantineInstalled, "slices, tables, round",
       "An online repair installed (or extended) the quarantine over the "
       "contaminated partition."},
      {event::kQuarantineReleased, "table, slices, remaining",
       "An online repair released a healed table's slices; remaining is the "
       "quarantine's slice count after the release."},
      {event::kNetSessionReset, "conn",
       "A TCP connection died on EOF, a socket error, or a poisoned frame "
       "stream. Its wire session (and any open transaction) survives for a "
       "reconnecting client."},
      {event::kNetIdleDisconnect, "conn",
       "The idle-timeout sweep closed a quiet TCP connection."},
      {event::kShardRepairDone, "shards, guilty, closure, rounds, undone",
       "A coordinated cross-shard repair completed: the global closure was "
       "computed in `rounds` frontier-exchange rounds and every shard's "
       "repair leg finished; `undone` sums what stayed undone across "
       "shards."},
  };
  return *catalog;
}

namespace {

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

std::string RenderMetricsDoc() {
  // Force registration so the Default registry holds the whole catalog.
  (void)Metrics::Get();
  std::string out;
  out +=
      "# Metrics, spans, and journal events\n"
      "\n"
      "> **GENERATED FILE — do not edit.** This reference is rendered from\n"
      "> the observability catalog (`src/obs/catalog.cc`) by\n"
      "> `tools/gen_metrics_doc`; `tools/check_docs.sh` (ctest label `docs`)\n"
      "> fails when this file and the catalog diverge. Regenerate with:\n"
      ">\n"
      "> ```sh\n"
      "> build/tools/gen_metrics_doc --out docs/metrics.md\n"
      "> ```\n"
      "\n"
      "All series live on the process-wide registry\n"
      "(`irdb::obs::MetricsRegistry::Default()`); export them as Prometheus\n"
      "text with `RenderPrometheus()` or `build/tools/irdb_metrics_dump`.\n"
      "Span timelines export as Chrome `trace_event` JSON\n"
      "(`SpanTracer::RenderChromeTrace()`), and the journal as JSON lines.\n"
      "See [architecture.md](architecture.md) for where each subsystem sits\n"
      "in the pipeline.\n"
      "\n"
      "## Metrics\n"
      "\n"
      "Histograms use the shared latency bucket boundaries (ms): ";
  for (int i = 0; i < kNumFiniteBuckets; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%s%g", i ? ", " : "",
                  kLatencyBucketUpperMs[i]);
    out += buf;
  }
  out +=
      ", +Inf.\n"
      "\n"
      "| name | kind | unit | description |\n"
      "|---|---|---|---|\n";
  for (const MetricSnapshot& s : MetricsRegistry::Default().Snapshot()) {
    out += "| `" + s.def.name + "` | " + KindName(s.def.kind) + " | " +
           s.def.unit + " | " + s.def.help + " |\n";
  }
  out +=
      "\n"
      "## Spans\n"
      "\n"
      "Recorded through `irdb::obs::Span` on the default tracer; nesting is\n"
      "by time containment per thread (`tid`), which is how the Chrome trace\n"
      "viewer renders the flame graph. Repair-phase span durations are the\n"
      "same measurements `RepairPhaseStats` accumulates, so the span tree\n"
      "always sums to the phase totals.\n"
      "\n"
      "| span | description |\n"
      "|---|---|\n";
  for (const SpanDoc& s : SpanCatalog()) {
    out += std::string("| `") + s.name + "` | " + s.description + " |\n";
  }
  out +=
      "\n"
      "## Journal events\n"
      "\n"
      "Appended to `irdb::obs::EventJournal::Default()`. The ring buffer\n"
      "keeps the most recent events, but per-type counts are exact forever\n"
      "(`CountType`), so the invariants below hold under any buffer\n"
      "pressure.\n"
      "\n"
      "| event | fields | description |\n"
      "|---|---|---|\n";
  for (const EventDoc& e : EventCatalog()) {
    out += std::string("| `") + e.name + "` | " +
           (e.fields[0] == '\0' ? "—" : e.fields) + " | " + e.description +
           " |\n";
  }
  return out;
}

}  // namespace irdb::obs
