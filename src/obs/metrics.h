// MetricsRegistry — lock-cheap counters, gauges, and fixed-bucket latency
// histograms for the whole framework (DESIGN.md §5d).
//
// Design: shard-per-thread with aggregate-on-read. Every thread that touches
// a registry lazily allocates a private slab of atomic slots; Count() and
// Observe() resolve to ONE relaxed fetch_add on the calling thread's slab
// (plus one more for a histogram's running sum), so the tracking proxy's
// per-statement hot path never contends on a shared line. Reading — the
// Prometheus exporter, snapshots, bench deltas — walks every shard ever
// created and sums, which is allowed to be slow.
//
// Invariants:
//   - Shards are owned by the registry and live until the registry dies;
//     a thread's slab is never folded or freed at thread exit, so
//     aggregate-on-read is exact even after worker threads terminate.
//   - A registry must outlive every thread that touched it. The process-wide
//     Default() registry (never destroyed) satisfies this trivially; stack
//     registries are for single-threaded tests only.
//   - Metric registration is idempotent by name and cheap; ids are stable
//     for the registry's lifetime. Registration may happen after shards
//     exist (slabs are pre-sized to kMaxSlots).
//   - Counters and histogram buckets are monotone; Reset() is test/bench
//     bookkeeping that zeroes every slot in place.
//
// Gauges are not sharded: sets are rare (thread counts, configuration), so a
// gauge is a single last-writer-wins atomic in the registry itself.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace irdb::obs {

enum class MetricKind { kCounter, kGauge, kHistogram };

struct MetricDef {
  std::string name;  // Prometheus-style, e.g. "irdb_proxy_plan_cache_hits_total"
  MetricKind kind = MetricKind::kCounter;
  std::string unit;  // "1", "ms", "bytes", "us", ...
  std::string help;  // one-line description (docs/metrics.md row)
};

// Fixed latency bucket upper bounds, in milliseconds, shared by every
// histogram (a fixed shape keeps the per-shard layout static).
inline constexpr double kLatencyBucketUpperMs[] = {
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 1000.0};
inline constexpr int kNumFiniteBuckets =
    static_cast<int>(sizeof(kLatencyBucketUpperMs) / sizeof(double));
// Finite buckets + the +Inf bucket + count + sum (in microseconds).
inline constexpr int kHistogramSlots = kNumFiniteBuckets + 3;

// Opaque handle; value-copyable, valid for the registry's lifetime.
struct MetricId {
  int32_t def_index = -1;  // index into the registry's definition table
  int32_t slot = -1;       // first slot in each shard's slab
  bool valid() const { return def_index >= 0; }
};

struct HistogramSnapshot {
  std::array<int64_t, kNumFiniteBuckets + 1> buckets{};  // last = +Inf
  int64_t count = 0;
  int64_t sum_us = 0;  // sum of observed values, microseconds
};

struct MetricSnapshot {
  MetricDef def;
  int64_t value = 0;  // counter total / gauge value
  HistogramSnapshot hist;
};

class MetricsRegistry {
 public:
  // Per-(thread, registry) slab capacity; registration past this fails hard.
  static constexpr int kMaxSlots = 1024;

  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry every subsystem instruments into. Never
  // destroyed, so it outlives all threads.
  static MetricsRegistry& Default();

  // Idempotent by name: re-registering returns the existing id (kind/help
  // must then match the original — mismatch is a programming error).
  MetricId RegisterCounter(std::string_view name, std::string_view help,
                           std::string_view unit = "1");
  MetricId RegisterGauge(std::string_view name, std::string_view help,
                         std::string_view unit = "1");
  MetricId RegisterHistogram(std::string_view name, std::string_view help,
                             std::string_view unit = "ms");

  // Invalid id when the name is unknown.
  MetricId Find(std::string_view name) const;

  // Hot path: one relaxed atomic add on this thread's shard.
  void Count(MetricId id, int64_t delta = 1);
  // Hot path: two relaxed atomic adds (bucket + sum) plus the count slot.
  void Observe(MetricId id, double value_ms);
  // Gauges: last writer wins; not sharded (sets are rare).
  void SetGauge(MetricId id, int64_t value);
  void AddGauge(MetricId id, int64_t delta);

  // Aggregate-on-read. CounterValue also reads gauges.
  int64_t CounterValue(MetricId id) const;
  HistogramSnapshot HistogramValue(MetricId id) const;
  std::vector<MetricSnapshot> Snapshot() const;

  // Prometheus text exposition (sorted by metric name; deterministic).
  std::string RenderPrometheus() const;

  // Zeroes every slot and gauge in place (ids stay valid). Test/bench only.
  void Reset();

  size_t metric_count() const;

 private:
  struct Shard {
    std::array<std::atomic<int64_t>, kMaxSlots> slots{};
  };

  Shard* ThisThreadShard();
  int64_t SumSlot(int32_t slot) const;

  // Unique per registry instance; keys the thread-local shard lookup so a
  // stale slot from a destroyed registry can never be revived.
  const uint64_t registry_key_;

  mutable std::mutex mu_;
  std::vector<MetricDef> defs_;
  std::vector<int32_t> first_slot_;  // parallel to defs_
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<std::atomic<int64_t>>> gauges_;  // by def index
  std::vector<int32_t> gauge_index_;                           // def -> gauges_
  int32_t next_slot_ = 0;
};

// Convenience wrappers over the default registry.
inline void Count(MetricId id, int64_t delta = 1) {
  MetricsRegistry::Default().Count(id, delta);
}
inline void Observe(MetricId id, double value_ms) {
  MetricsRegistry::Default().Observe(id, value_ms);
}
inline void SetGauge(MetricId id, int64_t value) {
  MetricsRegistry::Default().SetGauge(id, value);
}
inline int64_t CounterValue(MetricId id) {
  return MetricsRegistry::Default().CounterValue(id);
}

}  // namespace irdb::obs
