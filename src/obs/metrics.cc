// Shard management and aggregate-on-read for MetricsRegistry (see metrics.h
// for the design and lifetime invariants).
#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace irdb::obs {

namespace {

std::atomic<uint64_t> g_next_registry_key{1};

// Per-thread (registry key -> shard) associations. Entries for destroyed
// registries go stale but are never dereferenced: keys are unique forever.
std::vector<std::pair<uint64_t, void*>>& ThreadShardTable() {
  thread_local std::vector<std::pair<uint64_t, void*>> table;
  return table;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

MetricsRegistry::MetricsRegistry()
    : registry_key_(g_next_registry_key.fetch_add(1)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never destroyed
  return *instance;
}

MetricId MetricsRegistry::RegisterCounter(std::string_view name,
                                          std::string_view help,
                                          std::string_view unit) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].name == name) {
      return MetricId{static_cast<int32_t>(i), first_slot_[i]};
    }
  }
  if (next_slot_ + 1 > kMaxSlots) return MetricId{};
  MetricId id{static_cast<int32_t>(defs_.size()), next_slot_};
  defs_.push_back(MetricDef{std::string(name), MetricKind::kCounter,
                            std::string(unit), std::string(help)});
  first_slot_.push_back(next_slot_);
  gauge_index_.push_back(-1);
  next_slot_ += 1;
  return id;
}

MetricId MetricsRegistry::RegisterGauge(std::string_view name,
                                        std::string_view help,
                                        std::string_view unit) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].name == name) {
      return MetricId{static_cast<int32_t>(i), first_slot_[i]};
    }
  }
  MetricId id{static_cast<int32_t>(defs_.size()), -1};
  defs_.push_back(MetricDef{std::string(name), MetricKind::kGauge,
                            std::string(unit), std::string(help)});
  first_slot_.push_back(-1);
  gauge_index_.push_back(static_cast<int32_t>(gauges_.size()));
  gauges_.push_back(std::make_unique<std::atomic<int64_t>>(0));
  return id;
}

MetricId MetricsRegistry::RegisterHistogram(std::string_view name,
                                            std::string_view help,
                                            std::string_view unit) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].name == name) {
      return MetricId{static_cast<int32_t>(i), first_slot_[i]};
    }
  }
  if (next_slot_ + kHistogramSlots > kMaxSlots) return MetricId{};
  MetricId id{static_cast<int32_t>(defs_.size()), next_slot_};
  defs_.push_back(MetricDef{std::string(name), MetricKind::kHistogram,
                            std::string(unit), std::string(help)});
  first_slot_.push_back(next_slot_);
  gauge_index_.push_back(-1);
  next_slot_ += kHistogramSlots;
  return id;
}

MetricId MetricsRegistry::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].name == name) {
      return MetricId{static_cast<int32_t>(i), first_slot_[i]};
    }
  }
  return MetricId{};
}

MetricsRegistry::Shard* MetricsRegistry::ThisThreadShard() {
  auto& table = ThreadShardTable();
  for (auto& [key, shard] : table) {
    if (key == registry_key_) return static_cast<Shard*>(shard);
  }
  auto owned = std::make_unique<Shard>();
  Shard* raw = owned.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::move(owned));
  }
  table.emplace_back(registry_key_, raw);
  return raw;
}

void MetricsRegistry::Count(MetricId id, int64_t delta) {
  if (!id.valid() || id.slot < 0) return;
  ThisThreadShard()->slots[static_cast<size_t>(id.slot)].fetch_add(
      delta, std::memory_order_relaxed);
}

void MetricsRegistry::Observe(MetricId id, double value_ms) {
  if (!id.valid() || id.slot < 0) return;
  int bucket = kNumFiniteBuckets;  // +Inf
  for (int i = 0; i < kNumFiniteBuckets; ++i) {
    if (value_ms <= kLatencyBucketUpperMs[i]) {
      bucket = i;
      break;
    }
  }
  Shard* shard = ThisThreadShard();
  const size_t base = static_cast<size_t>(id.slot);
  shard->slots[base + static_cast<size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
  shard->slots[base + kNumFiniteBuckets + 1].fetch_add(
      1, std::memory_order_relaxed);
  shard->slots[base + kNumFiniteBuckets + 2].fetch_add(
      std::llround(value_ms * 1000.0), std::memory_order_relaxed);
}

void MetricsRegistry::SetGauge(MetricId id, int64_t value) {
  if (!id.valid()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const int32_t gi = gauge_index_[static_cast<size_t>(id.def_index)];
  if (gi >= 0) gauges_[static_cast<size_t>(gi)]->store(value);
}

void MetricsRegistry::AddGauge(MetricId id, int64_t delta) {
  if (!id.valid()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const int32_t gi = gauge_index_[static_cast<size_t>(id.def_index)];
  if (gi >= 0) gauges_[static_cast<size_t>(gi)]->fetch_add(delta);
}

int64_t MetricsRegistry::SumSlot(int32_t slot) const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total +=
        shard->slots[static_cast<size_t>(slot)].load(std::memory_order_relaxed);
  }
  return total;
}

int64_t MetricsRegistry::CounterValue(MetricId id) const {
  if (!id.valid()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  const int32_t gi = gauge_index_[static_cast<size_t>(id.def_index)];
  if (gi >= 0) return gauges_[static_cast<size_t>(gi)]->load();
  if (id.slot < 0) return 0;
  return SumSlot(id.slot);
}

HistogramSnapshot MetricsRegistry::HistogramValue(MetricId id) const {
  HistogramSnapshot out;
  if (!id.valid() || id.slot < 0) return out;
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i <= kNumFiniteBuckets; ++i) {
    out.buckets[static_cast<size_t>(i)] = SumSlot(id.slot + i);
  }
  out.count = SumSlot(id.slot + kNumFiniteBuckets + 1);
  out.sum_us = SumSlot(id.slot + kNumFiniteBuckets + 2);
  return out;
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(defs_.size());
  for (size_t i = 0; i < defs_.size(); ++i) {
    MetricSnapshot snap;
    snap.def = defs_[i];
    switch (defs_[i].kind) {
      case MetricKind::kCounter:
        snap.value = SumSlot(first_slot_[i]);
        break;
      case MetricKind::kGauge:
        snap.value = gauges_[static_cast<size_t>(gauge_index_[i])]->load();
        break;
      case MetricKind::kHistogram: {
        const int32_t slot = first_slot_[i];
        for (int b = 0; b <= kNumFiniteBuckets; ++b) {
          snap.hist.buckets[static_cast<size_t>(b)] = SumSlot(slot + b);
        }
        snap.hist.count = SumSlot(slot + kNumFiniteBuckets + 1);
        snap.hist.sum_us = SumSlot(slot + kNumFiniteBuckets + 2);
        break;
      }
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::vector<MetricSnapshot> snaps = Snapshot();
  std::sort(snaps.begin(), snaps.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.def.name < b.def.name;
            });
  std::string out;
  char buf[256];
  for (const MetricSnapshot& s : snaps) {
    out += "# HELP " + s.def.name + " " + s.def.help + "\n";
    switch (s.def.kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + s.def.name + " counter\n";
        std::snprintf(buf, sizeof(buf), "%s %lld\n", s.def.name.c_str(),
                      static_cast<long long>(s.value));
        out += buf;
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + s.def.name + " gauge\n";
        std::snprintf(buf, sizeof(buf), "%s %lld\n", s.def.name.c_str(),
                      static_cast<long long>(s.value));
        out += buf;
        break;
      case MetricKind::kHistogram: {
        out += "# TYPE " + s.def.name + " histogram\n";
        int64_t cumulative = 0;
        for (int b = 0; b < kNumFiniteBuckets; ++b) {
          cumulative += s.hist.buckets[static_cast<size_t>(b)];
          out += s.def.name + "_bucket{le=\"" +
                 FormatDouble(kLatencyBucketUpperMs[b]) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        cumulative += s.hist.buckets[kNumFiniteBuckets];
        out += s.def.name + "_bucket{le=\"+Inf\"} " +
               std::to_string(cumulative) + "\n";
        std::snprintf(buf, sizeof(buf), "%s_sum %.6f\n%s_count %lld\n",
                      s.def.name.c_str(),
                      static_cast<double>(s.hist.sum_us) / 1000.0,
                      s.def.name.c_str(),
                      static_cast<long long>(s.hist.count));
        out += buf;
        break;
      }
    }
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    for (auto& slot : shard->slots) slot.store(0, std::memory_order_relaxed);
  }
  for (const auto& gauge : gauges_) gauge->store(0);
}

size_t MetricsRegistry::metric_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return defs_.size();
}

}  // namespace irdb::obs
