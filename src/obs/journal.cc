// Ring buffering and exact per-type accounting for EventJournal (see
// journal.h for the invariants).
#include "obs/journal.h"

#include <chrono>
#include <cstdio>

namespace irdb::obs {

namespace {

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

EventJournal::EventJournal() : epoch_us_(SteadyNowUs()) {}

EventJournal& EventJournal::Default() {
  static EventJournal* instance = new EventJournal();  // never destroyed
  return *instance;
}

void EventJournal::Append(
    std::string_view type,
    std::vector<std::pair<std::string, std::string>> fields) {
  std::lock_guard<std::mutex> lock(mu_);
  JournalEvent event;
  event.seq = next_seq_++;
  event.ts_us = SteadyNowUs() - epoch_us_;
  event.type = std::string(type);
  event.fields = std::move(fields);
  ++counts_by_type_[event.type];
  if (events_.size() >= kMaxEvents) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(std::move(event));
}

std::vector<JournalEvent> EventJournal::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<JournalEvent>(events_.begin(), events_.end());
}

int64_t EventJournal::CountType(std::string_view type) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counts_by_type_.find(type);
  return it == counts_by_type_.end() ? 0 : it->second;
}

int64_t EventJournal::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

int64_t EventJournal::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string EventJournal::RenderJsonl() const {
  std::vector<JournalEvent> events = Snapshot();
  std::string out;
  for (const JournalEvent& e : events) {
    out += "{\"seq\":" + std::to_string(e.seq) +
           ",\"ts_us\":" + std::to_string(e.ts_us) + ",\"type\":\"" +
           JsonEscape(e.type) + "\"";
    for (const auto& [key, value] : e.fields) {
      out += ",\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
    }
    out += "}\n";
  }
  return out;
}

void EventJournal::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  counts_by_type_.clear();
  next_seq_ = 1;
  dropped_ = 0;
  epoch_us_ = SteadyNowUs();
}

}  // namespace irdb::obs
