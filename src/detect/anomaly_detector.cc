#include "detect/anomaly_detector.h"

#include "sql/parser.h"
#include "util/string_utils.h"

namespace irdb::detect {

std::string CanonicalShape(const std::set<std::string>& elements) {
  std::string out;
  for (const std::string& e : elements) {
    if (!out.empty()) out.push_back(' ');
    out += e;
  }
  return out;
}

bool AnomalyDetector::Observe(const std::set<std::string>& shape_elements,
                              const std::string& annotation) {
  const std::string shape = CanonicalShape(shape_elements);
  ++observed_;
  const int64_t count = ++shape_counts_[shape];
  if (observed_ <= options_.warmup_transactions) return false;
  const double freq =
      static_cast<double>(count) / static_cast<double>(observed_);
  // A shape is normal once it is both frequent enough and has an absolute
  // track record; anything else stays suspicious (brand-new shapes score
  // 1/observed, far below any sane threshold).
  if (freq > options_.rarity_threshold && count > options_.min_normal_count) {
    return false;
  }
  FlaggedTxn f;
  f.sequence = observed_;
  f.shape = shape;
  f.annotation = annotation;
  f.frequency = freq;
  flagged_.push_back(std::move(f));
  return true;
}

double AnomalyDetector::ShapeFrequency(const std::string& shape) const {
  auto it = shape_counts_.find(shape);
  if (it == shape_counts_.end() || observed_ == 0) return 0;
  return static_cast<double>(it->second) / static_cast<double>(observed_);
}

Result<ResultSet> DetectingConnection::Execute(std::string_view sql) {
  // Shape extraction must not disturb traffic: parse failures and exotic
  // statements pass through unobserved.
  auto parsed = sql::Parse(sql);
  bool txn_boundary = false;
  if (parsed.ok()) {
    const sql::Statement& stmt = **parsed;
    switch (stmt.kind) {
      case sql::StatementKind::kBegin:
        in_txn_ = true;
        shape_.clear();
        annotation_.clear();
        break;
      case sql::StatementKind::kCommit:
        txn_boundary = true;
        break;
      case sql::StatementKind::kRollback:
        // Aborted work never commits damage; discard.
        in_txn_ = false;
        shape_.clear();
        annotation_.clear();
        break;
      case sql::StatementKind::kSelect: {
        for (const sql::TableRef& ref : stmt.from) {
          shape_.insert("SELECT:" + ToLowerAscii(ref.name));
        }
        break;
      }
      case sql::StatementKind::kInsert:
        shape_.insert("INSERT:" + ToLowerAscii(stmt.table));
        break;
      case sql::StatementKind::kUpdate:
        shape_.insert("UPDATE:" + ToLowerAscii(stmt.table));
        break;
      case sql::StatementKind::kDelete:
        shape_.insert("DELETE:" + ToLowerAscii(stmt.table));
        break;
      default:
        break;
    }
  }

  auto result = wrapped_->Execute(sql);

  if (txn_boundary && result.ok()) FinishTxn();
  if (!in_txn_ && parsed.ok() && !txn_boundary) {
    // Autocommit statement: it formed a one-statement transaction.
    const auto kind = (*parsed)->kind;
    if ((kind == sql::StatementKind::kSelect ||
         kind == sql::StatementKind::kInsert ||
         kind == sql::StatementKind::kUpdate ||
         kind == sql::StatementKind::kDelete) &&
        result.ok()) {
      FinishTxn();
    } else {
      shape_.clear();
    }
  }
  return result;
}

void DetectingConnection::FinishTxn() {
  if (!shape_.empty()) detector_->Observe(shape_, annotation_);
  in_txn_ = false;
  shape_.clear();
  annotation_.clear();
}

}  // namespace irdb::detect
