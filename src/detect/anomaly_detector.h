// Transaction-shape anomaly detection (paper §6 future work: "develop a
// DBMS-specific intrusion detection tool and integrate it with the proposed
// intrusion resilience mechanism to form an end-to-end database security
// solution").
//
// The detector learns the statement *shape* of each transaction — the set of
// (statement kind, table) pairs it issues — from a trusted warm-up window.
// OLTP workloads have a tiny, stable shape vocabulary (each TPC-C type maps
// to one or two shapes regardless of parameters), so a transaction whose
// shape was never seen during warm-up (or stays rare afterwards) is flagged.
// Flagged proxy transaction IDs seed the repair engine's dependency closure,
// closing the detect -> analyze -> repair loop.
//
// DetectingConnection is a DbConnection decorator: statements pass through
// to the wrapped (typically tracking-proxy) connection while the detector
// observes their shapes. It never blocks traffic — detection informs repair,
// it does not prevent (matching the paper's repair-centric design).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "wire/connection.h"

namespace irdb::detect {

// Canonical shape of one transaction: sorted unique (kind, table) pairs,
// e.g. "INSERT:history SELECT:customer UPDATE:customer ...".
std::string CanonicalShape(const std::set<std::string>& elements);

struct FlaggedTxn {
  int64_t sequence = 0;       // detector-assigned transaction sequence no.
  std::string shape;
  std::string annotation;     // client label if any
  double frequency = 0;       // fraction of observed txns with this shape
};

class AnomalyDetector {
 public:
  struct Options {
    // Transactions observed before scoring starts (profile learning).
    int64_t warmup_transactions = 100;
    // Shapes rarer than this fraction after warm-up are flagged.
    double rarity_threshold = 0.02;
    // A shape must also have been seen more than this many times before it
    // can count as normal traffic (stops repeated identical attacks from
    // "graduating" into the profile).
    int64_t min_normal_count = 3;
  };

  AnomalyDetector() = default;
  explicit AnomalyDetector(Options options) : options_(options) {}

  // Observes one completed transaction; returns true if it was flagged.
  bool Observe(const std::set<std::string>& shape_elements,
               const std::string& annotation);

  const std::vector<FlaggedTxn>& flagged() const { return flagged_; }
  int64_t observed() const { return observed_; }
  int64_t distinct_shapes() const { return static_cast<int64_t>(shape_counts_.size()); }

  // Frequency of a shape among everything observed so far.
  double ShapeFrequency(const std::string& shape) const;

 private:
  Options options_{};
  int64_t observed_ = 0;
  std::map<std::string, int64_t> shape_counts_;
  std::vector<FlaggedTxn> flagged_;
};

// DbConnection decorator feeding the detector.
class DetectingConnection : public DbConnection {
 public:
  DetectingConnection(DbConnection* wrapped, AnomalyDetector* detector)
      : wrapped_(wrapped), detector_(detector) {}

  Result<ResultSet> Execute(std::string_view sql) override;

  void SetAnnotation(std::string_view label) override {
    annotation_ = std::string(label);
    wrapped_->SetAnnotation(label);
  }

  std::string Describe() const override {
    return "detector(" + wrapped_->Describe() + ")";
  }

 private:
  void FinishTxn();

  DbConnection* wrapped_;
  AnomalyDetector* detector_;
  bool in_txn_ = false;
  std::set<std::string> shape_;
  std::string annotation_;
};

}  // namespace irdb::detect
