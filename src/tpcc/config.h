// TPC-C database scaling parameters (paper Table 2).
#pragma once

#include <cstdint>

namespace irdb::tpcc {

struct TpccConfig {
  int warehouses = 1;              // W
  int districts_per_warehouse = 10;
  int customers_per_district = 30;
  int items = 100;
  int orders_per_district = 30;

  // Fraction of initial orders already delivered (the rest sit in new_order).
  double delivered_fraction = 0.7;

  // Probability that a New-Order line sources its stock from a *remote*
  // warehouse (TPC-C clause 2.4.1.5 makes this 1%; the sharded deployment's
  // bench raises it to ~10% so cross-shard transactions are a first-class
  // part of the measured mix). Ignored when warehouses == 1.
  double remote_item_pct = 0.0;

  uint64_t seed = 42;

  // The paper's test database (Table 2): 10 warehouses, 30 districts per
  // warehouse, 5000 clients per district, 100000 items, 5000 orders per
  // district (~4.5 GB). Running this in-memory is possible but slow; benches
  // default to Scaled() and accept flags to raise the scale.
  static TpccConfig Paper() {
    TpccConfig c;
    c.warehouses = 10;
    c.districts_per_warehouse = 30;
    c.customers_per_district = 5000;
    c.items = 100000;
    c.orders_per_district = 5000;
    return c;
  }

  // A proportionally scaled-down database that keeps the same shape
  // (many more stock/item rows than warehouse/district rows).
  static TpccConfig Scaled(int warehouses) {
    TpccConfig c;
    c.warehouses = warehouses;
    c.districts_per_warehouse = 5;
    c.customers_per_district = 20;
    c.items = 200;
    c.orders_per_district = 20;
    return c;
  }
};

}  // namespace irdb::tpcc
