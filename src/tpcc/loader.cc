#include "tpcc/loader.h"

#include <cstdio>

#include "tpcc/schema.h"
#include "util/string_utils.h"

namespace irdb::tpcc {

namespace {

constexpr const char* kNow = "2004-06-28 12:00:00";

// Accumulates rows into multi-row INSERT statements.
class InsertBatcher {
 public:
  InsertBatcher(DbConnection* conn, std::string table, std::string columns,
                size_t batch = 40)
      : conn_(conn), table_(std::move(table)), columns_(std::move(columns)),
        batch_(batch) {}

  Status Add(const std::string& tuple) {
    tuples_.push_back(tuple);
    if (tuples_.size() >= batch_) return Flush();
    return Status::Ok();
  }

  Status Flush() {
    if (tuples_.empty()) return Status::Ok();
    std::string sql = "INSERT INTO " + table_ + "(" + columns_ + ") VALUES ";
    for (size_t i = 0; i < tuples_.size(); ++i) {
      if (i) sql.append(", ");
      sql.append("(").append(tuples_[i]).append(")");
    }
    tuples_.clear();
    auto r = conn_->Execute(sql);
    if (!r.ok()) return r.status();
    return Status::Ok();
  }

 private:
  DbConnection* conn_;
  std::string table_;
  std::string columns_;
  size_t batch_;
  std::vector<std::string> tuples_;
};

std::string D(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

std::string S(const std::string& s) { return SqlQuote(s); }

// TPC-C last-name syllable generator (clause 4.3.2.3).
std::string LastName(int64_t num) {
  static const char* kSyllables[] = {"BAR",  "OUGHT", "ABLE", "PRI", "PRES",
                                     "ESE",  "ANTI",  "CALLY", "ATION", "EING"};
  return std::string(kSyllables[(num / 100) % 10]) +
         kSyllables[(num / 10) % 10] + kSyllables[num % 10];
}

}  // namespace

Result<LoadStats> LoadDatabase(DbConnection* conn, const TpccConfig& config) {
  IRDB_RETURN_IF_ERROR(CreateSchema(conn));
  Rng rng(config.seed);
  LoadStats stats;

  auto begin = [&](const std::string& label) -> Status {
    auto r = conn->Execute("BEGIN");
    if (!r.ok()) return r.status();
    conn->SetAnnotation(label);
    return Status::Ok();
  };
  auto commit = [&]() -> Status {
    auto r = conn->Execute("COMMIT");
    if (!r.ok()) return r.status();
    return Status::Ok();
  };

  // Items -------------------------------------------------------------
  IRDB_RETURN_IF_ERROR(begin("Load_items"));
  {
    InsertBatcher items(conn, "item", "i_id, i_im_id, i_name, i_price, i_data");
    for (int i = 1; i <= config.items; ++i) {
      std::string data = rng.AlnumString(26, 50);
      if (rng.Uniform(1, 10) == 1) data.replace(data.size() / 2, 8, "ORIGINAL");
      IRDB_RETURN_IF_ERROR(items.Add(
          std::to_string(i) + ", " + std::to_string(rng.Uniform(1, 10000)) +
          ", " + S("item-" + rng.AlnumString(8, 18)) + ", " +
          D(rng.UniformReal(1.0, 100.0)) + ", " + S(data)));
      ++stats.items;
    }
    IRDB_RETURN_IF_ERROR(items.Flush());
  }
  IRDB_RETURN_IF_ERROR(commit());

  for (int w = 1; w <= config.warehouses; ++w) {
    // Warehouse + stock ------------------------------------------------
    IRDB_RETURN_IF_ERROR(begin("Load_warehouse_" + std::to_string(w)));
    {
      auto r = conn->Execute(
          "INSERT INTO warehouse(w_id, w_name, w_street_1, w_street_2, w_city,"
          " w_state, w_zip, w_tax, w_ytd) VALUES (" +
          std::to_string(w) + ", " + S("wh-" + std::to_string(w)) + ", " +
          S(rng.AlnumString(10, 20)) + ", " + S(rng.AlnumString(10, 20)) +
          ", " + S(rng.AlnumString(10, 20)) + ", " + S("NY") + ", " +
          S("123456789") + ", " + D(rng.UniformReal(0.0, 0.2)) + ", 300000.00)");
      if (!r.ok()) return r.status();
      ++stats.warehouses;

      InsertBatcher stock(conn, "stock",
                          "s_i_id, s_w_id, s_quantity, s_dist_01, s_dist_02,"
                          " s_dist_03, s_dist_04, s_dist_05, s_dist_06,"
                          " s_dist_07, s_dist_08, s_dist_09, s_dist_10,"
                          " s_ytd, s_order_cnt, s_remote_cnt, s_data");
      for (int i = 1; i <= config.items; ++i) {
        std::string tuple = std::to_string(i) + ", " + std::to_string(w) +
                            ", " + std::to_string(rng.Uniform(10, 100));
        for (int d = 0; d < 10; ++d) tuple += ", " + S(rng.AlnumString(24, 24));
        tuple += ", 0.00, 0, 0, " + S(rng.AlnumString(26, 50));
        IRDB_RETURN_IF_ERROR(stock.Add(tuple));
        ++stats.stock;
      }
      IRDB_RETURN_IF_ERROR(stock.Flush());
    }
    IRDB_RETURN_IF_ERROR(commit());

    for (int d = 1; d <= config.districts_per_warehouse; ++d) {
      IRDB_RETURN_IF_ERROR(begin("Load_district_" + std::to_string(w) + "_" +
                                 std::to_string(d)));
      {
        auto r = conn->Execute(
            "INSERT INTO district(d_id, d_w_id, d_name, d_street_1,"
            " d_street_2, d_city, d_state, d_zip, d_tax, d_ytd, d_next_o_id)"
            " VALUES (" +
            std::to_string(d) + ", " + std::to_string(w) + ", " +
            S("dist-" + std::to_string(d)) + ", " + S(rng.AlnumString(10, 20)) +
            ", " + S(rng.AlnumString(10, 20)) + ", " +
            S(rng.AlnumString(10, 20)) + ", " + S("NY") + ", " +
            S("123456789") + ", " + D(rng.UniformReal(0.0, 0.2)) +
            ", 30000.00, " + std::to_string(config.orders_per_district + 1) +
            ")");
        if (!r.ok()) return r.status();
        ++stats.districts;

        // Customers + history.
        InsertBatcher customers(
            conn, "customer",
            "c_id, c_d_id, c_w_id, c_first, c_middle, c_last, c_street_1,"
            " c_street_2, c_city, c_state, c_zip, c_phone, c_since, c_credit,"
            " c_credit_lim, c_discount, c_balance, c_ytd_payment,"
            " c_payment_cnt, c_delivery_cnt, c_data");
        InsertBatcher history(
            conn, "history",
            "h_c_id, h_c_d_id, h_c_w_id, h_d_id, h_w_id, h_date, h_amount,"
            " h_data");
        for (int c = 1; c <= config.customers_per_district; ++c) {
          int64_t name_num = c <= 1000 ? c - 1 : rng.NuRand(255, 0, 999, 173);
          IRDB_RETURN_IF_ERROR(customers.Add(
              std::to_string(c) + ", " + std::to_string(d) + ", " +
              std::to_string(w) + ", " + S(rng.AlnumString(8, 16)) + ", " +
              S("OE") + ", " + S(LastName(name_num)) + ", " +
              S(rng.AlnumString(10, 20)) + ", " + S(rng.AlnumString(10, 20)) +
              ", " + S(rng.AlnumString(10, 20)) + ", " + S("NY") + ", " +
              S("123456789") + ", " + S("0123456789012345") + ", " + S(kNow) +
              ", " + S(rng.Uniform(1, 10) == 1 ? "BC" : "GC") +
              ", 50000.00, " + D(rng.UniformReal(0.0, 0.5)) +
              ", -10.00, 10.00, 1, 0, " + S(rng.AlnumString(100, 250))));
          ++stats.customers;
          IRDB_RETURN_IF_ERROR(history.Add(
              std::to_string(c) + ", " + std::to_string(d) + ", " +
              std::to_string(w) + ", " + std::to_string(d) + ", " +
              std::to_string(w) + ", " + S(kNow) + ", 10.00, " +
              S(rng.AlnumString(12, 24))));
          ++stats.history;
        }
        IRDB_RETURN_IF_ERROR(customers.Flush());
        IRDB_RETURN_IF_ERROR(history.Flush());

        // Orders, order lines, new_order backlog.
        InsertBatcher orders(conn, "orders",
                             "o_id, o_d_id, o_w_id, o_c_id, o_entry_d,"
                             " o_carrier_id, o_ol_cnt, o_all_local");
        InsertBatcher lines(conn, "order_line",
                            "ol_o_id, ol_d_id, ol_w_id, ol_number, ol_i_id,"
                            " ol_supply_w_id, ol_delivery_d, ol_quantity,"
                            " ol_amount, ol_dist_info");
        InsertBatcher new_orders(conn, "new_order", "no_o_id, no_d_id, no_w_id");
        const int delivered_upto = static_cast<int>(
            config.orders_per_district * config.delivered_fraction);
        for (int o = 1; o <= config.orders_per_district; ++o) {
          const bool delivered = o <= delivered_upto;
          const int ol_cnt = static_cast<int>(rng.Uniform(5, 15));
          const int64_t cust = rng.Uniform(1, config.customers_per_district);
          IRDB_RETURN_IF_ERROR(orders.Add(
              std::to_string(o) + ", " + std::to_string(d) + ", " +
              std::to_string(w) + ", " + std::to_string(cust) + ", " + S(kNow) +
              ", " + (delivered ? std::to_string(rng.Uniform(1, 10)) : "NULL") +
              ", " + std::to_string(ol_cnt) + ", 1"));
          ++stats.orders;
          for (int l = 1; l <= ol_cnt; ++l) {
            IRDB_RETURN_IF_ERROR(lines.Add(
                std::to_string(o) + ", " + std::to_string(d) + ", " +
                std::to_string(w) + ", " + std::to_string(l) + ", " +
                std::to_string(rng.Uniform(1, config.items)) + ", " +
                std::to_string(w) + ", " + (delivered ? S(kNow) : "NULL") +
                ", 5, " +
                (delivered ? std::string("0.00")
                           : D(rng.UniformReal(0.01, 9999.99))) +
                ", " + S(rng.AlnumString(24, 24))));
            ++stats.order_lines;
          }
          if (!delivered) {
            IRDB_RETURN_IF_ERROR(new_orders.Add(std::to_string(o) + ", " +
                                                std::to_string(d) + ", " +
                                                std::to_string(w)));
            ++stats.new_orders;
          }
        }
        IRDB_RETURN_IF_ERROR(orders.Flush());
        IRDB_RETURN_IF_ERROR(lines.Flush());
        IRDB_RETURN_IF_ERROR(new_orders.Flush());
      }
      IRDB_RETURN_IF_ERROR(commit());
    }
  }
  return stats;
}

}  // namespace irdb::tpcc
