#include "tpcc/schema.h"

namespace irdb::tpcc {

std::vector<std::string> SchemaDdl() {
  return {
      "CREATE TABLE warehouse ("
      " w_id INTEGER NOT NULL,"
      " w_name VARCHAR(10),"
      " w_street_1 VARCHAR(20),"
      " w_street_2 VARCHAR(20),"
      " w_city VARCHAR(20),"
      " w_state CHAR(2),"
      " w_zip CHAR(9),"
      " w_tax DOUBLE,"
      " w_ytd DOUBLE,"
      " PRIMARY KEY (w_id))",

      "CREATE TABLE district ("
      " d_id INTEGER NOT NULL,"
      " d_w_id INTEGER NOT NULL,"
      " d_name VARCHAR(10),"
      " d_street_1 VARCHAR(20),"
      " d_street_2 VARCHAR(20),"
      " d_city VARCHAR(20),"
      " d_state CHAR(2),"
      " d_zip CHAR(9),"
      " d_tax DOUBLE,"
      " d_ytd DOUBLE,"
      " d_next_o_id INTEGER,"
      " PRIMARY KEY (d_w_id, d_id))",

      "CREATE TABLE customer ("
      " c_id INTEGER NOT NULL,"
      " c_d_id INTEGER NOT NULL,"
      " c_w_id INTEGER NOT NULL,"
      " c_first VARCHAR(16),"
      " c_middle CHAR(2),"
      " c_last VARCHAR(16),"
      " c_street_1 VARCHAR(20),"
      " c_street_2 VARCHAR(20),"
      " c_city VARCHAR(20),"
      " c_state CHAR(2),"
      " c_zip CHAR(9),"
      " c_phone CHAR(16),"
      " c_since VARCHAR(19),"
      " c_credit CHAR(2),"
      " c_credit_lim DOUBLE,"
      " c_discount DOUBLE,"
      " c_balance DOUBLE,"
      " c_ytd_payment DOUBLE,"
      " c_payment_cnt INTEGER,"
      " c_delivery_cnt INTEGER,"
      " c_data VARCHAR(250),"
      " PRIMARY KEY (c_w_id, c_d_id, c_id))",

      "CREATE TABLE history ("
      " h_c_id INTEGER,"
      " h_c_d_id INTEGER,"
      " h_c_w_id INTEGER,"
      " h_d_id INTEGER,"
      " h_w_id INTEGER,"
      " h_date VARCHAR(19),"
      " h_amount DOUBLE,"
      " h_data VARCHAR(24))",

      "CREATE TABLE new_order ("
      " no_o_id INTEGER NOT NULL,"
      " no_d_id INTEGER NOT NULL,"
      " no_w_id INTEGER NOT NULL,"
      " PRIMARY KEY (no_w_id, no_d_id, no_o_id))",

      "CREATE TABLE orders ("
      " o_id INTEGER NOT NULL,"
      " o_d_id INTEGER NOT NULL,"
      " o_w_id INTEGER NOT NULL,"
      " o_c_id INTEGER,"
      " o_entry_d VARCHAR(19),"
      " o_carrier_id INTEGER,"
      " o_ol_cnt INTEGER,"
      " o_all_local INTEGER,"
      " PRIMARY KEY (o_w_id, o_d_id, o_id))",

      "CREATE TABLE order_line ("
      " ol_o_id INTEGER NOT NULL,"
      " ol_d_id INTEGER NOT NULL,"
      " ol_w_id INTEGER NOT NULL,"
      " ol_number INTEGER NOT NULL,"
      " ol_i_id INTEGER,"
      " ol_supply_w_id INTEGER,"
      " ol_delivery_d VARCHAR(19),"
      " ol_quantity INTEGER,"
      " ol_amount DOUBLE,"
      " ol_dist_info CHAR(24),"
      " PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number))",

      "CREATE TABLE item ("
      " i_id INTEGER NOT NULL,"
      " i_im_id INTEGER,"
      " i_name VARCHAR(24),"
      " i_price DOUBLE,"
      " i_data VARCHAR(50),"
      " PRIMARY KEY (i_id))",

      "CREATE TABLE stock ("
      " s_i_id INTEGER NOT NULL,"
      " s_w_id INTEGER NOT NULL,"
      " s_quantity INTEGER,"
      " s_dist_01 CHAR(24),"
      " s_dist_02 CHAR(24),"
      " s_dist_03 CHAR(24),"
      " s_dist_04 CHAR(24),"
      " s_dist_05 CHAR(24),"
      " s_dist_06 CHAR(24),"
      " s_dist_07 CHAR(24),"
      " s_dist_08 CHAR(24),"
      " s_dist_09 CHAR(24),"
      " s_dist_10 CHAR(24),"
      " s_ytd DOUBLE,"
      " s_order_cnt INTEGER,"
      " s_remote_cnt INTEGER,"
      " s_data VARCHAR(50),"
      " PRIMARY KEY (s_w_id, s_i_id))",
  };
}

std::vector<std::string> TableNames() {
  return {"warehouse", "district", "customer",   "history", "new_order",
          "orders",    "order_line", "item",     "stock"};
}

Status CreateSchema(DbConnection* conn) {
  for (const std::string& ddl : SchemaDdl()) {
    auto r = conn->Execute(ddl);
    if (!r.ok()) return r.status();
  }
  return Status::Ok();
}

}  // namespace irdb::tpcc
