// The five TPC-C transaction types, issued as SQL over a DbConnection,
// plus mix drivers for the paper's two workloads (§5.2):
//   read-intensive  = Stock Level transactions;
//   read/write      = New Order + Payment + Delivery.
#pragma once

#include <string>

#include "tpcc/config.h"
#include "util/rng.h"
#include "util/status.h"
#include "wire/connection.h"

namespace irdb::tpcc {

enum class TxnType { kNewOrder, kPayment, kDelivery, kOrderStatus, kStockLevel };

const char* TxnTypeName(TxnType t);

struct TxnResult {
  TxnType type;
  std::string label;  // annotation recorded in annot (paper Fig. 3 style)
};

class TpccDriver {
 public:
  TpccDriver(DbConnection* conn, TpccConfig config, uint64_t seed)
      : conn_(conn), config_(config), rng_(seed) {}

  // Disables per-transaction annot labels (used by throughput benches;
  // repair experiments need the labels for Fig. 3/Fig. 5 style analysis).
  void set_annotations(bool on) { annotate_ = on; }

  // Enables/disables the Payment by-last-name and remote-warehouse variants
  // (TPC-C clauses 2.5.1.2/2.5.2.2). On by default. The by-name lookup reads
  // every same-named customer row, which densifies the dependency graph far
  // beyond the paper's Fig. 5 regime — the repair-accuracy bench turns the
  // variants off to stay comparable.
  void set_payment_variants(bool on) { payment_variants_ = on; }

  // Pins the terminal to one home warehouse (TPC-C clause 2.5 binds each
  // terminal to a warehouse; 0 = pick a random warehouse per transaction,
  // the historical behavior). Remote supply warehouses and remote Payment
  // customers still roam — with a pinned home those are the only
  // cross-warehouse (and, sharded, cross-shard) touches, which keeps the
  // multi-shard bench free of the hot-row pileups that per-shard deadlock
  // detectors cannot see across shard boundaries.
  void set_home_warehouse(int w) { home_warehouse_ = w; }

  // Random-parameter transactions.
  Result<TxnResult> NewOrder();
  Result<TxnResult> Payment();
  Result<TxnResult> Delivery();
  Result<TxnResult> OrderStatus();
  Result<TxnResult> StockLevel();

  Result<TxnResult> Run(TxnType type);

  // TPC-C clause 5.2.3 weighted mix (~45/43/4/4/4).
  Result<TxnResult> RunMixed();

  // A malicious transaction: inflates one customer's balance (the classic
  // "attacker credits an account" scenario from §3.1). Its annot label is
  // "Attack_<w>_<d>_<c>" and it both reads and writes the customer row, so
  // legitimate transactions touching that row afterwards become dependent.
  Result<TxnResult> AttackInflateBalance(int w, int d, int c, double amount);

  Rng& rng() { return rng_; }

 private:
  // Executes one statement, converting failure into early return.
  Result<ResultSet> Exec(const std::string& sql);
  Status Begin();
  Status CommitWithLabel(const std::string& label);
  Status Abort();
  // The transaction's home warehouse: the pinned terminal home, or random.
  int HomeWarehouse() {
    return home_warehouse_ > 0
               ? home_warehouse_
               : static_cast<int>(rng_.Uniform(1, config_.warehouses));
  }

  DbConnection* conn_;
  TpccConfig config_;
  Rng rng_;
  bool annotate_ = true;
  bool payment_variants_ = true;
  int home_warehouse_ = 0;
};

}  // namespace irdb::tpcc
