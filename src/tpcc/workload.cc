#include "tpcc/workload.h"

#include <cstdio>
#include <vector>

#include "util/string_utils.h"

namespace irdb::tpcc {

namespace {

constexpr const char* kNow = "2004-06-28 13:00:00";

std::string D(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

std::string N(int64_t v) { return std::to_string(v); }

}  // namespace

const char* TxnTypeName(TxnType t) {
  switch (t) {
    case TxnType::kNewOrder: return "Order";
    case TxnType::kPayment: return "Payment";
    case TxnType::kDelivery: return "Deliv";
    case TxnType::kOrderStatus: return "Status";
    case TxnType::kStockLevel: return "Stock";
  }
  return "?";
}

Result<ResultSet> TpccDriver::Exec(const std::string& sql) {
  return conn_->Execute(sql);
}

Status TpccDriver::Begin() {
  auto r = Exec("BEGIN");
  if (!r.ok()) return r.status();
  return Status::Ok();
}

Status TpccDriver::CommitWithLabel(const std::string& label) {
  if (annotate_) conn_->SetAnnotation(label);
  auto r = Exec("COMMIT");
  if (!r.ok()) return r.status();
  return Status::Ok();
}

Status TpccDriver::Abort() {
  auto r = Exec("ROLLBACK");
  if (!r.ok()) return r.status();
  return Status::Ok();
}

#define TPCC_EXEC(var, sql_expr)                    \
  auto var = Exec(sql_expr);                        \
  if (!var.ok()) {                                  \
    (void)Abort();                                  \
    return var.status();                            \
  }

Result<TxnResult> TpccDriver::NewOrder() {
  const int w = HomeWarehouse();
  const int d = static_cast<int>(rng_.Uniform(1, config_.districts_per_warehouse));
  const int c = static_cast<int>(rng_.NuRand(1023, 1, config_.customers_per_district, 259));
  const int ol_cnt = static_cast<int>(rng_.Uniform(5, 15));

  IRDB_RETURN_IF_ERROR(Begin());
  TPCC_EXEC(cust, "SELECT c_discount, c_last, c_credit FROM customer WHERE "
                  "c_w_id = " + N(w) + " AND c_d_id = " + N(d) +
                  " AND c_id = " + N(c));
  TPCC_EXEC(wh, "SELECT w_tax FROM warehouse WHERE w_id = " + N(w));
  TPCC_EXEC(dist, "SELECT d_next_o_id, d_tax FROM district WHERE d_w_id = " +
                  N(w) + " AND d_id = " + N(d));
  if (dist->rows.empty() || cust->rows.empty() || wh->rows.empty()) {
    (void)Abort();
    return Status::NotFound("NewOrder: missing warehouse/district/customer");
  }
  const int64_t o_id = dist->rows[0][0].as_int();
  // TPC-C clause 2.4.1.5: some lines source their stock from a remote
  // warehouse. The spec says 1%; config_.remote_item_pct raises it for the
  // sharded deployment, where a remote line makes the transaction span
  // shards (stock rows live with their owning warehouse). Chosen up front so
  // o_all_local is correct in the orders row.
  std::vector<int> supply(static_cast<size_t>(ol_cnt), w);
  bool all_local = true;
  for (int l = 0; l < ol_cnt; ++l) {
    if (config_.warehouses > 1 && rng_.Bernoulli(config_.remote_item_pct)) {
      int sw = w;
      do {
        sw = static_cast<int>(rng_.Uniform(1, config_.warehouses));
      } while (sw == w);
      supply[static_cast<size_t>(l)] = sw;
      all_local = false;
    }
  }
  TPCC_EXEC(upd, "UPDATE district SET d_next_o_id = " + N(o_id + 1) +
                 " WHERE d_w_id = " + N(w) + " AND d_id = " + N(d));
  TPCC_EXEC(ord,
            "INSERT INTO orders(o_id, o_d_id, o_w_id, o_c_id, o_entry_d,"
            " o_carrier_id, o_ol_cnt, o_all_local) VALUES (" +
            N(o_id) + ", " + N(d) + ", " + N(w) + ", " + N(c) + ", '" + kNow +
            "', NULL, " + N(ol_cnt) + ", " + N(all_local ? 1 : 0) + ")");
  TPCC_EXEC(no, "INSERT INTO new_order(no_o_id, no_d_id, no_w_id) VALUES (" +
                N(o_id) + ", " + N(d) + ", " + N(w) + ")");
  for (int l = 1; l <= ol_cnt; ++l) {
    const int item = static_cast<int>(rng_.NuRand(8191, 1, config_.items, 7911));
    const int qty = static_cast<int>(rng_.Uniform(1, 10));
    const int supply_w = supply[static_cast<size_t>(l - 1)];
    TPCC_EXEC(it, "SELECT i_price, i_name, i_data FROM item WHERE i_id = " + N(item));
    if (it->rows.empty()) {
      (void)Abort();
      return Status::NotFound("NewOrder: unused item");
    }
    const double price = it->rows[0][0].as_double();
    char dist_col[16];
    std::snprintf(dist_col, sizeof dist_col, "s_dist_%02d", d <= 10 ? d : 10);
    TPCC_EXEC(st, std::string("SELECT s_quantity, s_data, ") + dist_col +
                  " FROM stock WHERE s_i_id = " + N(item) +
                  " AND s_w_id = " + N(supply_w));
    if (st->rows.empty()) {
      (void)Abort();
      return Status::NotFound("NewOrder: missing stock row");
    }
    const int64_t s_qty = st->rows[0][0].as_int();
    const int64_t new_qty = s_qty >= qty + 10 ? s_qty - qty : s_qty - qty + 91;
    TPCC_EXEC(stu, "UPDATE stock SET s_quantity = " + N(new_qty) +
                   ", s_ytd = s_ytd + " + N(qty) +
                   ", s_order_cnt = s_order_cnt + 1 WHERE s_i_id = " + N(item) +
                   " AND s_w_id = " + N(supply_w));
    const double amount = qty * price;
    TPCC_EXEC(oli,
              "INSERT INTO order_line(ol_o_id, ol_d_id, ol_w_id, ol_number,"
              " ol_i_id, ol_supply_w_id, ol_delivery_d, ol_quantity,"
              " ol_amount, ol_dist_info) VALUES (" +
              N(o_id) + ", " + N(d) + ", " + N(w) + ", " + N(l) + ", " +
              N(item) + ", " + N(supply_w) + ", NULL, " + N(qty) + ", " +
              D(amount) + ", " + SqlQuote(st->rows[0][2].as_string()) + ")");
  }
  TxnResult out;
  out.type = TxnType::kNewOrder;
  out.label = "Order_" + N(w) + "_" + N(d) + "_" + N(c) + "_" + N(o_id);
  IRDB_RETURN_IF_ERROR(CommitWithLabel(out.label));
  return out;
}

Result<TxnResult> TpccDriver::Payment() {
  const int w = HomeWarehouse();
  const int d = static_cast<int>(rng_.Uniform(1, config_.districts_per_warehouse));
  const double amount = rng_.UniformReal(1.0, 5000.0);

  // TPC-C clause 2.5.1.2: 15% of payments are for a customer of a *remote*
  // warehouse (creates cross-warehouse dependency chains), and 60% select
  // the customer by last name rather than by id.
  int c_w = w, c_d = d;
  if (payment_variants_ && config_.warehouses > 1 && rng_.Uniform(1, 100) <= 15) {
    do {
      c_w = static_cast<int>(rng_.Uniform(1, config_.warehouses));
    } while (c_w == w);
    c_d = static_cast<int>(rng_.Uniform(1, config_.districts_per_warehouse));
  }
  const bool by_name = payment_variants_ && rng_.Uniform(1, 100) <= 60;

  IRDB_RETURN_IF_ERROR(Begin());
  TPCC_EXEC(wu, "UPDATE warehouse SET w_ytd = w_ytd + " + D(amount) +
                " WHERE w_id = " + N(w));
  TPCC_EXEC(wsel, "SELECT w_name, w_street_1, w_city, w_state, w_zip FROM "
                  "warehouse WHERE w_id = " + N(w));
  TPCC_EXEC(du, "UPDATE district SET d_ytd = d_ytd + " + D(amount) +
                " WHERE d_w_id = " + N(w) + " AND d_id = " + N(d));
  TPCC_EXEC(dsel, "SELECT d_name, d_street_1, d_city, d_state, d_zip FROM "
                  "district WHERE d_w_id = " + N(w) + " AND d_id = " + N(d));

  int64_t c = rng_.NuRand(1023, 1, config_.customers_per_district, 259);
  if (by_name) {
    // Clause 2.5.2.2: pick the middle row of all customers with a last name,
    // ordered by first name.
    TPCC_EXEC(name, "SELECT c_last FROM customer WHERE c_w_id = " + N(c_w) +
                    " AND c_d_id = " + N(c_d) + " AND c_id = " + N(c));
    if (name->rows.empty()) {
      (void)Abort();
      return Status::NotFound("Payment: missing customer");
    }
    const std::string last = name->rows[0][0].as_string();
    TPCC_EXEC(matches, "SELECT c_id FROM customer WHERE c_w_id = " + N(c_w) +
                       " AND c_d_id = " + N(c_d) + " AND c_last = " +
                       SqlQuote(last) + " ORDER BY c_first");
    if (matches->rows.empty()) {
      (void)Abort();
      return Status::NotFound("Payment: no customer with last name");
    }
    c = matches->rows[matches->rows.size() / 2][0].as_int();
  }

  TPCC_EXEC(csel, "SELECT c_balance, c_ytd_payment, c_payment_cnt, c_credit "
                  "FROM customer WHERE c_w_id = " + N(c_w) + " AND c_d_id = " +
                  N(c_d) + " AND c_id = " + N(c));
  if (csel->rows.empty()) {
    (void)Abort();
    return Status::NotFound("Payment: missing customer");
  }
  TPCC_EXEC(cu, "UPDATE customer SET c_balance = c_balance - " + D(amount) +
                ", c_ytd_payment = c_ytd_payment + " + D(amount) +
                ", c_payment_cnt = c_payment_cnt + 1 WHERE c_w_id = " + N(c_w) +
                " AND c_d_id = " + N(c_d) + " AND c_id = " + N(c));
  TPCC_EXEC(hi, "INSERT INTO history(h_c_id, h_c_d_id, h_c_w_id, h_d_id,"
                " h_w_id, h_date, h_amount, h_data) VALUES (" +
                N(c) + ", " + N(c_d) + ", " + N(c_w) + ", " + N(d) + ", " +
                N(w) + ", '" + kNow + "', " + D(amount) + ", 'payment')");
  TxnResult out;
  out.type = TxnType::kPayment;
  out.label = "Payment_" + N(c_w) + "_" + N(c_d) + "_" + N(c);
  IRDB_RETURN_IF_ERROR(CommitWithLabel(out.label));
  return out;
}

Result<TxnResult> TpccDriver::Delivery() {
  const int w = HomeWarehouse();
  const int carrier = static_cast<int>(rng_.Uniform(1, 10));

  IRDB_RETURN_IF_ERROR(Begin());
  for (int d = 1; d <= config_.districts_per_warehouse; ++d) {
    TPCC_EXEC(no, "SELECT no_o_id FROM new_order WHERE no_d_id = " + N(d) +
                  " AND no_w_id = " + N(w) + " ORDER BY no_o_id LIMIT 1");
    if (no->rows.empty()) continue;  // nothing pending in this district
    const int64_t o_id = no->rows[0][0].as_int();
    TPCC_EXEC(del, "DELETE FROM new_order WHERE no_o_id = " + N(o_id) +
                   " AND no_d_id = " + N(d) + " AND no_w_id = " + N(w));
    TPCC_EXEC(oc, "SELECT o_c_id FROM orders WHERE o_id = " + N(o_id) +
                  " AND o_d_id = " + N(d) + " AND o_w_id = " + N(w));
    if (oc->rows.empty()) {
      (void)Abort();
      return Status::Internal("Delivery: new_order without orders row");
    }
    const int64_t c = oc->rows[0][0].as_int();
    TPCC_EXEC(ou, "UPDATE orders SET o_carrier_id = " + N(carrier) +
                  " WHERE o_id = " + N(o_id) + " AND o_d_id = " + N(d) +
                  " AND o_w_id = " + N(w));
    TPCC_EXEC(olu, "UPDATE order_line SET ol_delivery_d = '" +
                   std::string(kNow) + "' WHERE ol_o_id = " + N(o_id) +
                   " AND ol_d_id = " + N(d) + " AND ol_w_id = " + N(w));
    TPCC_EXEC(amt, "SELECT SUM(ol_amount) FROM order_line WHERE ol_o_id = " +
                   N(o_id) + " AND ol_d_id = " + N(d) + " AND ol_w_id = " + N(w));
    const double total =
        amt->rows.empty() || amt->rows[0][0].is_null()
            ? 0.0
            : amt->rows[0][0].as_double();
    TPCC_EXEC(cu, "UPDATE customer SET c_balance = c_balance + " + D(total) +
                  ", c_delivery_cnt = c_delivery_cnt + 1 WHERE c_id = " + N(c) +
                  " AND c_d_id = " + N(d) + " AND c_w_id = " + N(w));
  }
  TxnResult out;
  out.type = TxnType::kDelivery;
  out.label = "Deliv_" + N(w) + "_" + N(carrier);
  IRDB_RETURN_IF_ERROR(CommitWithLabel(out.label));
  return out;
}

Result<TxnResult> TpccDriver::OrderStatus() {
  const int w = HomeWarehouse();
  const int d = static_cast<int>(rng_.Uniform(1, config_.districts_per_warehouse));
  const int c = static_cast<int>(rng_.NuRand(1023, 1, config_.customers_per_district, 259));

  IRDB_RETURN_IF_ERROR(Begin());
  TPCC_EXEC(cust, "SELECT c_balance, c_first, c_middle, c_last FROM customer "
                  "WHERE c_w_id = " + N(w) + " AND c_d_id = " + N(d) +
                  " AND c_id = " + N(c));
  TPCC_EXEC(ord, "SELECT o_id, o_entry_d, o_carrier_id FROM orders WHERE "
                 "o_w_id = " + N(w) + " AND o_d_id = " + N(d) +
                 " AND o_c_id = " + N(c) + " ORDER BY o_id DESC LIMIT 1");
  if (!ord->rows.empty()) {
    const int64_t o_id = ord->rows[0][0].as_int();
    TPCC_EXEC(lines, "SELECT ol_i_id, ol_supply_w_id, ol_quantity, ol_amount,"
                     " ol_delivery_d FROM order_line WHERE ol_o_id = " +
                     N(o_id) + " AND ol_d_id = " + N(d) + " AND ol_w_id = " + N(w));
  }
  TxnResult out;
  out.type = TxnType::kOrderStatus;
  out.label = "Status_" + N(w) + "_" + N(d) + "_" + N(c);
  IRDB_RETURN_IF_ERROR(CommitWithLabel(out.label));
  return out;
}

Result<TxnResult> TpccDriver::StockLevel() {
  const int w = HomeWarehouse();
  const int d = static_cast<int>(rng_.Uniform(1, config_.districts_per_warehouse));
  const int threshold = static_cast<int>(rng_.Uniform(10, 20));

  IRDB_RETURN_IF_ERROR(Begin());
  TPCC_EXEC(dist, "SELECT d_next_o_id FROM district WHERE d_w_id = " + N(w) +
                  " AND d_id = " + N(d));
  if (dist->rows.empty()) {
    (void)Abort();
    return Status::NotFound("StockLevel: missing district");
  }
  const int64_t next_o = dist->rows[0][0].as_int();
  TPCC_EXEC(level,
            "SELECT COUNT(DISTINCT s_i_id) FROM order_line, stock WHERE "
            "ol_w_id = " + N(w) + " AND ol_d_id = " + N(d) +
            " AND ol_o_id >= " + N(next_o - 20) + " AND ol_o_id < " + N(next_o) +
            " AND s_w_id = ol_supply_w_id AND s_i_id = ol_i_id"
            " AND s_quantity < " + N(threshold));
  TxnResult out;
  out.type = TxnType::kStockLevel;
  out.label = "Stock_" + N(w) + "_" + N(d);
  IRDB_RETURN_IF_ERROR(CommitWithLabel(out.label));
  return out;
}

Result<TxnResult> TpccDriver::AttackInflateBalance(int w, int d, int c,
                                                   double amount) {
  // The attack is shaped like a Payment (it touches the warehouse and
  // district ytd attributes too) but credits instead of debits the customer.
  // The warehouse/district writes create exactly the row-level false sharing
  // of §5.3: later transactions reading those rows' w_tax / d_next_o_id
  // attributes appear dependent even though only derivable ytd columns were
  // touched.
  IRDB_RETURN_IF_ERROR(Begin());
  TPCC_EXEC(wu, "UPDATE warehouse SET w_ytd = w_ytd + " + D(amount) +
                " WHERE w_id = " + N(w));
  TPCC_EXEC(du, "UPDATE district SET d_ytd = d_ytd + " + D(amount) +
                " WHERE d_w_id = " + N(w) + " AND d_id = " + N(d));
  TPCC_EXEC(sel, "SELECT c_balance FROM customer WHERE c_w_id = " + N(w) +
                 " AND c_d_id = " + N(d) + " AND c_id = " + N(c));
  TPCC_EXEC(upd, "UPDATE customer SET c_balance = c_balance + " + D(amount) +
                 " WHERE c_w_id = " + N(w) + " AND c_d_id = " + N(d) +
                 " AND c_id = " + N(c));
  TxnResult out;
  out.type = TxnType::kPayment;  // masquerades as a payment
  out.label = "Attack_" + N(w) + "_" + N(d) + "_" + N(c);
  IRDB_RETURN_IF_ERROR(CommitWithLabel(out.label));
  return out;
}

Result<TxnResult> TpccDriver::Run(TxnType type) {
  switch (type) {
    case TxnType::kNewOrder: return NewOrder();
    case TxnType::kPayment: return Payment();
    case TxnType::kDelivery: return Delivery();
    case TxnType::kOrderStatus: return OrderStatus();
    case TxnType::kStockLevel: return StockLevel();
  }
  return Status::Internal("bad txn type");
}

Result<TxnResult> TpccDriver::RunMixed() {
  const int64_t roll = rng_.Uniform(1, 100);
  if (roll <= 45) return NewOrder();
  if (roll <= 88) return Payment();
  if (roll <= 92) return Delivery();
  if (roll <= 96) return OrderStatus();
  return StockLevel();
}

#undef TPCC_EXEC

}  // namespace irdb::tpcc
