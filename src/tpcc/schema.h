// TPC-C schema DDL (nine tables, TPC-C clause 1.3).
#pragma once

#include <string>
#include <vector>

#include "util/status.h"
#include "wire/connection.h"

namespace irdb::tpcc {

// The nine CREATE TABLE statements, in creation order.
std::vector<std::string> SchemaDdl();

// Names of all TPC-C tables (for state hashing / repair scoping).
std::vector<std::string> TableNames();

// Executes the DDL over `conn` (typically a tracking proxy, so the trid —
// and, under Sybase, rid — columns are injected).
Status CreateSchema(DbConnection* conn);

}  // namespace irdb::tpcc
