// TPC-C initial database population.
#pragma once

#include "tpcc/config.h"
#include "util/rng.h"
#include "util/status.h"
#include "wire/connection.h"

namespace irdb::tpcc {

struct LoadStats {
  int64_t warehouses = 0;
  int64_t districts = 0;
  int64_t customers = 0;
  int64_t items = 0;
  int64_t stock = 0;
  int64_t orders = 0;
  int64_t order_lines = 0;
  int64_t new_orders = 0;
  int64_t history = 0;
};

// Creates the schema and populates it per `config`. Runs through `conn`
// (tracked or raw); population transactions are annotated "Load_*" so the
// repair experiments can treat them as trusted bootstrap.
Result<LoadStats> LoadDatabase(DbConnection* conn, const TpccConfig& config);

}  // namespace irdb::tpcc
