// Dual-proxy architecture (paper Fig. 2).
//
// The client-side JDBC proxy is just a forwarder: it ships SQL text over the
// proxy protocol (our wire protocol) to the server machine. The server-side
// proxy performs all tracking and talks to the DBMS through a local
// connection — so an attacker bypassing the client proxy with a raw driver
// would still have to get past the server-side one.
//
// In-process composition:
//   RemoteConnection -> Channel(latency) -> ServerProxyHost
//     -> TrackingProxy -> DirectConnection -> Database
#pragma once

#include <map>
#include <memory>

#include "proxy/tracking_proxy.h"
#include "wire/protocol.h"

namespace irdb::proxy {

class ServerProxyHost {
 public:
  ServerProxyHost(Database* db, TxnIdAllocator* alloc, FlavorTraits traits)
      : db_(db), alloc_(alloc), traits_(std::move(traits)) {}

  // Byte-level handler, pluggable into a LoopbackChannel.
  std::string Handle(std::string_view request_bytes) {
    WireResponse resp;
    auto req = DecodeRequest(request_bytes);
    if (!req.ok()) {
      resp.ok = false;
      resp.error_code = req.status().code();
      resp.error_message = req.status().message();
      return EncodeResponse(resp);
    }
    switch (req->kind) {
      case WireRequest::Kind::kConnect: {
        int64_t id = next_session_++;
        auto conn = std::make_unique<DirectConnection>(db_);
        auto proxy = std::make_unique<TrackingProxy>(conn.get(), alloc_, traits_);
        proxy->set_retry_clock(&db_->io_model().clock());
        sessions_[id] = Sess{std::move(conn), std::move(proxy)};
        resp.ok = true;
        resp.session = id;
        break;
      }
      case WireRequest::Kind::kDisconnect: {
        auto it = sessions_.find(req->session);
        if (it != sessions_.end()) {
          closed_stats_.Add(it->second.proxy->stats());
          sessions_.erase(it);
        }
        resp.ok = true;
        resp.session = req->session;
        break;
      }
      case WireRequest::Kind::kAnnotate: {
        auto it = sessions_.find(req->session);
        if (it == sessions_.end()) {
          resp.ok = false;
          resp.error_code = StatusCode::kInvalidArgument;
          resp.error_message = "unknown proxy session";
          break;
        }
        it->second.proxy->SetAnnotation(req->sql);
        resp.ok = true;
        resp.session = req->session;
        break;
      }
      case WireRequest::Kind::kExec: {
        auto it = sessions_.find(req->session);
        if (it == sessions_.end()) {
          resp.ok = false;
          resp.error_code = StatusCode::kInvalidArgument;
          resp.error_message = "unknown proxy session";
          break;
        }
        auto result = it->second.proxy->Execute(req->sql);
        if (result.ok()) {
          resp.ok = true;
          resp.session = req->session;
          resp.result = std::move(result).value();
        } else {
          resp.ok = false;
          resp.error_code = result.status().code();
          resp.error_message = result.status().message();
        }
        break;
      }
    }
    return EncodeResponse(resp);
  }

  // Combined tracking stats: sessions closed so far plus the live ones.
  ProxyStats AggregateStats() const {
    ProxyStats total = closed_stats_;
    for (const auto& [id, sess] : sessions_) total.Add(sess.proxy->stats());
    return total;
  }

 private:
  struct Sess {
    std::unique_ptr<DirectConnection> conn;
    std::unique_ptr<TrackingProxy> proxy;
  };

  Database* db_;
  TxnIdAllocator* alloc_;
  FlavorTraits traits_;
  std::map<int64_t, Sess> sessions_;
  int64_t next_session_ = 1;
  ProxyStats closed_stats_;
};

}  // namespace irdb::proxy
