#include "proxy/tracking_proxy.h"

#include <algorithm>
#include <chrono>

#include "concurrency/lock_manager.h"
#include "obs/catalog.h"
#include "obs/journal.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "util/failpoint.h"
#include "util/string_utils.h"

namespace irdb::proxy {

using sql::Statement;
using sql::StatementKind;

namespace {

// Times one client statement into the proxy latency histogram, whichever
// return path it exits through.
struct LatencyTimer {
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  ~LatencyTimer() {
    obs::Observe(obs::Metrics::Get().proxy_statement_latency,
                 std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
  }
};

// trans_dep.dep_tr_ids capacity; longer dependency sets span multiple rows.
// Kept modest: the engine's fixed-width row layout reserves the full
// capacity per row, and trans_dep is the hottest insert in the system.
constexpr size_t kDepVarcharCapacity = 480;

bool IsPlanCacheableKind(StatementKind kind) {
  switch (kind) {
    case StatementKind::kSelect:
    case StatementKind::kInsert:
    case StatementKind::kUpdate:
    case StatementKind::kDelete:
    case StatementKind::kBegin:
    case StatementKind::kCommit:
    case StatementKind::kRollback:
      return true;
    default:
      return false;  // DDL invalidates the cache instead of entering it
  }
}

}  // namespace

std::string EncodeDepTokens(const std::vector<DepEntry>& deps) {
  std::string out;
  for (const auto& [table, id] : deps) {
    if (!out.empty()) out.push_back(' ');
    out.append(table).push_back(':');
    out.append(std::to_string(id));
  }
  return out;
}

Result<std::vector<DepEntry>> ParseDepTokens(std::string_view payload) {
  std::vector<DepEntry> out;
  for (const std::string& token : SplitNonEmpty(payload, ' ')) {
    size_t colon = token.rfind(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("bad dep token: " + token);
    }
    int64_t id = 0;
    if (!ParseInt64(std::string_view(token).substr(colon + 1), &id)) {
      return Status::InvalidArgument("bad dep token id: " + token);
    }
    out.emplace_back(token.substr(0, colon), id);
  }
  return out;
}

std::vector<DepEntry> TrackingProxy::pending_deps() const {
  std::vector<DepEntry> out = deps_;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<ResultSet> TrackingProxy::Forward(const Statement& stmt) {
  // AST hand-off: an in-process backend executes the tree directly; the
  // remote implementation prints and ships text (DbConnection's default).
  // Print once, outside the retry loop.
  std::string text;
  if (!fast_path_) text = sql::PrintStatement(stmt);
  double backoff = retry_policy_.initial_backoff_seconds;
  for (int attempt = 1;; ++attempt) {
    ++stats_.backend_statements;
    obs::Count(obs::Metrics::Get().proxy_backend_statements);
    auto r = fast_path_ ? backend_->Execute(stmt)
                        : backend_->Execute(std::string_view(text));
    if (r.ok()) return r;
    if (fail::IsInjected(r.status())) {
      ++stats_.injected_faults_hit;
      obs::Count(obs::Metrics::Get().proxy_injected_faults_hit);
    }
    if (r.status().code() == StatusCode::kUnavailable &&
        r.status().message().rfind(kQuarantineTag, 0) == 0) {
      // Online-repair quarantine reject. Retryable like any kUnavailable,
      // but the slice stays fenced until its lane heals it, so in-proxy
      // retries mostly burn attempts — counted separately so operators can
      // tell repair backpressure from transport loss.
      ++stats_.quarantine_rejects;
    }
    // All failpoints fire before any side effect (request-loss semantics),
    // so a retryable failure means the statement never executed: re-sending
    // it cannot duplicate work.
    if (!r.status().IsRetryable() || attempt >= retry_policy_.max_attempts) {
      return r;
    }
    ++stats_.retries;
    obs::Count(obs::Metrics::Get().proxy_retries);
    if (retry_clock_ != nullptr) retry_clock_->Advance(backoff);
    backoff *= retry_policy_.backoff_multiplier;
  }
}

void TrackingProxy::AbortOpenTxn() {
  auto rollback = sql::MakeStatement(StatementKind::kRollback);
  (void)Forward(*rollback);  // best effort; a stale backend txn is cleared
                             // by the next HandleBegin
  ResetTxnState();
}

void TrackingProxy::InvalidateCache() {
  ++stats_.cache_invalidations;
  obs::Count(obs::Metrics::Get().proxy_plan_cache_invalidations);
  obs::EventJournal::Default().Append(obs::event::kProxyCacheInvalidation,
                                      {{"reason", "ddl"}});
  cache_.Clear();
}

void TrackingProxy::ResetTxnState() {
  in_txn_ = false;
  deps_.clear();
  annotation_.clear();
}

Result<ResultSet> TrackingProxy::Execute(std::string_view sql_text) {
  ++stats_.client_statements;
  obs::Count(obs::Metrics::Get().proxy_client_statements);
  LatencyTimer latency;
  if (fast_path_) {
    auto shape = sql::FingerprintStatement(sql_text);
    if (shape.ok()) {
      if (CachedPlan* plan = cache_.Lookup(shape->key)) {
        if (plan->cacheable && plan->slots.size() == shape->params.size()) {
          ++stats_.cache_hits;
          obs::Count(obs::Metrics::Get().proxy_plan_cache_hits);
          return ExecutePlan(*plan, shape->params);
        }
        // Negative entry: shape is known not to bind safely.
        ++stats_.cache_bypasses;
        obs::Count(obs::Metrics::Get().proxy_plan_cache_bypasses);
        auto parsed = sql::Parse(sql_text);
        if (!parsed.ok()) return parsed.status();
        return DispatchStatement(**parsed, nullptr);
      }
      ++stats_.cache_misses;
      obs::Count(obs::Metrics::Get().proxy_plan_cache_misses);
      auto parsed = sql::Parse(sql_text);
      if (!parsed.ok()) return parsed.status();
      return DispatchStatement(**parsed, &*shape);
    }
    // Lexing failed; fall through so the parser reports the error.
  }
  auto parsed = sql::Parse(sql_text);
  if (!parsed.ok()) return parsed.status();
  return DispatchStatement(**parsed, nullptr);
}

Result<ResultSet> TrackingProxy::Execute(const sql::Statement& stmt) {
  ++stats_.client_statements;
  obs::Count(obs::Metrics::Get().proxy_client_statements);
  LatencyTimer latency;
  return DispatchStatement(stmt, nullptr);
}

Result<ResultSet> TrackingProxy::DispatchStatement(
    const Statement& stmt, const sql::StatementShape* shape) {
  // Cache miss on the fast path: build the plan once, store it, and execute
  // through the same code path hits will take.
  if (shape != nullptr && IsPlanCacheableKind(stmt.kind)) {
    auto built = BuildPlan(stmt, rewriter_, shape->params);
    if (built.ok()) {
      CachedPlan* plan = cache_.Insert(shape->key, std::move(*built));
      if (plan->cacheable) return ExecutePlan(*plan, shape->params);
      // Falls through to the ordinary path (and the negative entry makes
      // future statements of this shape skip plan building).
    }
    // A rewrite error also falls through: the ordinary path reproduces it
    // with the proper transaction-wrapping semantics.
  }

  switch (stmt.kind) {
    case StatementKind::kBegin: {
      if (in_txn_) return Status::FailedPrecondition("transaction already open");
      IRDB_RETURN_IF_ERROR(HandleBegin());
      return ResultSet{};
    }
    case StatementKind::kCommit:
      if (!in_txn_) return Status::FailedPrecondition("no open transaction");
      return HandleCommit();
    case StatementKind::kRollback: {
      if (!in_txn_) return Status::FailedPrecondition("no open transaction");
      ResetTxnState();
      return Forward(stmt);
    }
    case StatementKind::kCreateTable: {
      InvalidateCache();
      auto rewritten = rewriter_.RewriteCreateTable(stmt);
      if (!rewritten.ok()) return rewritten.status();
      return Forward(**rewritten);
    }
    case StatementKind::kDropTable:
    case StatementKind::kCreateIndex:
    case StatementKind::kDropIndex:
      InvalidateCache();
      return Forward(stmt);
    default:
      break;
  }

  // Tracked DML / SELECT. Wrap autocommit statements in an explicit
  // transaction so the trans_dep record lands atomically with the statement.
  if (in_txn_) return ExecuteTracked(stmt);
  return RunAutocommitWrap([&] { return ExecuteTracked(stmt); });
}

Result<ResultSet> TrackingProxy::ExecutePlan(CachedPlan& plan,
                                             const std::vector<Value>& params) {
  switch (plan.kind) {
    case StatementKind::kBegin: {
      if (in_txn_) return Status::FailedPrecondition("transaction already open");
      IRDB_RETURN_IF_ERROR(HandleBegin());
      return ResultSet{};
    }
    case StatementKind::kCommit:
      if (!in_txn_) return Status::FailedPrecondition("no open transaction");
      return HandleCommit();
    case StatementKind::kRollback: {
      if (!in_txn_) return Status::FailedPrecondition("no open transaction");
      ResetTxnState();
      return Forward(*plan.dml);
    }
    default:
      break;
  }

  // Re-bind this statement's literals into the cached templates.
  for (size_t i = 0; i < plan.slots.size(); ++i) {
    *plan.slots[i] = params[i];
  }
  for (size_t i = 0; i < plan.fetch_slots.size(); ++i) {
    *plan.fetch_slots[i] = params[plan.fetch_offset + i];
  }

  if (in_txn_) return ExecuteTrackedPlan(plan);
  // Re-running the wrap is safe for cached plans too: the bound parameter
  // slots are untouched by execution and trid slots are re-stamped each run.
  return RunAutocommitWrap([&]() -> Result<ResultSet> {
    return ExecuteTrackedPlan(plan);
  });
}

Result<ResultSet> TrackingProxy::RunAutocommitWrap(
    const std::function<Result<ResultSet>()>& body) {
  double backoff = retry_policy_.initial_backoff_seconds;
  for (int attempt = 1;; ++attempt) {
    IRDB_RETURN_IF_ERROR(HandleBegin());
    Result<ResultSet> result = body();
    Status failure = Status::Ok();
    if (result.ok()) {
      auto commit = HandleCommit();
      if (commit.ok()) return result;
      // HandleCommit already aborted and reset on failure.
      failure = commit.status();
    } else {
      failure = result.status();
      ResetTxnState();
      auto rollback = sql::MakeStatement(StatementKind::kRollback);
      (void)Forward(*rollback);  // best effort; also acknowledges a
                                 // deadlock-poisoned engine session
    }
    if (!concurrency::IsDeadlockAbort(failure) ||
        attempt >= retry_policy_.max_attempts) {
      return failure;
    }
    ++stats_.deadlock_retries;
    obs::Count(obs::Metrics::Get().proxy_deadlock_retries);
    if (retry_clock_ != nullptr) retry_clock_->Advance(backoff);
    backoff *= retry_policy_.backoff_multiplier;
  }
}

Status TrackingProxy::HandleBegin() {
  auto begin = sql::MakeStatement(StatementKind::kBegin);
  auto r = Forward(*begin);
  if (!r.ok() && r.status().code() == StatusCode::kFailedPrecondition) {
    // The backend has a transaction we don't know about — a ROLLBACK we sent
    // earlier was lost on the wire. Clear the stale transaction (undoing any
    // work the abandoned txn left behind) and retry the BEGIN once.
    auto rollback = sql::MakeStatement(StatementKind::kRollback);
    (void)Forward(*rollback);
    r = Forward(*begin);
  }
  if (!r.ok()) return r.status();
  in_txn_ = true;
  cur_trid_ = alloc_->Next();
  deps_.clear();
  annotation_.clear();
  return Status::Ok();
}

Result<ResultSet> TrackingProxy::ExecuteTracked(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return HandleSelect(stmt);
    case StatementKind::kUpdate: {
      auto rewritten = rewriter_.RewriteUpdate(stmt, cur_trid_);
      if (!rewritten.ok()) return rewritten.status();
      return Forward(**rewritten);
    }
    case StatementKind::kInsert: {
      auto rewritten = rewriter_.RewriteInsert(stmt, cur_trid_);
      if (!rewritten.ok()) return rewritten.status();
      return Forward(**rewritten);
    }
    case StatementKind::kDelete:
      // Passed through unchanged; the dependencies a DELETE implies are
      // reconstructed from before-images in the log at repair time (§3.2).
      return Forward(stmt);
    default:
      return Status::Internal("ExecuteTracked: unexpected statement kind");
  }
}

Result<ResultSet> TrackingProxy::ExecuteTrackedPlan(CachedPlan& plan) {
  switch (plan.kind) {
    case StatementKind::kSelect:
      return RunRewrittenSelect(plan.select);
    case StatementKind::kUpdate:
    case StatementKind::kInsert: {
      // Stamp the injected trid literals with the live transaction id.
      const Value trid = Value::Int(cur_trid_);
      for (Value* slot : plan.trid_slots) *slot = trid;
      return Forward(*plan.dml);
    }
    case StatementKind::kDelete:
      return Forward(*plan.dml);
    default:
      return Status::Internal("ExecuteTrackedPlan: unexpected statement kind");
  }
}

Result<ResultSet> TrackingProxy::HandleSelect(const Statement& stmt) {
  auto rewritten = rewriter_.RewriteSelect(stmt);
  if (!rewritten.ok()) return rewritten.status();
  return RunRewrittenSelect(*rewritten);
}

Result<ResultSet> TrackingProxy::RunRewrittenSelect(const RewrittenSelect& rw) {
  if (rw.dep_fetch) {
    ++stats_.dep_fetches;
    obs::Count(obs::Metrics::Get().proxy_dep_fetches);
    auto fetch = Forward(*rw.dep_fetch);
    if (!fetch.ok()) return fetch.status();
    CollectDeps(*fetch, 0, rw.trid_source_tables.size(), rw.trid_source_tables);
    return Forward(*rw.main);
  }

  auto result = Forward(*rw.main);
  if (!result.ok()) return result;
  ResultSet& rs = *result;
  IRDB_CHECK(rs.columns.size() >= rw.appended);
  const size_t first = rs.columns.size() - rw.appended;
  CollectDeps(rs, first, rw.appended, rw.trid_source_tables);
  // Strip the proxy's appended trid columns before the client sees the rows.
  rs.columns.resize(first);
  for (auto& row : rs.rows) row.resize(first);
  return result;
}

void TrackingProxy::CollectDeps(const ResultSet& rs, size_t first_col,
                                size_t count,
                                const std::vector<std::string>& source_tables) {
  if (count == 0 || rs.rows.empty()) return;
  // Lower-case each source table once, not once per row.
  std::vector<std::string> lowered;
  lowered.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    lowered.push_back(ToLowerAscii(source_tables[i]));
  }
  for (const auto& row : rs.rows) {
    for (size_t i = 0; i < count; ++i) {
      const Value& v = row[first_col + i];
      // NULL = bootstrap data predating tracking; 0 is reserved; own writes
      // are not dependencies.
      if (!v.is_int()) continue;
      int64_t id = v.as_int();
      if (id <= 0 || id == cur_trid_) continue;
      // Duplicates are fine (COMMIT sort+uniques); just skip the common
      // consecutive repeat to keep the vector short.
      if (!deps_.empty() && deps_.back().second == id &&
          deps_.back().first == lowered[i]) {
        continue;
      }
      deps_.emplace_back(lowered[i], id);
    }
  }
}

Status TrackingProxy::EmitCommitMetadata() {
  // Annotation first: the trans_dep insert must be the last row operation
  // before COMMIT (the repair engine's ID-correlation anchor, §3.3).
  if (!annotation_.empty()) {
    // Simulates the annot insert failing persistently (past Forward's own
    // retries), e.g. the table being unavailable.
    if (fail::Triggered("proxy.commit.annot")) {
      ++stats_.injected_faults_hit;
      obs::Count(obs::Metrics::Get().proxy_injected_faults_hit);
      return fail::Inject("proxy.commit.annot");
    }
    auto ins = sql::MakeStatement(StatementKind::kInsert);
    ins->table = kAnnotTable;
    ins->insert_columns = {"tr_id", "descr", kTridColumn};
    std::vector<sql::ExprPtr> row;
    row.push_back(sql::MakeLiteral(Value::Int(cur_trid_)));
    row.push_back(sql::MakeLiteral(Value::Str(annotation_)));
    row.push_back(sql::MakeLiteral(Value::Int(cur_trid_)));
    ins->insert_rows.push_back(std::move(row));
    auto r = Forward(*ins);
    if (!r.ok()) return r.status();
  }

  // Canonicalize the flat dependency log: sorted, unique.
  std::sort(deps_.begin(), deps_.end());
  deps_.erase(std::unique(deps_.begin(), deps_.end()), deps_.end());
  stats_.deps_recorded += static_cast<int64_t>(deps_.size());
  obs::Count(obs::Metrics::Get().proxy_deps_recorded,
             static_cast<int64_t>(deps_.size()));

  // Chunk the dependency payload across rows if it overflows the VARCHAR.
  std::string tokens = EncodeDepTokens(deps_);
  std::vector<std::string> chunks;
  while (tokens.size() > kDepVarcharCapacity) {
    size_t cut = tokens.rfind(' ', kDepVarcharCapacity);
    IRDB_CHECK(cut != std::string::npos);
    chunks.push_back(tokens.substr(0, cut));
    tokens.erase(0, cut + 1);
  }
  chunks.push_back(std::move(tokens));
  for (const std::string& chunk : chunks) {
    if (fail::Triggered("proxy.commit.trans_dep")) {
      ++stats_.injected_faults_hit;
      obs::Count(obs::Metrics::Get().proxy_injected_faults_hit);
      return fail::Inject("proxy.commit.trans_dep");
    }
    auto ins = sql::MakeStatement(StatementKind::kInsert);
    ins->table = kTransDepTable;
    ins->insert_columns = {"tr_id", "dep_tr_ids", kTridColumn};
    std::vector<sql::ExprPtr> row;
    row.push_back(sql::MakeLiteral(Value::Int(cur_trid_)));
    row.push_back(sql::MakeLiteral(Value::Str(chunk)));
    row.push_back(sql::MakeLiteral(Value::Int(cur_trid_)));
    ins->insert_rows.push_back(std::move(row));
    ++stats_.trans_dep_inserts;
    obs::Count(obs::Metrics::Get().proxy_trans_dep_inserts);
    auto r = Forward(*ins);
    if (!r.ok()) return r.status();
  }
  return Status::Ok();
}

Status TrackingProxy::RecordTrackingGap() {
  auto ins = sql::MakeStatement(StatementKind::kInsert);
  ins->table = kTrackingGapsTable;
  ins->insert_columns = {"tr_id", kTridColumn};
  std::vector<sql::ExprPtr> row;
  row.push_back(sql::MakeLiteral(Value::Int(cur_trid_)));
  row.push_back(sql::MakeLiteral(Value::Int(cur_trid_)));
  ins->insert_rows.push_back(std::move(row));
  auto r = Forward(*ins);
  if (!r.ok()) return r.status();
  ++stats_.tracking_gap_txns;
  obs::Count(obs::Metrics::Get().proxy_tracking_gap_txns);
  obs::EventJournal::Default().Append(obs::event::kProxyTrackingGap,
                                      {{"trid", std::to_string(cur_trid_)}});
  return Status::Ok();
}

// The tracked-commit protocol (DESIGN.md §5b): dependency metadata is never
// silently lost. If the metadata inserts fail even after retries, either
// abort the transaction (kAbort) or quarantine its id in tracking_gaps and
// commit untracked (kCommitUntracked). A failed COMMIT forward aborts: the
// client must never believe an unacknowledged commit happened.
Result<ResultSet> TrackingProxy::HandleCommit() {
  Status meta = EmitCommitMetadata();
  if (!meta.ok()) {
    if (degraded_mode_ == DegradedMode::kCommitUntracked &&
        meta.IsRetryable()) {
      Status gap = RecordTrackingGap();
      if (gap.ok()) {
        auto commit = sql::MakeStatement(StatementKind::kCommit);
        auto r = Forward(*commit);
        if (r.ok()) {
          ++stats_.degraded_commits;
          obs::Count(obs::Metrics::Get().proxy_degraded_commits);
          obs::EventJournal::Default().Append(
              obs::event::kProxyDegradedCommit,
              {{"trid", std::to_string(cur_trid_)}});
          ResetTxnState();
          return r;
        }
        meta = r.status();
      } else {
        meta = gap;
      }
    }
    AbortOpenTxn();
    return Status::Aborted("transaction aborted: dependency metadata lost (" +
                           meta.ToString() + ")");
  }
  auto commit = sql::MakeStatement(StatementKind::kCommit);
  auto r = Forward(*commit);
  if (!r.ok()) {
    AbortOpenTxn();
    return Status::Aborted("transaction aborted: COMMIT failed (" +
                           r.status().ToString() + ")");
  }
  ResetTxnState();
  return r;
}

Status TrackingProxy::EnsureTrackingTables() {
  // CREATE TABLE goes through our own Execute so the rewriter appends the
  // trid (and, under Sybase, rid identity) columns.
  auto r1 = Execute(
      "CREATE TABLE trans_dep (tr_id INTEGER NOT NULL, dep_tr_ids "
      "VARCHAR(512))");
  if (!r1.ok() && r1.status().code() != StatusCode::kAlreadyExists) {
    return r1.status();
  }
  auto r2 = Execute(
      "CREATE TABLE annot (tr_id INTEGER NOT NULL, descr VARCHAR(255))");
  if (!r2.ok() && r2.status().code() != StatusCode::kAlreadyExists) {
    return r2.status();
  }
  auto r3 = Execute("CREATE TABLE tracking_gaps (tr_id INTEGER NOT NULL)");
  if (!r3.ok() && r3.status().code() != StatusCode::kAlreadyExists) {
    return r3.status();
  }
  return Status::Ok();
}

}  // namespace irdb::proxy
