#include "proxy/tracking_proxy.h"

#include "sql/parser.h"
#include "sql/printer.h"
#include "util/string_utils.h"

namespace irdb::proxy {

using sql::Statement;
using sql::StatementKind;

namespace {

// trans_dep.dep_tr_ids capacity; longer dependency sets span multiple rows.
// Kept modest: the engine's fixed-width row layout reserves the full
// capacity per row, and trans_dep is the hottest insert in the system.
constexpr size_t kDepVarcharCapacity = 480;

}  // namespace

std::string EncodeDepTokens(const std::set<DepEntry>& deps) {
  std::string out;
  for (const auto& [table, id] : deps) {
    if (!out.empty()) out.push_back(' ');
    out.append(table).push_back(':');
    out.append(std::to_string(id));
  }
  return out;
}

Result<std::vector<DepEntry>> ParseDepTokens(std::string_view payload) {
  std::vector<DepEntry> out;
  for (const std::string& token : SplitNonEmpty(payload, ' ')) {
    size_t colon = token.rfind(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("bad dep token: " + token);
    }
    int64_t id = 0;
    if (!ParseInt64(std::string_view(token).substr(colon + 1), &id)) {
      return Status::InvalidArgument("bad dep token id: " + token);
    }
    out.emplace_back(token.substr(0, colon), id);
  }
  return out;
}

Result<ResultSet> TrackingProxy::Forward(const Statement& stmt) {
  ++stats_.backend_statements;
  return backend_->Execute(sql::PrintStatement(stmt));
}

Result<ResultSet> TrackingProxy::Execute(std::string_view sql_text) {
  ++stats_.client_statements;
  auto parsed = sql::Parse(sql_text);
  if (!parsed.ok()) return parsed.status();
  const Statement& stmt = **parsed;

  switch (stmt.kind) {
    case StatementKind::kBegin: {
      if (in_txn_) return Status::FailedPrecondition("transaction already open");
      IRDB_RETURN_IF_ERROR(HandleBegin());
      return ResultSet{};
    }
    case StatementKind::kCommit:
      if (!in_txn_) return Status::FailedPrecondition("no open transaction");
      return HandleCommit();
    case StatementKind::kRollback: {
      if (!in_txn_) return Status::FailedPrecondition("no open transaction");
      in_txn_ = false;
      deps_.clear();
      annotation_.clear();
      return Forward(stmt);
    }
    case StatementKind::kCreateTable: {
      auto rewritten = rewriter_.RewriteCreateTable(stmt);
      if (!rewritten.ok()) return rewritten.status();
      return Forward(**rewritten);
    }
    case StatementKind::kDropTable:
      return Forward(stmt);
    default:
      break;
  }

  // Tracked DML / SELECT. Wrap autocommit statements in an explicit
  // transaction so the trans_dep record lands atomically with the statement.
  if (in_txn_) return ExecuteTracked(stmt);

  IRDB_RETURN_IF_ERROR(HandleBegin());
  Result<ResultSet> result = ExecuteTracked(stmt);
  if (!result.ok()) {
    in_txn_ = false;
    deps_.clear();
    annotation_.clear();
    auto rollback = sql::MakeStatement(StatementKind::kRollback);
    (void)Forward(*rollback);  // best effort
    return result;
  }
  auto commit = HandleCommit();
  if (!commit.ok()) return commit.status();
  return result;
}

Status TrackingProxy::HandleBegin() {
  auto begin = sql::MakeStatement(StatementKind::kBegin);
  auto r = Forward(*begin);
  if (!r.ok()) return r.status();
  in_txn_ = true;
  cur_trid_ = alloc_->Next();
  deps_.clear();
  annotation_.clear();
  return Status::Ok();
}

Result<ResultSet> TrackingProxy::ExecuteTracked(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return HandleSelect(stmt);
    case StatementKind::kUpdate: {
      auto rewritten = rewriter_.RewriteUpdate(stmt, cur_trid_);
      if (!rewritten.ok()) return rewritten.status();
      return Forward(**rewritten);
    }
    case StatementKind::kInsert: {
      auto rewritten = rewriter_.RewriteInsert(stmt, cur_trid_);
      if (!rewritten.ok()) return rewritten.status();
      return Forward(**rewritten);
    }
    case StatementKind::kDelete:
      // Passed through unchanged; the dependencies a DELETE implies are
      // reconstructed from before-images in the log at repair time (§3.2).
      return Forward(stmt);
    default:
      return Status::Internal("ExecuteTracked: unexpected statement kind");
  }
}

Result<ResultSet> TrackingProxy::HandleSelect(const Statement& stmt) {
  auto rewritten = rewriter_.RewriteSelect(stmt);
  if (!rewritten.ok()) return rewritten.status();
  RewrittenSelect& rw = *rewritten;

  if (rw.dep_fetch) {
    ++stats_.dep_fetches;
    auto fetch = Forward(*rw.dep_fetch);
    if (!fetch.ok()) return fetch.status();
    CollectDeps(*fetch, 0, rw.trid_source_tables.size(), rw.trid_source_tables);
    return Forward(*rw.main);
  }

  auto result = Forward(*rw.main);
  if (!result.ok()) return result;
  ResultSet& rs = *result;
  IRDB_CHECK(rs.columns.size() >= rw.appended);
  const size_t first = rs.columns.size() - rw.appended;
  CollectDeps(rs, first, rw.appended, rw.trid_source_tables);
  // Strip the proxy's appended trid columns before the client sees the rows.
  rs.columns.resize(first);
  for (auto& row : rs.rows) row.resize(first);
  return result;
}

void TrackingProxy::CollectDeps(const ResultSet& rs, size_t first_col,
                                size_t count,
                                const std::vector<std::string>& source_tables) {
  for (const auto& row : rs.rows) {
    for (size_t i = 0; i < count; ++i) {
      const Value& v = row[first_col + i];
      // NULL = bootstrap data predating tracking; 0 is reserved; own writes
      // are not dependencies.
      if (!v.is_int()) continue;
      int64_t id = v.as_int();
      if (id <= 0 || id == cur_trid_) continue;
      if (deps_.emplace(ToLowerAscii(source_tables[i]), id).second) {
        ++stats_.deps_recorded;
      }
    }
  }
}

Status TrackingProxy::EmitCommitMetadata() {
  // Annotation first: the trans_dep insert must be the last row operation
  // before COMMIT (the repair engine's ID-correlation anchor, §3.3).
  if (!annotation_.empty()) {
    auto ins = sql::MakeStatement(StatementKind::kInsert);
    ins->table = kAnnotTable;
    ins->insert_columns = {"tr_id", "descr", kTridColumn};
    std::vector<sql::ExprPtr> row;
    row.push_back(sql::MakeLiteral(Value::Int(cur_trid_)));
    row.push_back(sql::MakeLiteral(Value::Str(annotation_)));
    row.push_back(sql::MakeLiteral(Value::Int(cur_trid_)));
    ins->insert_rows.push_back(std::move(row));
    auto r = Forward(*ins);
    if (!r.ok()) return r.status();
  }

  // Chunk the dependency payload across rows if it overflows the VARCHAR.
  std::string tokens = EncodeDepTokens(deps_);
  std::vector<std::string> chunks;
  while (tokens.size() > kDepVarcharCapacity) {
    size_t cut = tokens.rfind(' ', kDepVarcharCapacity);
    IRDB_CHECK(cut != std::string::npos);
    chunks.push_back(tokens.substr(0, cut));
    tokens.erase(0, cut + 1);
  }
  chunks.push_back(std::move(tokens));
  for (const std::string& chunk : chunks) {
    auto ins = sql::MakeStatement(StatementKind::kInsert);
    ins->table = kTransDepTable;
    ins->insert_columns = {"tr_id", "dep_tr_ids", kTridColumn};
    std::vector<sql::ExprPtr> row;
    row.push_back(sql::MakeLiteral(Value::Int(cur_trid_)));
    row.push_back(sql::MakeLiteral(Value::Str(chunk)));
    row.push_back(sql::MakeLiteral(Value::Int(cur_trid_)));
    ins->insert_rows.push_back(std::move(row));
    ++stats_.trans_dep_inserts;
    auto r = Forward(*ins);
    if (!r.ok()) return r.status();
  }
  return Status::Ok();
}

Result<ResultSet> TrackingProxy::HandleCommit() {
  IRDB_RETURN_IF_ERROR(EmitCommitMetadata());
  auto commit = sql::MakeStatement(StatementKind::kCommit);
  auto r = Forward(*commit);
  if (!r.ok()) return r;
  in_txn_ = false;
  deps_.clear();
  annotation_.clear();
  return r;
}

Status TrackingProxy::EnsureTrackingTables() {
  // CREATE TABLE goes through our own Execute so the rewriter appends the
  // trid (and, under Sybase, rid identity) columns.
  auto r1 = Execute(
      "CREATE TABLE trans_dep (tr_id INTEGER NOT NULL, dep_tr_ids "
      "VARCHAR(512))");
  if (!r1.ok() && r1.status().code() != StatusCode::kAlreadyExists) {
    return r1.status();
  }
  auto r2 = Execute(
      "CREATE TABLE annot (tr_id INTEGER NOT NULL, descr VARCHAR(255))");
  if (!r2.ok() && r2.status().code() != StatusCode::kAlreadyExists) {
    return r2.status();
  }
  return Status::Ok();
}

}  // namespace irdb::proxy
