// SqlRewriter — the statement transformations of Table 1 in the paper.
//
//   SELECT a1..an FROM t1..tk WHERE c
//     -> SELECT a1..an, t1.trid, ..., tk.trid FROM t1..tk WHERE c
//   SELECT SUM(t.a) FROM t WHERE c GROUP BY t.b       (aggregate query)
//     -> SELECT t1.trid, ..., tk.trid FROM t1..tk WHERE c   (dep fetch)
//        SELECT SUM(t.a) FROM t WHERE c GROUP BY t.b        (unchanged)
//   UPDATE t SET a1=v1.. WHERE c
//     -> UPDATE t SET a1=v1.., trid = curTrID WHERE c
//   INSERT INTO t(a1..an) VALUES (v1..vn)
//     -> INSERT INTO t(a1..an, trid) VALUES (v1..vn, curTrID)
//   CREATE TABLE t (...)
//     -> CREATE TABLE t (..., trid INTEGER [, rid INTEGER IDENTITY])
//        (the identity column is injected for the Sybase flavor, §4.3)
//   DELETE / COMMIT handling lives in the TrackingProxy (COMMIT additionally
//   inserts into trans_dep; DELETE passes through — its dependencies are
//   reconstructed from the log at repair time).
#pragma once

#include <string>
#include <vector>

#include "flavor/flavor_traits.h"
#include "sql/ast.h"
#include "util/status.h"

namespace irdb::proxy {

inline constexpr char kTridColumn[] = "trid";
inline constexpr char kSybaseRowIdColumn[] = "rid";
inline constexpr char kTransDepTable[] = "trans_dep";
inline constexpr char kAnnotTable[] = "annot";
// Quarantine for txn ids committed without dependency metadata
// (DegradedMode::kCommitUntracked); the analyzer treats them as
// conservatively dependent on every earlier transaction.
inline constexpr char kTrackingGapsTable[] = "tracking_gaps";

struct RewrittenSelect {
  // Optional dependency-fetch statement to run before `main` (aggregate
  // queries only): SELECT t1.trid, ..., tk.trid FROM ... WHERE c.
  sql::StatementPtr dep_fetch;
  // The statement whose results go back to the client. For non-aggregate
  // selects this carries `appended` extra trid columns at the end, which the
  // proxy reads for dependency tracking and then strips.
  sql::StatementPtr main;
  // Real (catalog) table name per appended trid column / dep-fetch column,
  // in output order — provenance for table-aware DBA false-dependency
  // filtering (DESIGN.md §2).
  std::vector<std::string> trid_source_tables;
  size_t appended = 0;
};

class SqlRewriter {
 public:
  explicit SqlRewriter(FlavorTraits traits) : traits_(std::move(traits)) {}

  // `stmt` must be a SELECT. curTrID is not needed for reads.
  Result<RewrittenSelect> RewriteSelect(const sql::Statement& stmt) const;

  // Appends `trid = curTrID` to the SET list.
  Result<sql::StatementPtr> RewriteUpdate(const sql::Statement& stmt,
                                          int64_t cur_trid) const;

  // Appends the trid column/value. Positional (column-list-free) inserts are
  // supported only for flavors without an injected identity column.
  Result<sql::StatementPtr> RewriteInsert(const sql::Statement& stmt,
                                          int64_t cur_trid) const;

  // Appends trid INTEGER and, for flavors lacking a rowid pseudo-column,
  // a rid INTEGER IDENTITY column.
  Result<sql::StatementPtr> RewriteCreateTable(const sql::Statement& stmt) const;

  const FlavorTraits& traits() const { return traits_; }

 private:
  bool NeedsIdentityInjection() const { return !traits_.has_rowid; }

  FlavorTraits traits_;
};

}  // namespace irdb::proxy
