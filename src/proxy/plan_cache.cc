#include "proxy/plan_cache.h"

#include "sql/fingerprint.h"

namespace irdb::proxy {

namespace {

// Literal equality for validation: same type AND same value (Value::Compare
// treats 42 and 42.0 as equal, which would let an int slot swallow a double
// param and change coercion behaviour downstream).
bool SameLiteral(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  return a.is_null() || a.Compare(b) == 0;
}

// Checks that `slots` and `params[offset..)` agree pairwise.
bool SlotsMatch(const std::vector<Value*>& slots,
                const std::vector<Value>& params, size_t offset) {
  if (offset + slots.size() > params.size()) return false;
  for (size_t i = 0; i < slots.size(); ++i) {
    if (!SameLiteral(*slots[i], params[offset + i])) return false;
  }
  return true;
}

}  // namespace

Result<CachedPlan> BuildPlan(const sql::Statement& stmt,
                             const SqlRewriter& rewriter,
                             const std::vector<Value>& params) {
  CachedPlan plan;
  plan.kind = stmt.kind;

  switch (stmt.kind) {
    case sql::StatementKind::kBegin:
    case sql::StatementKind::kCommit:
    case sql::StatementKind::kRollback:
      // Nothing to bind; caching still skips lex+parse on every txn boundary.
      plan.dml = stmt.Clone();
      plan.cacheable = params.empty();
      return plan;

    case sql::StatementKind::kSelect: {
      IRDB_ASSIGN_OR_RETURN(plan.select, rewriter.RewriteSelect(stmt));
      // The main template's literal slots are exactly the client's (the
      // rewrite only appends trid column refs / clones the statement).
      sql::CollectStatementLiterals(plan.select.main.get(), &plan.slots);
      plan.cacheable =
          plan.slots.size() == params.size() && SlotsMatch(plan.slots, params, 0);
      if (plan.cacheable && plan.select.dep_fetch) {
        // Aggregate path: the dep fetch re-uses the WHERE clause, whose
        // params sit right after the select-list literals in lexical order.
        std::vector<Value*> select_list_slots;
        for (auto& item : plan.select.main->select_items) {
          sql::CollectExprLiterals(item.expr.get(), &select_list_slots);
        }
        plan.fetch_offset = select_list_slots.size();
        sql::CollectExprLiterals(plan.select.dep_fetch->where.get(),
                                 &plan.fetch_slots);
        plan.cacheable = SlotsMatch(plan.fetch_slots, params, plan.fetch_offset);
      }
      return plan;
    }

    case sql::StatementKind::kUpdate: {
      IRDB_ASSIGN_OR_RETURN(plan.dml, rewriter.RewriteUpdate(stmt, 0));
      // The rewrite appended `trid = curTrID` as the final assignment —
      // between the client's SET literals and the WHERE literals — so the
      // slot list is assembled around it.
      IRDB_CHECK(!plan.dml->assignments.empty());
      for (size_t i = 0; i + 1 < plan.dml->assignments.size(); ++i) {
        sql::CollectExprLiterals(plan.dml->assignments[i].second.get(),
                                 &plan.slots);
      }
      sql::Expr* trid = plan.dml->assignments.back().second.get();
      IRDB_CHECK(trid->kind == sql::ExprKind::kLiteral);
      plan.trid_slots.push_back(&trid->literal);
      sql::CollectExprLiterals(plan.dml->where.get(), &plan.slots);
      plan.cacheable =
          plan.slots.size() == params.size() && SlotsMatch(plan.slots, params, 0);
      return plan;
    }

    case sql::StatementKind::kInsert: {
      IRDB_ASSIGN_OR_RETURN(plan.dml, rewriter.RewriteInsert(stmt, 0));
      // Each VALUES row gained a trailing curTrID literal.
      for (auto& row : plan.dml->insert_rows) {
        IRDB_CHECK(!row.empty());
        for (size_t i = 0; i + 1 < row.size(); ++i) {
          sql::CollectExprLiterals(row[i].get(), &plan.slots);
        }
        sql::Expr* trid = row.back().get();
        IRDB_CHECK(trid->kind == sql::ExprKind::kLiteral);
        plan.trid_slots.push_back(&trid->literal);
      }
      plan.cacheable =
          plan.slots.size() == params.size() && SlotsMatch(plan.slots, params, 0);
      return plan;
    }

    case sql::StatementKind::kDelete: {
      plan.dml = stmt.Clone();
      sql::CollectStatementLiterals(plan.dml.get(), &plan.slots);
      plan.cacheable =
          plan.slots.size() == params.size() && SlotsMatch(plan.slots, params, 0);
      return plan;
    }

    default:
      // DDL never enters the cache (it invalidates it instead).
      return plan;
  }
}

CachedPlan* PlanCache::Lookup(const std::string& key) {
  auto it = index_.find(std::string_view(key));
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &lru_.front().second;
}

CachedPlan* PlanCache::Insert(std::string key, CachedPlan plan) {
  auto it = index_.find(std::string_view(key));
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    lru_.front().second = std::move(plan);
    return &lru_.front().second;
  }
  while (lru_.size() >= capacity_) {
    index_.erase(std::string_view(lru_.back().first));
    lru_.pop_back();
  }
  lru_.emplace_front(std::move(key), std::move(plan));
  index_.emplace(std::string_view(lru_.front().first), lru_.begin());
  return &lru_.front().second;
}

void PlanCache::Clear() {
  index_.clear();
  lru_.clear();
}

}  // namespace irdb::proxy
