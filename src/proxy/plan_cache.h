// PlanCache — LRU cache of per-statement-shape execution plans.
//
// Keyed by the shape key from sql::FingerprintStatement, each entry holds
// the parsed AST template already rewritten per Table 1, plus pointers to
// the literal slots inside those templates. A repeated shape skips lex,
// parse, and rewrite entirely: the proxy re-binds the new literals into the
// cached template and forwards the AST to the backend.
//
// Shapes whose lexical literal order cannot be proven to match the AST's
// literal slots (the cache validates value-by-value at build time) are
// stored as negative entries, so the slow path is taken without repeating
// the validation.
//
// Invariants:
//   - Eviction is LRU over both positive and negative entries: a Lookup hit
//     moves the entry to the front, Insert evicts the back once `capacity`
//     is exceeded. Entry pointers returned by Lookup/Insert stay valid until
//     that entry is evicted or the cache is cleared — the proxy uses them
//     only within the current statement.
//   - Invalidation is all-or-nothing: any DDL through the owning connection
//     must Clear() the whole cache (TrackingProxy::InvalidateCache), because
//     a rewritten template bakes in schema facts (column lists, injected
//     trid columns) that DDL can silently change. There is no per-table
//     invalidation on purpose — DDL is rare, stale plans are unsound.
//   - The cache is owned by a single TrackingProxy connection and is not
//     thread-safe; cross-connection sharing would also leak one session's
//     schema view into another.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "proxy/rewriter.h"
#include "sql/ast.h"
#include "util/status.h"

namespace irdb::proxy {

struct CachedPlan {
  sql::StatementKind kind = sql::StatementKind::kSelect;
  // False = negative entry: this shape is known not to bind safely (e.g. a
  // literal the AST folds away); take the ordinary parse path.
  bool cacheable = false;

  // kSelect: pre-rewritten Table-1 templates.
  RewrittenSelect select;
  // kInsert/kUpdate: rewritten template (trid slots below re-stamped per
  // execution). kDelete/txn control: the parsed statement, forwarded as-is.
  sql::StatementPtr dml;

  // Client literal slots inside the templates, in fingerprint param order.
  std::vector<Value*> slots;
  // Aggregate-select dep-fetch WHERE slots; bound from
  // params[fetch_offset + i].
  std::vector<Value*> fetch_slots;
  size_t fetch_offset = 0;
  // Injected curTrID literals (UPDATE SET trid = ..., INSERT ... trid value),
  // stamped with the live transaction id before every execution.
  std::vector<Value*> trid_slots;
};

// Builds a plan for a parsed DML/SELECT/txn-control statement. `params` is
// the fingerprint's literal vector for the same text; the plan comes back
// with cacheable=false when the slot/param correspondence cannot be
// validated. Returns a Status only when the Table-1 rewrite itself fails
// (reserved column, unsupported positional insert, ...), in which case the
// caller reports the error through the ordinary path.
Result<CachedPlan> BuildPlan(const sql::Statement& stmt,
                             const SqlRewriter& rewriter,
                             const std::vector<Value>& params);

class PlanCache {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit PlanCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  // Returns the entry (promoted to most-recently-used) or nullptr. The
  // pointer stays valid until the entry is evicted or the cache cleared.
  CachedPlan* Lookup(const std::string& key);

  // Inserts (or replaces) the entry, evicting the least-recently-used one
  // when over capacity. Returns the stored entry.
  CachedPlan* Insert(std::string key, CachedPlan plan);

  void Clear();

  size_t size() const { return lru_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  using LruList = std::list<std::pair<std::string, CachedPlan>>;

  size_t capacity_;
  LruList lru_;  // front = most recently used
  // Views into the list nodes' keys; list nodes never move.
  std::unordered_map<std::string_view, LruList::iterator> index_;
};

}  // namespace irdb::proxy
