// TrackingProxy — the intercepting proxy of §3.2.
//
// Wraps a backend DbConnection (direct or remote), rewrites every client
// statement per Table 1, harvests read-set trid values from SELECT results,
// and records the accumulated dependency set into trans_dep at COMMIT
// (followed by an annot row when the client labelled the transaction).
//
// Proxy transaction IDs are allocated by the proxy itself (the DBMS's
// internal IDs are not portable); the repair engine correlates the two via
// the trans_dep insert that immediately precedes each commit in the log.
//
// Statements issued outside an explicit transaction are wrapped in
// BEGIN ... trans_dep-insert ... COMMIT so autocommit clients are tracked too.
#pragma once

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "proxy/rewriter.h"
#include "wire/connection.h"

namespace irdb::proxy {

class TxnIdAllocator {
 public:
  explicit TxnIdAllocator(int64_t first = 1) : next_(first) {}
  int64_t Next() { return next_.fetch_add(1, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> next_;
};

struct ProxyStats {
  int64_t client_statements = 0;
  int64_t backend_statements = 0;  // includes dep fetches, trans_dep inserts
  int64_t dep_fetches = 0;
  int64_t trans_dep_inserts = 0;
  int64_t deps_recorded = 0;
};

// A dependency observed at run time: this transaction read a row of `table`
// last written by proxy transaction `writer_trid`.
using DepEntry = std::pair<std::string, int64_t>;  // (lower-cased table, trid)

class TrackingProxy : public DbConnection {
 public:
  TrackingProxy(DbConnection* backend, TxnIdAllocator* alloc,
                FlavorTraits traits)
      : backend_(backend), alloc_(alloc), rewriter_(std::move(traits)) {}

  Result<ResultSet> Execute(std::string_view sql) override;

  void SetAnnotation(std::string_view label) override {
    annotation_ = std::string(label);
  }

  std::string Describe() const override {
    return "tracking-proxy(" + backend_->Describe() + ")";
  }

  // Proxy transaction ID of the open transaction (0 when none).
  int64_t current_txn_id() const { return in_txn_ ? cur_trid_ : 0; }

  const ProxyStats& stats() const { return stats_; }
  const std::set<DepEntry>& pending_deps() const { return deps_; }

  // Creates the tracking side tables (trans_dep, annot) if absent. Run once
  // per database, through any proxy connection so they too get trid/rid
  // columns and are repairable like ordinary tables.
  Status EnsureTrackingTables();

 private:
  Result<ResultSet> Forward(const sql::Statement& stmt);
  Result<ResultSet> ExecuteTracked(const sql::Statement& stmt);
  Result<ResultSet> HandleSelect(const sql::Statement& stmt);
  Status HandleBegin();
  Result<ResultSet> HandleCommit();

  // Writes the dependency set and annotation rows, then leaves txn state.
  Status EmitCommitMetadata();

  void CollectDeps(const ResultSet& rs, size_t first_col, size_t count,
                   const std::vector<std::string>& source_tables);

  DbConnection* backend_;
  TxnIdAllocator* alloc_;
  SqlRewriter rewriter_;

  bool in_txn_ = false;
  int64_t cur_trid_ = 0;
  std::set<DepEntry> deps_;
  std::string annotation_;
  ProxyStats stats_;
};

// Renders / parses the dep_tr_ids payload ("table:id table:id ...").
std::string EncodeDepTokens(const std::set<DepEntry>& deps);
Result<std::vector<DepEntry>> ParseDepTokens(std::string_view payload);

}  // namespace irdb::proxy
