// TrackingProxy — the intercepting proxy of §3.2.
//
// Wraps a backend DbConnection (direct or remote), rewrites every client
// statement per Table 1, harvests read-set trid values from SELECT results,
// and records the accumulated dependency set into trans_dep at COMMIT
// (followed by an annot row when the client labelled the transaction).
//
// Proxy transaction IDs are allocated by the proxy itself (the DBMS's
// internal IDs are not portable); the repair engine correlates the two via
// the trans_dep insert that immediately precedes each commit in the log.
//
// Statements issued outside an explicit transaction are wrapped in
// BEGIN ... trans_dep-insert ... COMMIT so autocommit clients are tracked too.
//
// Hot path: client SQL is fingerprinted into a statement shape
// (sql/fingerprint.h) and looked up in a per-connection plan cache
// (proxy/plan_cache.h). A hit skips lex+parse+rewrite — the new literals are
// bound into the cached rewritten AST, which is handed to the backend
// directly (DbConnection's AST overload), skipping print + engine re-parse
// as well. Any DDL through this connection clears the cache. Disable the
// whole fast path with set_fast_path_enabled(false) to get the original
// parse -> rewrite -> print -> re-parse pipeline (the benches' cold
// baseline).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "proxy/plan_cache.h"
#include "proxy/rewriter.h"
#include "sql/fingerprint.h"
#include "wire/client.h"
#include "wire/connection.h"

namespace irdb::proxy {

// Allocates proxy transaction IDs. `stride` partitions the trid space for
// sharded deployments (DESIGN.md §5j): shard s of an N-shard cluster uses
// TxnIdAllocator(s + 1, N), so ids are unique cluster-wide and a trid's
// owning shard is recoverable as (trid - 1) % N. The default (1, 1) is the
// single-engine allocator unchanged.
class TxnIdAllocator {
 public:
  explicit TxnIdAllocator(int64_t first = 1, int64_t stride = 1)
      : next_(first), stride_(stride) {}
  int64_t Next() { return next_.fetch_add(stride_, std::memory_order_relaxed); }
  int64_t stride() const { return stride_; }

 private:
  std::atomic<int64_t> next_;
  int64_t stride_;
};

struct ProxyStats {
  int64_t client_statements = 0;
  int64_t backend_statements = 0;  // includes dep fetches, trans_dep inserts
  int64_t dep_fetches = 0;
  int64_t trans_dep_inserts = 0;
  int64_t deps_recorded = 0;
  // Plan-cache observability.
  int64_t cache_hits = 0;           // shape found, cached plan executed
  int64_t cache_misses = 0;         // shape not cached yet
  int64_t cache_invalidations = 0;  // DDL flushed the cache
  int64_t cache_bypasses = 0;       // shape known / found to be uncacheable
  // Fault-hardening observability.
  int64_t retries = 0;              // backend calls re-attempted after
                                    // retryable failures
  int64_t deadlock_retries = 0;     // autocommit wraps re-run after the
                                    // backend aborted them for a deadlock
  int64_t injected_faults_hit = 0;  // failpoint-injected errors observed
  int64_t degraded_commits = 0;     // commits that went through untracked
  int64_t tracking_gap_txns = 0;    // txn ids quarantined in tracking_gaps
  int64_t quarantine_rejects = 0;   // backend statements turned away by the
                                    // online-repair quarantine gate

  void Add(const ProxyStats& o) {
    client_statements += o.client_statements;
    backend_statements += o.backend_statements;
    dep_fetches += o.dep_fetches;
    trans_dep_inserts += o.trans_dep_inserts;
    deps_recorded += o.deps_recorded;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    cache_invalidations += o.cache_invalidations;
    cache_bypasses += o.cache_bypasses;
    retries += o.retries;
    deadlock_retries += o.deadlock_retries;
    injected_faults_hit += o.injected_faults_hit;
    degraded_commits += o.degraded_commits;
    tracking_gap_txns += o.tracking_gap_txns;
    quarantine_rejects += o.quarantine_rejects;
  }
};

// What to do when the dependency metadata cannot be recorded at COMMIT even
// after retries (the tracked-commit protocol, DESIGN.md §5b).
enum class DegradedMode {
  // Abort the transaction: no work is ever committed untracked (default).
  kAbort,
  // Commit anyway, but first quarantine the txn id in the tracking_gaps
  // side table; the repair analyzer treats such txns as conservatively
  // dependent on everything earlier.
  kCommitUntracked,
};

// A dependency observed at run time: this transaction read a row of `table`
// last written by proxy transaction `writer_trid`.
using DepEntry = std::pair<std::string, int64_t>;  // (lower-cased table, trid)

class TrackingProxy : public DbConnection {
 public:
  TrackingProxy(DbConnection* backend, TxnIdAllocator* alloc,
                FlavorTraits traits)
      : backend_(backend), alloc_(alloc), rewriter_(std::move(traits)) {}

  Result<ResultSet> Execute(std::string_view sql) override;

  // Pre-parsed client statement; skips the plan cache.
  Result<ResultSet> Execute(const sql::Statement& stmt) override;

  void SetAnnotation(std::string_view label) override {
    annotation_ = std::string(label);
  }

  std::string Describe() const override {
    return "tracking-proxy(" + backend_->Describe() + ")";
  }

  // Proxy transaction ID of the open transaction (0 when none).
  int64_t current_txn_id() const { return in_txn_ ? cur_trid_ : 0; }

  const ProxyStats& stats() const { return stats_; }

  // Dependencies accumulated so far in the open transaction, sorted and
  // deduplicated (the working representation is an unsorted flat vector;
  // it is only canonicalized at COMMIT — and here, for inspection).
  std::vector<DepEntry> pending_deps() const;

  // Injects a dependency into the open transaction, as if a read of `table`
  // had observed a row last written by `writer_trid`. The shard router uses
  // this at two-phase commit to merge every participant branch's dependency
  // set into every branch's trans_dep row — including the `cross_shard`
  // sibling links that make the branches of one global transaction mutually
  // dependent (DESIGN.md §5j). No-op outside a transaction.
  void AddDependency(std::string table, int64_t writer_trid) {
    if (!in_txn_) return;
    deps_.emplace_back(std::move(table), writer_trid);
  }

  // Plan cache / AST fast-path switch (default on). Turning it off restores
  // the per-statement parse -> rewrite -> print -> engine re-parse pipeline.
  void set_fast_path_enabled(bool on) { fast_path_ = on; }
  bool fast_path_enabled() const { return fast_path_; }
  const PlanCache& plan_cache() const { return cache_; }

  // Creates the tracking side tables (trans_dep, annot, tracking_gaps) if
  // absent. Run once per database, through any proxy connection so they too
  // get trid/rid columns and are repairable like ordinary tables.
  Status EnsureTrackingTables();

  // Tracked-commit degradation policy (default: abort on metadata loss).
  void set_degraded_mode(DegradedMode mode) { degraded_mode_ = mode; }
  DegradedMode degraded_mode() const { return degraded_mode_; }

  // Bounded retry of backend calls that fail with a retryable status.
  void set_retry_policy(RetryPolicy policy) { retry_policy_ = policy; }
  // Clock charged for retry backoff waits (nullptr = uncharged).
  void set_retry_clock(VirtualClock* clock) { retry_clock_ = clock; }

 private:
  Result<ResultSet> Forward(const sql::Statement& stmt);
  // Autocommit wrap: BEGIN, `body`, COMMIT. When the backend's lock manager
  // aborts the wrap as a deadlock victim, nothing of it survives (the engine
  // rolled the whole transaction back), so the wrap is re-run from BEGIN —
  // bounded by retry_policy_.max_attempts to cap retry storms.
  Result<ResultSet> RunAutocommitWrap(
      const std::function<Result<ResultSet>()>& body);
  // Best-effort ROLLBACK of the open backend transaction + local state reset.
  void AbortOpenTxn();
  // Quarantines cur_trid_ in the tracking_gaps side table.
  Status RecordTrackingGap();
  // Full path: dispatch a freshly parsed statement. When `shape` is non-null
  // (fast path, cache miss) a plan is built and cached along the way.
  Result<ResultSet> DispatchStatement(const sql::Statement& stmt,
                                      const sql::StatementShape* shape);
  // Fast path: bind `params` into the cached templates and execute.
  Result<ResultSet> ExecutePlan(CachedPlan& plan,
                                const std::vector<Value>& params);
  Result<ResultSet> ExecuteTracked(const sql::Statement& stmt);
  Result<ResultSet> ExecuteTrackedPlan(CachedPlan& plan);
  Result<ResultSet> HandleSelect(const sql::Statement& stmt);
  // Shared SELECT executor over pre-rewritten templates (cached or not).
  Result<ResultSet> RunRewrittenSelect(const RewrittenSelect& rw);
  Status HandleBegin();
  Result<ResultSet> HandleCommit();
  void InvalidateCache();
  void ResetTxnState();

  // Writes the dependency set and annotation rows, then leaves txn state.
  Status EmitCommitMetadata();

  void CollectDeps(const ResultSet& rs, size_t first_col, size_t count,
                   const std::vector<std::string>& source_tables);

  DbConnection* backend_;
  TxnIdAllocator* alloc_;
  SqlRewriter rewriter_;
  PlanCache cache_;
  bool fast_path_ = true;
  DegradedMode degraded_mode_ = DegradedMode::kAbort;
  RetryPolicy retry_policy_{/*max_attempts=*/3,
                            /*initial_backoff_seconds=*/1e-3,
                            /*backoff_multiplier=*/2.0};
  VirtualClock* retry_clock_ = nullptr;

  bool in_txn_ = false;
  int64_t cur_trid_ = 0;
  // Flat, possibly-duplicated dependency log; sorted + deduplicated at
  // COMMIT (and in pending_deps()). Cheaper than a node-based set on the
  // per-row hot path.
  std::vector<DepEntry> deps_;
  std::string annotation_;
  ProxyStats stats_;
};

// Renders / parses the dep_tr_ids payload ("table:id table:id ...").
// `deps` must be sorted and deduplicated.
std::string EncodeDepTokens(const std::vector<DepEntry>& deps);
Result<std::vector<DepEntry>> ParseDepTokens(std::string_view payload);

}  // namespace irdb::proxy
