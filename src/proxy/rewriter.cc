#include "proxy/rewriter.h"

#include "util/string_utils.h"

namespace irdb::proxy {

using sql::Statement;
using sql::StatementKind;
using sql::StatementPtr;

Result<RewrittenSelect> SqlRewriter::RewriteSelect(const Statement& stmt) const {
  IRDB_CHECK(stmt.kind == StatementKind::kSelect);
  RewrittenSelect out;

  bool aggregate = !stmt.group_by.empty();
  for (const sql::SelectItem& item : stmt.select_items) {
    if (!item.star && item.expr->ContainsAggregate()) aggregate = true;
  }

  for (const sql::TableRef& ref : stmt.from) {
    out.trid_source_tables.push_back(ref.name);
  }

  if (aggregate) {
    // Table 1, aggregate row: issue a separate read-set fetch
    //   SELECT t1.trid, ..., tk.trid FROM t1..tk WHERE c
    // then forward the aggregate query unchanged. (No GROUP BY on the fetch:
    // the read set is every row satisfying c.)
    auto fetch = sql::MakeStatement(StatementKind::kSelect);
    fetch->from = stmt.from;
    if (stmt.where) fetch->where = stmt.where->Clone();
    for (const sql::TableRef& ref : stmt.from) {
      sql::SelectItem item;
      item.expr = sql::MakeColumnRef(ref.effective_name(), kTridColumn);
      fetch->select_items.push_back(std::move(item));
    }
    out.dep_fetch = std::move(fetch);
    out.main = stmt.Clone();
    out.appended = 0;
    return out;
  }

  // Table 1, plain row: append t.trid for every FROM table.
  out.main = stmt.Clone();
  for (const sql::TableRef& ref : stmt.from) {
    sql::SelectItem item;
    item.expr = sql::MakeColumnRef(ref.effective_name(), kTridColumn);
    out.main->select_items.push_back(std::move(item));
    ++out.appended;
  }
  return out;
}

Result<StatementPtr> SqlRewriter::RewriteUpdate(const Statement& stmt,
                                                int64_t cur_trid) const {
  IRDB_CHECK(stmt.kind == StatementKind::kUpdate);
  for (const auto& [col, _] : stmt.assignments) {
    if (EqualsIgnoreCase(col, kTridColumn)) {
      return Status::InvalidArgument(
          "client statements may not assign the reserved trid column");
    }
  }
  StatementPtr out = stmt.Clone();
  out->assignments.emplace_back(kTridColumn,
                                sql::MakeLiteral(Value::Int(cur_trid)));
  return out;
}

Result<StatementPtr> SqlRewriter::RewriteInsert(const Statement& stmt,
                                                int64_t cur_trid) const {
  IRDB_CHECK(stmt.kind == StatementKind::kInsert);
  StatementPtr out = stmt.Clone();
  if (out->insert_columns.empty()) {
    if (NeedsIdentityInjection()) {
      return Status::InvalidArgument(
          "positional INSERT not supported under the " + traits_.name +
          " flavor: the injected identity column requires named columns");
    }
    // Positional values line up with the user columns; trid was appended as
    // the last column at CREATE time, so appending the value suffices.
  } else {
    for (const std::string& col : out->insert_columns) {
      if (EqualsIgnoreCase(col, kTridColumn)) {
        return Status::InvalidArgument(
            "client statements may not insert into the reserved trid column");
      }
    }
    out->insert_columns.push_back(kTridColumn);
  }
  for (auto& row : out->insert_rows) {
    row.push_back(sql::MakeLiteral(Value::Int(cur_trid)));
  }
  return out;
}

Result<StatementPtr> SqlRewriter::RewriteCreateTable(const Statement& stmt) const {
  IRDB_CHECK(stmt.kind == StatementKind::kCreateTable);
  for (const sql::ColumnDef& def : stmt.columns) {
    if (EqualsIgnoreCase(def.name, kTridColumn) ||
        (NeedsIdentityInjection() &&
         EqualsIgnoreCase(def.name, kSybaseRowIdColumn))) {
      return Status::InvalidArgument("column name " + def.name +
                                     " is reserved by the tracking proxy");
    }
  }
  StatementPtr out = stmt.Clone();
  sql::ColumnDef trid;
  trid.name = kTridColumn;
  trid.type = sql::ColumnTypeKind::kInt;
  out->columns.push_back(trid);
  if (NeedsIdentityInjection()) {
    sql::ColumnDef rid;
    rid.name = kSybaseRowIdColumn;
    rid.type = sql::ColumnTypeKind::kInt;
    rid.identity = true;
    out->columns.push_back(rid);
  }
  return out;
}

}  // namespace irdb::proxy
