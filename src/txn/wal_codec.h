// Durable byte encoding of the WAL, with per-record checksums.
//
// On-disk layout: a flat sequence of frames, one per LogRecord:
//
//   [u32 payload_len][u32 crc32(payload)][payload bytes]
//
// All integers are little-endian fixed width; strings are u32-length-prefixed.
// The checksum covers the payload only, so a torn write (power cut mid-frame)
// is detected either by a short final frame or by a CRC mismatch on the last
// frame. Decoding policy mirrors real WAL recovery:
//
//   - incomplete or checksum-failing FINAL frame  -> torn tail: truncate it
//     and recover from the intact prefix (the lost record belongs to a
//     transaction whose COMMIT never made it durable, so undo handles it);
//   - checksum mismatch on an INTERIOR frame      -> corruption, hard error
//     (truncating the middle of a log is never sound).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "txn/wal_log.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace irdb {

// CRC-32 (IEEE 802.3 polynomial, bit-reflected), table-driven.
uint32_t Crc32(std::string_view bytes);

// Appends one framed record to `out`.
void AppendWalFrame(const LogRecord& rec, std::string* out);

// Serializes the whole log. Failpoint "wal.serialize.torn": when triggered,
// tears the tail by dropping 1..(last frame size - 1) trailing bytes,
// simulating a crash mid-way through the final frame's write.
std::string SerializeWal(const WalLog& wal);

struct WalDecodeResult {
  std::vector<LogRecord> records;
  bool truncated_tail = false;  // a torn final frame was dropped
  int64_t dropped_bytes = 0;    // size of the dropped tail, in bytes
};

// Decodes frames back into records, applying the torn-tail policy above.
Result<WalDecodeResult> DecodeWal(std::string_view bytes);

// Segmented parallel decode: a cheap header-only pass walks the frame
// boundaries (the identical walk DecodeWal performs, so torn-tail
// classification cannot diverge), then the CRC checks and payload decodes —
// the expensive part — fan out across `pool` in contiguous frame segments
// stitched back in frame (= LSN) order. Returns exactly what DecodeWal
// returns on every input, including the error for interior corruption; with
// a null or single-threaded pool it simply delegates to DecodeWal.
Result<WalDecodeResult> DecodeWalParallel(std::string_view bytes,
                                          util::ThreadPool* pool);

}  // namespace irdb
