#include "txn/wal_codec.h"

#include <algorithm>
#include <array>

#include "obs/catalog.h"
#include "obs/journal.h"
#include "util/failpoint.h"

namespace irdb {

namespace {

// Both decoders report a detected torn tail here, so the counter and the
// journal agree regardless of which path found it.
void NoteTornTail(int64_t dropped_bytes) {
  obs::Count(obs::Metrics::Get().wal_torn_tails);
  obs::EventJournal::Default().Append(
      obs::event::kWalTornTail,
      {{"dropped_bytes", std::to_string(dropped_bytes)}});
}

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI32(int32_t v, std::string* out) {
  PutU32(static_cast<uint32_t>(v), out);
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutString(const std::string& s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

// Bounded little-endian reader over a payload slice.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > bytes_.size()) return false;
    *v = static_cast<uint8_t>(bytes_[pos_++]);
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > bytes_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool ReadI32(int32_t* v) {
    uint32_t u = 0;
    if (!ReadU32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > bytes_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool ReadString(std::string* s) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (pos_ + len > bytes_.size()) return false;
    s->assign(bytes_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

std::string EncodePayload(const LogRecord& rec) {
  std::string p;
  PutU64(static_cast<uint64_t>(rec.lsn), &p);
  PutU64(static_cast<uint64_t>(rec.txn_id), &p);
  PutU8(static_cast<uint8_t>(rec.op), &p);
  PutU8(rec.is_clr ? 1 : 0, &p);
  PutI32(rec.table_id, &p);
  PutI32(rec.page, &p);
  PutI32(rec.offset, &p);
  PutI32(rec.len, &p);
  PutString(rec.before_image, &p);
  PutString(rec.after_image, &p);
  PutString(rec.ddl_text, &p);
  PutU32(static_cast<uint32_t>(rec.diff.size()), &p);
  for (const ColumnDiff& d : rec.diff) {
    PutI32(d.column, &p);
    PutString(d.before, &p);
    PutString(d.after, &p);
  }
  return p;
}

Result<LogRecord> DecodePayload(std::string_view payload) {
  Reader r(payload);
  LogRecord rec;
  uint64_t lsn = 0, txn_id = 0;
  uint8_t op = 0, is_clr = 0;
  uint32_t diff_count = 0;
  bool ok = r.ReadU64(&lsn) && r.ReadU64(&txn_id) && r.ReadU8(&op) &&
            r.ReadU8(&is_clr) && r.ReadI32(&rec.table_id) &&
            r.ReadI32(&rec.page) && r.ReadI32(&rec.offset) &&
            r.ReadI32(&rec.len) && r.ReadString(&rec.before_image) &&
            r.ReadString(&rec.after_image) && r.ReadString(&rec.ddl_text) &&
            r.ReadU32(&diff_count);
  if (!ok || op > static_cast<uint8_t>(LogOp::kDdl)) {
    return Status::Internal("WAL payload malformed");
  }
  rec.lsn = static_cast<int64_t>(lsn);
  rec.txn_id = static_cast<int64_t>(txn_id);
  rec.op = static_cast<LogOp>(op);
  rec.is_clr = is_clr != 0;
  rec.diff.resize(diff_count);
  for (ColumnDiff& d : rec.diff) {
    if (!r.ReadI32(&d.column) || !r.ReadString(&d.before) ||
        !r.ReadString(&d.after)) {
      return Status::Internal("WAL payload malformed (diff)");
    }
  }
  if (!r.AtEnd()) return Status::Internal("WAL payload has trailing bytes");
  return rec;
}

}  // namespace

uint32_t Crc32(std::string_view bytes) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t c = 0xffffffffu;
  for (char ch : bytes) {
    c = kTable[(c ^ static_cast<uint8_t>(ch)) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void AppendWalFrame(const LogRecord& rec, std::string* out) {
  const std::string payload = EncodePayload(rec);
  PutU32(static_cast<uint32_t>(payload.size()), out);
  PutU32(Crc32(payload), out);
  out->append(payload);
}

std::string SerializeWal(const WalLog& wal) {
  std::string out;
  size_t last_frame_start = 0;
  for (const LogRecord& rec : wal.records()) {
    last_frame_start = out.size();
    AppendWalFrame(rec, &out);
  }
  if (!out.empty() && fail::Triggered("wal.serialize.torn")) {
    // Tear off 1..(last frame size - 1) bytes: the final frame's write was
    // interrupted. At least one byte of the frame survives, so the decoder
    // must detect it by length or checksum, never by absence.
    const size_t last_frame_size = out.size() - last_frame_start;
    if (last_frame_size > 1) {
      const size_t drop =
          1 + static_cast<size_t>(fail::Registry::Instance().NextRandom() %
                                  (last_frame_size - 1));
      out.resize(out.size() - drop);
    }
  }
  return out;
}

Result<WalDecodeResult> DecodeWal(std::string_view bytes) {
  WalDecodeResult result;
  size_t pos = 0;
  while (pos < bytes.size()) {
    const size_t remaining = bytes.size() - pos;
    uint32_t len = 0, crc = 0;
    if (remaining >= 8) {
      Reader header(bytes.substr(pos, 8));
      header.ReadU32(&len);
      header.ReadU32(&crc);
    }
    if (remaining < 8 || remaining < 8 + static_cast<size_t>(len)) {
      // Short final frame: torn tail.
      result.truncated_tail = true;
      result.dropped_bytes = static_cast<int64_t>(remaining);
      NoteTornTail(result.dropped_bytes);
      return result;
    }
    const std::string_view payload = bytes.substr(pos + 8, len);
    if (Crc32(payload) != crc) {
      if (pos + 8 + len == bytes.size()) {
        // Checksum-failing final frame: torn tail (partially overwritten).
        result.truncated_tail = true;
        result.dropped_bytes = static_cast<int64_t>(remaining);
        NoteTornTail(result.dropped_bytes);
        return result;
      }
      return Status::Internal(
          "WAL corruption: checksum mismatch on interior record " +
          std::to_string(result.records.size()));
    }
    IRDB_ASSIGN_OR_RETURN(LogRecord rec, DecodePayload(payload));
    result.records.push_back(std::move(rec));
    pos += 8 + len;
  }
  return result;
}

Result<WalDecodeResult> DecodeWalParallel(std::string_view bytes,
                                          util::ThreadPool* pool) {
  if (pool == nullptr || pool->lanes() <= 1) return DecodeWal(bytes);

  // Pass 1 — frame boundaries from the length headers only. This is the walk
  // DecodeWal performs, minus CRC and payload work, so the two agree on where
  // every frame starts and which bytes form the torn tail.
  struct Frame {
    size_t payload_pos;
    uint32_t len;
    uint32_t crc;
  };
  WalDecodeResult result;
  std::vector<Frame> frames;
  size_t pos = 0;
  while (pos < bytes.size()) {
    const size_t remaining = bytes.size() - pos;
    uint32_t len = 0, crc = 0;
    if (remaining >= 8) {
      Reader header(bytes.substr(pos, 8));
      header.ReadU32(&len);
      header.ReadU32(&crc);
    }
    if (remaining < 8 || remaining < 8 + static_cast<size_t>(len)) {
      result.truncated_tail = true;
      result.dropped_bytes = static_cast<int64_t>(remaining);
      NoteTornTail(result.dropped_bytes);
      break;
    }
    frames.push_back(Frame{pos + 8, len, crc});
    pos += 8 + len;
  }

  // Pass 2 — CRC + payload decode, fanned out over contiguous segments.
  // Each chunk owns its output slots and reports at most one error; the
  // lowest-index error wins, which is the one the serial decoder would have
  // hit first.
  result.records.resize(frames.size());
  const int nchunks =
      static_cast<int>(util::ThreadPool::SplitRange(
                           static_cast<int64_t>(frames.size()), pool->lanes())
                           .size());
  std::vector<Status> chunk_status(static_cast<size_t>(std::max(1, nchunks)),
                                   Status::Ok());
  std::vector<size_t> chunk_bad_frame(static_cast<size_t>(std::max(1, nchunks)),
                                      frames.size());
  pool->ParallelFor(
      static_cast<int64_t>(frames.size()),
      [&](int64_t begin, int64_t end, int chunk) {
        for (int64_t i = begin; i < end; ++i) {
          const Frame& f = frames[static_cast<size_t>(i)];
          const std::string_view payload = bytes.substr(f.payload_pos, f.len);
          if (Crc32(payload) != f.crc) {
            chunk_status[chunk] = Status::Internal(
                "WAL corruption: checksum mismatch on interior record " +
                std::to_string(i));
            chunk_bad_frame[chunk] = static_cast<size_t>(i);
            return;
          }
          auto rec = DecodePayload(payload);
          if (!rec.ok()) {
            chunk_status[chunk] = rec.status();
            chunk_bad_frame[chunk] = static_cast<size_t>(i);
            return;
          }
          result.records[static_cast<size_t>(i)] = std::move(rec).value();
        }
      });

  size_t first_bad = frames.size();
  Status first_status = Status::Ok();
  for (size_t c = 0; c < chunk_status.size(); ++c) {
    if (!chunk_status[c].ok() && chunk_bad_frame[c] < first_bad) {
      first_bad = chunk_bad_frame[c];
      first_status = chunk_status[c];
    }
  }
  if (first_bad < frames.size()) {
    // A checksum-failing FINAL frame is the torn tail, exactly as in the
    // serial policy; anything earlier (or a malformed payload) is corruption.
    const Frame& f = frames[first_bad];
    const bool is_last_frame = f.payload_pos + f.len == bytes.size() &&
                               first_bad + 1 == frames.size();
    const bool is_crc_failure = Crc32(bytes.substr(f.payload_pos, f.len)) != f.crc;
    if (is_last_frame && is_crc_failure && !result.truncated_tail) {
      result.records.resize(first_bad);
      result.truncated_tail = true;
      result.dropped_bytes =
          static_cast<int64_t>(bytes.size() - (f.payload_pos - 8));
      NoteTornTail(result.dropped_bytes);
      return result;
    }
    return first_status;
  }
  return result;
}

}  // namespace irdb
