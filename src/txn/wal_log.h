// Append-only write-ahead log.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/catalog.h"
#include "txn/log_record.h"
#include "util/status.h"

namespace irdb {

class WalLog {
 public:
  // Appends a record, assigning its LSN. Returns the LSN.
  int64_t Append(LogRecord rec) {
    obs::Count(obs::Metrics::Get().wal_appends);
    rec.lsn = static_cast<int64_t>(records_.size());
    records_.push_back(std::move(rec));
    return records_.back().lsn;
  }

  const std::vector<LogRecord>& records() const { return records_; }
  int64_t size() const { return static_cast<int64_t>(records_.size()); }

  const LogRecord& at(int64_t lsn) const {
    IRDB_CHECK(lsn >= 0 && lsn < size());
    return records_[static_cast<size_t>(lsn)];
  }

  // Total byte volume appended (for the I/O cost model).
  int64_t bytes_appended() const { return bytes_appended_; }
  void AccountBytes(int64_t n) { bytes_appended_ += n; }

 private:
  std::vector<LogRecord> records_;
  int64_t bytes_appended_ = 0;
};

}  // namespace irdb
