// Append-only write-ahead log.
//
// Appends are thread-safe (concurrent sessions interleave their records;
// every record carries its txn_id, which is how recovery and repair
// untangle them). The records()/at() read accessors return references into
// the underlying vector and are only safe on a quiesced log — recovery,
// repair, and the WAL codec all run after the workload has drained, which
// is the invariant the repo's harnesses already maintain.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/catalog.h"
#include "txn/log_record.h"
#include "util/status.h"

namespace irdb {

class WalLog {
 public:
  // Appends a record, assigning its LSN. Returns the LSN.
  int64_t Append(LogRecord rec) {
    obs::Count(obs::Metrics::Get().wal_appends);
    std::lock_guard<std::mutex> lk(mu_);
    rec.lsn = static_cast<int64_t>(records_.size());
    records_.push_back(std::move(rec));
    return records_.back().lsn;
  }

  const std::vector<LogRecord>& records() const { return records_; }
  int64_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return static_cast<int64_t>(records_.size());
  }

  const LogRecord& at(int64_t lsn) const {
    IRDB_CHECK(lsn >= 0 && lsn < size());
    return records_[static_cast<size_t>(lsn)];
  }

  // Total byte volume appended (for the I/O cost model).
  int64_t bytes_appended() const {
    std::lock_guard<std::mutex> lk(mu_);
    return bytes_appended_;
  }
  void AccountBytes(int64_t n) {
    std::lock_guard<std::mutex> lk(mu_);
    bytes_appended_ += n;
  }

 private:
  mutable std::mutex mu_;
  std::vector<LogRecord> records_;
  int64_t bytes_appended_ = 0;
};

}  // namespace irdb
