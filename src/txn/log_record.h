// WAL record format.
//
// Mirrors what the paper relies on (§3.3): per-row log entries carrying the
// operation type, the internal transaction ID, the table, the row's physical
// position (logical page number + byte offset within the page) at the time of
// the operation, and before/after images whose completeness is
// flavor-dependent:
//   - Postgres/Oracle flavors log complete before+after row images;
//   - the Sybase flavor logs only the changed column slots for UPDATE
//     ("MODIFY") records — full images for INSERT/DELETE.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace irdb {

enum class LogOp { kBegin, kInsert, kDelete, kUpdate, kCommit, kAbort, kDdl };

const char* LogOpName(LogOp op);

// One changed column slot of a diff-style (Sybase MODIFY) update record:
// the column's full encoded slot (null byte + payload) before and after.
struct ColumnDiff {
  int32_t column = -1;
  std::string before;
  std::string after;
};

struct LogRecord {
  int64_t lsn = 0;
  int64_t txn_id = 0;  // internal DBMS transaction id
  LogOp op = LogOp::kBegin;

  // Row operations only:
  int32_t table_id = -1;
  int32_t page = -1;
  int32_t offset = -1;  // byte offset of the row within the page at log time
  int32_t len = 0;      // encoded row length in bytes

  std::string before_image;  // full encoded row (empty in diff-style updates)
  std::string after_image;   // full encoded row (empty in diff-style updates)
  std::vector<ColumnDiff> diff;  // diff-style updates only

  // Compensation log record: written while physically undoing an aborted
  // transaction (invisible in the vendor log views — aborted transactions do
  // not appear there — but required for byte-exact WAL replay at recovery).
  bool is_clr = false;

  // kDdl records carry the statement text so recovery can rebuild the
  // catalog before replaying row operations.
  std::string ddl_text;

  bool IsRowOp() const {
    return op == LogOp::kInsert || op == LogOp::kDelete || op == LogOp::kUpdate;
  }

  // Approximate serialized size, used by the I/O cost model for the log-write
  // penalty (tracking inflates rows and adds trans_dep records, which is the
  // dominant overhead source in the paper's small-footprint experiments).
  int64_t ByteSize() const;
};

}  // namespace irdb
