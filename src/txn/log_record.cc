#include "txn/log_record.h"

namespace irdb {

const char* LogOpName(LogOp op) {
  switch (op) {
    case LogOp::kBegin: return "BEGIN";
    case LogOp::kInsert: return "INSERT";
    case LogOp::kDelete: return "DELETE";
    case LogOp::kUpdate: return "UPDATE";
    case LogOp::kCommit: return "COMMIT";
    case LogOp::kAbort: return "ABORT";
    case LogOp::kDdl: return "DDL";
  }
  return "?";
}

int64_t LogRecord::ByteSize() const {
  // Fixed header: lsn, txn id, op, table, page, offset, len.
  int64_t n = 8 + 8 + 1 + 4 + 4 + 4 + 4;
  n += static_cast<int64_t>(before_image.size());
  n += static_cast<int64_t>(after_image.size());
  n += static_cast<int64_t>(ddl_text.size());
  for (const ColumnDiff& d : diff) {
    n += 4 + static_cast<int64_t>(d.before.size() + d.after.size());
  }
  return n;
}

}  // namespace irdb
