#include "txn/stmt_journal.h"

namespace irdb {

void StmtJournal::Record(int64_t txn_id, StmtRecord rec) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_[txn_id].push_back(std::move(rec));
}

void StmtJournal::Seal(int64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(txn_id);
  if (it == pending_.end()) return;
  committed_[txn_id] = std::move(it->second);
  pending_.erase(it);
}

void StmtJournal::Discard(int64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.erase(txn_id);
}

bool StmtJournal::HasCommitted(int64_t txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_.count(txn_id) > 0;
}

std::vector<StmtRecord> StmtJournal::Committed(int64_t txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = committed_.find(txn_id);
  return it == committed_.end() ? std::vector<StmtRecord>{} : it->second;
}

int64_t StmtJournal::committed_txns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(committed_.size());
}

int64_t StmtJournal::committed_stmts() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t n = 0;
  for (const auto& [id, stmts] : committed_) {
    (void)id;
    n += static_cast<int64_t>(stmts.size());
  }
  return n;
}

}  // namespace irdb
