// StmtJournal — per-transaction statement text, the replay side of the log.
//
// The WAL records *physical* row images (enough to undo), but reenactment
// repair (DESIGN.md §5i) needs the *logical* statements so innocent
// dependents of an intrusion can be re-executed against the corrected state
// instead of being cascade-undone. The engine appends every successful
// DML/SELECT of a transaction here (post-rewrite text, so tracked
// transactions replay their trid stamps and commit metadata too), seals the
// buffer at COMMIT, and discards it at ROLLBACK — the journal only ever
// holds statements of committed transactions, keyed by the engine's
// internal transaction id.
//
// Each record carries a result fingerprint (row count for SELECT, affected
// count for DML). Replay compares its own results against the fingerprint:
// a mismatch means the transaction observed the intrusion in a way that
// value-level recomputation cannot absorb, and it is demoted to undo.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace irdb {

struct StmtRecord {
  std::string text;          // statement as executed (post-proxy-rewrite)
  bool is_select = false;
  int64_t rows_returned = 0;  // SELECT fingerprint
  int64_t rows_affected = 0;  // DML fingerprint
};

class StmtJournal {
 public:
  // Appends one successfully executed statement to the open transaction's
  // pending buffer.
  void Record(int64_t txn_id, StmtRecord rec);

  // COMMIT: the pending buffer becomes the transaction's committed entry.
  // A transaction with no recorded statements (pure DDL, txn control only)
  // leaves no entry.
  void Seal(int64_t txn_id);

  // ROLLBACK (or abort): the pending buffer is dropped.
  void Discard(int64_t txn_id);

  bool HasCommitted(int64_t txn_id) const;

  // Committed statements in execution order; empty when absent.
  std::vector<StmtRecord> Committed(int64_t txn_id) const;

  int64_t committed_txns() const;
  int64_t committed_stmts() const;

 private:
  mutable std::mutex mu_;
  std::map<int64_t, std::vector<StmtRecord>> pending_;
  std::map<int64_t, std::vector<StmtRecord>> committed_;
};

}  // namespace irdb
