#include "storage/bptree.h"

#include <algorithm>
#include <cstring>

#include "util/status.h"

namespace irdb {

namespace {

// Fan-out: split a node when it exceeds this many keys. 64 keeps the tree
// shallow (1e6 entries ≈ 4 levels) while node-local binary searches stay in
// one or two cache lines of string headers.
constexpr size_t kMaxKeys = 64;

}  // namespace

struct BPTree::Node {
  bool leaf = true;
  // Leaf: entry keys (duplicates allowed), parallel to `values`.
  // Internal: separators; keys[i] is a lower bound of children[i + 1].
  std::vector<std::string> keys;
  std::vector<uint64_t> values;                 // leaf only
  std::vector<std::unique_ptr<Node>> children;  // internal only
  Node* next = nullptr;                         // leaf chain
};

BPTree::BPTree() = default;
BPTree::~BPTree() = default;

BPTree::Node* BPTree::DescendToLeaf(std::string_view key) const {
  Node* n = root_.get();
  if (n == nullptr) return nullptr;
  while (!n->leaf) {
    // First separator >= key; everything strictly below key lives left of
    // that child, so descend just left of it to catch duplicates/stale
    // separators (the leaf chain continues the scan rightward if needed).
    size_t i = static_cast<size_t>(
        std::lower_bound(n->keys.begin(), n->keys.end(), key) -
        n->keys.begin());
    n = n->children[i].get();
  }
  return n;
}

void BPTree::Insert(std::string_view key, uint64_t value) {
  if (root_ == nullptr) {
    root_ = std::make_unique<Node>();
    rightmost_ = root_.get();
    height_ = 1;
  }
  // Sorted-load fast path: a key >= everything in the tree descends along
  // the rightmost spine with no comparisons.
  const bool append = size_ == 0 || key >= max_key_;

  std::vector<std::pair<Node*, size_t>> path;  // (node, chosen child idx)
  Node* n = root_.get();
  while (!n->leaf) {
    size_t i;
    if (append) {
      i = n->children.size() - 1;
    } else {
      // upper_bound: equal keys insert to the right of existing ones.
      i = static_cast<size_t>(
          std::upper_bound(n->keys.begin(), n->keys.end(), key) -
          n->keys.begin());
    }
    path.emplace_back(n, i);
    n = n->children[i].get();
  }
  size_t pos = append ? n->keys.size()
                      : static_cast<size_t>(std::upper_bound(n->keys.begin(),
                                                             n->keys.end(), key) -
                                            n->keys.begin());
  n->keys.insert(n->keys.begin() + static_cast<ptrdiff_t>(pos),
                 std::string(key));
  n->values.insert(n->values.begin() + static_cast<ptrdiff_t>(pos), value);
  ++size_;
  if (append) max_key_.assign(key.data(), key.size());

  // Split upward while overfull.
  while (n->keys.size() > kMaxKeys) {
    auto right = std::make_unique<Node>();
    right->leaf = n->leaf;
    const size_t mid = n->keys.size() / 2;
    std::string separator;
    if (n->leaf) {
      right->keys.assign(std::make_move_iterator(n->keys.begin() + mid),
                         std::make_move_iterator(n->keys.end()));
      right->values.assign(n->values.begin() + mid, n->values.end());
      n->keys.resize(mid);
      n->values.resize(mid);
      right->next = n->next;
      n->next = right.get();
      separator = right->keys.front();
      if (rightmost_ == n) rightmost_ = right.get();
    } else {
      // Middle separator moves up; right child takes everything after it.
      separator = std::move(n->keys[mid]);
      right->keys.assign(std::make_move_iterator(n->keys.begin() + mid + 1),
                         std::make_move_iterator(n->keys.end()));
      right->children.assign(
          std::make_move_iterator(n->children.begin() + mid + 1),
          std::make_move_iterator(n->children.end()));
      n->keys.resize(mid);
      n->children.resize(mid + 1);
    }
    if (path.empty()) {
      auto new_root = std::make_unique<Node>();
      new_root->leaf = false;
      new_root->keys.push_back(std::move(separator));
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(right));
      root_ = std::move(new_root);
      ++height_;
      break;
    }
    auto [parent, idx] = path.back();
    path.pop_back();
    parent->keys.insert(parent->keys.begin() + static_cast<ptrdiff_t>(idx),
                        std::move(separator));
    parent->children.insert(
        parent->children.begin() + static_cast<ptrdiff_t>(idx) + 1,
        std::move(right));
    n = parent;
  }
}

bool BPTree::Erase(std::string_view key, uint64_t value) {
  Node* n = DescendToLeaf(key);
  while (n != nullptr) {
    size_t i = static_cast<size_t>(
        std::lower_bound(n->keys.begin(), n->keys.end(), key) -
        n->keys.begin());
    for (; i < n->keys.size(); ++i) {
      if (n->keys[i] != key) return false;  // past the duplicates: absent
      if (n->values[i] == value) {
        n->keys.erase(n->keys.begin() + static_cast<ptrdiff_t>(i));
        n->values.erase(n->values.begin() + static_cast<ptrdiff_t>(i));
        --size_;
        return true;
      }
    }
    n = n->next;  // duplicates may continue in the next leaf
  }
  return false;
}

void BPTree::ScanFrom(
    std::string_view lower,
    const std::function<bool(std::string_view, uint64_t)>& fn) const {
  const Node* n = DescendToLeaf(lower);
  if (n == nullptr) return;
  size_t i = static_cast<size_t>(
      std::lower_bound(n->keys.begin(), n->keys.end(), lower) -
      n->keys.begin());
  while (n != nullptr) {
    for (; i < n->keys.size(); ++i) {
      if (!fn(n->keys[i], n->values[i])) return;
    }
    n = n->next;
    i = 0;
  }
}

namespace {
bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         std::memcmp(s.data(), prefix.data(), prefix.size()) == 0;
}
}  // namespace

void BPTree::ScanRange(std::string_view lower, std::string_view upper_prefix,
                       std::vector<uint64_t>* out) const {
  ScanFrom(lower, [&](std::string_view key, uint64_t value) {
    if (key > upper_prefix && !StartsWith(key, upper_prefix)) return false;
    out->push_back(value);
    return true;
  });
}

void BPTree::ScanPrefix(std::string_view prefix,
                        std::vector<uint64_t>* out) const {
  ScanRange(prefix, prefix, out);
}

void BPTree::Lookup(std::string_view key, std::vector<uint64_t>* out) const {
  ScanFrom(key, [&](std::string_view k, uint64_t value) {
    if (k != key) return false;
    out->push_back(value);
    return true;
  });
}

bool BPTree::LookupFirst(std::string_view key, uint64_t* out) const {
  bool found = false;
  ScanFrom(key, [&](std::string_view k, uint64_t value) {
    if (k == key) {
      *out = value;
      found = true;
    }
    return false;
  });
  return found;
}

// --- key encoding -----------------------------------------------------------

void AppendEncodedKeyValue(const Value& v, std::string* out) {
  if (v.is_null()) {
    out->push_back('\x00');
    return;
  }
  out->push_back('\x01');
  if (v.is_int()) {
    // Flip the sign bit: negatives order below positives in unsigned bytes.
    uint64_t u = static_cast<uint64_t>(v.as_int()) ^ (uint64_t{1} << 63);
    for (int i = 7; i >= 0; --i) {
      out->push_back(static_cast<char>((u >> (i * 8)) & 0xff));
    }
    return;
  }
  if (v.is_double()) {
    double d = v.as_double();
    if (d == 0.0) d = 0.0;  // -0.0 == 0.0 must encode identically
    uint64_t u;
    std::memcpy(&u, &d, sizeof(u));
    // IEEE total-order transform: negative doubles flip entirely (so larger
    // magnitudes order first), non-negative flip only the sign bit.
    if (u & (uint64_t{1} << 63)) {
      u = ~u;
    } else {
      u ^= uint64_t{1} << 63;
    }
    for (int i = 7; i >= 0; --i) {
      out->push_back(static_cast<char>((u >> (i * 8)) & 0xff));
    }
    return;
  }
  // String: escape NUL, then a terminator ordering below every escape.
  for (char c : v.as_string()) {
    out->push_back(c);
    if (c == '\x00') out->push_back('\xff');
  }
  out->push_back('\x00');
  out->push_back('\x01');
}

std::string EncodeKey(const std::vector<Value>& values) {
  std::string out;
  out.reserve(values.size() * 10);
  for (const Value& v : values) AppendEncodedKeyValue(v, &out);
  return out;
}

}  // namespace irdb
