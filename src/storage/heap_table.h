// HeapTable: a table's rows stored across fixed-size pages.
//
// Provides physical addressing (page number, slot index / byte offset) used
// by the WAL and the per-flavor log readers, plus scan/update/delete
// primitives for the executor.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "storage/page.h"
#include "storage/row_codec.h"
#include "storage/schema.h"
#include "storage/table_index.h"
#include "util/status.h"

namespace irdb {

class HeapTable {
 public:
  HeapTable(std::string name, Schema schema, int page_size = kDefaultPageSize);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const RowCodec& codec() const { return codec_; }
  int page_size() const { return page_size_; }

  int64_t row_count() const { return row_count_; }
  int page_count() const { return static_cast<int>(pages_.size()); }

  // Inserts an encoded row; returns where it landed.
  RowLoc Insert(std::string_view row_bytes);

  // Reads the encoded row at `loc`.
  std::string_view ReadAt(RowLoc loc) const;

  // Overwrites the row at `loc` in place.
  void UpdateAt(RowLoc loc, std::string_view row_bytes);

  // Deletes the row at `loc` (rows after it in the page shift down a slot).
  void DeleteAt(RowLoc loc);

  // Byte offset of a slot within its page.
  int OffsetOf(RowLoc loc) const { return loc.slot * schema_.row_size(); }

  // Visits every row; the callback may not mutate the table.
  void Scan(const std::function<void(RowLoc, std::string_view)>& fn) const;

  // Raw page access for the `dbcc page` emulation. Returns nullptr when the
  // page number is out of range.
  const Page* GetPage(int page_no) const;

  // Monotonic counters owned by the table.
  int64_t NextRowId() { return next_rowid_++; }
  int64_t NextIdentity() { return next_identity_++; }
  int64_t PeekNextRowId() const { return next_rowid_; }

  // Raises the counters to at least the given values (WAL recovery replays
  // rows whose ids were assigned by the pre-crash instance).
  void BumpCounters(int64_t rowid_floor, int64_t identity_floor) {
    if (rowid_floor > next_rowid_) next_rowid_ = rowid_floor;
    if (identity_floor > next_identity_) next_identity_ = identity_floor;
  }

  // Installs the primary-key index (call before any rows are inserted).
  void SetPrimaryIndex(std::vector<int> key_columns) {
    IRDB_CHECK_MSG(row_count_ == 0, "index must be installed on empty table");
    index_ = std::make_unique<TableIndex>(std::move(key_columns));
  }
  const TableIndex* index() const { return index_.get(); }

  // Statement-duration physical latch, owned here so it shares the table's
  // lifetime: the engine takes it shared for reads and exclusive for any
  // mutation (page vectors, free lists, counters, and the index are not
  // fine-grained thread-safe). Distinct from the transaction-duration 2PL
  // locks in src/concurrency — the engine acquires those first and never
  // blocks on a lock while holding a latch, so latches cannot deadlock.
  std::shared_mutex& latch() const { return latch_; }

 private:
  // Key column values of an encoded row, in index order.
  std::vector<Value> IndexKeyOf(std::string_view row_bytes) const;
  std::string name_;
  Schema schema_;
  RowCodec codec_;
  int page_size_;
  int64_t row_count_ = 0;
  int64_t next_rowid_ = 1;
  int64_t next_identity_ = 1;
  std::vector<std::unique_ptr<Page>> pages_;
  // Pages that still have room (kept sorted-ish; lazily cleaned).
  std::vector<int> free_pages_;
  std::unique_ptr<TableIndex> index_;
  mutable std::shared_mutex latch_;
};

}  // namespace irdb
