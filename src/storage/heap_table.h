// HeapTable: a table's rows stored across fixed-size pages.
//
// Provides physical addressing (page number, slot index / byte offset) used
// by the WAL and the per-flavor log readers, plus scan/update/delete
// primitives for the executor. Deletes tombstone their slot (storage/page.h)
// so RowLocs are stable; insert placement — lowest page with space, lowest
// dead slot within it — is a deterministic function of table state, which
// WAL redo relies on. Pages are pinned through the buffer pool (when one is
// attached) so residency is bounded and observable.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/row_codec.h"
#include "storage/schema.h"
#include "storage/table_index.h"
#include "util/status.h"

namespace irdb {

class HeapTable {
 public:
  HeapTable(std::string name, Schema schema, int page_size = kDefaultPageSize,
            BufferPool* pool = nullptr);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const RowCodec& codec() const { return codec_; }
  int page_size() const { return page_size_; }

  int64_t row_count() const { return row_count_; }
  int page_count() const { return static_cast<int>(pages_.size()); }

  // Inserts an encoded row; returns where it landed.
  RowLoc Insert(std::string_view row_bytes);

  // Reads the encoded row at `loc`.
  std::string_view ReadAt(RowLoc loc) const;

  // Overwrites the row at `loc` in place.
  void UpdateAt(RowLoc loc, std::string_view row_bytes);

  // Tombstones the row at `loc`; no other row moves.
  void DeleteAt(RowLoc loc);

  // Byte offset of a slot within its page.
  int OffsetOf(RowLoc loc) const { return loc.slot * schema_.row_size(); }

  // Visits every live row; the callback may not mutate the table.
  void Scan(const std::function<void(RowLoc, std::string_view)>& fn) const;

  // Raw page access for the `dbcc page` emulation. Returns nullptr when the
  // page number is out of range.
  const Page* GetPage(int page_no) const;

  // Monotonic counters owned by the table.
  int64_t NextRowId() { return next_rowid_++; }
  int64_t NextIdentity() { return next_identity_++; }
  int64_t PeekNextRowId() const { return next_rowid_; }

  // Raises the counters to at least the given values (WAL recovery replays
  // rows whose ids were assigned by the pre-crash instance).
  void BumpCounters(int64_t rowid_floor, int64_t identity_floor) {
    if (rowid_floor > next_rowid_) next_rowid_ = rowid_floor;
    if (identity_floor > next_identity_) next_identity_ = identity_floor;
  }

  // Installs the primary-key index (call before any rows are inserted).
  void SetPrimaryIndex(std::vector<int> key_columns) {
    IRDB_CHECK_MSG(row_count_ == 0, "index must be installed on empty table");
    index_ = std::make_unique<TableIndex>(std::move(key_columns));
  }
  const TableIndex* index() const { return index_.get(); }

  // CREATE INDEX: builds a named secondary index, backfilling existing rows.
  // Fails if the name is taken (case-insensitive).
  Status AddSecondaryIndex(const std::string& name,
                           std::vector<int> key_columns);
  // DROP INDEX; false when no such index exists.
  bool DropSecondaryIndex(const std::string& name);
  const TableIndex* FindSecondaryIndex(const std::string& name) const;
  const std::vector<std::unique_ptr<TableIndex>>& secondary_indexes() const {
    return secondary_indexes_;
  }

  // Buffer pool attached at construction (may be null).
  BufferPool* buffer_pool() const { return pool_; }

  // Statement-duration physical latch, owned here so it shares the table's
  // lifetime: the engine takes it shared for reads and exclusive for any
  // mutation (page vectors, free lists, counters, and the indexes are not
  // fine-grained thread-safe). Distinct from the transaction-duration 2PL
  // locks in src/concurrency — the engine acquires those first and never
  // blocks on a lock while holding a latch, so latches cannot deadlock.
  std::shared_mutex& latch() const { return latch_; }

 private:
  // Key column values of an encoded row, in `index` order.
  std::vector<Value> IndexKeyOf(const TableIndex& index,
                                std::string_view row_bytes) const;
  PageGuard PinPage(int page_no) const;

  std::string name_;
  Schema schema_;
  RowCodec codec_;
  int page_size_;
  BufferPool* pool_ = nullptr;
  uint32_t pool_owner_ = 0;
  int64_t row_count_ = 0;
  int64_t next_rowid_ = 1;
  int64_t next_identity_ = 1;
  std::vector<std::unique_ptr<Page>> pages_;
  // Pages with at least one free slot. An ordered set keeps placement
  // deterministic (lowest page wins), so serial and concurrent runs that
  // apply the same operation sequence produce identical physical layouts —
  // a correctness requirement for WAL redo's placement assertion.
  std::set<int32_t> free_pages_;
  std::unique_ptr<TableIndex> index_;
  std::vector<std::unique_ptr<TableIndex>> secondary_indexes_;
  mutable std::shared_mutex latch_;
};

}  // namespace irdb
