// Runtime value type for the minidb engine.
//
// SQL NULL, 64-bit integers, doubles and strings cover the TPC-C schema and
// everything the intrusion-resilience proxy needs (trid columns are INTEGER,
// trans_dep.dep_tr_ids is VARCHAR).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "util/status.h"

namespace irdb {

enum class ValueType { kNull, kInt, kDouble, kString };

const char* ValueTypeName(ValueType t);

class Value {
 public:
  Value() : v_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t i) { return Value(i); }
  static Value Double(double d) { return Value(d); }
  static Value Str(std::string s) { return Value(std::move(s)); }

  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}

  ValueType type() const {
    switch (v_.index()) {
      case 0: return ValueType::kNull;
      case 1: return ValueType::kInt;
      case 2: return ValueType::kDouble;
      default: return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_numeric() const { return is_int() || is_double(); }

  int64_t as_int() const {
    IRDB_CHECK_MSG(is_int(), "Value::as_int on " + std::string(ValueTypeName(type())));
    return std::get<int64_t>(v_);
  }
  double as_double() const {
    if (is_int()) return static_cast<double>(std::get<int64_t>(v_));
    IRDB_CHECK_MSG(is_double(), "Value::as_double on non-numeric");
    return std::get<double>(v_);
  }
  const std::string& as_string() const {
    IRDB_CHECK_MSG(is_string(), "Value::as_string on " + std::string(ValueTypeName(type())));
    return std::get<std::string>(v_);
  }

  // Total order with SQL-ish semantics for sorting/grouping:
  // NULL < numbers < strings; int/double compare numerically.
  // Returns -1/0/+1.
  int Compare(const Value& o) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator!=(const Value& o) const { return Compare(o) != 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }

  // Rendering as a SQL literal (strings quoted+escaped, NULL keyword).
  std::string ToSqlLiteral() const;
  // Raw rendering for debugging/CSV (no quotes).
  std::string ToString() const;

  // Stable serialization used by row codecs and state fingerprints.
  void AppendTo(std::string* out) const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

}  // namespace irdb
