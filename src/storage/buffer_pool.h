// Buffer pool manager: LRU-K residency tracking with pin counts and RAII
// page guards.
//
// The engine keeps page bytes in memory for their whole lifetime (the WAL
// and the flavor emulations address raw in-memory pages), so the pool does
// not own page storage; it is the residency authority layered over the
// heap: every page access pins a frame, a bounded number of frames are
// resident at once, and crossing the capacity evicts the unpinned frame
// with the largest backward k-distance (LRU-K; frames with fewer than K
// recorded accesses evict first, oldest first access breaking ties — scan
// bursts cannot flush the hot set, which plain LRU gets wrong). Misses and
// evictions are observable (irdb_bufferpool_* counters) and charged to the
// simulated-I/O model by the engine, so benches see miss costs without the
// engine actually dropping bytes it still addresses.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace irdb {

class BufferPool;

// RAII pin: the frame cannot be evicted while a guard on it lives.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, uint64_t key) : pool_(pool), key_(key) {}
  PageGuard(PageGuard&& o) noexcept : pool_(o.pool_), key_(o.key_) {
    o.pool_ = nullptr;
  }
  PageGuard& operator=(PageGuard&& o) noexcept {
    if (this != &o) {
      Release();
      pool_ = o.pool_;
      key_ = o.key_;
      o.pool_ = nullptr;
    }
    return *this;
  }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  void Release();

 private:
  BufferPool* pool_ = nullptr;
  uint64_t key_ = 0;
};

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t resident = 0;
  size_t pinned = 0;
};

class BufferPool {
 public:
  static constexpr size_t kUnbounded = static_cast<size_t>(1) << 40;

  explicit BufferPool(size_t capacity_frames = kUnbounded, int k = 2)
      : capacity_(capacity_frames == 0 ? 1 : capacity_frames),
        k_(k < 1 ? 1 : (k > 4 ? 4 : k)) {}

  // Each HeapTable registers once; the uid namespaces its page numbers.
  uint32_t RegisterOwner();

  // Pins page (owner, page_no), recording the access for LRU-K. A miss may
  // evict; the returned guard unpins on destruction. `was_miss` (optional)
  // reports whether the page had to be "fetched", so callers can charge the
  // simulated read cost exactly once per miss.
  PageGuard Pin(uint32_t owner, int32_t page_no, bool* was_miss = nullptr);

  // Shrinking the capacity evicts lazily, on subsequent pins.
  void set_capacity(size_t frames);
  size_t capacity() const;

  BufferPoolStats stats() const;

  bool Resident(uint32_t owner, int32_t page_no) const;

 private:
  friend class PageGuard;

  struct Frame {
    int pin_count = 0;
    uint64_t accesses = 0;     // total accesses to this frame
    uint64_t history[4] = {};  // last k access stamps, ring buffer (k <= 4)
  };

  static uint64_t Key(uint32_t owner, int32_t page_no) {
    return (static_cast<uint64_t>(owner) << 32) |
           static_cast<uint32_t>(page_no);
  }

  void Unpin(uint64_t key);
  void EvictLocked();  // evict one victim, if any is evictable

  mutable std::mutex mu_;
  size_t capacity_;
  int k_;
  uint32_t next_owner_ = 1;
  uint64_t clock_ = 0;
  std::unordered_map<uint64_t, Frame> frames_;
  BufferPoolStats stats_;
};

}  // namespace irdb
