#include "storage/row_codec.h"

#include <cstring>

namespace irdb {

void PutU64(std::string* out, size_t pos, uint64_t v) {
  IRDB_CHECK(pos + 8 <= out->size());
  for (int i = 0; i < 8; ++i) {
    (*out)[pos + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

uint64_t GetU64(std::string_view in, size_t pos) {
  IRDB_CHECK(pos + 8 <= in.size());
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(in[pos + i])) << (8 * i);
  }
  return v;
}

void PutU16(std::string* out, size_t pos, uint16_t v) {
  IRDB_CHECK(pos + 2 <= out->size());
  (*out)[pos] = static_cast<char>(v & 0xff);
  (*out)[pos + 1] = static_cast<char>((v >> 8) & 0xff);
}

uint16_t GetU16(std::string_view in, size_t pos) {
  IRDB_CHECK(pos + 2 <= in.size());
  return static_cast<uint16_t>(static_cast<unsigned char>(in[pos])) |
         (static_cast<uint16_t>(static_cast<unsigned char>(in[pos + 1])) << 8);
}

Result<std::string> RowCodec::Encode(const Row& row) const {
  const Schema& s = *schema_;
  if (row.values.size() != s.num_columns()) {
    return Status::Internal("RowCodec::Encode: value count mismatch");
  }
  std::string out(static_cast<size_t>(s.row_size()), '\0');
  for (size_t i = 0; i < s.num_columns(); ++i) {
    IRDB_RETURN_IF_ERROR(EncodeColumnInPlace(&out, i, row.values[i]));
  }
  if (s.has_hidden_rowid()) {
    PutU64(&out, static_cast<size_t>(s.rowid_offset()),
           static_cast<uint64_t>(row.rowid));
  }
  return out;
}

Status RowCodec::EncodeColumnInPlace(std::string* bytes, size_t col,
                                     const Value& v) const {
  const Schema& s = *schema_;
  IRDB_CHECK(bytes->size() == static_cast<size_t>(s.row_size()));
  const Column& c = s.column(col);
  const size_t off = static_cast<size_t>(s.ColumnOffset(col));
  if (v.is_null()) {
    (*bytes)[off] = 1;
    // Zero the payload so encodings are canonical (byte-comparable).
    std::memset(bytes->data() + off + 1, 0, c.EncodedSize() - 1);
    return Status::Ok();
  }
  (*bytes)[off] = 0;
  switch (c.type) {
    case ValueType::kInt: {
      if (!v.is_int()) return Status::Internal("encode: expected int for " + c.name);
      PutU64(bytes, off + 1, static_cast<uint64_t>(v.as_int()));
      return Status::Ok();
    }
    case ValueType::kDouble: {
      if (!v.is_numeric()) return Status::Internal("encode: expected double for " + c.name);
      double d = v.as_double();
      uint64_t bits;
      std::memcpy(&bits, &d, 8);
      PutU64(bytes, off + 1, bits);
      return Status::Ok();
    }
    case ValueType::kString: {
      if (!v.is_string()) return Status::Internal("encode: expected string for " + c.name);
      const std::string& str = v.as_string();
      if (static_cast<int>(str.size()) > c.length) {
        return Status::Constraint("encode: string too long for " + c.name);
      }
      PutU16(bytes, off + 1, static_cast<uint16_t>(str.size()));
      std::memcpy(bytes->data() + off + 3, str.data(), str.size());
      std::memset(bytes->data() + off + 3 + str.size(), 0, c.length - str.size());
      return Status::Ok();
    }
    default:
      return Status::Internal("encode: bad column type");
  }
}

Result<Value> RowCodec::DecodeColumn(std::string_view bytes, size_t col) const {
  const Schema& s = *schema_;
  if (bytes.size() != static_cast<size_t>(s.row_size())) {
    return Status::Internal("DecodeColumn: bad row length " +
                            std::to_string(bytes.size()));
  }
  const Column& c = s.column(col);
  const size_t off = static_cast<size_t>(s.ColumnOffset(col));
  if (bytes[off] != 0) return Value::Null();
  switch (c.type) {
    case ValueType::kInt:
      return Value::Int(static_cast<int64_t>(GetU64(bytes, off + 1)));
    case ValueType::kDouble: {
      uint64_t bits = GetU64(bytes, off + 1);
      double d;
      std::memcpy(&d, &bits, 8);
      return Value::Double(d);
    }
    case ValueType::kString: {
      uint16_t len = GetU16(bytes, off + 1);
      if (len > c.length) return Status::Internal("DecodeColumn: corrupt length");
      return Value::Str(std::string(bytes.substr(off + 3, len)));
    }
    default:
      return Status::Internal("DecodeColumn: bad column type");
  }
}

Result<Row> RowCodec::Decode(std::string_view bytes) const {
  const Schema& s = *schema_;
  Row row;
  row.values.reserve(s.num_columns());
  for (size_t i = 0; i < s.num_columns(); ++i) {
    IRDB_ASSIGN_OR_RETURN(Value v, DecodeColumn(bytes, i));
    row.values.push_back(std::move(v));
  }
  if (s.has_hidden_rowid()) row.rowid = DecodeRowId(bytes);
  return row;
}

int64_t RowCodec::DecodeRowId(std::string_view bytes) const {
  const Schema& s = *schema_;
  IRDB_CHECK(s.has_hidden_rowid());
  IRDB_CHECK(bytes.size() == static_cast<size_t>(s.row_size()));
  return static_cast<int64_t>(GetU64(bytes, static_cast<size_t>(s.rowid_offset())));
}

void RowCodec::EncodeRowId(std::string* bytes, int64_t rowid) const {
  const Schema& s = *schema_;
  IRDB_CHECK(s.has_hidden_rowid());
  PutU64(bytes, static_cast<size_t>(s.rowid_offset()), static_cast<uint64_t>(rowid));
}

}  // namespace irdb
