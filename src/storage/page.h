// A heap page holding fixed-size rows contiguously.
//
// Row-migration semantics copied from Sybase (paper §4.3): when a row is
// deleted from the middle of a page, all rows after it move toward the
// beginning so that no gap ever exists; rows never migrate across pages.
// Inserts always append at the current end of the page's used region.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace irdb {

inline constexpr int kDefaultPageSize = 8192;

class Page {
 public:
  Page(int capacity, int row_size)
      : capacity_(capacity), row_size_(row_size),
        data_(static_cast<size_t>(capacity), '\0') {
    IRDB_CHECK(row_size > 0 && row_size <= capacity);
  }

  int capacity() const { return capacity_; }
  int row_size() const { return row_size_; }
  int used_bytes() const { return row_count_ * row_size_; }
  int row_count() const { return row_count_; }
  bool HasSpace() const { return used_bytes() + row_size_ <= capacity_; }

  // Appends a row; returns its byte offset within the page.
  int Append(std::string_view row_bytes) {
    IRDB_CHECK(static_cast<int>(row_bytes.size()) == row_size_);
    IRDB_CHECK(HasSpace());
    const int off = used_bytes();
    data_.replace(static_cast<size_t>(off), row_bytes.size(), row_bytes);
    ++row_count_;
    return off;
  }

  // Deletes the row at slot `idx`, compacting the page (rows after it shift
  // down by one slot). This is the only operation that moves rows.
  void DeleteAt(int idx) {
    IRDB_CHECK(idx >= 0 && idx < row_count_);
    const int off = idx * row_size_;
    const int tail = used_bytes() - (off + row_size_);
    if (tail > 0) {
      data_.replace(static_cast<size_t>(off), static_cast<size_t>(tail),
                    data_, static_cast<size_t>(off + row_size_),
                    static_cast<size_t>(tail));
    }
    --row_count_;
    // Scrub the vacated slot so page dumps are deterministic.
    data_.replace(static_cast<size_t>(used_bytes()),
                  static_cast<size_t>(row_size_),
                  static_cast<size_t>(row_size_), '\0');
  }

  // Overwrites the row at slot `idx` in place (no movement).
  void UpdateAt(int idx, std::string_view row_bytes) {
    IRDB_CHECK(idx >= 0 && idx < row_count_);
    IRDB_CHECK(static_cast<int>(row_bytes.size()) == row_size_);
    data_.replace(static_cast<size_t>(idx * row_size_), row_bytes.size(),
                  row_bytes);
  }

  std::string_view RowAt(int idx) const {
    IRDB_CHECK(idx >= 0 && idx < row_count_);
    return std::string_view(data_).substr(static_cast<size_t>(idx * row_size_),
                                          static_cast<size_t>(row_size_));
  }

  // Raw page image — this is what the Sybase flavor's `dbcc page` returns.
  std::string_view RawBytes() const { return data_; }

 private:
  int capacity_;
  int row_size_;
  int row_count_ = 0;
  std::string data_;
};

}  // namespace irdb
