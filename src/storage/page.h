// A heap page holding fixed-size rows in slots.
//
// Deletes are tombstones: DeleteAt marks the slot dead and scrubs its bytes
// (page dumps stay deterministic) but never moves other rows, so a RowLoc is
// stable for the lifetime of its row. Insert reuses the lowest dead slot
// before extending the used region — a deterministic function of the page's
// state, which WAL redo relies on to land replayed inserts at their logged
// (page, offset). This replaces the Sybase §4.3 in-page compaction the seed
// engine copied; the flavor's log readers no longer need offset sliding.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace irdb {

inline constexpr int kDefaultPageSize = 8192;

class Page {
 public:
  Page(int capacity, int row_size)
      : capacity_(capacity), row_size_(row_size),
        data_(static_cast<size_t>(capacity), '\0') {
    IRDB_CHECK(row_size > 0 && row_size <= capacity);
  }

  int capacity() const { return capacity_; }
  int row_size() const { return row_size_; }
  int max_slots() const { return capacity_ / row_size_; }
  // High-water byte extent (dead slots included) — what raw dumps cover.
  int used_bytes() const { return slot_count() * row_size_; }
  // Live rows on the page.
  int row_count() const { return live_count_; }
  // Allocated slots, live or dead; the scan/iteration bound.
  int slot_count() const { return static_cast<int>(live_.size()); }
  bool HasSpace() const { return live_count_ < max_slots(); }

  bool SlotLive(int idx) const {
    return idx >= 0 && idx < slot_count() && live_[static_cast<size_t>(idx)];
  }

  // Inserts a row into the lowest dead slot, extending the used region when
  // none exists; returns the row's byte offset within the page.
  int Insert(std::string_view row_bytes) {
    IRDB_CHECK(static_cast<int>(row_bytes.size()) == row_size_);
    IRDB_CHECK(HasSpace());
    int slot = slot_count();
    if (first_dead_ < slot) {
      slot = first_dead_;
      live_[static_cast<size_t>(slot)] = true;
      // Next-lowest dead slot, if any.
      while (first_dead_ < slot_count() &&
             live_[static_cast<size_t>(first_dead_)]) {
        ++first_dead_;
      }
    } else {
      live_.push_back(true);
      first_dead_ = slot_count();
    }
    const int off = slot * row_size_;
    data_.replace(static_cast<size_t>(off), row_bytes.size(), row_bytes);
    ++live_count_;
    return off;
  }

  // Tombstones the row at slot `idx`: marks it dead and scrubs its bytes.
  // No row moves.
  void DeleteAt(int idx) {
    IRDB_CHECK(SlotLive(idx));
    live_[static_cast<size_t>(idx)] = false;
    if (idx < first_dead_) first_dead_ = idx;
    --live_count_;
    data_.replace(static_cast<size_t>(idx * row_size_),
                  static_cast<size_t>(row_size_),
                  static_cast<size_t>(row_size_), '\0');
  }

  // Overwrites the row at slot `idx` in place.
  void UpdateAt(int idx, std::string_view row_bytes) {
    IRDB_CHECK(SlotLive(idx));
    IRDB_CHECK(static_cast<int>(row_bytes.size()) == row_size_);
    data_.replace(static_cast<size_t>(idx * row_size_), row_bytes.size(),
                  row_bytes);
  }

  std::string_view RowAt(int idx) const {
    IRDB_CHECK(SlotLive(idx));
    return std::string_view(data_).substr(static_cast<size_t>(idx * row_size_),
                                          static_cast<size_t>(row_size_));
  }

  // Raw page image — this is what the Sybase flavor's `dbcc page` returns.
  // Dead slots read as zero bytes.
  std::string_view RawBytes() const { return data_; }

 private:
  int capacity_;
  int row_size_;
  int live_count_ = 0;
  int first_dead_ = 0;  // lowest dead slot; == slot_count() when none
  std::string data_;
  std::vector<bool> live_;
};

}  // namespace irdb
