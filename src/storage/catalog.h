// Catalog: name → table mapping plus table-id allocation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/heap_table.h"
#include "util/status.h"

namespace irdb {

struct TableEntry {
  int32_t table_id = 0;
  std::unique_ptr<HeapTable> table;
};

class Catalog {
 public:
  // Tables created after this allocate/pin pages through `pool` (may be
  // null; not owned). Set once at engine construction.
  void AttachBufferPool(BufferPool* pool) { pool_ = pool; }
  BufferPool* buffer_pool() const { return pool_; }

  // Creates a table; fails if a table with the (case-insensitive) name exists.
  Result<HeapTable*> CreateTable(const std::string& name, Schema schema,
                                 int page_size = kDefaultPageSize);

  // Table owning the named (secondary) index, or nullptr.
  HeapTable* FindTableOfIndex(const std::string& index_name);

  Status DropTable(const std::string& name);

  // nullptr when absent.
  HeapTable* Find(const std::string& name);
  const HeapTable* Find(const std::string& name) const;

  // Lookup by the id recorded in WAL records; nullptr when absent.
  HeapTable* FindById(int32_t table_id);

  Result<int32_t> TableId(const std::string& name) const;

  std::vector<std::string> TableNames() const;

 private:
  // key: lower-cased name
  std::map<std::string, TableEntry> tables_;
  int32_t next_table_id_ = 1;
  BufferPool* pool_ = nullptr;
};

}  // namespace irdb
