#include "storage/heap_table.h"

#include "util/string_utils.h"

namespace irdb {

HeapTable::HeapTable(std::string name, Schema schema, int page_size,
                     BufferPool* pool)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      codec_(&schema_),
      page_size_(page_size),
      pool_(pool) {
  IRDB_CHECK_MSG(schema_.row_size() <= page_size_,
                 "row too large for page in table " + name_);
  if (pool_ != nullptr) pool_owner_ = pool_->RegisterOwner();
}

std::vector<Value> HeapTable::IndexKeyOf(const TableIndex& index,
                                         std::string_view row_bytes) const {
  std::vector<Value> key;
  key.reserve(index.key_columns().size());
  for (int col : index.key_columns()) {
    auto v = codec_.DecodeColumn(row_bytes, static_cast<size_t>(col));
    IRDB_CHECK(v.ok());
    key.push_back(std::move(v).value());
  }
  return key;
}

PageGuard HeapTable::PinPage(int page_no) const {
  if (pool_ == nullptr) return PageGuard();
  return pool_->Pin(pool_owner_, page_no);
}

RowLoc HeapTable::Insert(std::string_view row_bytes) {
  RowLoc loc;
  if (!free_pages_.empty()) {
    // Deterministic placement: lowest page with space; the page picks its
    // lowest dead slot.
    const int32_t p = *free_pages_.begin();
    const int off = pages_[p]->Insert(row_bytes);
    if (!pages_[p]->HasSpace()) free_pages_.erase(free_pages_.begin());
    loc = RowLoc{p, off / schema_.row_size()};
  } else {
    pages_.push_back(std::make_unique<Page>(page_size_, schema_.row_size()));
    const int32_t p = static_cast<int32_t>(pages_.size()) - 1;
    const int off = pages_[p]->Insert(row_bytes);
    if (pages_[p]->HasSpace()) free_pages_.insert(p);
    loc = RowLoc{p, off / schema_.row_size()};
  }
  PageGuard guard = PinPage(loc.page);
  ++row_count_;
  if (index_) index_->Insert(IndexKeyOf(*index_, row_bytes), loc);
  for (const auto& sec : secondary_indexes_) {
    sec->Insert(IndexKeyOf(*sec, row_bytes), loc);
  }
  return loc;
}

std::string_view HeapTable::ReadAt(RowLoc loc) const {
  IRDB_CHECK(loc.page >= 0 && loc.page < page_count());
  PageGuard guard = PinPage(loc.page);
  return pages_[loc.page]->RowAt(loc.slot);
}

void HeapTable::UpdateAt(RowLoc loc, std::string_view row_bytes) {
  IRDB_CHECK(loc.page >= 0 && loc.page < page_count());
  PageGuard guard = PinPage(loc.page);
  std::string_view old_bytes = pages_[loc.page]->RowAt(loc.slot);
  auto reindex = [&](TableIndex* idx) {
    std::vector<Value> old_key = IndexKeyOf(*idx, old_bytes);
    std::vector<Value> new_key = IndexKeyOf(*idx, row_bytes);
    if (EncodeKey(old_key) != EncodeKey(new_key)) {
      idx->Erase(old_key, loc);
      idx->Insert(new_key, loc);
    }
  };
  if (index_) reindex(index_.get());
  for (const auto& sec : secondary_indexes_) reindex(sec.get());
  pages_[loc.page]->UpdateAt(loc.slot, row_bytes);
}

void HeapTable::DeleteAt(RowLoc loc) {
  IRDB_CHECK(loc.page >= 0 && loc.page < page_count());
  PageGuard guard = PinPage(loc.page);
  Page& page = *pages_[loc.page];
  std::string_view bytes = page.RowAt(loc.slot);
  if (index_) index_->Erase(IndexKeyOf(*index_, bytes), loc);
  for (const auto& sec : secondary_indexes_) {
    sec->Erase(IndexKeyOf(*sec, bytes), loc);
  }
  page.DeleteAt(loc.slot);
  --row_count_;
  free_pages_.insert(loc.page);
}

void HeapTable::Scan(
    const std::function<void(RowLoc, std::string_view)>& fn) const {
  for (int p = 0; p < page_count(); ++p) {
    PageGuard guard = PinPage(p);
    const Page& page = *pages_[p];
    for (int s = 0; s < page.slot_count(); ++s) {
      if (!page.SlotLive(s)) continue;
      fn(RowLoc{p, s}, page.RowAt(s));
    }
  }
}

const Page* HeapTable::GetPage(int page_no) const {
  if (page_no < 0 || page_no >= page_count()) return nullptr;
  PageGuard guard = PinPage(page_no);
  return pages_[page_no].get();
}

Status HeapTable::AddSecondaryIndex(const std::string& name,
                                    std::vector<int> key_columns) {
  if (FindSecondaryIndex(name) != nullptr) {
    return Status::AlreadyExists("index " + name + " already exists");
  }
  auto idx = std::make_unique<TableIndex>(std::move(key_columns), name);
  Scan([&](RowLoc loc, std::string_view bytes) {
    idx->Insert(IndexKeyOf(*idx, bytes), loc);
  });
  secondary_indexes_.push_back(std::move(idx));
  return Status::Ok();
}

bool HeapTable::DropSecondaryIndex(const std::string& name) {
  for (size_t i = 0; i < secondary_indexes_.size(); ++i) {
    if (EqualsIgnoreCase(secondary_indexes_[i]->name(), name)) {
      secondary_indexes_.erase(secondary_indexes_.begin() +
                               static_cast<ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

const TableIndex* HeapTable::FindSecondaryIndex(const std::string& name) const {
  for (const auto& sec : secondary_indexes_) {
    if (EqualsIgnoreCase(sec->name(), name)) return sec.get();
  }
  return nullptr;
}

}  // namespace irdb
