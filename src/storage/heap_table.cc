#include "storage/heap_table.h"

namespace irdb {

HeapTable::HeapTable(std::string name, Schema schema, int page_size)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      codec_(&schema_),
      page_size_(page_size) {
  IRDB_CHECK_MSG(schema_.row_size() <= page_size_,
                 "row too large for page in table " + name_);
}

std::vector<Value> HeapTable::IndexKeyOf(std::string_view row_bytes) const {
  std::vector<Value> key;
  key.reserve(index_->key_columns().size());
  for (int col : index_->key_columns()) {
    auto v = codec_.DecodeColumn(row_bytes, static_cast<size_t>(col));
    IRDB_CHECK(v.ok());
    key.push_back(std::move(v).value());
  }
  return key;
}

RowLoc HeapTable::Insert(std::string_view row_bytes) {
  auto place = [&]() -> RowLoc {
    // Reuse the first page with space (vacated by deletes), else append.
    while (!free_pages_.empty()) {
      int p = free_pages_.back();
      if (pages_[p]->HasSpace()) {
        int off = pages_[p]->Append(row_bytes);
        if (!pages_[p]->HasSpace()) free_pages_.pop_back();
        return RowLoc{p, off / schema_.row_size()};
      }
      free_pages_.pop_back();
    }
    pages_.push_back(std::make_unique<Page>(page_size_, schema_.row_size()));
    int p = static_cast<int>(pages_.size()) - 1;
    int off = pages_[p]->Append(row_bytes);
    if (pages_[p]->HasSpace()) free_pages_.push_back(p);
    return RowLoc{p, off / schema_.row_size()};
  };
  RowLoc loc = place();
  ++row_count_;
  if (index_) index_->Insert(IndexKeyOf(row_bytes), loc);
  return loc;
}

std::string_view HeapTable::ReadAt(RowLoc loc) const {
  IRDB_CHECK(loc.page >= 0 && loc.page < page_count());
  return pages_[loc.page]->RowAt(loc.slot);
}

void HeapTable::UpdateAt(RowLoc loc, std::string_view row_bytes) {
  IRDB_CHECK(loc.page >= 0 && loc.page < page_count());
  if (index_) {
    std::vector<Value> old_key = IndexKeyOf(pages_[loc.page]->RowAt(loc.slot));
    std::vector<Value> new_key = IndexKeyOf(row_bytes);
    const ValueVectorLess less;
    if (less(old_key, new_key) || less(new_key, old_key)) {
      index_->Erase(old_key, loc);
      index_->Insert(new_key, loc);
    }
  }
  pages_[loc.page]->UpdateAt(loc.slot, row_bytes);
}

void HeapTable::DeleteAt(RowLoc loc) {
  IRDB_CHECK(loc.page >= 0 && loc.page < page_count());
  Page& page = *pages_[loc.page];
  if (index_) {
    index_->Erase(IndexKeyOf(page.RowAt(loc.slot)), loc);
  }
  bool had_space = page.HasSpace();
  page.DeleteAt(loc.slot);
  --row_count_;
  if (index_) index_->ShiftAfterDelete(loc.page, loc.slot);
  if (!had_space) free_pages_.push_back(loc.page);
}

void HeapTable::Scan(
    const std::function<void(RowLoc, std::string_view)>& fn) const {
  for (int p = 0; p < page_count(); ++p) {
    const Page& page = *pages_[p];
    for (int s = 0; s < page.row_count(); ++s) {
      fn(RowLoc{p, s}, page.RowAt(s));
    }
  }
}

const Page* HeapTable::GetPage(int page_no) const {
  if (page_no < 0 || page_no >= page_count()) return nullptr;
  return pages_[page_no].get();
}

}  // namespace irdb
