// Table schema: column metadata plus the fixed-width on-page layout.
//
// Rows are encoded fixed-width (strings get a capacity from VARCHAR/CHAR(n)),
// so a row's byte length never changes across UPDATEs: a row occupies one
// slot at a fixed offset for its whole life (deletes tombstone the slot, see
// storage/page.h), and UPDATE rewrites it in place. This is a strictly
// stronger form of the movement property the paper's §4.3 algorithm needs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/value.h"
#include "util/status.h"

namespace irdb {

struct Column {
  std::string name;
  ValueType type = ValueType::kInt;  // kInt / kDouble / kString
  int length = 0;                    // string capacity (bytes), 0 for scalars
  bool not_null = false;
  bool identity = false;  // auto-assigned monotonically when inserted as NULL

  // Encoded size on page: 1 null byte + payload.
  int EncodedSize() const {
    switch (type) {
      case ValueType::kInt:
      case ValueType::kDouble:
        return 1 + 8;
      case ValueType::kString:
        return 1 + 2 + length;
      default:
        return 1;
    }
  }
};

class Schema {
 public:
  Schema() = default;
  Schema(std::vector<Column> columns, bool has_hidden_rowid);

  const std::vector<Column>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  // True when the engine maintains a hidden row ID in each encoded row
  // (Postgres/Oracle flavors). Sybase flavor runs without one.
  bool has_hidden_rowid() const { return has_hidden_rowid_; }

  // Case-insensitive column lookup; -1 if absent.
  int FindColumn(std::string_view name) const;

  // Byte offset of column i's encoding within a row.
  int ColumnOffset(size_t i) const { return offsets_[i]; }

  // Total encoded row size (including the hidden rowid if present).
  int row_size() const { return row_size_; }

  // Offset of the hidden rowid field (last 8 bytes); requires has_hidden_rowid.
  int rowid_offset() const {
    IRDB_CHECK(has_hidden_rowid_);
    return row_size_ - 8;
  }

  // Validates `v` against column i (type coercion allowed int<->double,
  // NOT NULL, string capacity). Returns the possibly-coerced value.
  Result<Value> CoerceForColumn(size_t i, const Value& v) const;

 private:
  std::vector<Column> columns_;
  std::vector<int> offsets_;
  bool has_hidden_rowid_ = false;
  int row_size_ = 0;
};

}  // namespace irdb
