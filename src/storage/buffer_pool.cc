#include "storage/buffer_pool.h"

#include "obs/catalog.h"

namespace irdb {

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(key_);
    pool_ = nullptr;
  }
}

uint32_t BufferPool::RegisterOwner() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_owner_++;
}

PageGuard BufferPool::Pin(uint32_t owner, int32_t page_no, bool* was_miss) {
  const uint64_t key = Key(owner, page_no);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(key);
  bool miss = it == frames_.end();
  if (miss) {
    while (frames_.size() >= capacity_) {
      const size_t before = frames_.size();
      EvictLocked();
      if (frames_.size() == before) break;  // everything pinned: over-admit
    }
    it = frames_.emplace(key, Frame{}).first;
    ++stats_.misses;
    obs::Count(obs::Metrics::Get().bufferpool_misses);
  } else {
    ++stats_.hits;
    obs::Count(obs::Metrics::Get().bufferpool_hits);
  }
  Frame& f = it->second;
  // Ring of the last k access stamps; slot (accesses % k) always holds the
  // oldest of them once the ring is full.
  f.history[f.accesses % static_cast<uint64_t>(k_)] = ++clock_;
  ++f.accesses;
  ++f.pin_count;
  stats_.resident = frames_.size();
  obs::SetGauge(obs::Metrics::Get().bufferpool_resident,
                static_cast<int64_t>(frames_.size()));
  if (was_miss != nullptr) *was_miss = miss;
  return PageGuard(this, key);
}

void BufferPool::EvictLocked() {
  // Victim: unpinned frame with the largest backward k-distance. Frames
  // with fewer than k recorded accesses have infinite distance and evict
  // first, ordered by oldest earliest access (classic LRU-K).
  auto victim = frames_.end();
  bool victim_inf = false;
  uint64_t victim_stamp = 0;
  for (auto it = frames_.begin(); it != frames_.end(); ++it) {
    Frame& f = it->second;
    if (f.pin_count > 0) continue;
    const bool inf = f.accesses < static_cast<uint64_t>(k_);
    // Backward k-distance orders by the kth-most-recent stamp — the oldest
    // in the ring, which is the slot the next access would overwrite.
    const uint64_t stamp =
        inf ? f.history[0]
            : f.history[f.accesses % static_cast<uint64_t>(k_)];
    const bool better =
        victim == frames_.end() || (inf && !victim_inf) ||
        (inf == victim_inf && stamp < victim_stamp);
    if (better) {
      victim = it;
      victim_inf = inf;
      victim_stamp = stamp;
    }
  }
  if (victim == frames_.end()) return;
  frames_.erase(victim);
  ++stats_.evictions;
  obs::Count(obs::Metrics::Get().bufferpool_evictions);
}

void BufferPool::Unpin(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(key);
  if (it == frames_.end()) return;  // evicted under over-admission pressure
  if (it->second.pin_count > 0) --it->second.pin_count;
}

void BufferPool::set_capacity(size_t frames) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = frames == 0 ? 1 : frames;
}

size_t BufferPool::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  BufferPoolStats s = stats_;
  s.resident = frames_.size();
  s.pinned = 0;
  for (const auto& [_, f] : frames_) {
    if (f.pin_count > 0) ++s.pinned;
  }
  return s;
}

bool BufferPool::Resident(uint32_t owner, int32_t page_no) const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_.count(Key(owner, page_no)) != 0;
}

}  // namespace irdb
