#include "storage/value.h"

#include <cmath>
#include <cstdio>

#include "util/string_utils.h"

namespace irdb {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt: return "INT";
    case ValueType::kDouble: return "DOUBLE";
    case ValueType::kString: return "STRING";
  }
  return "?";
}

int Value::Compare(const Value& o) const {
  const bool a_null = is_null(), b_null = o.is_null();
  if (a_null || b_null) {
    if (a_null && b_null) return 0;
    return a_null ? -1 : 1;
  }
  const bool a_num = is_numeric(), b_num = o.is_numeric();
  if (a_num != b_num) return a_num ? -1 : 1;
  if (a_num) {
    if (is_int() && o.is_int()) {
      int64_t a = as_int(), b = o.as_int();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = as_double(), b = o.as_double();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  int c = as_string().compare(o.as_string());
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

std::string Value::ToSqlLiteral() const {
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt: return std::to_string(as_int());
    case ValueType::kDouble: {
      // %.17g round-trips every finite double exactly — LogMiner-style
      // undo/redo SQL must restore bit-identical values.
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", as_double());
      return buf;
    }
    case ValueType::kString: return SqlQuote(as_string());
  }
  return "NULL";
}

std::string Value::ToString() const {
  if (is_string()) return as_string();
  return ToSqlLiteral();
}

void Value::AppendTo(std::string* out) const {
  switch (type()) {
    case ValueType::kNull: out->append("N|"); break;
    case ValueType::kInt:
      out->append("I").append(std::to_string(as_int())).append("|");
      break;
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof buf, "D%.17g|", as_double());
      out->append(buf);
      break;
    }
    case ValueType::kString:
      out->append("S").append(std::to_string(as_string().size())).append(":");
      out->append(as_string()).append("|");
      break;
  }
}

}  // namespace irdb
