// In-memory B+ tree keyed on order-preserving encoded key bytes.
//
// One concrete tree serves every ordered-lookup need in the framework:
// primary/secondary table indexes store RowLocs packed into the uint64_t
// payload, and the repair engine's old-rowid→new-rowid remap stores row
// addresses. Keys are opaque byte strings compared with memcmp; the
// EncodeKey* helpers below produce encodings whose byte order matches
// Value::Compare, so an equality prefix over leading key columns is a byte
// prefix of every matching full key — range scans are plain byte-interval
// scans.
//
// Structure follows Bustub's b_plus_tree shape: fixed fan-out nodes, leaf
// chain for ordered iteration, separators in internal nodes are lower bounds
// of their right child. Deletion tolerates underfull nodes (separators stay
// lower bounds, so searches only ever start slightly left — never miss);
// duplicate keys are stored as separate (key, value) entries and may span
// leaves, which the lower-bound descent handles. A cached rightmost-leaf
// pointer makes sorted (ascending-key) bulk loads append without any
// comparisons along the descent — the TPC-C loader's fast path.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storage/value.h"

namespace irdb {

class BPTree {
 public:
  BPTree();   // out of line: Node is incomplete here, and the defaulted
  ~BPTree();  // ctor/dtor would instantiate unique_ptr<Node>'s deleter
  BPTree(const BPTree&) = delete;
  BPTree& operator=(const BPTree&) = delete;

  void Insert(std::string_view key, uint64_t value);

  // Removes one (key, value) entry; returns false when absent.
  bool Erase(std::string_view key, uint64_t value);

  // Appends every value stored under exactly `key`.
  void Lookup(std::string_view key, std::vector<uint64_t>* out) const;

  // First value under exactly `key`, if any.
  bool LookupFirst(std::string_view key, uint64_t* out) const;

  // Visits entries in ascending key order starting at the first key >=
  // `lower`; stops when `fn` returns false or keys run out.
  void ScanFrom(std::string_view lower,
                const std::function<bool(std::string_view, uint64_t)>& fn) const;

  // Appends values of every key in the byte interval [lower, ...] that is
  // <= `upper_prefix` or starts with `upper_prefix` (i.e. `upper_prefix` is
  // the full encoding of the scan's last bound column; keys extending it are
  // deeper key columns of an equal bound value and still belong to the
  // range). ScanPrefix(p) == ScanRange(p, p).
  void ScanRange(std::string_view lower, std::string_view upper_prefix,
                 std::vector<uint64_t>* out) const;
  void ScanPrefix(std::string_view prefix, std::vector<uint64_t>* out) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int height() const { return height_; }

 private:
  struct Node;
  Node* DescendToLeaf(std::string_view key) const;  // lower-bound descent

  std::unique_ptr<Node> root_;
  Node* rightmost_ = nullptr;
  std::string max_key_;  // largest key ever inserted (fast-path gate)
  size_t size_ = 0;
  int height_ = 0;
};

// --- order-preserving key encoding -----------------------------------------
//
// Per value: a tag byte (0x00 NULL, 0x01 present), then a payload whose byte
// order matches Value::Compare within a column's declared type:
//   INT    8 bytes big-endian, sign bit flipped
//   DOUBLE 8 bytes big-endian IEEE-754; negative values bit-flipped, others
//          sign-flipped (total order matching operator<)
//   STRING bytes with 0x00 escaped as {0x00,0xFF}, terminated by {0x00,0x01}
// Every encoding is self-delimiting, so composite keys concatenate and the
// encoding of an equality prefix is a byte prefix of all matching full keys.
// Values must already be coerced to the column's type (mixed int/double in
// one column would not compare numerically).
void AppendEncodedKeyValue(const Value& v, std::string* out);
std::string EncodeKey(const std::vector<Value>& values);

// RowLoc <-> uint64 payload packing for table indexes lives with the tree so
// every index agrees on it.
inline uint64_t PackLoc(int32_t page, int32_t slot) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(page)) << 32) |
         static_cast<uint32_t>(slot);
}
inline int32_t UnpackPage(uint64_t packed) {
  return static_cast<int32_t>(packed >> 32);
}
inline int32_t UnpackSlot(uint64_t packed) {
  return static_cast<int32_t>(packed & 0xffffffffu);
}

}  // namespace irdb
