// Fixed-width row encoding.
//
// Per column: 1 null byte, then the payload —
//   INT/DOUBLE: 8 bytes little-endian
//   STRING:     2-byte actual length + capacity bytes (zero padded)
// The hidden rowid (when the schema has one) occupies the trailing 8 bytes.
//
// This byte-level format is what the WAL stores as before/after images and
// what the Sybase-flavor `dbcc page` emulation exposes, so the repair tools
// genuinely parse raw bytes like the paper's prototype did.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"
#include "util/status.h"

namespace irdb {

// Physical location of a row. Deletes tombstone their slot without moving
// other rows, so a RowLoc is stable for the lifetime of its row (slots may
// be reused after the row dies).
struct RowLoc {
  int32_t page = -1;
  int32_t slot = -1;

  bool operator==(const RowLoc& o) const { return page == o.page && slot == o.slot; }
};

// A decoded row: user column values plus the hidden rowid (kNoRowId if none).
inline constexpr int64_t kNoRowId = -1;

struct Row {
  std::vector<Value> values;
  int64_t rowid = kNoRowId;
};

class RowCodec {
 public:
  explicit RowCodec(const Schema* schema) : schema_(schema) {}

  // Encodes a row. Values must already be coerced to the column types.
  Result<std::string> Encode(const Row& row) const;

  // Decodes a full row from `bytes` (must be exactly row_size()).
  Result<Row> Decode(std::string_view bytes) const;

  // Decodes a single column out of an encoded row.
  Result<Value> DecodeColumn(std::string_view bytes, size_t col) const;

  // Encodes a single value into its column slot inside `bytes` (in place).
  Status EncodeColumnInPlace(std::string* bytes, size_t col, const Value& v) const;

  // Reads/writes the hidden rowid field.
  int64_t DecodeRowId(std::string_view bytes) const;
  void EncodeRowId(std::string* bytes, int64_t rowid) const;

  const Schema& schema() const { return *schema_; }

 private:
  const Schema* schema_;
};

// Little-endian scalar helpers (shared with the WAL and dbcc-page parsing).
void PutU64(std::string* out, size_t pos, uint64_t v);
uint64_t GetU64(std::string_view in, size_t pos);
void PutU16(std::string* out, size_t pos, uint16_t v);
uint16_t GetU16(std::string_view in, size_t pos);

}  // namespace irdb
