#include "storage/schema.h"

#include "util/string_utils.h"

namespace irdb {

Schema::Schema(std::vector<Column> columns, bool has_hidden_rowid)
    : columns_(std::move(columns)), has_hidden_rowid_(has_hidden_rowid) {
  offsets_.reserve(columns_.size());
  int off = 0;
  for (const Column& c : columns_) {
    offsets_.push_back(off);
    off += c.EncodedSize();
  }
  if (has_hidden_rowid_) off += 8;
  row_size_ = off;
}

int Schema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

Result<Value> Schema::CoerceForColumn(size_t i, const Value& v) const {
  const Column& c = columns_[i];
  if (v.is_null()) {
    if (c.not_null) {
      return Status::Constraint("column " + c.name + " is NOT NULL");
    }
    return v;
  }
  switch (c.type) {
    case ValueType::kInt:
      if (v.is_int()) return v;
      if (v.is_double()) return Value::Int(static_cast<int64_t>(v.as_double()));
      return Status::Constraint("column " + c.name + " expects INTEGER, got " +
                                std::string(ValueTypeName(v.type())));
    case ValueType::kDouble:
      if (v.is_numeric()) return Value::Double(v.as_double());
      return Status::Constraint("column " + c.name + " expects DOUBLE, got " +
                                std::string(ValueTypeName(v.type())));
    case ValueType::kString:
      if (!v.is_string()) {
        return Status::Constraint("column " + c.name + " expects string, got " +
                                  std::string(ValueTypeName(v.type())));
      }
      if (static_cast<int>(v.as_string().size()) > c.length) {
        return Status::Constraint("value too long for column " + c.name + " (" +
                                  std::to_string(v.as_string().size()) + " > " +
                                  std::to_string(c.length) + ")");
      }
      return v;
    default:
      return Status::Internal("bad column type");
  }
}

}  // namespace irdb
