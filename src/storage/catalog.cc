#include "storage/catalog.h"

#include "util/string_utils.h"

namespace irdb {

Result<HeapTable*> Catalog::CreateTable(const std::string& name, Schema schema,
                                        int page_size) {
  std::string key = ToLowerAscii(name);
  if (tables_.count(key)) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  TableEntry entry;
  entry.table_id = next_table_id_++;
  entry.table =
      std::make_unique<HeapTable>(name, std::move(schema), page_size, pool_);
  HeapTable* ptr = entry.table.get();
  tables_.emplace(std::move(key), std::move(entry));
  return ptr;
}

HeapTable* Catalog::FindTableOfIndex(const std::string& index_name) {
  for (auto& [_, entry] : tables_) {
    if (entry.table->FindSecondaryIndex(index_name) != nullptr) {
      return entry.table.get();
    }
  }
  return nullptr;
}

Status Catalog::DropTable(const std::string& name) {
  std::string key = ToLowerAscii(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) return Status::NotFound("no table " + name);
  tables_.erase(it);
  return Status::Ok();
}

HeapTable* Catalog::Find(const std::string& name) {
  auto it = tables_.find(ToLowerAscii(name));
  return it == tables_.end() ? nullptr : it->second.table.get();
}

const HeapTable* Catalog::Find(const std::string& name) const {
  auto it = tables_.find(ToLowerAscii(name));
  return it == tables_.end() ? nullptr : it->second.table.get();
}

HeapTable* Catalog::FindById(int32_t table_id) {
  for (auto& [_, entry] : tables_) {
    if (entry.table_id == table_id) return entry.table.get();
  }
  return nullptr;
}

Result<int32_t> Catalog::TableId(const std::string& name) const {
  auto it = tables_.find(ToLowerAscii(name));
  if (it == tables_.end()) return Status::NotFound("no table " + name);
  return it->second.table_id;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [_, entry] : tables_) out.push_back(entry.table->name());
  return out;
}

}  // namespace irdb
