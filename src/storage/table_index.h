// Ordered primary-key index supporting equality-prefix lookups.
//
// Keys are vectors of column Values; lookups by a prefix of the key columns
// return every matching row location. RowLocs shift when a DELETE compacts a
// page, so HeapTable notifies the index of slot shifts.
#pragma once

#include <map>
#include <vector>

#include "storage/row_codec.h"
#include "storage/value.h"
#include "util/status.h"

namespace irdb {

struct ValueVectorLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

class TableIndex {
 public:
  explicit TableIndex(std::vector<int> key_columns)
      : key_columns_(std::move(key_columns)) {}

  const std::vector<int>& key_columns() const { return key_columns_; }

  void Insert(const std::vector<Value>& key, RowLoc loc) {
    map_[key].push_back(loc);
  }

  void Erase(const std::vector<Value>& key, RowLoc loc) {
    auto it = map_.find(key);
    IRDB_CHECK_MSG(it != map_.end(), "index erase: key missing");
    auto& locs = it->second;
    for (size_t i = 0; i < locs.size(); ++i) {
      if (locs[i] == loc) {
        locs[i] = locs.back();
        locs.pop_back();
        if (locs.empty()) map_.erase(it);
        return;
      }
    }
    IRDB_CHECK_MSG(false, "index erase: loc missing");
  }

  // A DELETE at (page, slot) shifted every row of that page at slot > `slot`
  // down by one.
  void ShiftAfterDelete(int32_t page, int32_t slot) {
    for (auto& [_, locs] : map_) {
      for (RowLoc& loc : locs) {
        if (loc.page == page && loc.slot > slot) --loc.slot;
      }
    }
  }

  // Collects row locations whose key starts with `prefix` (may be the full
  // key). The result is unordered.
  void LookupPrefix(const std::vector<Value>& prefix,
                    std::vector<RowLoc>* out) const {
    auto it = map_.lower_bound(prefix);
    for (; it != map_.end(); ++it) {
      const std::vector<Value>& key = it->first;
      if (key.size() < prefix.size()) break;
      bool match = true;
      for (size_t i = 0; i < prefix.size(); ++i) {
        if (key[i].Compare(prefix[i]) != 0) {
          match = false;
          break;
        }
      }
      if (!match) break;
      out->insert(out->end(), it->second.begin(), it->second.end());
    }
  }

  size_t entry_count() const { return map_.size(); }

 private:
  std::vector<int> key_columns_;
  std::map<std::vector<Value>, std::vector<RowLoc>, ValueVectorLess> map_;
};

}  // namespace irdb
