// Ordered primary-key index supporting equality-prefix lookups.
//
// Keys are vectors of column Values; lookups by a prefix of the key columns
// return every matching row location. RowLocs shift when a DELETE compacts a
// page, so HeapTable notifies the index of slot shifts; a per-page registry
// of index entries makes that notification O(entries on the page) instead of
// a scan of the whole index.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "storage/row_codec.h"
#include "storage/value.h"
#include "util/status.h"

namespace irdb {

struct ValueVectorLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

class TableIndex {
 public:
  explicit TableIndex(std::vector<int> key_columns)
      : key_columns_(std::move(key_columns)) {}

  const std::vector<int>& key_columns() const { return key_columns_; }

  void Insert(const std::vector<Value>& key, RowLoc loc) {
    auto [it, _] = map_.try_emplace(key);
    auto& locs = it->second;
    // Register the entry with the page unless it already holds a row there
    // (the registry is exact: one registration per (entry, page) pair).
    bool registered = false;
    for (const RowLoc& l : locs) {
      if (l.page == loc.page) {
        registered = true;
        break;
      }
    }
    locs.push_back(loc);
    if (!registered) page_entries_[loc.page].push_back(it);
  }

  void Erase(const std::vector<Value>& key, RowLoc loc) {
    auto it = map_.find(key);
    IRDB_CHECK_MSG(it != map_.end(), "index erase: key missing");
    auto& locs = it->second;
    for (size_t i = 0; i < locs.size(); ++i) {
      if (locs[i] == loc) {
        locs[i] = locs.back();
        locs.pop_back();
        bool page_still_used = false;
        for (const RowLoc& l : locs) {
          if (l.page == loc.page) {
            page_still_used = true;
            break;
          }
        }
        if (!page_still_used) Unregister(loc.page, it);
        if (locs.empty()) map_.erase(it);
        return;
      }
    }
    IRDB_CHECK_MSG(false, "index erase: loc missing");
  }

  // A DELETE at (page, slot) shifted every row of that page at slot > `slot`
  // down by one. Only the entries registered with that page are visited.
  void ShiftAfterDelete(int32_t page, int32_t slot) {
    auto reg = page_entries_.find(page);
    if (reg == page_entries_.end()) return;
    for (Map::iterator entry : reg->second) {
      for (RowLoc& loc : entry->second) {
        if (loc.page == page && loc.slot > slot) --loc.slot;
      }
    }
  }

  // Collects row locations whose key starts with `prefix` (may be the full
  // key). The result is unordered.
  void LookupPrefix(const std::vector<Value>& prefix,
                    std::vector<RowLoc>* out) const {
    auto it = map_.lower_bound(prefix);
    for (; it != map_.end(); ++it) {
      const std::vector<Value>& key = it->first;
      if (key.size() < prefix.size()) break;
      bool match = true;
      for (size_t i = 0; i < prefix.size(); ++i) {
        if (key[i].Compare(prefix[i]) != 0) {
          match = false;
          break;
        }
      }
      if (!match) break;
      out->insert(out->end(), it->second.begin(), it->second.end());
    }
  }

  size_t entry_count() const { return map_.size(); }

 private:
  using Map = std::map<std::vector<Value>, std::vector<RowLoc>, ValueVectorLess>;

  void Unregister(int32_t page, Map::iterator it) {
    auto reg = page_entries_.find(page);
    IRDB_CHECK_MSG(reg != page_entries_.end(), "index registry: page missing");
    auto& entries = reg->second;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (entries[i] == it) {
        entries[i] = entries.back();
        entries.pop_back();
        if (entries.empty()) page_entries_.erase(reg);
        return;
      }
    }
    IRDB_CHECK_MSG(false, "index registry: entry missing");
  }

  std::vector<int> key_columns_;
  Map map_;
  // page -> index entries with at least one row on that page. std::map
  // iterators are stable, so the registry survives unrelated inserts/erases.
  std::unordered_map<int32_t, std::vector<Map::iterator>> page_entries_;
};

}  // namespace irdb
