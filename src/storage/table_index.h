// Ordered table index (primary key or CREATE INDEX secondary) backed by the
// byte-keyed B+ tree.
//
// Key column values encode to order-preserving bytes (storage/bptree.h), so
// an equality prefix over leading key columns is a byte-prefix scan and
// range predicates on the next column are byte-interval scans. RowLocs are
// stable under tombstone deletes, so entries never need fixing up when other
// rows of a page die — the per-page shift registry the compacting heap
// needed is gone.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "storage/bptree.h"
#include "storage/row_codec.h"
#include "storage/value.h"
#include "util/status.h"

namespace irdb {

struct ValueVectorLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

class TableIndex {
 public:
  explicit TableIndex(std::vector<int> key_columns, std::string name = "")
      : key_columns_(std::move(key_columns)), name_(std::move(name)) {}

  const std::vector<int>& key_columns() const { return key_columns_; }
  const std::string& name() const { return name_; }

  void Insert(const std::vector<Value>& key, RowLoc loc) {
    tree_.Insert(EncodeKey(key), PackLoc(loc.page, loc.slot));
  }

  void Erase(const std::vector<Value>& key, RowLoc loc) {
    bool erased = tree_.Erase(EncodeKey(key), PackLoc(loc.page, loc.slot));
    IRDB_CHECK_MSG(erased, "index erase: entry missing");
  }

  // Collects row locations whose key starts with `prefix` (may be the full
  // key), in key order. Prefix values must be coerced to the key columns'
  // types.
  void LookupPrefix(const std::vector<Value>& prefix,
                    std::vector<RowLoc>* out) const {
    std::vector<uint64_t> packed;
    tree_.ScanPrefix(EncodeKey(prefix), &packed);
    AppendLocs(packed, out);
  }

  // Collects row locations whose key starts with `prefix` and whose next
  // key column lies in [lo, hi] (either bound may be absent = unbounded).
  // Bounds are treated as inclusive — callers re-evaluate the full
  // predicate per row, so a strict bound only over-approximates.
  void ScanRange(const std::vector<Value>& prefix,
                 const std::optional<Value>& lo, const std::optional<Value>& hi,
                 std::vector<RowLoc>* out) const {
    std::string lower = EncodeKey(prefix);
    std::string upper = lower;
    if (lo.has_value()) AppendEncodedKeyValue(*lo, &lower);
    if (hi.has_value()) AppendEncodedKeyValue(*hi, &upper);
    std::vector<uint64_t> packed;
    tree_.ScanRange(lower, upper, &packed);
    AppendLocs(packed, out);
  }

  size_t entry_count() const { return tree_.size(); }
  int height() const { return tree_.height(); }

 private:
  static void AppendLocs(const std::vector<uint64_t>& packed,
                         std::vector<RowLoc>* out) {
    out->reserve(out->size() + packed.size());
    for (uint64_t p : packed) {
      out->push_back(RowLoc{UnpackPage(p), UnpackSlot(p)});
    }
  }

  std::vector<int> key_columns_;
  std::string name_;
  BPTree tree_;
};

}  // namespace irdb
