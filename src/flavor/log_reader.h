// FlavorLogReader: vendor-specific transaction-log access (§4).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/database.h"
#include "flavor/repair_op.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace irdb {

class FlavorLogReader {
 public:
  virtual ~FlavorLogReader() = default;

  // Reconstructs every row operation of every *committed* transaction, in
  // log order. Must be called before any compensating statement runs (the
  // Sybase path reads live pages).
  virtual Result<std::vector<RepairOp>> ReadCommitted() = 0;

  virtual std::string name() const = 0;

  // Parallel scan plumbing (DESIGN.md §5c). A null pool keeps the original
  // serial code path; with a pool, readers fan the per-record image
  // decoding out in contiguous log segments stitched back in LSN order.
  void set_pool(util::ThreadPool* pool) { pool_ = pool; }

  // Scan these decoded records instead of the engine's in-memory WAL — the
  // durable-bytes leg of the parallel pipeline (SerializeWal →
  // DecodeWalParallel). Content is identical to wal().records(), so either
  // source yields the same ops.
  void set_scan_override(std::vector<LogRecord> records) {
    scan_override_ = std::move(records);
  }
  void clear_scan_override() { scan_override_.reset(); }

 protected:
  const std::vector<LogRecord>& ScanRecords(const Database& db) const {
    return scan_override_ ? *scan_override_ : db.wal().records();
  }

  util::ThreadPool* pool_ = nullptr;
  std::optional<std::vector<LogRecord>> scan_override_;
};

// Creates the reader matching `db`'s flavor.
std::unique_ptr<FlavorLogReader> MakeLogReader(Database* db);

// Shared helpers for readers --------------------------------------------

// Internal txn ids that have a kCommit record in the WAL.
std::vector<int64_t> CommittedTxnIds(const WalLog& wal);
std::vector<int64_t> CommittedTxnIds(const std::vector<LogRecord>& records);

// Runs `build(i)` for i in [0, n) and collects the non-nullopt results in
// index order. With a multi-lane pool the calls fan out in contiguous
// chunks (ThreadPool::SplitRange) with per-chunk error slots; the stitch
// preserves index order and the lowest-index error wins, so the output —
// values, order, and error — is identical to the serial loop. `build` must
// be a pure function of its index (concurrent calls share no mutable
// state).
template <typename T>
Result<std::vector<T>> ParallelBuild(
    util::ThreadPool* pool, size_t n,
    const std::function<Result<std::optional<T>>(size_t)>& build) {
  std::vector<T> out;
  if (pool == nullptr || pool->lanes() <= 1 || n < 2) {
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      IRDB_ASSIGN_OR_RETURN(std::optional<T> item, build(i));
      if (item.has_value()) out.push_back(std::move(*item));
    }
    return out;
  }
  std::vector<std::optional<T>> slots(n);
  const size_t nchunks =
      util::ThreadPool::SplitRange(static_cast<int64_t>(n), pool->lanes())
          .size();
  std::vector<Status> chunk_status(nchunks, Status::Ok());
  std::vector<size_t> chunk_bad(nchunks, n);
  pool->ParallelFor(static_cast<int64_t>(n),
                    [&](int64_t begin, int64_t end, int chunk) {
                      for (int64_t i = begin; i < end; ++i) {
                        auto item = build(static_cast<size_t>(i));
                        if (!item.ok()) {
                          chunk_status[chunk] = item.status();
                          chunk_bad[chunk] = static_cast<size_t>(i);
                          return;
                        }
                        slots[static_cast<size_t>(i)] = std::move(item).value();
                      }
                    });
  size_t first_bad = n;
  Status first_status = Status::Ok();
  for (size_t c = 0; c < nchunks; ++c) {
    if (!chunk_status[c].ok() && chunk_bad[c] < first_bad) {
      first_bad = chunk_bad[c];
      first_status = chunk_status[c];
    }
  }
  if (first_bad < n) return first_status;
  for (std::optional<T>& slot : slots) {
    if (slot.has_value()) out.push_back(std::move(*slot));
  }
  return out;
}

// Decodes an encoded full row into (column name, value) pairs and pulls out
// the row address / before_trid / trans_dep fields shared by all flavors.
// `image_is_before` selects which image the address is read from.
Status PopulateFromFullImages(const Database& db, const HeapTable& table,
                              const std::string& before_image,
                              const std::string& after_image, RepairOp* op);

}  // namespace irdb
