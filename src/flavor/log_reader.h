// FlavorLogReader: vendor-specific transaction-log access (§4).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "flavor/repair_op.h"
#include "util/status.h"

namespace irdb {

class FlavorLogReader {
 public:
  virtual ~FlavorLogReader() = default;

  // Reconstructs every row operation of every *committed* transaction, in
  // log order. Must be called before any compensating statement runs (the
  // Sybase path reads live pages).
  virtual Result<std::vector<RepairOp>> ReadCommitted() = 0;

  virtual std::string name() const = 0;
};

// Creates the reader matching `db`'s flavor.
std::unique_ptr<FlavorLogReader> MakeLogReader(Database* db);

// Shared helpers for readers --------------------------------------------

// Internal txn ids that have a kCommit record in the WAL.
std::vector<int64_t> CommittedTxnIds(const WalLog& wal);

// Decodes an encoded full row into (column name, value) pairs and pulls out
// the row address / before_trid / trans_dep fields shared by all flavors.
// `image_is_before` selects which image the address is read from.
Status PopulateFromFullImages(const Database& db, const HeapTable& table,
                              const std::string& before_image,
                              const std::string& after_image, RepairOp* op);

}  // namespace irdb
