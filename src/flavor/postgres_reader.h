// PostgreSQL-flavor log reader (§4.2).
//
// PostgreSQL keeps complete before/after row images in its WAL; the paper's
// authors reverse-engineered the format and built a "LogMiner-kind" plugin.
// This reader is that plugin: it walks raw WAL records and decodes the full
// byte images against the catalog's row layout.
#pragma once

#include "flavor/log_reader.h"

namespace irdb {

class PostgresLogReader : public FlavorLogReader {
 public:
  explicit PostgresLogReader(Database* db) : db_(db) {}

  Result<std::vector<RepairOp>> ReadCommitted() override;

  std::string name() const override { return "postgres-walreader"; }

 private:
  Database* db_;
};

}  // namespace irdb
