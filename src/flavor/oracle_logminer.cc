#include "flavor/oracle_logminer.h"

#include <set>

#include "proxy/rewriter.h"
#include "sql/parser.h"
#include "util/string_utils.h"

namespace irdb {

namespace {

// Renders "INSERT INTO t(c1, ..., cn) VALUES (v1, ..., vn)".
std::string RenderInsert(const HeapTable& table, const std::string& image) {
  const Schema& schema = table.schema();
  const RowCodec& codec = table.codec();
  std::string cols, vals;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i) {
      cols.append(", ");
      vals.append(", ");
    }
    cols.append(schema.column(i).name);
    auto v = codec.DecodeColumn(image, i);
    IRDB_CHECK(v.ok());
    vals.append(v->ToSqlLiteral());
  }
  return "INSERT INTO " + table.name() + "(" + cols + ") VALUES (" + vals + ")";
}

std::string RenderDelete(const HeapTable& table, int64_t rowid) {
  return "DELETE FROM " + table.name() + " WHERE rowid = " +
         std::to_string(rowid);
}

// Renders "UPDATE t SET <changed cols from `src`> WHERE rowid = N".
std::string RenderUpdate(const HeapTable& table, const std::string& src,
                         const std::string& other, int64_t rowid) {
  const Schema& schema = table.schema();
  const RowCodec& codec = table.codec();
  std::string sets;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    const size_t off = static_cast<size_t>(schema.ColumnOffset(i));
    const size_t sz = static_cast<size_t>(schema.column(i).EncodedSize());
    if (std::string_view(src).substr(off, sz) ==
        std::string_view(other).substr(off, sz)) {
      continue;
    }
    if (!sets.empty()) sets.append(", ");
    auto v = codec.DecodeColumn(src, i);
    IRDB_CHECK(v.ok());
    sets.append(schema.column(i).name).append(" = ").append(v->ToSqlLiteral());
  }
  return "UPDATE " + table.name() + " SET " + sets +
         " WHERE rowid = " + std::to_string(rowid);
}

}  // namespace

Result<std::vector<LogMinerRow>> BuildLogMinerView(
    Database* db, const std::vector<LogRecord>* records,
    util::ThreadPool* pool) {
  IRDB_CHECK_MSG(db->traits().has_rowid,
                 "LogMiner emulation requires the rowid pseudo-column");
  const std::vector<LogRecord>& recs =
      records != nullptr ? *records : db->wal().records();
  std::vector<int64_t> committed_list = CommittedTxnIds(recs);
  std::set<int64_t> committed(committed_list.begin(), committed_list.end());

  std::vector<size_t> candidates;
  for (size_t i = 0; i < recs.size(); ++i) {
    const LogRecord& rec = recs[i];
    if (rec.IsRowOp() && committed.count(rec.txn_id)) candidates.push_back(i);
  }

  // The expensive part — decoding every column to literal text — is a pure
  // function of one record, so it fans out per log segment.
  return ParallelBuild<LogMinerRow>(
      pool, candidates.size(),
      [&](size_t k) -> Result<std::optional<LogMinerRow>> {
        const LogRecord& rec = recs[candidates[k]];
        HeapTable* table = db->catalog().FindById(rec.table_id);
        if (table == nullptr) return std::optional<LogMinerRow>();
        LogMinerRow row;
        row.scn = rec.lsn;
        row.xid = rec.txn_id;
        row.table_name = table->name();
        const RowCodec& codec = table->codec();
        switch (rec.op) {
          case LogOp::kInsert: {
            const int64_t rowid = codec.DecodeRowId(rec.after_image);
            row.operation = "INSERT";
            row.sql_redo = RenderInsert(*table, rec.after_image);
            row.sql_undo = RenderDelete(*table, rowid);
            break;
          }
          case LogOp::kDelete: {
            const int64_t rowid = codec.DecodeRowId(rec.before_image);
            row.operation = "DELETE";
            row.sql_redo = RenderDelete(*table, rowid);
            row.sql_undo = RenderInsert(*table, rec.before_image);
            break;
          }
          case LogOp::kUpdate: {
            const int64_t rowid = codec.DecodeRowId(rec.before_image);
            row.operation = "UPDATE";
            row.sql_redo =
                RenderUpdate(*table, rec.after_image, rec.before_image, rowid);
            row.sql_undo =
                RenderUpdate(*table, rec.before_image, rec.after_image, rowid);
            break;
          }
          default:
            return std::optional<LogMinerRow>();
        }
        return std::optional<LogMinerRow>(std::move(row));
      });
}

namespace {

// Extracts N from "WHERE rowid = N".
Result<int64_t> RowIdFromWhere(const sql::Expr* where) {
  if (where == nullptr) {
    return Status::InvalidArgument("LogMiner SQL lacks a WHERE clause");
  }
  if (where->kind != sql::ExprKind::kBinary ||
      where->bin_op != sql::BinaryOp::kEq ||
      where->lhs->kind != sql::ExprKind::kColumnRef ||
      !EqualsIgnoreCase(where->lhs->column, "rowid") ||
      where->rhs->kind != sql::ExprKind::kLiteral ||
      !where->rhs->literal.is_int()) {
    return Status::InvalidArgument("LogMiner WHERE is not a rowid equality");
  }
  return where->rhs->literal.as_int();
}

Result<Value> LiteralOf(const sql::Expr& e) {
  if (e.kind == sql::ExprKind::kLiteral) return e.literal;
  if (e.kind == sql::ExprKind::kUnary && e.un_op == sql::UnaryOp::kNeg &&
      e.lhs->kind == sql::ExprKind::kLiteral) {
    const Value& v = e.lhs->literal;
    if (v.is_int()) return Value::Int(-v.as_int());
    if (v.is_double()) return Value::Double(-v.as_double());
  }
  return Status::InvalidArgument("LogMiner SQL has a non-literal value");
}

}  // namespace

Result<std::vector<RepairOp>> OracleLogReader::ReadCommitted() {
  const std::vector<LogRecord>& records = ScanRecords(*db_);
  IRDB_ASSIGN_OR_RETURN(std::vector<LogMinerRow> view,
                        BuildLogMinerView(db_, &records, pool_));
  // Parsing the redo/undo SQL back into ops is per-row pure work; it rides
  // the same segmented fan-out as the view construction above.
  return ParallelBuild<RepairOp>(
      pool_, view.size(), [&](size_t k) -> Result<std::optional<RepairOp>> {
        const LogMinerRow& row = view[k];
        RepairOp op;
        op.lsn = row.scn;
        op.internal_txn_id = row.xid;
        op.table = row.table_name;

        auto redo = sql::Parse(row.sql_redo);
        if (!redo.ok()) return redo.status();
        auto undo = sql::Parse(row.sql_undo);
        if (!undo.ok()) return undo.status();

        if (row.operation == "INSERT") {
          op.op = LogOp::kInsert;
          // Address from the undo DELETE; values from the redo INSERT.
          IRDB_ASSIGN_OR_RETURN(op.row_address,
                                RowIdFromWhere((*undo)->where.get()));
          const sql::Statement& ins = **redo;
          for (size_t i = 0; i < ins.insert_columns.size(); ++i) {
            IRDB_ASSIGN_OR_RETURN(Value v, LiteralOf(*ins.insert_rows[0][i]));
            op.values.emplace_back(ins.insert_columns[i], std::move(v));
          }
        } else if (row.operation == "DELETE") {
          op.op = LogOp::kDelete;
          IRDB_ASSIGN_OR_RETURN(op.row_address,
                                RowIdFromWhere((*redo)->where.get()));
          const sql::Statement& ins = **undo;
          for (size_t i = 0; i < ins.insert_columns.size(); ++i) {
            IRDB_ASSIGN_OR_RETURN(Value v, LiteralOf(*ins.insert_rows[0][i]));
            op.values.emplace_back(ins.insert_columns[i], std::move(v));
          }
        } else if (row.operation == "UPDATE") {
          op.op = LogOp::kUpdate;
          IRDB_ASSIGN_OR_RETURN(op.row_address,
                                RowIdFromWhere((*undo)->where.get()));
          for (const auto& [col, expr] : (*undo)->assignments) {
            IRDB_ASSIGN_OR_RETURN(Value v, LiteralOf(*expr));
            op.values.emplace_back(col, std::move(v));
          }
        } else {
          return Status::Internal("unexpected LogMiner operation " +
                                  row.operation);
        }

        // before_trid: for UPDATE the undo SET restores the old trid (the
        // proxy always modifies trid, so it is in the changed set); for
        // DELETE the undo INSERT carries the full row including trid.
        if (op.op == LogOp::kUpdate || op.op == LogOp::kDelete) {
          for (const auto& [col, v] : op.values) {
            if (EqualsIgnoreCase(col, proxy::kTridColumn) && v.is_int() &&
                v.as_int() > 0) {
              op.before_trid = v.as_int();
            }
          }
        }
        if (op.op == LogOp::kInsert &&
            EqualsIgnoreCase(op.table, proxy::kTransDepTable)) {
          op.is_trans_dep_insert = true;
          for (const auto& [col, v] : op.values) {
            if (EqualsIgnoreCase(col, "tr_id") && v.is_int()) {
              op.inserted_tr_id = v.as_int();
            }
            if (EqualsIgnoreCase(col, "dep_tr_ids") && v.is_string()) {
              op.inserted_dep_payload = v.as_string();
            }
          }
        }
        if (op.op == LogOp::kInsert &&
            EqualsIgnoreCase(op.table, proxy::kTrackingGapsTable)) {
          op.is_tracking_gap_insert = true;
          for (const auto& [col, v] : op.values) {
            if (EqualsIgnoreCase(col, "tr_id") && v.is_int()) {
              op.inserted_tr_id = v.as_int();
            }
          }
        }
        return std::optional<RepairOp>(std::move(op));
      });
}

}  // namespace irdb
