// RepairOp: one fully-reconstructed row operation from the transaction log.
//
// Each flavor's log reader produces these through its own vendor mechanism
// (§4 of the paper): Postgres decodes complete WAL images, Oracle goes
// through a synthesized LogMiner view's redo/undo SQL, Sybase reconstructs
// full rows from changed-bytes-only MODIFY records via the dbcc page /
// offset-adjustment algorithm of §4.3. The repair engine consumes the
// normalized stream for dependency reconstruction and compensation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "storage/value.h"
#include "txn/log_record.h"

namespace irdb {

struct RepairOp {
  int64_t lsn = 0;
  int64_t internal_txn_id = 0;
  LogOp op = LogOp::kInsert;
  std::string table;  // catalog name

  // Row address for compensation targeting: the hidden rowid (Postgres /
  // Oracle flavors) or the injected `rid` identity value (Sybase).
  int64_t row_address = -1;

  // Proxy txn id that last wrote the row, recovered from the before image's
  // trid column. Present for UPDATE/DELETE of tracked tables (§3.3:
  // "transaction dependencies due to UPDATE and DELETE statements are
  // generated at repair time").
  std::optional<int64_t> before_trid;

  // Column values needed to compensate the operation:
  //  - kUpdate: the changed columns' before values (a reverse UPDATE);
  //  - kDelete: every column's value (a re-INSERT);
  //  - kInsert: every column's value (for trans_dep correlation and for
  //    re-deletion targeting; Sybase keeps `rid` here too).
  std::vector<std::pair<std::string, Value>> values;

  // trans_dep correlation (set on kInsert into trans_dep).
  bool is_trans_dep_insert = false;
  std::optional<int64_t> inserted_tr_id;
  std::string inserted_dep_payload;

  // tracking_gaps quarantine (set on kInsert into tracking_gaps): this
  // transaction committed without dependency metadata. inserted_tr_id
  // carries its proxy id; the analyzer treats it conservatively.
  bool is_tracking_gap_insert = false;
};

}  // namespace irdb
