// Vendor-flavor traits.
//
// The paper's framework is portable across DBMSs that differ in exactly the
// observable properties captured here (§4): whether a read-only row-ID
// pseudo-column exists, and how much of an updated row the transaction log
// retains.
#pragma once

#include <string>

namespace irdb {

enum class FlavorKind { kPostgres, kOracle, kSybase };

struct FlavorTraits {
  FlavorKind kind = FlavorKind::kPostgres;
  std::string name;

  // Engine maintains a hidden row ID exposed as a read-only pseudo-column
  // (`rowid`). Sybase has none — the proxy must inject an identity column
  // into every CREATE TABLE (§4.3).
  bool has_rowid = true;
  std::string rowid_name = "rowid";

  // UPDATE log records carry only the changed column slots (Sybase MODIFY)
  // instead of complete before/after images (Postgres/Oracle).
  bool diff_update_log = false;

  static FlavorTraits Postgres() {
    FlavorTraits t;
    t.kind = FlavorKind::kPostgres;
    t.name = "postgres";
    return t;
  }

  static FlavorTraits Oracle() {
    FlavorTraits t;
    t.kind = FlavorKind::kOracle;
    t.name = "oracle";
    return t;
  }

  static FlavorTraits Sybase() {
    FlavorTraits t;
    t.kind = FlavorKind::kSybase;
    t.name = "sybase";
    t.has_rowid = false;
    t.rowid_name.clear();
    t.diff_update_log = true;
    return t;
  }
};

}  // namespace irdb
