#include "flavor/postgres_reader.h"

#include <set>

namespace irdb {

Result<std::vector<RepairOp>> PostgresLogReader::ReadCommitted() {
  const std::vector<LogRecord>& records = ScanRecords(*db_);
  std::vector<int64_t> committed_list = CommittedTxnIds(records);
  std::set<int64_t> committed(committed_list.begin(), committed_list.end());

  // Candidate records first, so the parallel fan-out balances over real work
  // (row ops of committed txns) rather than commit/abort markers.
  std::vector<size_t> candidates;
  for (size_t i = 0; i < records.size(); ++i) {
    const LogRecord& rec = records[i];
    if (rec.IsRowOp() && committed.count(rec.txn_id)) candidates.push_back(i);
  }

  return ParallelBuild<RepairOp>(
      pool_, candidates.size(),
      [&](size_t k) -> Result<std::optional<RepairOp>> {
        const LogRecord& rec = records[candidates[k]];
        HeapTable* table = db_->catalog().FindById(rec.table_id);
        if (table == nullptr) return std::optional<RepairOp>();  // dropped since
        RepairOp op;
        op.lsn = rec.lsn;
        op.internal_txn_id = rec.txn_id;
        op.op = rec.op;
        op.table = table->name();
        IRDB_RETURN_IF_ERROR(PopulateFromFullImages(
            *db_, *table, rec.before_image, rec.after_image, &op));
        return std::optional<RepairOp>(std::move(op));
      });
}

}  // namespace irdb
