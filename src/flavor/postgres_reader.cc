#include "flavor/postgres_reader.h"

#include <set>

namespace irdb {

Result<std::vector<RepairOp>> PostgresLogReader::ReadCommitted() {
  const WalLog& wal = db_->wal();
  std::vector<int64_t> committed_list = CommittedTxnIds(wal);
  std::set<int64_t> committed(committed_list.begin(), committed_list.end());

  std::vector<RepairOp> out;
  for (const LogRecord& rec : wal.records()) {
    if (!rec.IsRowOp() || !committed.count(rec.txn_id)) continue;
    HeapTable* table = db_->catalog().FindById(rec.table_id);
    if (table == nullptr) continue;  // table dropped since
    RepairOp op;
    op.lsn = rec.lsn;
    op.internal_txn_id = rec.txn_id;
    op.op = rec.op;
    op.table = table->name();
    IRDB_RETURN_IF_ERROR(PopulateFromFullImages(*db_, *table, rec.before_image,
                                                rec.after_image, &op));
    out.push_back(std::move(op));
  }
  return out;
}

}  // namespace irdb
