#include "flavor/log_reader.h"

#include <set>

#include "proxy/rewriter.h"
#include "util/string_utils.h"

namespace irdb {

std::vector<int64_t> CommittedTxnIds(const WalLog& wal) {
  return CommittedTxnIds(wal.records());
}

std::vector<int64_t> CommittedTxnIds(const std::vector<LogRecord>& records) {
  std::vector<int64_t> out;
  for (const LogRecord& rec : records) {
    if (rec.op == LogOp::kCommit) out.push_back(rec.txn_id);
  }
  return out;
}

Status PopulateFromFullImages(const Database& db, const HeapTable& table,
                              const std::string& before_image,
                              const std::string& after_image, RepairOp* op) {
  const Schema& schema = table.schema();
  const RowCodec& codec = table.codec();
  const std::string& primary =
      op->op == LogOp::kInsert ? after_image : before_image;

  // Row address: hidden rowid when the flavor keeps one, else the injected
  // identity column.
  if (schema.has_hidden_rowid()) {
    op->row_address = codec.DecodeRowId(primary);
  } else {
    int rid_col = schema.FindColumn(proxy::kSybaseRowIdColumn);
    if (rid_col >= 0) {
      IRDB_ASSIGN_OR_RETURN(Value v, codec.DecodeColumn(primary, rid_col));
      if (v.is_int()) op->row_address = v.as_int();
    }
  }

  // before_trid: the proxy id of the row's previous writer.
  if (op->op == LogOp::kUpdate || op->op == LogOp::kDelete) {
    int trid_col = schema.FindColumn(proxy::kTridColumn);
    if (trid_col >= 0) {
      IRDB_ASSIGN_OR_RETURN(Value v, codec.DecodeColumn(before_image, trid_col));
      if (v.is_int() && v.as_int() > 0) op->before_trid = v.as_int();
    }
  }

  // Restore values.
  switch (op->op) {
    case LogOp::kInsert:
    case LogOp::kDelete: {
      for (size_t i = 0; i < schema.num_columns(); ++i) {
        IRDB_ASSIGN_OR_RETURN(Value v, codec.DecodeColumn(primary, i));
        op->values.emplace_back(schema.column(i).name, std::move(v));
      }
      break;
    }
    case LogOp::kUpdate: {
      // Changed columns only — the reverse UPDATE restores exactly these.
      for (size_t i = 0; i < schema.num_columns(); ++i) {
        const size_t off = static_cast<size_t>(schema.ColumnOffset(i));
        const size_t sz = static_cast<size_t>(schema.column(i).EncodedSize());
        if (std::string_view(before_image).substr(off, sz) !=
            std::string_view(after_image).substr(off, sz)) {
          IRDB_ASSIGN_OR_RETURN(Value v, codec.DecodeColumn(before_image, i));
          op->values.emplace_back(schema.column(i).name, std::move(v));
        }
      }
      break;
    }
    default:
      return Status::Internal("PopulateFromFullImages: not a row op");
  }

  // trans_dep / tracking_gaps correlation.
  if (op->op == LogOp::kInsert &&
      EqualsIgnoreCase(table.name(), proxy::kTransDepTable)) {
    op->is_trans_dep_insert = true;
    for (const auto& [name, v] : op->values) {
      if (EqualsIgnoreCase(name, "tr_id") && v.is_int()) {
        op->inserted_tr_id = v.as_int();
      }
      if (EqualsIgnoreCase(name, "dep_tr_ids") && v.is_string()) {
        op->inserted_dep_payload = v.as_string();
      }
    }
  }
  if (op->op == LogOp::kInsert &&
      EqualsIgnoreCase(table.name(), proxy::kTrackingGapsTable)) {
    op->is_tracking_gap_insert = true;
    for (const auto& [name, v] : op->values) {
      if (EqualsIgnoreCase(name, "tr_id") && v.is_int()) {
        op->inserted_tr_id = v.as_int();
      }
    }
  }
  (void)db;
  return Status::Ok();
}

}  // namespace irdb
