// Sybase-flavor log access (§4.3).
//
// Sybase peculiarities reproduced here:
//  - tables have no row-ID pseudo-column; the proxy injects a
//    `rid numeric identity` column at CREATE TABLE time;
//  - `dbcc log` dumps raw log records: INSERT/DELETE carry the complete row
//    bytes, MODIFY carries only the changed byte ranges, so the injected rid
//    never appears in a MODIFY record;
//  - records address rows by (page, byte offset) *at operation time*, and a
//    DELETE compacts its page, shifting every later row toward the front;
//  - `dbcc page` returns the page's current raw bytes.
//
// RestoreFullImages() is the paper's offset-adjustment algorithm, extended
// to chains of MODIFYs on the same row: scanning forward from a MODIFY
// record, later same-page DELETEs at lower offsets pull the row's current
// offset down; a DELETE *of* the row supplies its image directly; otherwise
// `dbcc page` at the final adjusted offset does; later MODIFYs of the row
// are then rolled back (their before-slots patched in, newest first) to
// recover the row as it stood at the record's time.
#pragma once

#include "flavor/log_reader.h"

namespace irdb {

// What `dbcc log` outputs for one record — every row record in the log,
// including aborted transactions' operations and their rollback
// compensation records (all of which move rows within pages).
struct SybaseLogRow {
  int64_t lsn = 0;
  int64_t xid = 0;
  LogOp op = LogOp::kInsert;  // kInsert / kDelete / kUpdate ("MODIFY")
  int32_t table_id = -1;
  int32_t page = -1;
  int32_t offset = -1;
  int32_t len = 0;
  std::string row_bytes;          // full row (INSERT/DELETE)
  std::vector<ColumnDiff> diff;   // changed slots (MODIFY)
};

// Emulates `dbcc log`. `records` overrides db->wal().records() as the scan
// source (same content expected).
std::vector<SybaseLogRow> DbccLog(Database* db,
                                  const std::vector<LogRecord>* records =
                                      nullptr);

// Emulates `dbcc page`: current raw bytes of one page (empty if bad page).
std::string DbccPage(Database* db, int32_t table_id, int32_t page);

// Reconstructed full images for one log record.
struct SybaseImages {
  std::string before;  // empty for INSERT
  std::string after;   // empty for DELETE
};

// The §4.3 algorithm. `index` selects the record in `log` to reconstruct;
// `page_reader` supplies current page bytes (normally DbccPage);
// `slot_offset(table_id, column)` gives a column slot's byte offset within a
// row (normally from the catalog's schema — injectable so property tests can
// drive the algorithm with synthetic logs).
Result<SybaseImages> RestoreFullImages(
    const std::vector<SybaseLogRow>& log, size_t index,
    const std::function<std::string(int32_t, int32_t)>& page_reader,
    const std::function<size_t(int32_t, int32_t)>& slot_offset);

class SybaseLogReader : public FlavorLogReader {
 public:
  explicit SybaseLogReader(Database* db) : db_(db) {}

  Result<std::vector<RepairOp>> ReadCommitted() override;

  std::string name() const override { return "sybase-dbcc"; }

 private:
  Database* db_;
};

}  // namespace irdb
