// Oracle-flavor log access (§4.1).
//
// Oracle exposes the binary redo log through LogMiner: a relational view
// v$logmnr_contents with one row per log entry, carrying ready-made
// `sql_redo` / `sql_undo` statements addressed by ROWID. We reproduce both
// halves faithfully:
//   1. BuildLogMinerView() converts the raw log into LogMinerRow entries,
//      synthesizing redo/undo SQL text exactly as LogMiner renders it;
//   2. OracleLogReader parses those SQL strings back (with the framework's
//      own parser) into normalized RepairOps — the repair tool never touches
//      the binary log, only the view, matching the paper's prototype.
#pragma once

#include "flavor/log_reader.h"

namespace irdb {

struct LogMinerRow {
  int64_t scn = 0;           // system change number (our LSN)
  int64_t xid = 0;           // internal transaction id
  std::string operation;     // "INSERT" / "DELETE" / "UPDATE"
  std::string table_name;
  std::string sql_redo;
  std::string sql_undo;
};

// Emulates DBMS_LOGMNR: committed transactions only, log order. `records`
// overrides db->wal().records() as the scan source (same content expected);
// a multi-lane `pool` fans the per-record redo/undo SQL rendering out in
// contiguous log segments, stitched back in SCN order.
Result<std::vector<LogMinerRow>> BuildLogMinerView(
    Database* db, const std::vector<LogRecord>* records = nullptr,
    util::ThreadPool* pool = nullptr);

class OracleLogReader : public FlavorLogReader {
 public:
  explicit OracleLogReader(Database* db) : db_(db) {}

  Result<std::vector<RepairOp>> ReadCommitted() override;

  std::string name() const override { return "oracle-logminer"; }

 private:
  Database* db_;
};

}  // namespace irdb
