#include "flavor/log_reader.h"
#include "flavor/oracle_logminer.h"
#include "flavor/postgres_reader.h"
#include "flavor/sybase_reader.h"

namespace irdb {

std::unique_ptr<FlavorLogReader> MakeLogReader(Database* db) {
  switch (db->traits().kind) {
    case FlavorKind::kPostgres:
      return std::make_unique<PostgresLogReader>(db);
    case FlavorKind::kOracle:
      return std::make_unique<OracleLogReader>(db);
    case FlavorKind::kSybase:
      return std::make_unique<SybaseLogReader>(db);
  }
  return nullptr;
}

}  // namespace irdb
