#include "flavor/sybase_reader.h"

#include <set>

#include "proxy/rewriter.h"

namespace irdb {

std::vector<SybaseLogRow> DbccLog(Database* db,
                                  const std::vector<LogRecord>* records) {
  // `dbcc log` dumps every row record — including those of aborted
  // transactions and the compensation records their rollbacks wrote. The
  // §4.3 offset-adjustment algorithm needs all of them: an aborted DELETE
  // (or a rollback's compensating DELETE) moves rows just like a committed
  // one.
  const std::vector<LogRecord>& recs =
      records != nullptr ? *records : db->wal().records();
  std::vector<SybaseLogRow> out;
  for (const LogRecord& rec : recs) {
    if (!rec.IsRowOp()) continue;
    SybaseLogRow row;
    row.lsn = rec.lsn;
    row.xid = rec.txn_id;
    row.op = rec.op;
    row.table_id = rec.table_id;
    row.page = rec.page;
    row.offset = rec.offset;
    row.len = rec.len;
    if (rec.op == LogOp::kInsert) row.row_bytes = rec.after_image;
    if (rec.op == LogOp::kDelete) row.row_bytes = rec.before_image;
    if (rec.op == LogOp::kUpdate) row.diff = rec.diff;
    out.push_back(std::move(row));
  }
  return out;
}

std::string DbccPage(Database* db, int32_t table_id, int32_t page) {
  HeapTable* table = db->catalog().FindById(table_id);
  if (table == nullptr) return {};
  const Page* p = table->GetPage(page);
  if (p == nullptr) return {};
  return std::string(p->RawBytes());
}

Result<SybaseImages> RestoreFullImages(
    const std::vector<SybaseLogRow>& log, size_t index,
    const std::function<std::string(int32_t, int32_t)>& page_reader,
    const std::function<size_t(int32_t, int32_t)>& slot_offset) {
  IRDB_CHECK(index < log.size());
  const SybaseLogRow& rm = log[index];

  auto patch = [&](std::string* image, const std::vector<ColumnDiff>& diff,
                   bool use_before) {
    for (const ColumnDiff& d : diff) {
      const size_t off = slot_offset(rm.table_id, d.column);
      const std::string& slot = use_before ? d.before : d.after;
      IRDB_CHECK(off + slot.size() <= image->size());
      image->replace(off, slot.size(), slot);
    }
  };

  SybaseImages images;
  if (rm.op == LogOp::kInsert) {
    images.after = rm.row_bytes;
    return images;
  }
  if (rm.op == LogOp::kDelete) {
    images.before = rm.row_bytes;
    return images;
  }

  // MODIFY: deletes tombstone slots in place, so the row's offset never
  // changes (paper step 2 degenerates to identity — a strictly stronger
  // movement property than §4.3 assumes). Collect later MODIFYs of this row
  // to roll back; the loop stops at the row's own DELETE, so records of any
  // row that later reuses the slot are never misattributed.
  const int32_t cur_off = rm.offset;
  std::string base;
  bool have_base = false;
  std::vector<const SybaseLogRow*> later_mods;
  for (size_t j = index + 1; j < log.size(); ++j) {
    const SybaseLogRow& l = log[j];
    if (l.table_id != rm.table_id || l.page != rm.page) continue;
    if (l.op == LogOp::kDelete && l.offset == cur_off) {
      // Our row itself was deleted later: the DELETE record holds its
      // complete image as of that moment (paper's special case).
      base = l.row_bytes;
      have_base = true;
      break;
    }
    if (l.op == LogOp::kUpdate && l.offset == cur_off) {
      later_mods.push_back(&l);
    }
  }
  if (!have_base) {
    // Row still lives in the page: read its current bytes (paper step 3).
    std::string page_bytes = page_reader(rm.table_id, rm.page);
    if (static_cast<size_t>(cur_off) + static_cast<size_t>(rm.len) >
        page_bytes.size()) {
      return Status::Internal("dbcc page: adjusted offset out of range");
    }
    base = page_bytes.substr(static_cast<size_t>(cur_off),
                             static_cast<size_t>(rm.len));
  }
  // Roll back every later MODIFY, newest first, to recover the row as this
  // record left it.
  for (auto it = later_mods.rbegin(); it != later_mods.rend(); ++it) {
    patch(&base, (*it)->diff, /*use_before=*/true);
  }
  images.after = base;
  images.before = base;
  patch(&images.before, rm.diff, /*use_before=*/true);
  return images;
}

Result<std::vector<RepairOp>> SybaseLogReader::ReadCommitted() {
  const std::vector<LogRecord>& records = ScanRecords(*db_);
  std::vector<SybaseLogRow> log = DbccLog(db_, &records);
  std::vector<int64_t> committed_list = CommittedTxnIds(records);
  std::set<int64_t> committed(committed_list.begin(), committed_list.end());
  // Compensation records carry an aborted transaction's id, so the committed
  // filter below removes them from the repair stream; they still participate
  // in offset adjustment through `log`.
  std::set<int64_t> clr_lsns;
  for (const LogRecord& rec : records) {
    if (rec.is_clr) clr_lsns.insert(rec.lsn);
  }

  auto page_reader = [this](int32_t table_id, int32_t page) {
    return DbccPage(db_, table_id, page);
  };
  auto slot_offset = [this](int32_t table_id, int32_t column) -> size_t {
    HeapTable* table = db_->catalog().FindById(table_id);
    IRDB_CHECK(table != nullptr);
    return static_cast<size_t>(table->schema().ColumnOffset(column));
  };

  std::vector<size_t> candidates;
  for (size_t i = 0; i < log.size(); ++i) {
    const SybaseLogRow& rec = log[i];
    if (committed.count(rec.xid) && !clr_lsns.count(rec.lsn)) {
      candidates.push_back(i);
    }
  }

  // RestoreFullImages only *reads* the shared log vector and live pages
  // (repair runs with the workload quiesced), so each reconstruction is a
  // pure function of its index and fans out per log segment.
  return ParallelBuild<RepairOp>(
      pool_, candidates.size(),
      [&](size_t k) -> Result<std::optional<RepairOp>> {
        const size_t i = candidates[k];
        const SybaseLogRow& rec = log[i];
        HeapTable* table = db_->catalog().FindById(rec.table_id);
        if (table == nullptr) return std::optional<RepairOp>();
        IRDB_ASSIGN_OR_RETURN(
            SybaseImages images,
            RestoreFullImages(log, i, page_reader, slot_offset));
        RepairOp op;
        op.lsn = rec.lsn;
        op.internal_txn_id = rec.xid;
        op.op = rec.op;
        op.table = table->name();
        IRDB_RETURN_IF_ERROR(PopulateFromFullImages(*db_, *table, images.before,
                                                    images.after, &op));
        return std::optional<RepairOp>(std::move(op));
      });
}

}  // namespace irdb
