// RemoteConnection: DbConnection over a Channel (client side of the wire).
#pragma once

#include <memory>
#include <string>

#include "wire/channel.h"
#include "wire/connection.h"
#include "wire/protocol.h"

namespace irdb {

class RemoteConnection : public DbConnection {
 public:
  // Establishes a session over `channel` (which it does not own).
  static Result<std::unique_ptr<RemoteConnection>> Connect(Channel* channel) {
    WireRequest req;
    req.kind = WireRequest::Kind::kConnect;
    auto resp = DecodeResponse(channel->RoundTrip(EncodeRequest(req)));
    if (!resp.ok()) return resp.status();
    if (!resp->ok) return Status(resp->error_code, resp->error_message);
    return std::unique_ptr<RemoteConnection>(
        new RemoteConnection(channel, resp->session));
  }

  ~RemoteConnection() override {
    WireRequest req;
    req.kind = WireRequest::Kind::kDisconnect;
    req.session = session_;
    channel_->RoundTrip(EncodeRequest(req));
  }

  // The AST overload is inherited: it prints and ships text, because SQL
  // text is the only portable wire format.
  using DbConnection::Execute;

  Result<ResultSet> Execute(std::string_view sql) override {
    WireRequest req;
    req.kind = WireRequest::Kind::kExec;
    req.session = session_;
    req.sql = std::string(sql);
    auto resp = DecodeResponse(channel_->RoundTrip(EncodeRequest(req)));
    if (!resp.ok()) return resp.status();
    if (!resp->ok) return Status(resp->error_code, resp->error_message);
    return std::move(resp->result);
  }

  void SetAnnotation(std::string_view label) override {
    WireRequest req;
    req.kind = WireRequest::Kind::kAnnotate;
    req.session = session_;
    req.sql = std::string(label);
    channel_->RoundTrip(EncodeRequest(req));
  }

  std::string Describe() const override { return "remote"; }

 private:
  RemoteConnection(Channel* channel, int64_t session)
      : channel_(channel), session_(session) {}

  Channel* channel_;
  int64_t session_;
};

}  // namespace irdb
