// RemoteConnection: DbConnection over a Channel (client side of the wire).
//
// The client is the first line of fault tolerance: a lost round trip
// (StatusCode::kUnavailable) never reached the server, so the client retries
// it with exponential backoff, charging the wait to the channel's virtual
// clock. Non-retryable errors (real server-side failures) pass through.
#pragma once

#include <memory>
#include <string>

#include "wire/channel.h"
#include "wire/connection.h"
#include "wire/protocol.h"

namespace irdb {

// Bounded exponential backoff for retryable wire failures.
struct RetryPolicy {
  int max_attempts = 4;                  // total attempts, including the first
  double initial_backoff_seconds = 5e-4;
  double backoff_multiplier = 2.0;

  static RetryPolicy None() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }
};

// Sends `req`, retrying retryable transport failures per `policy`. Backoff
// between attempts is charged to the channel's virtual clock. `retries`
// (optional) is incremented once per re-attempt.
inline Result<WireResponse> CallWithRetry(Channel* channel,
                                          const WireRequest& req,
                                          const RetryPolicy& policy,
                                          int64_t* retries = nullptr) {
  const std::string encoded = EncodeRequest(req);
  double backoff = policy.initial_backoff_seconds;
  for (int attempt = 1;; ++attempt) {
    auto raw = channel->RoundTrip(encoded);
    if (raw.ok()) return DecodeResponse(*raw);
    if (!raw.status().IsRetryable() || attempt >= policy.max_attempts) {
      return raw.status();
    }
    if (retries != nullptr) ++*retries;
    if (channel->clock() != nullptr) channel->clock()->Advance(backoff);
    backoff *= policy.backoff_multiplier;
  }
}

class RemoteConnection : public DbConnection {
 public:
  // Establishes a session over `channel` (which it does not own).
  static Result<std::unique_ptr<RemoteConnection>> Connect(
      Channel* channel, RetryPolicy policy = RetryPolicy()) {
    WireRequest req;
    req.kind = WireRequest::Kind::kConnect;
    auto resp = CallWithRetry(channel, req, policy);
    if (!resp.ok()) return resp.status();
    if (!resp->ok) return Status(resp->error_code, resp->error_message);
    return std::unique_ptr<RemoteConnection>(
        new RemoteConnection(channel, resp->session, policy));
  }

  ~RemoteConnection() override {
    WireRequest req;
    req.kind = WireRequest::Kind::kDisconnect;
    req.session = session_;
    (void)CallWithRetry(channel_, req, policy_, &retries_);
  }

  // The AST overload is inherited: it prints and ships text, because SQL
  // text is the only portable wire format.
  using DbConnection::Execute;

  Result<ResultSet> Execute(std::string_view sql) override {
    WireRequest req;
    req.kind = WireRequest::Kind::kExec;
    req.session = session_;
    req.sql = std::string(sql);
    auto resp = CallWithRetry(channel_, req, policy_, &retries_);
    if (!resp.ok()) return resp.status();
    if (!resp->ok) return Status(resp->error_code, resp->error_message);
    return std::move(resp->result);
  }

  void SetAnnotation(std::string_view label) override {
    WireRequest req;
    req.kind = WireRequest::Kind::kAnnotate;
    req.session = session_;
    req.sql = std::string(label);
    (void)CallWithRetry(channel_, req, policy_, &retries_);
  }

  std::string Describe() const override { return "remote"; }

  void set_retry_policy(RetryPolicy policy) { policy_ = policy; }
  // Re-attempted round trips (after retryable transport failures).
  int64_t retries() const { return retries_; }

 private:
  RemoteConnection(Channel* channel, int64_t session, RetryPolicy policy)
      : channel_(channel), session_(session), policy_(policy) {}

  Channel* channel_;
  int64_t session_;
  RetryPolicy policy_;
  int64_t retries_ = 0;
};

}  // namespace irdb
