#include "wire/protocol.h"

#include <cstdio>

#include "util/string_utils.h"

namespace irdb {

namespace {

// Escapes newlines and backslashes so any string fits on one line.
std::string EscapeLine(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out.append("\\\\"); break;
      case '\n': out.append("\\n"); break;
      case '\r': out.append("\\r"); break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeLine(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        default: out.push_back(s[i]);
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

// Pulls the next line (without '\n') off `rest`.
bool NextLine(std::string_view* rest, std::string_view* line) {
  if (rest->empty()) return false;
  size_t nl = rest->find('\n');
  if (nl == std::string_view::npos) {
    *line = *rest;
    *rest = std::string_view();
  } else {
    *line = rest->substr(0, nl);
    *rest = rest->substr(nl + 1);
  }
  return true;
}

}  // namespace

std::string EncodeValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull: return "N";
    case ValueType::kInt: return "I" + std::to_string(v.as_int());
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof buf, "D%.17g", v.as_double());
      return buf;
    }
    case ValueType::kString: return "S" + EscapeLine(v.as_string());
  }
  return "N";
}

Result<Value> DecodeValue(std::string_view token) {
  if (token.empty()) return Status::InvalidArgument("empty value token");
  std::string_view payload = token.substr(1);
  switch (token[0]) {
    case 'N': return Value::Null();
    case 'I': {
      int64_t i = 0;
      if (!ParseInt64(payload, &i)) {
        return Status::InvalidArgument("bad int token");
      }
      return Value::Int(i);
    }
    case 'D': {
      double d = 0;
      if (!ParseDouble(payload, &d)) {
        return Status::InvalidArgument("bad double token");
      }
      return Value::Double(d);
    }
    case 'S': return Value::Str(UnescapeLine(payload));
    default: return Status::InvalidArgument("bad value tag");
  }
}

std::string EncodeRequest(const WireRequest& req) {
  switch (req.kind) {
    case WireRequest::Kind::kConnect:
      return "CONNECT\n";
    case WireRequest::Kind::kDisconnect:
      return "BYE " + std::to_string(req.session) + "\n";
    case WireRequest::Kind::kExec:
      return "EXEC " + std::to_string(req.session) + "\n" + req.sql;
    case WireRequest::Kind::kAnnotate:
      return "ANNOT " + std::to_string(req.session) + "\n" + req.sql;
  }
  return "";
}

Result<WireRequest> DecodeRequest(std::string_view bytes) {
  std::string_view rest = bytes;
  std::string_view header;
  if (!NextLine(&rest, &header)) {
    return Status::InvalidArgument("empty request");
  }
  WireRequest req;
  if (header == "CONNECT") {
    req.kind = WireRequest::Kind::kConnect;
    return req;
  }
  if (StartsWith(header, "BYE ")) {
    req.kind = WireRequest::Kind::kDisconnect;
    if (!ParseInt64(header.substr(4), &req.session)) {
      return Status::InvalidArgument("bad BYE session");
    }
    return req;
  }
  if (StartsWith(header, "EXEC ")) {
    req.kind = WireRequest::Kind::kExec;
    if (!ParseInt64(header.substr(5), &req.session)) {
      return Status::InvalidArgument("bad EXEC session");
    }
    req.sql = std::string(rest);
    return req;
  }
  if (StartsWith(header, "ANNOT ")) {
    req.kind = WireRequest::Kind::kAnnotate;
    if (!ParseInt64(header.substr(6), &req.session)) {
      return Status::InvalidArgument("bad ANNOT session");
    }
    req.sql = std::string(rest);
    return req;
  }
  return Status::InvalidArgument("bad request header");
}

const char* ErrorReasonToken(ErrorReason r) {
  switch (r) {
    case ErrorReason::kNet:
      return "net";
    case ErrorReason::kDegraded:
      return "degraded";
    case ErrorReason::kQuarantined:
      return "quarantined";
    case ErrorReason::kWrongShard:
      return "wrong_shard";
    case ErrorReason::kNone:
      break;
  }
  return "";
}

ErrorReason ErrorReasonFromStatus(const Status& s) {
  if (s.code() != StatusCode::kUnavailable) return ErrorReason::kNone;
  if (s.message().rfind(kQuarantineTag, 0) == 0) {
    return ErrorReason::kQuarantined;
  }
  if (s.message().rfind(kDegradedTag, 0) == 0) return ErrorReason::kDegraded;
  if (s.message().rfind(kWrongShardTag, 0) == 0) {
    return ErrorReason::kWrongShard;
  }
  return ErrorReason::kNet;
}

std::string EncodeResponse(const WireResponse& resp) {
  if (!resp.ok) {
    std::string out = "ERR " + std::string(StatusCodeName(resp.error_code));
    if (resp.error_reason != ErrorReason::kNone) {
      out += " ";
      out += ErrorReasonToken(resp.error_reason);
    }
    out += "\n" + EscapeLine(resp.error_message) + "\n";
    return out;
  }
  const ResultSet& rs = resp.result;
  std::string out = "OK " + std::to_string(resp.session) + " " +
                    std::to_string(rs.affected) + " " +
                    std::to_string(rs.last_rowid) + " " +
                    std::to_string(rs.last_identity) + " " +
                    std::to_string(rs.columns.size()) + " " +
                    std::to_string(rs.rows.size()) + "\n";
  for (const std::string& c : rs.columns) {
    out.append(EscapeLine(c)).push_back('\n');
  }
  for (const auto& row : rs.rows) {
    for (const Value& v : row) {
      out.append(EncodeValue(v)).push_back('\n');
    }
  }
  return out;
}

Result<WireResponse> DecodeResponse(std::string_view bytes) {
  std::string_view rest = bytes;
  std::string_view header;
  if (!NextLine(&rest, &header)) {
    return Status::InvalidArgument("empty response");
  }
  WireResponse resp;
  if (StartsWith(header, "ERR ")) {
    resp.ok = false;
    auto err_fields = SplitNonEmpty(header.substr(4), ' ');
    const std::string code =
        err_fields.empty() ? std::string() : std::string(err_fields[0]);
    resp.error_code = StatusCode::kInternal;
    for (int c = 0; c <= static_cast<int>(StatusCode::kUnavailable); ++c) {
      if (code == StatusCodeName(static_cast<StatusCode>(c))) {
        resp.error_code = static_cast<StatusCode>(c);
        break;
      }
    }
    if (err_fields.size() > 1) {
      // Optional machine-readable reason token; unknown tokens are ignored
      // (kNone) so older clients survive newer servers and vice versa.
      for (ErrorReason r : {ErrorReason::kNet, ErrorReason::kDegraded,
                            ErrorReason::kQuarantined,
                            ErrorReason::kWrongShard}) {
        if (err_fields[1] == ErrorReasonToken(r)) {
          resp.error_reason = r;
          break;
        }
      }
    }
    std::string_view msg;
    NextLine(&rest, &msg);
    resp.error_message = UnescapeLine(msg);
    return resp;
  }
  if (!StartsWith(header, "OK ")) {
    return Status::InvalidArgument("bad response header");
  }
  resp.ok = true;
  auto fields = SplitNonEmpty(header.substr(3), ' ');
  if (fields.size() != 6) return Status::InvalidArgument("bad OK header");
  int64_t ncols = 0, nrows = 0;
  if (!ParseInt64(fields[0], &resp.session) ||
      !ParseInt64(fields[1], &resp.result.affected) ||
      !ParseInt64(fields[2], &resp.result.last_rowid) ||
      !ParseInt64(fields[3], &resp.result.last_identity) ||
      !ParseInt64(fields[4], &ncols) || !ParseInt64(fields[5], &nrows)) {
    return Status::InvalidArgument("bad OK header fields");
  }
  // Hostile-header guard: the body must physically fit the remaining bytes
  // (every column name / value line is at least one byte), so reject
  // negative or inflated counts before any count-sized reserve can run.
  const int64_t remaining = static_cast<int64_t>(rest.size());
  if (ncols < 0 || nrows < 0 || ncols > remaining ||
      (ncols > 0 && nrows > remaining / ncols) ||
      (ncols == 0 && nrows > remaining)) {
    return Status::InvalidArgument("OK header counts exceed body size");
  }
  for (int64_t i = 0; i < ncols; ++i) {
    std::string_view line;
    if (!NextLine(&rest, &line)) {
      return Status::InvalidArgument("truncated column list");
    }
    resp.result.columns.push_back(UnescapeLine(line));
  }
  resp.result.rows.reserve(static_cast<size_t>(nrows));
  for (int64_t r = 0; r < nrows; ++r) {
    std::vector<Value> row;
    row.reserve(static_cast<size_t>(ncols));
    for (int64_t c = 0; c < ncols; ++c) {
      std::string_view line;
      if (!NextLine(&rest, &line)) {
        return Status::InvalidArgument("truncated row data");
      }
      IRDB_ASSIGN_OR_RETURN(Value v, DecodeValue(line));
      row.push_back(std::move(v));
    }
    resp.result.rows.push_back(std::move(row));
  }
  return resp;
}

std::string EncodeFrame(std::string_view payload) {
  IRDB_CHECK_MSG(payload.size() <= 0xffffffffull, "frame payload > 4 GiB");
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.push_back(static_cast<char>(kFrameMagic));
  out.push_back(static_cast<char>(kFrameVersion));
  out.push_back(static_cast<char>((len >> 24) & 0xff));
  out.push_back(static_cast<char>((len >> 16) & 0xff));
  out.push_back(static_cast<char>((len >> 8) & 0xff));
  out.push_back(static_cast<char>(len & 0xff));
  out.append(payload);
  return out;
}

void FrameDecoder::Feed(std::string_view bytes) {
  if (poisoned_) return;  // the stream is already condemned
  // Compact the consumed prefix before growing, so a long-lived session's
  // buffer stays proportional to the unconsumed tail.
  if (pos_ > 0 && (pos_ >= buffer_.size() || pos_ > 64 * 1024)) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(bytes);
}

Result<bool> FrameDecoder::Next(std::string* payload) {
  if (poisoned_) return Status::InvalidArgument("frame stream is corrupt");
  const size_t avail = buffer_.size() - pos_;
  // Validate magic/version as soon as the first bytes arrive — a stray
  // client is rejected before it can stream a whole bogus frame.
  const auto* p = reinterpret_cast<const uint8_t*>(buffer_.data()) + pos_;
  if (avail >= 1 && p[0] != kFrameMagic) {
    poisoned_ = true;
    return Status::InvalidArgument("bad frame magic");
  }
  if (avail >= 2 && p[1] != kFrameVersion) {
    poisoned_ = true;
    return Status::InvalidArgument("unsupported frame version");
  }
  if (avail < kFrameHeaderBytes) return false;
  const uint64_t len = (static_cast<uint64_t>(p[2]) << 24) |
                       (static_cast<uint64_t>(p[3]) << 16) |
                       (static_cast<uint64_t>(p[4]) << 8) |
                       static_cast<uint64_t>(p[5]);
  // The length cap fires before any len-sized allocation: the oversized
  // frame's body is never buffered past what already arrived.
  if (len > max_frame_bytes_) {
    poisoned_ = true;
    return Status::InvalidArgument("frame exceeds max size (" +
                                   std::to_string(len) + " > " +
                                   std::to_string(max_frame_bytes_) + ")");
  }
  if (avail < kFrameHeaderBytes + len) return false;
  // Exact-length consumption: precisely header + len bytes leave the
  // buffer; anything after them is the next frame's prefix.
  payload->assign(buffer_, pos_ + kFrameHeaderBytes, len);
  pos_ += kFrameHeaderBytes + len;
  return true;
}

}  // namespace irdb
