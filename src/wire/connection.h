// DbConnection: the statement-level interface every component programs
// against — the TPC-C driver, the intercepting proxy, and the repair engine
// all speak SQL text through it, mirroring the paper's JDBC-driver boundary.
#pragma once

#include <string>
#include <string_view>

#include "engine/database.h"
#include "engine/result_set.h"
#include "util/status.h"

namespace irdb {

class DbConnection {
 public:
  virtual ~DbConnection() = default;

  // Executes one SQL statement.
  virtual Result<ResultSet> Execute(std::string_view sql) = 0;

  // Labels the current transaction for the `annot` table / dependency-graph
  // display (paper Fig. 3). No-op on untracked connections.
  virtual void SetAnnotation(std::string_view label) { (void)label; }

  // Human-readable description of the connection stack (for diagnostics).
  virtual std::string Describe() const = 0;
};

// In-process connection straight into the engine (the "real JDBC driver"
// sitting next to the DBMS server).
class DirectConnection : public DbConnection {
 public:
  explicit DirectConnection(Database* db)
      : db_(db), session_(db->OpenSession()) {}
  ~DirectConnection() override { db_->CloseSession(session_); }

  DirectConnection(const DirectConnection&) = delete;
  DirectConnection& operator=(const DirectConnection&) = delete;

  Result<ResultSet> Execute(std::string_view sql) override {
    return db_->Execute(session_, sql);
  }

  std::string Describe() const override { return "direct"; }

  Database* database() { return db_; }

 private:
  Database* db_;
  int64_t session_;
};

}  // namespace irdb
