// DbConnection: the statement-level interface every component programs
// against — the TPC-C driver, the intercepting proxy, and the repair engine
// all speak SQL text through it, mirroring the paper's JDBC-driver boundary.
#pragma once

#include <string>
#include <string_view>

#include "engine/database.h"
#include "engine/result_set.h"
#include "sql/printer.h"
#include "util/status.h"

namespace irdb {

class DbConnection {
 public:
  virtual ~DbConnection() = default;

  // Executes one SQL statement.
  virtual Result<ResultSet> Execute(std::string_view sql) = 0;

  // Executes an already-parsed statement. In-process connections hand the
  // AST straight to the engine, skipping the print -> re-parse round trip;
  // the default (and the wire/remote implementation) falls back to printing,
  // which keeps SQL text the only on-the-wire interface, per the paper.
  virtual Result<ResultSet> Execute(const sql::Statement& stmt) {
    return Execute(std::string_view(sql::PrintStatement(stmt)));
  }

  // Labels the current transaction for the `annot` table / dependency-graph
  // display (paper Fig. 3). No-op on untracked connections.
  virtual void SetAnnotation(std::string_view label) { (void)label; }

  // Human-readable description of the connection stack (for diagnostics).
  virtual std::string Describe() const = 0;
};

// In-process connection straight into the engine (the "real JDBC driver"
// sitting next to the DBMS server).
class DirectConnection : public DbConnection {
 public:
  explicit DirectConnection(Database* db)
      : db_(db), session_(db->OpenSession()) {}
  ~DirectConnection() override { db_->CloseSession(session_); }

  DirectConnection(const DirectConnection&) = delete;
  DirectConnection& operator=(const DirectConnection&) = delete;

  Result<ResultSet> Execute(std::string_view sql) override {
    return db_->Execute(session_, sql);
  }

  // AST fast path: no print, no engine re-parse.
  Result<ResultSet> Execute(const sql::Statement& stmt) override {
    return db_->ExecuteParsed(session_, stmt);
  }

  std::string Describe() const override { return "direct"; }

  Database* database() { return db_; }
  int64_t session_id() const { return session_; }

 private:
  Database* db_;
  int64_t session_;
};

}  // namespace irdb
