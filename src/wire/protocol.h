// Text wire protocol.
//
// The paper's dual-proxy design hinges on SQL crossing the wire "in text
// format" (Figures 1 and 2); this codec is that format. Requests and
// responses are fully serialized to bytes so the simulated network can
// charge for the real payload sizes (the tracking proxy's extra columns and
// statements inflate them, which is part of the measured overhead).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "engine/result_set.h"
#include "util/status.h"

namespace irdb {

struct WireRequest {
  enum class Kind { kConnect, kExec, kDisconnect, kAnnotate };
  Kind kind = Kind::kExec;
  int64_t session = -1;
  std::string sql;  // SQL text (kExec) or annotation label (kAnnotate)
};

// Machine-readable reason token carried on the wire error frame
// ("ERR <code> [reason]"), classifying kUnavailable errors so clients can
// tell transport loss, degraded-mode backpressure, online-repair quarantine
// rejects, and sharding misroutes apart without parsing prose. kNone for
// every other code (the token is simply absent on the wire).
enum class ErrorReason { kNone, kNet, kDegraded, kQuarantined, kWrongShard };

// Wire token for a reason ("" for kNone).
const char* ErrorReasonToken(ErrorReason r);

// Classifies a status for the wire: kUnavailable splits on the message
// prefix (util/status.h's kQuarantineTag / kDegradedTag, default kNet);
// everything else is kNone.
ErrorReason ErrorReasonFromStatus(const Status& s);

struct WireResponse {
  bool ok = false;
  StatusCode error_code = StatusCode::kOk;
  ErrorReason error_reason = ErrorReason::kNone;
  std::string error_message;
  int64_t session = -1;  // for kConnect
  ResultSet result;
};

std::string EncodeRequest(const WireRequest& req);
Result<WireRequest> DecodeRequest(std::string_view bytes);

std::string EncodeResponse(const WireResponse& resp);
Result<WireResponse> DecodeResponse(std::string_view bytes);

// Single-value codecs (exposed for tests).
std::string EncodeValue(const Value& v);
Result<Value> DecodeValue(std::string_view token);

// --- frame layer -----------------------------------------------------------
//
// When requests/responses cross a real byte stream (src/net), each message
// is wrapped in a length-prefixed frame:
//
//   [magic 0xDB] [version 0x01] [length u32 big-endian] [payload]
//
// The magic/version pair rejects stray traffic (someone pointing a browser
// at the port) before any allocation, and the length field is validated
// against a hard cap so a hostile 4 GiB header cannot balloon memory. The
// in-process LoopbackChannel keeps passing whole payloads — framing is a
// transport concern, not a protocol one.

inline constexpr uint8_t kFrameMagic = 0xDB;
inline constexpr uint8_t kFrameVersion = 0x01;
inline constexpr size_t kFrameHeaderBytes = 6;
inline constexpr size_t kDefaultMaxFrameBytes = 8 * 1024 * 1024;

std::string EncodeFrame(std::string_view payload);

// Incremental frame parser for a receive stream. Feed() appends raw bytes;
// Next() pops complete payloads one at a time, consuming exactly
// header + length bytes per frame (trailing partial frames stay buffered).
// A magic/version mismatch or an over-limit length poisons the decoder:
// every later call returns kInvalidArgument and the connection must be
// dropped (there is no way to resynchronize a corrupt length-prefixed
// stream).
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(std::string_view bytes);

  // true: one payload popped into *payload. false: need more bytes.
  Result<bool> Next(std::string* payload);

  size_t buffered_bytes() const { return buffer_.size() - pos_; }
  bool poisoned() const { return poisoned_; }

 private:
  std::string buffer_;
  size_t pos_ = 0;  // consumed prefix of buffer_, compacted opportunistically
  size_t max_frame_bytes_;
  bool poisoned_ = false;
};

}  // namespace irdb
