// Text wire protocol.
//
// The paper's dual-proxy design hinges on SQL crossing the wire "in text
// format" (Figures 1 and 2); this codec is that format. Requests and
// responses are fully serialized to bytes so the simulated network can
// charge for the real payload sizes (the tracking proxy's extra columns and
// statements inflate them, which is part of the measured overhead).
#pragma once

#include <string>
#include <string_view>

#include "engine/result_set.h"
#include "util/status.h"

namespace irdb {

struct WireRequest {
  enum class Kind { kConnect, kExec, kDisconnect, kAnnotate };
  Kind kind = Kind::kExec;
  int64_t session = -1;
  std::string sql;  // SQL text (kExec) or annotation label (kAnnotate)
};

struct WireResponse {
  bool ok = false;
  StatusCode error_code = StatusCode::kOk;
  std::string error_message;
  int64_t session = -1;  // for kConnect
  ResultSet result;
};

std::string EncodeRequest(const WireRequest& req);
Result<WireRequest> DecodeRequest(std::string_view bytes);

std::string EncodeResponse(const WireResponse& resp);
Result<WireResponse> DecodeResponse(std::string_view bytes);

// Single-value codecs (exposed for tests).
std::string EncodeValue(const Value& v);
Result<Value> DecodeValue(std::string_view token);

}  // namespace irdb
