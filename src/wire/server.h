// DbServer: decodes wire requests, runs them on the engine, encodes replies.
#pragma once

#include <string>
#include <string_view>

#include "engine/database.h"
#include "wire/protocol.h"

namespace irdb {

class DbServer {
 public:
  explicit DbServer(Database* db) : db_(db) {}

  // Byte-level request handler, pluggable into a LoopbackChannel.
  std::string Handle(std::string_view request_bytes) {
    WireResponse resp;
    auto req = DecodeRequest(request_bytes);
    if (!req.ok()) {
      resp.ok = false;
      resp.error_code = req.status().code();
      resp.error_message = req.status().message();
      return EncodeResponse(resp);
    }
    switch (req->kind) {
      case WireRequest::Kind::kConnect:
        resp.ok = true;
        resp.session = db_->OpenSession();
        break;
      case WireRequest::Kind::kDisconnect:
        db_->CloseSession(req->session);
        resp.ok = true;
        resp.session = req->session;
        break;
      case WireRequest::Kind::kAnnotate:
        // A plain DBMS server has no tracking state; annotations only have
        // meaning at a proxy. Accept and ignore.
        resp.ok = true;
        resp.session = req->session;
        break;
      case WireRequest::Kind::kExec: {
        auto result = db_->Execute(req->session, req->sql);
        if (result.ok()) {
          resp.ok = true;
          resp.session = req->session;
          resp.result = std::move(result).value();
        } else {
          resp.ok = false;
          resp.error_code = result.status().code();
          resp.error_message = result.status().message();
        }
        break;
      }
    }
    return EncodeResponse(resp);
  }

  Database* database() { return db_; }

 private:
  Database* db_;
};

}  // namespace irdb
