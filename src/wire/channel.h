// Channel: a synchronous request/response byte pipe with a simulated
// network cost model.
//
// The paper's "local" vs "networked" configurations (Fig. 4) become two
// LatencyParams presets; each round trip advances the shared virtual clock
// by RTT plus transfer time for the actual serialized payload bytes.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "engine/io_model.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace irdb {

struct LatencyParams {
  double rtt_seconds = 0;          // per round trip
  double bytes_per_second = 0;     // 0 = infinite bandwidth

  // Same-machine IPC (paper's "local connection").
  static LatencyParams Local() {
    LatencyParams p;
    p.rtt_seconds = 15e-6;
    p.bytes_per_second = 2e9;
    return p;
  }

  // 100 Mbps switched LAN (paper's "network connection").
  static LatencyParams Lan100Mbps() {
    LatencyParams p;
    p.rtt_seconds = 200e-6;
    p.bytes_per_second = 100e6 / 8;
    return p;
  }
};

class Channel {
 public:
  virtual ~Channel() = default;

  // Sends `request` and returns the peer's response. A kUnavailable error
  // means the round trip was lost before the peer acted on it: the request
  // had no effect and may be retried.
  virtual Result<std::string> RoundTrip(std::string_view request) = 0;

  // The virtual clock this channel charges, if any; retry backoff on top of
  // the channel is charged to the same clock.
  virtual VirtualClock* clock() { return nullptr; }
};

// Delivers requests to an in-process handler, charging the cost model.
class LoopbackChannel : public Channel {
 public:
  using Handler = std::function<std::string(std::string_view)>;
  // Non-OK means the request is dropped before delivery.
  using FaultHook = std::function<Status(std::string_view request)>;

  LoopbackChannel(Handler handler, LatencyParams params, VirtualClock* clock)
      : handler_(std::move(handler)), params_(params), clock_(clock) {}

  Result<std::string> RoundTrip(std::string_view request) override {
    bytes_sent_ += static_cast<int64_t>(request.size());
    ++round_trips_;
    // Faults fire before the handler: a dropped request never reaches the
    // peer, so the caller may retry without duplicating effects. The lost
    // round trip still costs a full RTT (the caller's timeout).
    Status fault = Status::Ok();
    if (fault_hook_) fault = fault_hook_(request);
    if (fault.ok() && fail::Triggered("wire.roundtrip")) {
      fault = fail::Inject("wire.roundtrip");
    }
    if (!fault.ok()) {
      ++dropped_round_trips_;
      if (clock_ != nullptr) clock_->Advance(params_.rtt_seconds);
      return fault;
    }
    std::string response = handler_(request);
    if (clock_ != nullptr) {
      double cost = params_.rtt_seconds;
      if (params_.bytes_per_second > 0) {
        cost += static_cast<double>(request.size() + response.size()) /
                params_.bytes_per_second;
      }
      clock_->Advance(cost);
    }
    bytes_received_ += static_cast<int64_t>(response.size());
    return response;
  }

  VirtualClock* clock() override { return clock_; }

  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  int64_t bytes_sent() const { return bytes_sent_; }
  int64_t bytes_received() const { return bytes_received_; }
  int64_t round_trips() const { return round_trips_; }
  int64_t dropped_round_trips() const { return dropped_round_trips_; }

 private:
  Handler handler_;
  FaultHook fault_hook_;
  LatencyParams params_;
  VirtualClock* clock_;
  int64_t bytes_sent_ = 0;
  int64_t bytes_received_ = 0;
  int64_t round_trips_ = 0;
  int64_t dropped_round_trips_ = 0;
};

}  // namespace irdb
