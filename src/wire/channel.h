// Channel: a synchronous request/response byte pipe with a simulated
// network cost model.
//
// The paper's "local" vs "networked" configurations (Fig. 4) become two
// LatencyParams presets; each round trip advances the shared virtual clock
// by RTT plus transfer time for the actual serialized payload bytes.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "engine/io_model.h"

namespace irdb {

struct LatencyParams {
  double rtt_seconds = 0;          // per round trip
  double bytes_per_second = 0;     // 0 = infinite bandwidth

  // Same-machine IPC (paper's "local connection").
  static LatencyParams Local() {
    LatencyParams p;
    p.rtt_seconds = 15e-6;
    p.bytes_per_second = 2e9;
    return p;
  }

  // 100 Mbps switched LAN (paper's "network connection").
  static LatencyParams Lan100Mbps() {
    LatencyParams p;
    p.rtt_seconds = 200e-6;
    p.bytes_per_second = 100e6 / 8;
    return p;
  }
};

class Channel {
 public:
  virtual ~Channel() = default;

  // Sends `request` and returns the peer's response.
  virtual std::string RoundTrip(std::string_view request) = 0;
};

// Delivers requests to an in-process handler, charging the cost model.
class LoopbackChannel : public Channel {
 public:
  using Handler = std::function<std::string(std::string_view)>;

  LoopbackChannel(Handler handler, LatencyParams params, VirtualClock* clock)
      : handler_(std::move(handler)), params_(params), clock_(clock) {}

  std::string RoundTrip(std::string_view request) override {
    std::string response = handler_(request);
    if (clock_ != nullptr) {
      double cost = params_.rtt_seconds;
      if (params_.bytes_per_second > 0) {
        cost += static_cast<double>(request.size() + response.size()) /
                params_.bytes_per_second;
      }
      clock_->Advance(cost);
    }
    bytes_sent_ += static_cast<int64_t>(request.size());
    bytes_received_ += static_cast<int64_t>(response.size());
    ++round_trips_;
    return response;
  }

  int64_t bytes_sent() const { return bytes_sent_; }
  int64_t bytes_received() const { return bytes_received_; }
  int64_t round_trips() const { return round_trips_; }

 private:
  Handler handler_;
  LatencyParams params_;
  VirtualClock* clock_;
  int64_t bytes_sent_ = 0;
  int64_t bytes_received_ = 0;
  int64_t round_trips_ = 0;
};

}  // namespace irdb
