// TcpChannel + NetClient — the client side of the networked deployment.
//
// TcpChannel implements the same Channel contract LoopbackChannel does, over
// a real socket: one frame out, one frame back, synchronously. The contract
// that matters for retries is preserved exactly: every kUnavailable this
// channel returns means the request NEVER reached the peer —
//   - connect failures (nothing was sent),
//   - the "net.roundtrip.send" failpoint, which fires BEFORE the write and
//     tears the connection down (how tests simulate connection resets
//     without ambiguity about whether the request executed),
//   - send failures on a freshly (re)connected socket where the peer cannot
//     have seen a complete frame... except a genuine mid-flight loss after
//     the frame was fully written, which a real network cannot disambiguate.
//     Those surface as kUnavailable too; over TCP to our own server the
//     reply-before-close drain makes duplicated effects impossible in
//     clean shutdown, and the chaos harness only ever injects the
//     before-send variant, keeping the at-most-once property testable.
// A response TIMEOUT is deliberately NOT kUnavailable: the request may have
// executed, so retrying could duplicate it. It surfaces as kInternal.
//
// The channel reconnects lazily on the next RoundTrip after a drop, which —
// together with NetProxyServer keeping wire sessions alive across TCP
// disconnects — is what lets RemoteConnection's CallWithRetry ride through
// real connection resets mid-transaction.
//
// clock() is nullptr: real networking runs on real time (CallWithRetry then
// skips simulated backoff waits; attempts stay bounded).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/socket.h"
#include "wire/channel.h"
#include "wire/client.h"
#include "wire/protocol.h"

namespace irdb::net {

// Failpoint site: evaluated before each frame write; a trip drops the
// connection and fails the round trip with a retryable injected status.
inline constexpr const char* kSendFailpoint = "net.roundtrip.send";

struct TcpChannelOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  // Reply-wait budget per round trip; expiry is a NON-retryable error (the
  // request may have executed). 0 waits forever.
  int recv_timeout_ms = 10'000;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Emulated link latency, added (as a real sleep — real sockets run on
  // real time, so the virtual clock does not apply) to every round trip.
  // Loopback TCP has ~zero RTT; benches set this to model a LAN so that
  // connection-concurrency experiments measure latency overlap the way a
  // deployed link would. 0 disables.
  double simulated_rtt_seconds = 0.0;
};

class TcpChannel : public Channel {
 public:
  explicit TcpChannel(TcpChannelOptions opts) : opts_(std::move(opts)) {}

  Result<std::string> RoundTrip(std::string_view request) override;

  // Closes the current socket (if any); the next RoundTrip reconnects.
  void Drop();

  bool connected() const { return fd_.valid(); }
  int64_t round_trips() const { return round_trips_; }
  int64_t dropped_round_trips() const { return dropped_round_trips_; }
  int64_t reconnects() const { return reconnects_; }
  int64_t bytes_sent() const { return bytes_sent_; }
  int64_t bytes_received() const { return bytes_received_; }

 private:
  Status EnsureConnected();
  Status SendFrame(std::string_view payload);
  Result<std::string> RecvFrame();

  TcpChannelOptions opts_;
  Fd fd_;
  std::unique_ptr<FrameDecoder> decoder_;  // reset per connection
  int64_t round_trips_ = 0;
  int64_t dropped_round_trips_ = 0;
  int64_t reconnects_ = 0;  // successful connects after the first
  int64_t bytes_sent_ = 0;
  int64_t bytes_received_ = 0;
  bool ever_connected_ = false;
};

// One client endpoint: a TcpChannel plus a RemoteConnection speaking the
// wire protocol over it (CONNECT on Dial, BYE on destruction, retries per
// `retry`). Not thread-safe — one NetClient per client thread.
class NetClient {
 public:
  static Result<std::unique_ptr<NetClient>> Dial(TcpChannelOptions opts,
                                                 RetryPolicy retry = {});

  RemoteConnection& connection() { return *conn_; }
  TcpChannel& channel() { return *channel_; }

 private:
  NetClient() = default;
  std::unique_ptr<TcpChannel> channel_;
  std::unique_ptr<RemoteConnection> conn_;
};

}  // namespace irdb::net
