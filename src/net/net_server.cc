#include "net/net_server.h"

#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/catalog.h"
#include "obs/journal.h"

namespace irdb::net {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double NowMsF() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

struct NetProxyServer::Counters {
  std::atomic<int64_t> connections_accepted{0};
  std::atomic<int64_t> connections_closed{0};
  std::atomic<int64_t> frames_in{0};
  std::atomic<int64_t> frames_out{0};
  std::atomic<int64_t> bytes_in{0};
  std::atomic<int64_t> bytes_out{0};
  std::atomic<int64_t> requests_served{0};
  std::atomic<int64_t> protocol_errors{0};
  std::atomic<int64_t> idle_disconnects{0};
  std::atomic<int64_t> backpressure_stalls{0};
  std::atomic<int64_t> resets{0};
};

NetProxyServer::NetProxyServer(Database* db, proxy::TxnIdAllocator* alloc,
                               NetServerOptions opts)
    : db_(db),
      alloc_(alloc),
      opts_(opts),
      counters_(std::make_unique<Counters>()) {}

NetProxyServer::~NetProxyServer() { Stop(); }

Status NetProxyServer::Start() {
  IRDB_CHECK_MSG(!running_, "NetProxyServer already started");
  IRDB_ASSIGN_OR_RETURN(
      listener_, ListenTcp(opts_.port, /*backlog=*/128, &port_, opts_.bind_any));
  loop_ = std::make_unique<EventLoop>(opts_.force_poll);
  pool_ = std::make_unique<util::ThreadPool>(opts_.exec_threads);
  accepting_ = true;
  accepting_work_ = true;
  drain_requested_ = false;
  drain_done_ = false;

  IRDB_RETURN_IF_ERROR(loop_->Register(
      listener_.get(), /*want_read=*/true, /*want_write=*/false,
      [this](const PollEvents&) { OnListenerReadable(); }));
  loop_->SetTick([this] { SweepIdle(); }, opts_.tick_interval_ms);
  loop_thread_ = std::thread([this] { loop_->Run(); });
  running_ = true;
  return Status::Ok();
}

void NetProxyServer::Stop() {
  if (!running_) return;
  // 1. Stop accepting new connections AND new statement dispatches, on the
  //    loop thread (accepting_work_ is loop-thread-owned); wait for the
  //    flip so no Submit can race the pool teardown below.
  std::promise<void> quiesced;
  loop_->Post([this, &quiesced] {
    StopAccepting();
    accepting_work_ = false;
    quiesced.set_value();
  });
  quiesced.get_future().wait();
  // 2. Wait out in-flight statements: the pool destructor joins its workers
  //    after the queue empties, and each completion has already been posted
  //    to the (still running) loop, so every reply reaches an outbox.
  pool_.reset();
  // 3. Drain: close each connection once its outbox is flushed, bounded so
  //    a dead client cannot wedge shutdown.
  loop_->Post([this] { BeginDrain(); });
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    if (!drain_cv_.wait_for(lock, std::chrono::seconds(2),
                            [this] { return drain_done_; })) {
      loop_->Post([this] { ForceCloseAll(); });
      drain_cv_.wait(lock, [this] { return drain_done_; });
    }
  }
  loop_->Stop();
  loop_thread_.join();
  loop_.reset();
  // 4. Tear down surviving wire sessions (client never sent BYE), folding
  //    their tracking stats exactly like a BYE would.
  std::map<int64_t, std::shared_ptr<ProtoSession>> leftover;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    leftover.swap(sessions_);
  }
  for (auto& [id, sess] : leftover) {
    std::lock_guard<std::mutex> lock(sess->mu);
    if (sess->proxy) {
      std::lock_guard<std::mutex> reg(sessions_mu_);
      closed_stats_.Add(sess->proxy->stats());
    }
    obs::MetricsRegistry::Default().AddGauge(
        obs::Metrics::Get().net_sessions_active, -1);
  }
  running_ = false;
}

Status NetProxyServer::Bootstrap() {
  // Factory deployments own their backend stack (the shard cluster
  // bootstraps every shard itself); there is no single engine to prime.
  if (opts_.session_factory) return Status::Ok();
  if (!opts_.track) return Status::Ok();
  DirectConnection conn(db_);
  proxy::TrackingProxy proxy(&conn, alloc_, opts_.traits);
  return proxy.EnsureTrackingTables();
}

NetServerStats NetProxyServer::stats() const {
  NetServerStats s;
  s.connections_accepted = counters_->connections_accepted.load();
  s.connections_closed = counters_->connections_closed.load();
  s.frames_in = counters_->frames_in.load();
  s.frames_out = counters_->frames_out.load();
  s.bytes_in = counters_->bytes_in.load();
  s.bytes_out = counters_->bytes_out.load();
  s.requests_served = counters_->requests_served.load();
  s.protocol_errors = counters_->protocol_errors.load();
  s.idle_disconnects = counters_->idle_disconnects.load();
  s.backpressure_stalls = counters_->backpressure_stalls.load();
  s.resets = counters_->resets.load();
  return s;
}

proxy::ProxyStats NetProxyServer::ProxyStatsSnapshot() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  proxy::ProxyStats total = closed_stats_;
  for (const auto& [id, sess] : sessions_) {
    std::lock_guard<std::mutex> sess_lock(sess->mu);
    if (sess->proxy) total.Add(sess->proxy->stats());
  }
  return total;
}

int64_t NetProxyServer::open_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return static_cast<int64_t>(sessions_.size());
}

// --- loop thread ------------------------------------------------------------

void NetProxyServer::OnListenerReadable() {
  for (;;) {
    int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept errors: try again on the next event
    }
    if (!accepting_) {
      ::close(fd);
      continue;
    }
    Fd conn_fd(fd);
    if (!SetNonBlocking(fd).ok()) continue;  // conn_fd closes it
    (void)SetNoDelay(fd);

    auto conn = std::make_unique<Conn>(opts_.max_frame_bytes);
    conn->id = next_conn_id_++;
    conn->fd = std::move(conn_fd);
    conn->last_activity_ms = NowMs();
    int64_t id = conn->id;
    Status s = loop_->Register(
        conn->fd.get(), /*want_read=*/true, /*want_write=*/false,
        [this, id](const PollEvents& ev) { OnConnEvent(id, ev); });
    if (!s.ok()) continue;
    conns_.emplace(id, std::move(conn));
    counters_->connections_accepted.fetch_add(1);
    obs::Count(obs::Metrics::Get().net_connections_accepted);
    obs::MetricsRegistry::Default().AddGauge(
        obs::Metrics::Get().net_connections_active, 1);
  }
}

void NetProxyServer::OnConnEvent(int64_t conn_id, const PollEvents& ev) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn& c = *it->second;
  if (ev.error) {
    CloseConn(c, CloseWhy::kReset);
    return;
  }
  if (ev.writable) {
    FlushConn(c);
    // FlushConn may close the conn (write error or drain completion).
    if (conns_.find(conn_id) == conns_.end()) return;
  }
  if (ev.readable && c.reading) ReadFromConn(c);
}

void NetProxyServer::ReadFromConn(Conn& c) {
  const int64_t id = c.id;  // c dies if DispatchFrames closes the conn
  char buf[16 * 1024];
  for (;;) {
    IoResult r = ReadSome(c.fd.get(), buf, sizeof buf);
    if (r.state == IoState::kOk) {
      c.last_activity_ms = NowMs();
      counters_->bytes_in.fetch_add(static_cast<int64_t>(r.bytes));
      obs::Count(obs::Metrics::Get().net_bytes_in,
                 static_cast<int64_t>(r.bytes));
      c.decoder.Feed(std::string_view(buf, r.bytes));
      DispatchFrames(c);
      // DispatchFrames may have closed the conn (protocol error) or
      // backpressured it; stop pulling bytes either way.
      if (conns_.find(id) == conns_.end() || !c.reading) return;
      if (r.bytes < sizeof buf) return;  // likely drained the socket
      continue;
    }
    if (r.state == IoState::kWouldBlock) return;
    // EOF or error: the peer is gone. In-flight work finishes and its
    // reply is dropped at completion; the wire session itself survives
    // for a reconnecting client.
    CloseConn(c, CloseWhy::kReset);
    return;
  }
}

void NetProxyServer::DispatchFrames(Conn& c) {
  for (;;) {
    std::string payload;
    auto popped = c.decoder.Next(&payload);
    if (!popped.ok()) {
      counters_->protocol_errors.fetch_add(1);
      obs::Count(obs::Metrics::Get().net_protocol_errors);
      CloseConn(c, CloseWhy::kProtocol);
      return;
    }
    if (!*popped) return;
    counters_->frames_in.fetch_add(1);
    obs::Count(obs::Metrics::Get().net_frames_in);
    if (c.busy) {
      c.pending.push_back(std::move(payload));
    } else {
      StartRequest(c, std::move(payload));
    }
  }
}

void NetProxyServer::StartRequest(Conn& c, std::string payload) {
  if (!accepting_work_) return;  // shutting down: drop late requests
  c.busy = true;
  c.req_start_ms = NowMsF();
  int64_t conn_id = c.id;
  // The payload moves to the executor; the reply frame moves back through
  // Post. Conn state is only ever touched on the loop thread.
  pool_->Submit([this, conn_id, payload = std::move(payload)]() mutable {
    std::string reply = EncodeFrame(HandleRequest(payload));
    loop_->Post([this, conn_id, reply = std::move(reply)]() mutable {
      CompleteRequest(conn_id, std::move(reply));
    });
  });
}

void NetProxyServer::CompleteRequest(int64_t conn_id, std::string reply_frame) {
  counters_->requests_served.fetch_add(1);
  obs::Count(obs::Metrics::Get().net_requests);
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // conn died mid-request: drop the reply
  Conn& c = *it->second;
  obs::Observe(obs::Metrics::Get().net_frame_latency,
               NowMsF() - c.req_start_ms);
  c.busy = false;
  c.last_activity_ms = NowMs();
  c.outbox_bytes += reply_frame.size();
  c.outbox.push_back(std::move(reply_frame));
  counters_->frames_out.fetch_add(1);
  obs::Count(obs::Metrics::Get().net_frames_out);

  // Backpressure: a client pipelining faster than it reads replies gets its
  // read side paused until the outbox drains below the low watermark.
  if (c.reading && c.outbox_bytes > opts_.outbox_high_watermark) {
    c.reading = false;
    counters_->backpressure_stalls.fetch_add(1);
    obs::Count(obs::Metrics::Get().net_backpressure_stalls);
  }
  if (!c.pending.empty()) {
    std::string next = std::move(c.pending.front());
    c.pending.pop_front();
    StartRequest(c, std::move(next));
  }
  FlushConn(c);
}

void NetProxyServer::FlushConn(Conn& c) {
  const int64_t id = c.id;  // c dies if a nested call closes the conn
  while (!c.outbox.empty()) {
    const std::string& front = c.outbox.front();
    IoResult r = WriteSome(c.fd.get(), front.data() + c.write_off,
                           front.size() - c.write_off);
    if (r.state == IoState::kOk) {
      counters_->bytes_out.fetch_add(static_cast<int64_t>(r.bytes));
      obs::Count(obs::Metrics::Get().net_bytes_out,
                 static_cast<int64_t>(r.bytes));
      c.write_off += r.bytes;
      if (c.write_off == front.size()) {
        c.outbox_bytes -= front.size();
        c.outbox.pop_front();
        c.write_off = 0;
      }
      continue;
    }
    if (r.state == IoState::kWouldBlock) break;
    CloseConn(c, CloseWhy::kReset);
    return;
  }
  obs::MetricsRegistry::Default().SetGauge(obs::Metrics::Get().net_outbox_bytes,
                                           static_cast<int64_t>(c.outbox_bytes));
  if (!c.reading && c.outbox_bytes <= opts_.outbox_low_watermark && !c.draining) {
    c.reading = true;
    // Re-run the decoder: frames may already be buffered, and the socket
    // may have readable bytes we stopped pulling.
    DispatchFrames(c);
    if (conns_.find(id) == conns_.end()) return;
    if (c.reading) ReadFromConn(c);
    if (conns_.find(id) == conns_.end()) return;
  }
  if (c.outbox.empty() && c.draining && !c.busy) {
    CloseConn(c, CloseWhy::kDrain);
    return;
  }
  UpdateInterest(c);
}

void NetProxyServer::UpdateInterest(Conn& c) {
  bool want_write = !c.outbox.empty();
  if (want_write != c.want_write) {
    c.want_write = want_write;
    (void)loop_->SetInterest(c.fd.get(), c.reading, want_write);
  } else {
    (void)loop_->SetInterest(c.fd.get(), c.reading, c.want_write);
  }
}

void NetProxyServer::CloseConn(Conn& c, CloseWhy why) {
  switch (why) {
    case CloseWhy::kIdle:
      counters_->idle_disconnects.fetch_add(1);
      obs::Count(obs::Metrics::Get().net_idle_disconnects);
      obs::EventJournal::Default().Append(
          obs::event::kNetIdleDisconnect, {{"conn", std::to_string(c.id)}});
      break;
    case CloseWhy::kReset:
    case CloseWhy::kProtocol:
      counters_->resets.fetch_add(1);
      obs::Count(obs::Metrics::Get().net_session_resets);
      obs::EventJournal::Default().Append(
          obs::event::kNetSessionReset, {{"conn", std::to_string(c.id)}});
      break;
    case CloseWhy::kDrain:
      break;
  }
  counters_->connections_closed.fetch_add(1);
  obs::MetricsRegistry::Default().AddGauge(
      obs::Metrics::Get().net_connections_active, -1);
  loop_->Unregister(c.fd.get());
  int64_t id = c.id;
  conns_.erase(id);  // destroys c — do not touch it past this line
  if (drain_requested_ && conns_.empty()) {
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_done_ = true;
    drain_cv_.notify_all();
  }
}

void NetProxyServer::SweepIdle() {
  if (opts_.idle_timeout_seconds <= 0) return;
  const int64_t now = NowMs();
  const int64_t limit_ms =
      static_cast<int64_t>(opts_.idle_timeout_seconds * 1000.0);
  std::vector<int64_t> victims;
  for (const auto& [id, conn] : conns_) {
    if (!conn->busy && conn->outbox.empty() &&
        now - conn->last_activity_ms >= limit_ms) {
      victims.push_back(id);
    }
  }
  for (int64_t id : victims) {
    auto it = conns_.find(id);
    if (it != conns_.end()) CloseConn(*it->second, CloseWhy::kIdle);
  }
}

void NetProxyServer::StopAccepting() {
  if (!accepting_) return;
  accepting_ = false;
  loop_->Unregister(listener_.get());
  listener_.reset();
}

void NetProxyServer::BeginDrain() {
  drain_requested_ = true;
  std::vector<int64_t> closable;
  for (auto& [id, conn] : conns_) {
    conn->draining = true;
    conn->reading = false;
    if (conn->outbox.empty() && !conn->busy) closable.push_back(id);
  }
  for (int64_t id : closable) {
    auto it = conns_.find(id);
    if (it != conns_.end()) CloseConn(*it->second, CloseWhy::kDrain);
  }
  if (conns_.empty()) {
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_done_ = true;
    drain_cv_.notify_all();
  }
}

void NetProxyServer::ForceCloseAll() {
  while (!conns_.empty()) {
    CloseConn(*conns_.begin()->second, CloseWhy::kReset);
  }
}

// --- executor threads -------------------------------------------------------

std::shared_ptr<NetProxyServer::ProtoSession> NetProxyServer::FindSession(
    int64_t id) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

int64_t NetProxyServer::CreateSession() {
  auto sess = std::make_shared<ProtoSession>();
  if (opts_.session_factory) {
    sess->custom = opts_.session_factory();
  } else {
    sess->conn = std::make_unique<DirectConnection>(db_);
    if (opts_.track) {
      sess->proxy = std::make_unique<proxy::TrackingProxy>(
          sess->conn.get(), alloc_, opts_.traits);
    }
  }
  std::lock_guard<std::mutex> lock(sessions_mu_);
  int64_t id = next_session_++;
  sessions_.emplace(id, std::move(sess));
  obs::MetricsRegistry::Default().AddGauge(
      obs::Metrics::Get().net_sessions_active, 1);
  return id;
}

void NetProxyServer::DestroySession(int64_t id) {
  std::shared_ptr<ProtoSession> sess;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    sess = std::move(it->second);
    sessions_.erase(it);
  }
  // Wait out any concurrent statement on this session (another connection
  // could be using the same id), then fold its stats.
  std::lock_guard<std::mutex> sess_lock(sess->mu);
  if (sess->proxy) {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    closed_stats_.Add(sess->proxy->stats());
  }
  obs::MetricsRegistry::Default().AddGauge(
      obs::Metrics::Get().net_sessions_active, -1);
}

std::string NetProxyServer::HandleRequest(std::string_view payload) {
  WireResponse resp;
  auto req = DecodeRequest(payload);
  if (!req.ok()) {
    counters_->protocol_errors.fetch_add(1);
    obs::Count(obs::Metrics::Get().net_protocol_errors);
    resp.ok = false;
    resp.error_code = req.status().code();
    resp.error_reason = ErrorReasonFromStatus(req.status());
    resp.error_message = req.status().message();
    return EncodeResponse(resp);
  }
  switch (req->kind) {
    case WireRequest::Kind::kConnect:
      resp.ok = true;
      resp.session = CreateSession();
      break;
    case WireRequest::Kind::kDisconnect:
      DestroySession(req->session);
      resp.ok = true;
      resp.session = req->session;
      break;
    case WireRequest::Kind::kAnnotate: {
      auto sess = FindSession(req->session);
      if (!sess) {
        resp.ok = false;
        resp.error_code = StatusCode::kInvalidArgument;
        resp.error_message = "unknown wire session";
        break;
      }
      std::lock_guard<std::mutex> lock(sess->mu);
      sess->connection()->SetAnnotation(req->sql);
      resp.ok = true;
      resp.session = req->session;
      break;
    }
    case WireRequest::Kind::kExec: {
      auto sess = FindSession(req->session);
      if (!sess) {
        resp.ok = false;
        resp.error_code = StatusCode::kInvalidArgument;
        resp.error_message = "unknown wire session";
        break;
      }
      std::lock_guard<std::mutex> lock(sess->mu);
      auto result = sess->connection()->Execute(req->sql);
      if (result.ok()) {
        resp.ok = true;
        resp.session = req->session;
        resp.result = std::move(result).value();
      } else {
        resp.ok = false;
        resp.error_code = result.status().code();
        resp.error_reason = ErrorReasonFromStatus(result.status());
        resp.error_message = result.status().message();
      }
      break;
    }
  }
  return EncodeResponse(resp);
}

}  // namespace irdb::net
