#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace irdb::net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL O_NONBLOCK)");
  }
  return Status::Ok();
}

Status SetNoDelay(int fd) {
  int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one) < 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::Ok();
}

Result<Fd> ListenTcp(uint16_t port, int backlog, uint16_t* bound_port,
                     bool bind_any) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(bind_any ? INADDR_ANY : INADDR_LOOPBACK);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    return Errno("bind");
  }
  if (::listen(fd.get(), backlog) < 0) return Errno("listen");

  if (bound_port != nullptr) {
    sockaddr_in got{};
    socklen_t len = sizeof got;
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&got), &len) < 0) {
      return Errno("getsockname");
    }
    *bound_port = ntohs(got.sin_port);
  }
  IRDB_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  return fd;
}

Result<Fd> ConnectTcp(const std::string& host, uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    // Connection refused/reset is the transport saying "not now": the
    // request never reached a peer, so callers may retry.
    return Status::Unavailable("connect to " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
  }
  (void)SetNoDelay(fd.get());
  return fd;
}

IoResult ReadSome(int fd, char* buf, size_t len) {
  for (;;) {
    ssize_t n = ::read(fd, buf, len);
    if (n > 0) return {IoState::kOk, static_cast<size_t>(n)};
    if (n == 0) return {IoState::kEof, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoState::kWouldBlock, 0};
    }
    return {IoState::kError, 0};
  }
}

IoResult WriteSome(int fd, const char* buf, size_t len) {
  for (;;) {
    ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n >= 0) return {IoState::kOk, static_cast<size_t>(n)};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoState::kWouldBlock, 0};
    }
    return {IoState::kError, 0};
  }
}

}  // namespace irdb::net
