// Thin RAII + error-mapping layer over BSD sockets (src/net's only
// syscall surface besides the poller). Everything returns Status instead of
// errno so the event loop and channel code stay exception- and errno-free.
//
// All helpers are IPv4; listeners bind 127.0.0.1 by default (the framework's
// front-end is meant to sit on the same machine or behind its own
// gateway — exposing the tracking proxy raw to the world is an operator
// decision made explicit via NetServerOptions::bind_any).
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace irdb::net {

// Move-only file-descriptor owner.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

// Binds + listens on `port` (0 = ephemeral). The actually-bound port is
// written to *bound_port. The returned socket is non-blocking.
Result<Fd> ListenTcp(uint16_t port, int backlog, uint16_t* bound_port,
                     bool bind_any = false);

// Blocking connect to host:port; the returned socket stays blocking (the
// synchronous client reads with poll()-based timeouts instead).
Result<Fd> ConnectTcp(const std::string& host, uint16_t port);

Status SetNonBlocking(int fd);
Status SetNoDelay(int fd);  // disable Nagle: the protocol is request/response

// The result of a non-blocking read/write slice.
enum class IoState { kOk, kWouldBlock, kEof, kError };

struct IoResult {
  IoState state = IoState::kOk;
  size_t bytes = 0;  // transferred this call (kOk only)
};

IoResult ReadSome(int fd, char* buf, size_t len);
IoResult WriteSome(int fd, const char* buf, size_t len);

}  // namespace irdb::net
