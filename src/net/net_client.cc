#include "net/net_client.h"

#include <poll.h>

#include <chrono>
#include <thread>

#include "util/failpoint.h"

namespace irdb::net {

Status TcpChannel::EnsureConnected() {
  if (fd_.valid()) return Status::Ok();
  IRDB_ASSIGN_OR_RETURN(fd_, ConnectTcp(opts_.host, opts_.port));
  decoder_ = std::make_unique<FrameDecoder>(opts_.max_frame_bytes);
  if (ever_connected_) ++reconnects_;
  ever_connected_ = true;
  return Status::Ok();
}

void TcpChannel::Drop() {
  fd_.reset();
  decoder_.reset();
}

Status TcpChannel::SendFrame(std::string_view payload) {
  const std::string frame = EncodeFrame(payload);
  size_t off = 0;
  while (off < frame.size()) {
    IoResult r = WriteSome(fd_.get(), frame.data() + off, frame.size() - off);
    if (r.state != IoState::kOk) {
      // The kernel refused mid-frame. The server drops incomplete frames on
      // reset, so the statement cannot have executed: retryable.
      Drop();
      return Status::Unavailable("send failed mid-frame");
    }
    off += r.bytes;
    bytes_sent_ += static_cast<int64_t>(r.bytes);
  }
  return Status::Ok();
}

Result<std::string> TcpChannel::RecvFrame() {
  char buf[16 * 1024];
  for (;;) {
    std::string payload;
    auto popped = decoder_->Next(&payload);
    if (!popped.ok()) {
      Drop();
      return popped.status();  // corrupt stream: not retryable
    }
    if (*popped) return payload;

    pollfd pfd{fd_.get(), POLLIN, 0};
    int n = ::poll(&pfd, 1, opts_.recv_timeout_ms > 0 ? opts_.recv_timeout_ms
                                                      : -1);
    if (n == 0) {
      // The request may have executed server-side; retrying could duplicate
      // it, so a timeout is NOT kUnavailable.
      Drop();
      return Status::Internal("net round trip timed out");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      Drop();
      return Status::Unavailable("poll on reply failed");
    }
    IoResult r = ReadSome(fd_.get(), buf, sizeof buf);
    if (r.state == IoState::kOk) {
      bytes_received_ += static_cast<int64_t>(r.bytes);
      decoder_->Feed(std::string_view(buf, r.bytes));
      continue;
    }
    if (r.state == IoState::kWouldBlock) continue;  // spurious wakeup
    // EOF/reset before a complete reply: the server drains outboxes before
    // closing cleanly, so a torn reply means the request never completed
    // its round trip — safe to retry against a session-preserving server.
    Drop();
    return Status::Unavailable("connection reset before reply");
  }
}

Result<std::string> TcpChannel::RoundTrip(std::string_view request) {
  ++round_trips_;
  // The injected connection reset fires BEFORE the write so the request
  // provably never reached the peer (same at-most-once contract as
  // LoopbackChannel's "wire.roundtrip" site).
  if (fail::Triggered(kSendFailpoint)) {
    ++dropped_round_trips_;
    Drop();
    return fail::Inject(kSendFailpoint);
  }
  if (opts_.simulated_rtt_seconds > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(opts_.simulated_rtt_seconds));
  }
  IRDB_RETURN_IF_ERROR(EnsureConnected());
  IRDB_RETURN_IF_ERROR(SendFrame(request));
  return RecvFrame();
}

Result<std::unique_ptr<NetClient>> NetClient::Dial(TcpChannelOptions opts,
                                                   RetryPolicy retry) {
  auto client = std::unique_ptr<NetClient>(new NetClient());
  client->channel_ = std::make_unique<TcpChannel>(std::move(opts));
  IRDB_ASSIGN_OR_RETURN(client->conn_,
                        RemoteConnection::Connect(client->channel_.get(), retry));
  return client;
}

}  // namespace irdb::net
