// NetProxyServer — the server-side proxy of paper Fig. 2 on a real TCP
// socket instead of the in-process loopback.
//
// Threading model (three kinds of threads, one rule each):
//   - ONE event-loop thread owns every socket, every Conn (frame decoder,
//     outbox, backpressure flags). Nothing else touches them.
//   - A util::ThreadPool executes decoded requests (SQL through the
//     per-session TrackingProxy / DirectConnection), so a slow statement
//     never blocks accepts, reads, or writes. Completions are handed back
//     to the loop thread via EventLoop::Post.
//   - Callers' threads only use the thread-safe surface: Start/Stop,
//     stats(), ProxyStatsSnapshot().
//
// Shared-state locking story (audited in tests/net_test.cc):
//   - sessions_mu_ guards the wire-session registry (map, id counter,
//     closed-session stats fold).
//   - each ProtoSession has its own mutex serializing statement execution
//     against stats snapshots; executors take it WITHOUT holding
//     sessions_mu_, snapshots take sessions_mu_ THEN session mutexes, so
//     the order sessions_mu_ -> session is acyclic.
//   - engine access is concurrent: sessions run under the engine's own
//     lock manager and per-table latches (src/concurrency, DESIGN.md §5f),
//     so pool threads executing statements for different wire sessions
//     genuinely interleave. Proxy txn ids come from the atomic
//     TxnIdAllocator, exactly as in the in-process deployments.
//
// Sessions are DECOUPLED from TCP connections: a wire session is created by
// CONNECT, addressed by id in every later request, and destroyed only by
// BYE or Stop(). A client whose TCP connection resets mid-transaction can
// reconnect and resume — which is what makes the PR 2 retry semantics
// (kUnavailable = request never reached the peer) carry over to real
// connection resets.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "engine/database.h"
#include "flavor/flavor_traits.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "proxy/tracking_proxy.h"
#include "util/thread_pool.h"
#include "wire/protocol.h"

namespace irdb::net {

struct NetServerOptions {
  uint16_t port = 0;      // 0 = pick an ephemeral port (see NetProxyServer::port)
  bool bind_any = false;  // default: loopback only (see socket.h)
  // true: each wire session gets a TrackingProxy over a DirectConnection
  // (server-side tracking, Fig. 2). false: raw DbServer semantics — the
  // engine without tracking, for client-side-proxy deployments.
  bool track = true;
  int exec_threads = 4;  // statement-execution pool (<=1 runs inline)
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Backpressure: when a session's queued reply bytes exceed the high
  // watermark the server stops reading its socket; reading resumes once the
  // outbox drains below the low watermark.
  size_t outbox_high_watermark = 256 * 1024;
  size_t outbox_low_watermark = 64 * 1024;
  // Connections with no traffic for this long are closed on the next sweep
  // (0 disables). Sessions survive — only the transport is dropped.
  double idle_timeout_seconds = 0.0;
  int tick_interval_ms = 50;  // idle-sweep cadence
  bool force_poll = false;    // use the poll(2) poller even on Linux
  FlavorTraits traits = FlavorTraits::Postgres();
  // When set, every wire session executes through a connection built by this
  // factory instead of the default TrackingProxy-over-DirectConnection pair
  // (ignores `track`). This is how the shard router fronts an N-engine
  // cluster on this event loop: the factory returns a RoutedSession whose
  // statement routing and two-phase commit live behind the ordinary
  // DbConnection interface (src/shard). Factory connections own their whole
  // stack; ProxyStatsSnapshot does not see them — the router keeps its own
  // counters. Called on executor threads; must be thread-safe.
  std::function<std::unique_ptr<DbConnection>()> session_factory;
};

// Aggregate transport counters, readable from any thread. The accounting
// identity checked by bench/bench_net_throughput: after a clean drain,
// frames_in == frames_out == requests_served.
struct NetServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_closed = 0;
  int64_t frames_in = 0;
  int64_t frames_out = 0;
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;
  int64_t requests_served = 0;
  int64_t protocol_errors = 0;     // corrupt/oversized frames, bad requests
  int64_t idle_disconnects = 0;
  int64_t backpressure_stalls = 0; // read-side pauses due to a full outbox
  int64_t resets = 0;              // conns that died on EOF/error, not drain
};

class NetProxyServer {
 public:
  NetProxyServer(Database* db, proxy::TxnIdAllocator* alloc,
                 NetServerOptions opts = {});
  ~NetProxyServer();

  NetProxyServer(const NetProxyServer&) = delete;
  NetProxyServer& operator=(const NetProxyServer&) = delete;

  // Binds, starts the loop thread and executor pool. Idempotence: second
  // Start without Stop is an error.
  Status Start();

  // Clean shutdown: stop accepting, wait for in-flight statements, drain
  // outboxes (bounded), close everything, fold session stats.
  void Stop();

  // The actually-bound port (after Start with opts.port == 0).
  uint16_t port() const { return port_; }

  // Creates the tracking side tables through a temporary tracked session.
  // Call once per fresh database when opts.track (no-op otherwise).
  Status Bootstrap();

  NetServerStats stats() const;

  // Combined tracking stats over closed and live sessions (track mode).
  proxy::ProxyStats ProxyStatsSnapshot() const;

  int64_t open_sessions() const;
  const char* poller_name() const { return loop_->poller_name(); }
  Database* db() { return db_; }

 private:
  // Loop-thread-owned per-TCP-connection state.
  struct Conn {
    int64_t id = 0;
    Fd fd;
    FrameDecoder decoder;
    std::deque<std::string> outbox;  // encoded frames awaiting write
    size_t outbox_bytes = 0;
    size_t write_off = 0;       // bytes of outbox.front() already written
    bool want_write = false;    // current poller interest
    bool reading = true;        // false while backpressured
    bool busy = false;          // a request is executing on the pool
    std::deque<std::string> pending;  // frames decoded while busy
    bool draining = false;      // close as soon as the outbox empties
    int64_t last_activity_ms = 0;
    double req_start_ms = 0;    // latency clock for the in-flight request

    explicit Conn(size_t max_frame) : decoder(max_frame) {}
  };

  // A wire session: engine connection (+ tracking proxy in track mode).
  // Lives until BYE or Stop, independent of any TCP connection.
  struct ProtoSession {
    std::mutex mu;  // serializes execution vs. stats snapshots
    std::unique_ptr<DirectConnection> conn;
    std::unique_ptr<proxy::TrackingProxy> proxy;  // null when !track
    std::unique_ptr<DbConnection> custom;  // from opts.session_factory

    DbConnection* connection() {
      if (custom) return custom.get();
      return proxy ? static_cast<DbConnection*>(proxy.get()) : conn.get();
    }
  };

  enum class CloseWhy { kDrain, kIdle, kReset, kProtocol };

  // --- loop thread only ---
  void OnListenerReadable();
  void OnConnEvent(int64_t conn_id, const PollEvents& ev);
  void ReadFromConn(Conn& c);
  void DispatchFrames(Conn& c);
  void StartRequest(Conn& c, std::string payload);
  void CompleteRequest(int64_t conn_id, std::string reply_frame);
  void FlushConn(Conn& c);
  void UpdateInterest(Conn& c);
  void CloseConn(Conn& c, CloseWhy why);
  void SweepIdle();
  void StopAccepting();
  void BeginDrain();
  void ForceCloseAll();

  // --- executor threads (pool) ---
  std::string HandleRequest(std::string_view payload);
  std::shared_ptr<ProtoSession> FindSession(int64_t id) const;
  int64_t CreateSession();
  void DestroySession(int64_t id);

  Database* db_;
  proxy::TxnIdAllocator* alloc_;
  NetServerOptions opts_;

  std::unique_ptr<EventLoop> loop_;
  std::thread loop_thread_;
  std::unique_ptr<util::ThreadPool> pool_;
  Fd listener_;
  uint16_t port_ = 0;
  bool running_ = false;

  // Loop-thread-owned connection table.
  std::map<int64_t, std::unique_ptr<Conn>> conns_;
  int64_t next_conn_id_ = 1;
  bool accepting_ = false;
  // Loop-thread-only gate: flipped (on the loop thread) before Stop() joins
  // the executor pool, so no Submit can race the pool teardown.
  bool accepting_work_ = true;

  // Drain rendezvous for Stop(): set on the loop thread when the last conn
  // closes after BeginDrain.
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  bool drain_requested_ = false;  // loop thread reads, Stop() sets via Post
  bool drain_done_ = false;

  // Wire-session registry (executor threads + snapshots).
  mutable std::mutex sessions_mu_;
  std::map<int64_t, std::shared_ptr<ProtoSession>> sessions_;
  int64_t next_session_ = 1;
  proxy::ProxyStats closed_stats_;

  // Transport counters (atomics; snapshot via stats()).
  struct Counters;
  std::unique_ptr<Counters> counters_;
};

}  // namespace irdb::net
