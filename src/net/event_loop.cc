#include "net/event_loop.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#ifdef __linux__
#include <sys/epoll.h>
#endif

namespace irdb::net {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// poll(2) fallback: portable, O(n) per wait. Fine for the connection counts
// this framework targets; epoll is used on Linux for the event-loop shape
// the paper's "off-the-shelf components" goal implies in production.
class PollPoller final : public Poller {
 public:
  Status Add(int fd, bool want_read, bool want_write) override {
    interest_[fd] = Mask(want_read, want_write);
    return Status::Ok();
  }
  Status Modify(int fd, bool want_read, bool want_write) override {
    auto it = interest_.find(fd);
    if (it == interest_.end()) return Status::NotFound("fd not registered");
    it->second = Mask(want_read, want_write);
    return Status::Ok();
  }
  Status Remove(int fd) override {
    interest_.erase(fd);
    return Status::Ok();
  }
  Status Wait(int timeout_ms,
              std::vector<std::pair<int, PollEvents>>* ready) override {
    pfds_.clear();
    for (const auto& [fd, mask] : interest_) {
      pfds_.push_back({fd, mask, 0});
    }
    int n = ::poll(pfds_.data(), pfds_.size(), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return Status::Ok();
      return Status::Internal(std::string("poll: ") + std::strerror(errno));
    }
    for (const pollfd& p : pfds_) {
      if (p.revents == 0) continue;
      PollEvents ev;
      ev.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      ev.writable = (p.revents & POLLOUT) != 0;
      ev.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      ready->emplace_back(p.fd, ev);
    }
    return Status::Ok();
  }
  const char* name() const override { return "poll"; }

 private:
  static short Mask(bool r, bool w) {
    return static_cast<short>((r ? POLLIN : 0) | (w ? POLLOUT : 0));
  }
  std::unordered_map<int, short> interest_;
  std::vector<pollfd> pfds_;
};

#ifdef __linux__
class EpollPoller final : public Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(0)) {}

  Status Add(int fd, bool want_read, bool want_write) override {
    return Ctl(EPOLL_CTL_ADD, fd, want_read, want_write);
  }
  Status Modify(int fd, bool want_read, bool want_write) override {
    return Ctl(EPOLL_CTL_MOD, fd, want_read, want_write);
  }
  Status Remove(int fd) override {
    epoll_event ev{};
    (void)::epoll_ctl(epfd_.get(), EPOLL_CTL_DEL, fd, &ev);
    return Status::Ok();
  }
  Status Wait(int timeout_ms,
              std::vector<std::pair<int, PollEvents>>* ready) override {
    epoll_event evs[64];
    int n = ::epoll_wait(epfd_.get(), evs, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return Status::Ok();
      return Status::Internal(std::string("epoll_wait: ") +
                              std::strerror(errno));
    }
    for (int i = 0; i < n; ++i) {
      PollEvents ev;
      ev.readable = (evs[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      ev.writable = (evs[i].events & EPOLLOUT) != 0;
      ev.error = (evs[i].events & EPOLLERR) != 0;
      ready->emplace_back(static_cast<int>(evs[i].data.fd), ev);
    }
    return Status::Ok();
  }
  const char* name() const override { return "epoll"; }

 private:
  Status Ctl(int op, int fd, bool want_read, bool want_write) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(epfd_.get(), op, fd, &ev) < 0) {
      return Status::Internal(std::string("epoll_ctl: ") +
                              std::strerror(errno));
    }
    return Status::Ok();
  }
  Fd epfd_;
};
#endif  // __linux__

}  // namespace

std::unique_ptr<Poller> MakePoller(bool force_poll) {
#ifdef __linux__
  if (!force_poll) return std::make_unique<EpollPoller>();
#else
  (void)force_poll;
#endif
  return std::make_unique<PollPoller>();
}

EventLoop::EventLoop(bool force_poll) : poller_(MakePoller(force_poll)) {
  int pipefd[2];
  IRDB_CHECK_MSG(::pipe(pipefd) == 0, "pipe() failed");
  wake_read_.reset(pipefd[0]);
  wake_write_.reset(pipefd[1]);
  IRDB_CHECK(SetNonBlocking(wake_read_.get()).ok());
  IRDB_CHECK(SetNonBlocking(wake_write_.get()).ok());
  IRDB_CHECK(poller_->Add(wake_read_.get(), /*want_read=*/true,
                          /*want_write=*/false)
                 .ok());
}

EventLoop::~EventLoop() = default;

Status EventLoop::Register(int fd, bool want_read, bool want_write,
                           FdHandler handler) {
  IRDB_RETURN_IF_ERROR(poller_->Add(fd, want_read, want_write));
  handlers_[fd] = std::move(handler);
  return Status::Ok();
}

Status EventLoop::SetInterest(int fd, bool want_read, bool want_write) {
  return poller_->Modify(fd, want_read, want_write);
}

void EventLoop::Unregister(int fd) {
  (void)poller_->Remove(fd);
  handlers_.erase(fd);
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks_.push_back(std::move(fn));
  }
  Wakeup();
}

void EventLoop::SetTick(std::function<void()> fn, int interval_ms) {
  tick_ = std::move(fn);
  tick_interval_ms_ = interval_ms;
}

void EventLoop::Wakeup() {
  char b = 1;
  // A full pipe already guarantees a pending wakeup; ignore the result.
  (void)::write(wake_write_.get(), &b, 1);
}

void EventLoop::DrainWakeupPipe() {
  char buf[256];
  while (true) {
    IoResult r = ReadSome(wake_read_.get(), buf, sizeof buf);
    if (r.state != IoState::kOk) break;
  }
}

void EventLoop::Run() {
  last_tick_ms_ = NowMs();
  std::vector<std::pair<int, PollEvents>> ready;
  std::vector<std::function<void()>> tasks;
  for (;;) {
    // Timeout: until the next tick is due (min 1ms so a late tick can't
    // turn the loop into a busy spin).
    int timeout_ms = tick_ ? tick_interval_ms_ : 200;
    if (tick_) {
      int64_t due = last_tick_ms_ + tick_interval_ms_ - NowMs();
      timeout_ms = due < 1 ? 1 : static_cast<int>(due);
    }
    ready.clear();
    Status s = poller_->Wait(timeout_ms, &ready);
    IRDB_CHECK_MSG(s.ok(), s.message());

    for (const auto& [fd, ev] : ready) {
      if (fd == wake_read_.get()) {
        DrainWakeupPipe();
        continue;
      }
      auto it = handlers_.find(fd);
      // The handler may Unregister other fds that were ready in the same
      // batch, so a missing entry is normal — skip it.
      if (it == handlers_.end()) continue;
      // Copy: the handler may Unregister(fd) and invalidate the map slot.
      FdHandler h = it->second;
      h(ev);
    }

    tasks.clear();
    bool stop = false;
    {
      std::lock_guard<std::mutex> lock(tasks_mu_);
      tasks.swap(tasks_);
      stop = stop_requested_;
    }
    for (auto& t : tasks) t();
    if (stop) return;

    if (tick_ && NowMs() - last_tick_ms_ >= tick_interval_ms_) {
      last_tick_ms_ = NowMs();
      tick_();
    }
  }
}

void EventLoop::Stop() {
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    stop_requested_ = true;
  }
  Wakeup();
}

}  // namespace irdb::net
