// Single-threaded readiness event loop for the networked front-end.
//
// A Poller abstracts the OS readiness API: epoll on Linux, poll(2)
// everywhere (and on Linux when forced, so the fallback is testable on the
// primary platform). The EventLoop owns a poller, a registered-fd handler
// table, a cross-thread task queue drained on the loop thread, and a
// periodic tick (idle sweeps). One rule makes the concurrency story
// auditable: sockets and per-connection buffers are touched ONLY on the
// loop thread — worker threads hand results back via Post(), never by
// writing a socket themselves.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/socket.h"
#include "util/status.h"

namespace irdb::net {

struct PollEvents {
  bool readable = false;
  bool writable = false;
  bool error = false;  // HUP / ERR — the fd should be torn down
};

class Poller {
 public:
  virtual ~Poller() = default;
  virtual Status Add(int fd, bool want_read, bool want_write) = 0;
  virtual Status Modify(int fd, bool want_read, bool want_write) = 0;
  virtual Status Remove(int fd) = 0;
  // Blocks up to timeout_ms (-1 = indefinitely); appends ready fds.
  virtual Status Wait(int timeout_ms,
                      std::vector<std::pair<int, PollEvents>>* ready) = 0;
  virtual const char* name() const = 0;
};

// epoll on Linux unless force_poll; poll(2) otherwise.
std::unique_ptr<Poller> MakePoller(bool force_poll);

class EventLoop {
 public:
  using FdHandler = std::function<void(const PollEvents&)>;

  explicit EventLoop(bool force_poll = false);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Registration is loop-thread-only (or before Run() starts).
  Status Register(int fd, bool want_read, bool want_write, FdHandler handler);
  Status SetInterest(int fd, bool want_read, bool want_write);
  void Unregister(int fd);

  // Thread-safe: enqueues fn for the loop thread and wakes it.
  void Post(std::function<void()> fn);

  // Periodic callback on the loop thread, every ~interval_ms.
  void SetTick(std::function<void()> fn, int interval_ms);

  // Runs until Stop(); call on the thread that owns the loop.
  void Run();
  // Thread-safe; Run() returns after the current iteration.
  void Stop();

  const char* poller_name() const { return poller_->name(); }

 private:
  void Wakeup();
  void DrainWakeupPipe();

  std::unique_ptr<Poller> poller_;
  std::unordered_map<int, FdHandler> handlers_;
  Fd wake_read_, wake_write_;

  std::mutex tasks_mu_;
  std::vector<std::function<void()>> tasks_;
  bool stop_requested_ = false;  // under tasks_mu_

  std::function<void()> tick_;
  int tick_interval_ms_ = 100;
  int64_t last_tick_ms_ = 0;
};

}  // namespace irdb::net
