#include "shard/shard_cluster.h"

#include "obs/catalog.h"
#include "shard/shard_router.h"
#include "wire/connection.h"

namespace irdb::shard {

ShardCluster::ShardCluster(ShardClusterOptions opts) : opts_(std::move(opts)) {
  const int n = opts_.shards < 1 ? 1 : opts_.shards;
  opts_.shards = n;
  nodes_.reserve(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    nodes_.push_back(std::make_unique<Node>(opts_.traits, opts_.io,
                                            /*first=*/s + 1, /*stride=*/n));
  }
  obs::Count(obs::Metrics::Get().shard_clusters_built);
}

Status ShardCluster::Bootstrap() {
  for (int s = 0; s < shards(); ++s) {
    DirectConnection conn(&db(s));
    proxy::TrackingProxy proxy(&conn, &allocator(s), opts_.traits);
    IRDB_RETURN_IF_ERROR(proxy.EnsureTrackingTables());
    FoldProxyStats(proxy.stats());
  }
  return Status::Ok();
}

std::unique_ptr<DbConnection> ShardCluster::Connect() {
  return std::make_unique<RoutedSession>(this);
}

std::unique_ptr<DbConnection> ShardCluster::ConnectShard(int s) {
  return std::make_unique<ShardEndpointConnection>(this, s);
}

Result<std::unique_ptr<net::NetProxyServer>> ShardCluster::ServeRouter(
    net::NetServerOptions opts) {
  opts.session_factory = [this] { return Connect(); };
  auto server = std::make_unique<net::NetProxyServer>(&db(0), &allocator(0),
                                                      std::move(opts));
  IRDB_RETURN_IF_ERROR(server->Start());
  return server;
}

Result<std::unique_ptr<net::NetProxyServer>> ShardCluster::ServeShard(
    int s, net::NetServerOptions opts) {
  opts.session_factory = [this, s] { return ConnectShard(s); };
  auto server = std::make_unique<net::NetProxyServer>(&db(s), &allocator(s),
                                                      std::move(opts));
  IRDB_RETURN_IF_ERROR(server->Start());
  return server;
}

proxy::ProxyStats ShardCluster::RetiredProxyStats() const {
  std::lock_guard<std::mutex> lk(retired_mu_);
  return retired_;
}

void ShardCluster::FoldProxyStats(const proxy::ProxyStats& s) {
  std::lock_guard<std::mutex> lk(retired_mu_);
  retired_.Add(s);
}

}  // namespace irdb::shard
