// RoutedSession — one client's connection to the whole cluster, and the
// per-shard endpoint guard (DESIGN.md §5j).
//
// A RoutedSession owns one tracked sub-session per shard (TrackingProxy over
// DirectConnection, allocated from that shard's strided TxnIdAllocator) and
// routes every client statement by its warehouse key:
//
//   BEGIN            -> recorded locally; shards join LAZILY on first touch
//   keyed statement  -> the owning shard (BEGIN sent there first, once)
//   replicated read  -> an existing participant, else the default shard
//   DDL / replicated write -> broadcast (all shards join the transaction)
//   COMMIT, 1 participant  -> plain commit on that shard
//   COMMIT, N participants -> two-phase commit (below)
//   ROLLBACK         -> rolled back on every participant
//
// Two-phase commit: the router first validates every participant is
// reachable, then merges the branches' dependency sets — every branch's
// trans_dep row receives the UNION of all branches' dependencies plus
// `cross_shard` sibling links naming every other branch's global trid — and
// then commits the branches in join order. The sibling links make the
// branches of one global transaction mutually dependent, so any repair
// closure that contains one branch pulls in all of them (and, transitively,
// their dependents on every shard); the merged union means a shard's local
// graph names remote writers by global trid, which is what lets
// ShardRepairCoordinator's frontier exchange terminate with the exact
// global closure.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "proxy/tracking_proxy.h"
#include "shard/shard_cluster.h"
#include "wire/connection.h"

namespace irdb::shard {

// Provenance pseudo-table carried on 2PC sibling dependency links. Not a
// real table: it exists only as edge provenance in trans_dep rows and the
// dependency graph (the repair analyzer treats provenance as an opaque
// string).
inline constexpr char kCrossShardDepTable[] = "cross_shard";

class RoutedSession : public DbConnection {
 public:
  explicit RoutedSession(ShardCluster* cluster);
  ~RoutedSession() override;

  Result<ResultSet> Execute(std::string_view sql) override;
  Result<ResultSet> Execute(const sql::Statement& stmt) override;
  void SetAnnotation(std::string_view label) override;
  std::string Describe() const override;

  // Global trid of the open transaction's branch on `s` (0 when the shard
  // has not joined). Exposed for tests asserting the merged trans_dep rows.
  int64_t branch_trid(int s) const {
    return proxies_[static_cast<size_t>(s)]->current_txn_id();
  }
  bool in_txn() const { return in_txn_; }

 private:
  Result<ResultSet> Dispatch(const sql::Statement& stmt);
  Result<ResultSet> HandleCommit();
  Result<ResultSet> HandleRollback();
  Result<ResultSet> ForwardTo(int s, const sql::Statement& stmt);
  Result<ResultSet> Broadcast(const sql::Statement& stmt);
  // Joins shard s to the open transaction (lazy BEGIN). No-op outside one.
  Status EnsureParticipant(int s);
  // Best-effort ROLLBACK on every participant + local state reset.
  void AbortAll();
  void ResetTxnState();
  // Reachability check; counts and returns the retryable error when down.
  Status CheckUp(int s);

  ShardCluster* cluster_;
  std::vector<std::unique_ptr<DirectConnection>> conns_;
  std::vector<std::unique_ptr<proxy::TrackingProxy>> proxies_;
  bool in_txn_ = false;
  std::vector<int> participants_;  // join order; commit order too
  std::string annotation_;
};

// The ownership guard fronting one shard's direct endpoint: statements whose
// warehouse keys include a warehouse owned by ANOTHER shard are rejected
// with the "[wrong-shard]" retryable tag (wire reason `wrong_shard`) before
// they reach the shard's tracking proxy — a misrouted client re-resolves and
// retries instead of silently operating on the wrong partition.
class ShardEndpointConnection : public DbConnection {
 public:
  ShardEndpointConnection(ShardCluster* cluster, int shard);
  ~ShardEndpointConnection() override;

  Result<ResultSet> Execute(std::string_view sql) override;
  void SetAnnotation(std::string_view label) override {
    proxy_->SetAnnotation(label);
  }
  std::string Describe() const override;

 private:
  ShardCluster* cluster_;
  int shard_;
  std::unique_ptr<DirectConnection> conn_;
  std::unique_ptr<proxy::TrackingProxy> proxy_;
};

}  // namespace irdb::shard
