#include "shard/shard_router.h"

#include <algorithm>

#include "obs/catalog.h"
#include "sql/parser.h"
#include "util/string_utils.h"

namespace irdb::shard {

namespace {

Status ShardDownError(int s) {
  return Status::Unavailable("shard " + std::to_string(s) +
                             " unreachable (partitioned or down)");
}

}  // namespace

// --------------------------------------------------------------- RoutedSession

RoutedSession::RoutedSession(ShardCluster* cluster) : cluster_(cluster) {
  const int n = cluster_->shards();
  conns_.reserve(static_cast<size_t>(n));
  proxies_.reserve(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    conns_.push_back(std::make_unique<DirectConnection>(&cluster_->db(s)));
    proxies_.push_back(std::make_unique<proxy::TrackingProxy>(
        conns_.back().get(), &cluster_->allocator(s),
        cluster_->options().traits));
    proxies_.back()->set_degraded_mode(cluster_->options().degraded_mode);
  }
}

RoutedSession::~RoutedSession() {
  if (in_txn_) AbortAll();
  proxy::ProxyStats total;
  for (const auto& p : proxies_) total.Add(p->stats());
  cluster_->FoldProxyStats(total);
}

std::string RoutedSession::Describe() const {
  return "shard-router(" + std::to_string(cluster_->shards()) + " shards)";
}

void RoutedSession::SetAnnotation(std::string_view label) {
  annotation_ = std::string(label);
  for (int s : participants_) {
    proxies_[static_cast<size_t>(s)]->SetAnnotation(label);
  }
}

Result<ResultSet> RoutedSession::Execute(std::string_view sql) {
  IRDB_ASSIGN_OR_RETURN(sql::StatementPtr stmt, sql::Parse(sql));
  return Dispatch(*stmt);
}

Result<ResultSet> RoutedSession::Execute(const sql::Statement& stmt) {
  return Dispatch(stmt);
}

Status RoutedSession::CheckUp(int s) {
  if (!cluster_->IsShardDown(s)) return Status::Ok();
  cluster_->router_stats().shard_down_rejects.fetch_add(
      1, std::memory_order_relaxed);
  obs::Count(obs::Metrics::Get().router_shard_down_rejects);
  return ShardDownError(s);
}

Status RoutedSession::EnsureParticipant(int s) {
  if (!in_txn_) return Status::Ok();
  if (std::find(participants_.begin(), participants_.end(), s) !=
      participants_.end()) {
    return Status::Ok();
  }
  IRDB_RETURN_IF_ERROR(CheckUp(s));
  auto r = proxies_[static_cast<size_t>(s)]->Execute("BEGIN");
  if (!r.ok()) return r.status();
  participants_.push_back(s);
  if (!annotation_.empty()) {
    proxies_[static_cast<size_t>(s)]->SetAnnotation(annotation_);
  }
  return Status::Ok();
}

Result<ResultSet> RoutedSession::ForwardTo(int s, const sql::Statement& stmt) {
  IRDB_RETURN_IF_ERROR(CheckUp(s));
  IRDB_RETURN_IF_ERROR(EnsureParticipant(s));
  cluster_->router_stats().stmts_routed.fetch_add(1,
                                                  std::memory_order_relaxed);
  obs::Count(obs::Metrics::Get().router_stmts_routed);
  return proxies_[static_cast<size_t>(s)]->Execute(stmt);
}

Result<ResultSet> RoutedSession::Broadcast(const sql::Statement& stmt) {
  cluster_->router_stats().broadcasts.fetch_add(1, std::memory_order_relaxed);
  obs::Count(obs::Metrics::Get().router_broadcasts);
  Result<ResultSet> last = ResultSet{};
  for (int s = 0; s < cluster_->shards(); ++s) {
    IRDB_RETURN_IF_ERROR(CheckUp(s));
    IRDB_RETURN_IF_ERROR(EnsureParticipant(s));
    last = proxies_[static_cast<size_t>(s)]->Execute(stmt);
    if (!last.ok()) return last;
  }
  return last;
}

Result<ResultSet> RoutedSession::Dispatch(const sql::Statement& stmt) {
  const RouteDecision route =
      ClassifyStatement(stmt, cluster_->options().routing);
  switch (route.kind) {
    case RouteKind::kTxnControl:
      switch (stmt.kind) {
        case sql::StatementKind::kBegin:
          if (in_txn_) {
            return Status::InvalidArgument("BEGIN inside a transaction");
          }
          in_txn_ = true;
          participants_.clear();
          return ResultSet{};
        case sql::StatementKind::kCommit:
          return HandleCommit();
        default:
          return HandleRollback();
      }
    case RouteKind::kDdl:
    case RouteKind::kBroadcast:
      return Broadcast(stmt);
    case RouteKind::kAnyShard: {
      const int s = (in_txn_ && !participants_.empty())
                        ? participants_.front()
                        : cluster_->options().default_shard;
      return ForwardTo(s, stmt);
    }
    case RouteKind::kKeyed: {
      std::vector<int> targets;
      for (int64_t w : route.warehouses) {
        const int s = cluster_->ShardOf(w);
        if (std::find(targets.begin(), targets.end(), s) == targets.end()) {
          targets.push_back(s);
        }
      }
      if (targets.size() > 1) {
        // One statement never spans shards in the supported workloads; a
        // scatter here would silently lose single-statement atomicity.
        return Status::InvalidArgument(
            "statement touches warehouses on multiple shards");
      }
      return ForwardTo(targets.front(), stmt);
    }
  }
  return Status::Internal("unreachable route kind");
}

Result<ResultSet> RoutedSession::HandleCommit() {
  if (!in_txn_) {
    return Status::InvalidArgument("COMMIT outside a transaction");
  }
  if (participants_.empty()) {
    ResetTxnState();
    return ResultSet{};
  }
  if (participants_.size() == 1) {
    const int s = participants_.front();
    auto r = proxies_[static_cast<size_t>(s)]->Execute("COMMIT");
    ResetTxnState();
    return r;
  }

  // Two-phase commit across the participants (header comment).
  cluster_->router_stats().cross_shard_txns.fetch_add(
      1, std::memory_order_relaxed);
  obs::Count(obs::Metrics::Get().router_cross_shard_txns);

  // Validate: every participant must be reachable before any branch commits.
  for (int s : participants_) {
    if (Status up = CheckUp(s); !up.ok()) {
      AbortAll();
      cluster_->router_stats().twopc_aborts.fetch_add(
          1, std::memory_order_relaxed);
      obs::Count(obs::Metrics::Get().router_twopc_aborts);
      return up;
    }
  }

  // Merge: union of every branch's dependency set, plus sibling links.
  struct Branch {
    int shard;
    int64_t trid;
    std::vector<proxy::DepEntry> deps;
  };
  std::vector<Branch> branches;
  branches.reserve(participants_.size());
  std::vector<proxy::DepEntry> merged;
  for (int s : participants_) {
    auto& p = proxies_[static_cast<size_t>(s)];
    Branch b{s, p->current_txn_id(), p->pending_deps()};
    merged.insert(merged.end(), b.deps.begin(), b.deps.end());
    branches.push_back(std::move(b));
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  int64_t injected = 0;
  for (const Branch& b : branches) {
    auto& p = proxies_[static_cast<size_t>(b.shard)];
    for (const auto& [table, writer] : merged) {
      if (writer == b.trid) continue;
      p->AddDependency(table, writer);
      ++injected;
    }
    for (const Branch& o : branches) {
      if (o.trid == b.trid) continue;
      p->AddDependency(kCrossShardDepTable, o.trid);
      ++injected;
    }
  }
  cluster_->router_stats().deps_merged.fetch_add(injected,
                                                 std::memory_order_relaxed);
  obs::Count(obs::Metrics::Get().router_deps_merged, injected);

  // Commit the branches in join order. A failure aborts every branch that
  // has not committed yet; branches already committed stay committed — their
  // sibling links point at aborted trids that never reach trans_dep, which
  // the repair analyzer treats as edges to unknown writers (harmless).
  Status failure = Status::Ok();
  for (size_t i = 0; i < branches.size(); ++i) {
    auto& p = proxies_[static_cast<size_t>(branches[i].shard)];
    if (failure.ok()) {
      auto r = p->Execute("COMMIT");
      if (!r.ok()) failure = r.status();
    } else {
      (void)p->Execute("ROLLBACK");
    }
  }
  ResetTxnState();
  if (!failure.ok()) {
    cluster_->router_stats().twopc_aborts.fetch_add(1,
                                                    std::memory_order_relaxed);
    obs::Count(obs::Metrics::Get().router_twopc_aborts);
    return failure;
  }
  cluster_->router_stats().twopc_commits.fetch_add(1,
                                                   std::memory_order_relaxed);
  obs::Count(obs::Metrics::Get().router_twopc_commits);
  return ResultSet{};
}

Result<ResultSet> RoutedSession::HandleRollback() {
  if (!in_txn_) {
    return Status::InvalidArgument("ROLLBACK outside a transaction");
  }
  AbortAll();
  return ResultSet{};
}

void RoutedSession::AbortAll() {
  for (int s : participants_) {
    (void)proxies_[static_cast<size_t>(s)]->Execute("ROLLBACK");
  }
  ResetTxnState();
}

void RoutedSession::ResetTxnState() {
  in_txn_ = false;
  participants_.clear();
  annotation_.clear();
}

// ----------------------------------------------------- ShardEndpointConnection

ShardEndpointConnection::ShardEndpointConnection(ShardCluster* cluster,
                                                 int shard)
    : cluster_(cluster), shard_(shard) {
  conn_ = std::make_unique<DirectConnection>(&cluster_->db(shard_));
  proxy_ = std::make_unique<proxy::TrackingProxy>(
      conn_.get(), &cluster_->allocator(shard_), cluster_->options().traits);
  proxy_->set_degraded_mode(cluster_->options().degraded_mode);
}

ShardEndpointConnection::~ShardEndpointConnection() {
  cluster_->FoldProxyStats(proxy_->stats());
}

std::string ShardEndpointConnection::Describe() const {
  return "shard-endpoint(" + std::to_string(shard_) + "/" +
         std::to_string(cluster_->shards()) + ", " + proxy_->Describe() + ")";
}

Result<ResultSet> ShardEndpointConnection::Execute(std::string_view sql) {
  auto parsed = sql::Parse(sql);
  if (parsed.ok()) {
    const RouteDecision route =
        ClassifyStatement(**parsed, cluster_->options().routing);
    if (route.kind == RouteKind::kKeyed) {
      for (int64_t w : route.warehouses) {
        const int owner = cluster_->ShardOf(w);
        if (owner != shard_) {
          cluster_->router_stats().wrong_shard_rejects.fetch_add(
              1, std::memory_order_relaxed);
          obs::Count(obs::Metrics::Get().router_wrong_shard_rejects);
          return Status::Unavailable(
              std::string(kWrongShardTag) + " warehouse " + std::to_string(w) +
              " belongs to shard " + std::to_string(owner) + ", not shard " +
              std::to_string(shard_));
        }
      }
    }
  }
  // Parse failures fall through: the engine produces its own (identical
  // dialect) diagnostics, and the tracking proxy's plan cache still sees the
  // raw text.
  return proxy_->Execute(sql);
}

}  // namespace irdb::shard
