#include "shard/routing.h"

#include <algorithm>
#include <functional>

#include "util/string_utils.h"

namespace irdb::shard {

namespace {

// Collects `column = integer-literal` predicates from a WHERE conjunction.
// `match` decides whether a column reference is a routing key for this
// statement. OR branches are walked too: a key found under OR still names a
// warehouse the statement touches (the router only needs the touched set;
// TPC-C never disjoins across warehouses).
void CollectKeyLiterals(const sql::Expr* e,
                        const std::function<bool(const sql::Expr&)>& match,
                        std::vector<int64_t>* out) {
  if (e == nullptr) return;
  if (e->kind == sql::ExprKind::kBinary) {
    if (e->bin_op == sql::BinaryOp::kAnd || e->bin_op == sql::BinaryOp::kOr) {
      CollectKeyLiterals(e->lhs.get(), match, out);
      CollectKeyLiterals(e->rhs.get(), match, out);
      return;
    }
    if (e->bin_op == sql::BinaryOp::kEq && e->lhs && e->rhs) {
      const sql::Expr* col = nullptr;
      const sql::Expr* lit = nullptr;
      if (e->lhs->kind == sql::ExprKind::kColumnRef &&
          e->rhs->kind == sql::ExprKind::kLiteral) {
        col = e->lhs.get();
        lit = e->rhs.get();
      } else if (e->rhs->kind == sql::ExprKind::kColumnRef &&
                 e->lhs->kind == sql::ExprKind::kLiteral) {
        col = e->rhs.get();
        lit = e->lhs.get();
      }
      if (col != nullptr && match(*col) && lit->literal.is_int()) {
        out->push_back(lit->literal.as_int());
      }
    }
    return;
  }
  if (e->kind == sql::ExprKind::kInList && e->lhs &&
      e->lhs->kind == sql::ExprKind::kColumnRef && match(*e->lhs)) {
    for (const auto& item : e->list) {
      if (item->kind == sql::ExprKind::kLiteral && item->literal.is_int()) {
        out->push_back(item->literal.as_int());
      }
    }
  }
}

void Dedup(std::vector<int64_t>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace

RoutingPolicy RoutingPolicy::Tpcc() {
  RoutingPolicy p;
  p.table_column = {
      {"warehouse", "w_id"},   {"district", "d_w_id"},
      {"customer", "c_w_id"},  {"history", "h_w_id"},
      {"orders", "o_w_id"},    {"new_order", "no_w_id"},
      {"order_line", "ol_w_id"}, {"stock", "s_w_id"},
  };
  p.replicated = {"item"};
  return p;
}

RoutingPolicy& RoutingPolicy::Shard(const std::string& table,
                                    const std::string& column) {
  table_column[ToLowerAscii(table)] = ToLowerAscii(column);
  return *this;
}

int ShardOfWarehouse(int64_t warehouse, int num_shards) {
  if (num_shards <= 1) return 0;
  const int64_t m = (warehouse - 1) % num_shards;
  return static_cast<int>(m < 0 ? m + num_shards : m);
}

RouteDecision ClassifyStatement(const sql::Statement& stmt,
                                const RoutingPolicy& policy) {
  RouteDecision out;
  switch (stmt.kind) {
    case sql::StatementKind::kBegin:
    case sql::StatementKind::kCommit:
    case sql::StatementKind::kRollback:
      out.kind = RouteKind::kTxnControl;
      return out;
    case sql::StatementKind::kCreateTable:
    case sql::StatementKind::kDropTable:
    case sql::StatementKind::kCreateIndex:
    case sql::StatementKind::kDropIndex:
      out.kind = RouteKind::kDdl;
      return out;
    default:
      break;
  }

  if (stmt.kind == sql::StatementKind::kInsert) {
    const std::string table = ToLowerAscii(stmt.table);
    if (policy.replicated.count(table)) {
      out.kind = RouteKind::kBroadcast;
      return out;
    }
    auto it = policy.table_column.find(table);
    if (it == policy.table_column.end()) {
      out.kind = RouteKind::kBroadcast;  // unknown sharded write: scatter
      return out;
    }
    // Find the routing column's position, then read the literal from every
    // row (the TPC-C loader's multi-row batches never span warehouses, but
    // the router verifies by collecting all of them).
    size_t idx = stmt.insert_columns.size();
    for (size_t i = 0; i < stmt.insert_columns.size(); ++i) {
      if (ToLowerAscii(stmt.insert_columns[i]) == it->second) {
        idx = i;
        break;
      }
    }
    if (idx == stmt.insert_columns.size()) {
      out.kind = RouteKind::kBroadcast;  // positional / keyless insert
      return out;
    }
    for (const auto& row : stmt.insert_rows) {
      if (idx < row.size() && row[idx] &&
          row[idx]->kind == sql::ExprKind::kLiteral &&
          row[idx]->literal.is_int()) {
        out.warehouses.push_back(row[idx]->literal.as_int());
      }
    }
    Dedup(&out.warehouses);
    out.kind = out.warehouses.empty() ? RouteKind::kBroadcast
                                      : RouteKind::kKeyed;
    return out;
  }

  // SELECT / UPDATE / DELETE: gather the referenced tables (with aliases),
  // then match WHERE predicates against each table's routing column.
  struct Ref {
    std::string qualifier;  // effective (alias or table) name, lower-cased
    std::string column;     // routing column, lower-cased
  };
  std::vector<Ref> refs;
  bool any_sharded = false;
  auto add_table = [&](const std::string& name, const std::string& alias) {
    const std::string table = ToLowerAscii(name);
    auto it = policy.table_column.find(table);
    if (it == policy.table_column.end()) return;
    any_sharded = true;
    refs.push_back(
        {ToLowerAscii(alias.empty() ? name : alias), it->second});
  };
  if (stmt.kind == sql::StatementKind::kSelect) {
    for (const auto& t : stmt.from) add_table(t.name, t.alias);
  } else {
    add_table(stmt.table, /*alias=*/"");
  }

  auto match = [&](const sql::Expr& col) {
    const std::string name = ToLowerAscii(col.column);
    const std::string qual = ToLowerAscii(col.table);
    for (const Ref& r : refs) {
      if (name != r.column) continue;
      if (qual.empty() || qual == r.qualifier) return true;
    }
    return false;
  };
  CollectKeyLiterals(stmt.where.get(), match, &out.warehouses);
  Dedup(&out.warehouses);

  if (!out.warehouses.empty()) {
    out.kind = RouteKind::kKeyed;
  } else if (!any_sharded) {
    // Only replicated / unknown tables: reads are served anywhere, writes
    // must reach every replica.
    out.kind = stmt.kind == sql::StatementKind::kSelect ? RouteKind::kAnyShard
                                                        : RouteKind::kBroadcast;
  } else {
    // A sharded table without an extractable key: a read can run anywhere
    // only if partitioning were transparent (it is not — the router pins it
    // to one shard and the caller sees that shard's partition); a write has
    // to scatter so every owned row is covered.
    out.kind = stmt.kind == sql::StatementKind::kSelect ? RouteKind::kAnyShard
                                                        : RouteKind::kBroadcast;
  }
  return out;
}

}  // namespace irdb::shard
