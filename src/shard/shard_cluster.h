// ShardCluster — N independent engine shards behind one warehouse-hash
// router (DESIGN.md §5j, ROADMAP item 5).
//
// Each shard is a full ResilientDb-style stack: its own Database (WAL, lock
// manager, buffer pool, quarantine gate) and its own strided TxnIdAllocator,
// so proxy transaction ids are unique CLUSTER-wide and a trid's owning shard
// is recoverable arithmetically (shard s allocates s+1, s+1+N, s+1+2N, ...).
// With one shard the allocator degenerates to the classic (1, 2, 3, ...)
// sequence — a 1-shard cluster produces byte-identical trids, trans_dep
// rows, and WALs to the unsharded deployment, which is what the N=1
// repair-equivalence oracle in tests/shard_test.cc checks.
//
// Clients connect through Connect() (a RoutedSession: statement routing,
// lazy per-shard BEGIN, two-phase commit with merged dependency recording)
// or through ConnectShard(s) (a direct, tracked per-shard endpoint that
// rejects statements for warehouses the shard does not own with a
// "[wrong-shard]" retryable error). Both also front onto real TCP via
// ServeRouter / ServeShard, which mount them on src/net's event loop through
// NetServerOptions::session_factory.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/database.h"
#include "net/net_server.h"
#include "proxy/tracking_proxy.h"
#include "shard/routing.h"

namespace irdb::shard {

struct ShardClusterOptions {
  int shards = 1;
  FlavorTraits traits = FlavorTraits::Postgres();
  IoCostParams io;  // applied to every shard's engine (one log device each)
  RoutingPolicy routing = RoutingPolicy::Tpcc();
  // Where keyless reads land (replicated tables outside a transaction).
  int default_shard = 0;
  proxy::DegradedMode degraded_mode = proxy::DegradedMode::kAbort;
};

// Router-tier counters, shared by every RoutedSession of a cluster. Atomics:
// sessions run on arbitrary executor threads.
struct RouterStats {
  std::atomic<int64_t> stmts_routed{0};     // forwarded to exactly one shard
  std::atomic<int64_t> broadcasts{0};       // DDL + replicated-table writes
  std::atomic<int64_t> cross_shard_txns{0}; // commits with >= 2 participants
  std::atomic<int64_t> twopc_commits{0};
  std::atomic<int64_t> twopc_aborts{0};
  std::atomic<int64_t> deps_merged{0};      // dep entries injected at 2PC
  std::atomic<int64_t> wrong_shard_rejects{0};  // per-shard endpoint guard
  std::atomic<int64_t> shard_down_rejects{0};   // partitioned-shard turnaways
};

class ShardCluster {
 public:
  explicit ShardCluster(ShardClusterOptions opts);

  // Creates the tracking side tables on every shard (once per fresh cluster).
  Status Bootstrap();

  int shards() const { return static_cast<int>(nodes_.size()); }
  Database& db(int s) { return *nodes_[static_cast<size_t>(s)]->db; }
  proxy::TxnIdAllocator& allocator(int s) {
    return nodes_[static_cast<size_t>(s)]->alloc;
  }
  const ShardClusterOptions& options() const { return opts_; }
  RouterStats& router_stats() { return stats_; }

  // The global trid space: which shard allocated (and therefore committed)
  // a proxy transaction id.
  int ShardOfTrid(int64_t trid) const {
    return static_cast<int>((trid - 1) % shards());
  }
  int ShardOf(int64_t warehouse) const {
    return ShardOfWarehouse(warehouse, shards());
  }

  // Partition simulation: a down shard turns every statement routed to it
  // (and every 2PC that would touch it) into a retryable kUnavailable. Used
  // by the shard-split chaos profile; real deployments would wire their
  // failure detector here.
  void SetShardDown(int s, bool down) {
    nodes_[static_cast<size_t>(s)]->down.store(down,
                                               std::memory_order_release);
  }
  bool IsShardDown(int s) const {
    return nodes_[static_cast<size_t>(s)]->down.load(
        std::memory_order_acquire);
  }

  // A routing client session (see shard_router.h for the semantics).
  std::unique_ptr<DbConnection> Connect();

  // A tracked session pinned to one shard, fronted by the ownership guard:
  // statements carrying a warehouse key another shard owns are rejected with
  // the "[wrong-shard]" retryable tag instead of silently reading the wrong
  // partition.
  std::unique_ptr<DbConnection> ConnectShard(int s);

  // TCP front-ends on the src/net event loop. The returned servers are
  // Start()ed; callers own them and must Stop() (or destroy) them before
  // the cluster goes away.
  Result<std::unique_ptr<net::NetProxyServer>> ServeRouter(
      net::NetServerOptions opts = {});
  Result<std::unique_ptr<net::NetProxyServer>> ServeShard(
      int s, net::NetServerOptions opts = {});

  // Tracking stats folded from retired sessions (RoutedSession and
  // per-shard endpoints fold on destruction) — snapshot AFTER the traffic
  // has drained; live sessions are not walked.
  proxy::ProxyStats RetiredProxyStats() const;
  void FoldProxyStats(const proxy::ProxyStats& s);

 private:
  struct Node {
    std::unique_ptr<Database> db;
    proxy::TxnIdAllocator alloc;
    std::atomic<bool> down{false};
    Node(FlavorTraits traits, IoCostParams io, int64_t first, int64_t stride)
        : db(std::make_unique<Database>(std::move(traits), io)),
          alloc(first, stride) {}
  };

  ShardClusterOptions opts_;
  std::vector<std::unique_ptr<Node>> nodes_;
  RouterStats stats_;
  mutable std::mutex retired_mu_;
  proxy::ProxyStats retired_;
};

}  // namespace irdb::shard
