// Statement routing for the sharded deployment (DESIGN.md §5j).
//
// The cluster partitions TPC-C horizontally by warehouse: every sharded
// table carries its owning warehouse in a known column, and a statement is
// routed by the warehouse-key equality literals it carries (WHERE w_id = 3,
// or the warehouse column of an INSERT row). Tables without a warehouse
// column (item) are replicated to every shard: reads are served locally,
// writes broadcast. DDL always broadcasts — every shard holds the full
// schema.
//
// Routing inspects the client's AST only; it runs ABOVE the per-shard
// tracking proxies, so the rewritten statements (extra trid columns,
// trans_dep inserts) never pass through it.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sql/ast.h"

namespace irdb::shard {

// Which tables shard on which column, and which are replicated everywhere.
struct RoutingPolicy {
  // lower-cased table -> lower-cased warehouse-key column
  std::map<std::string, std::string> table_column;
  // lower-cased replicated tables (full copy on every shard)
  std::set<std::string> replicated;

  // The nine TPC-C tables: everything shards on its home warehouse except
  // item, which is read-mostly reference data and replicated.
  static RoutingPolicy Tpcc();

  // Tpcc() plus extra sharded tables (tests and the chaos harness register
  // their own scratch tables, e.g. {"account", "w_id"}).
  RoutingPolicy& Shard(const std::string& table, const std::string& column);
};

// How a statement reaches the cluster.
enum class RouteKind {
  kTxnControl,  // BEGIN / COMMIT / ROLLBACK — the router's own state machine
  kDdl,         // broadcast: every shard holds the full schema
  kBroadcast,   // write to a replicated table (or an unkeyed sharded write)
  kAnyShard,    // read with no shard affinity (replicated table, no key)
  kKeyed,       // sharded: `warehouses` holds the extracted key literals
};

struct RouteDecision {
  RouteKind kind = RouteKind::kAnyShard;
  std::vector<int64_t> warehouses;  // deduplicated, kKeyed only
};

// Classifies one parsed statement under `policy`. Key extraction walks the
// WHERE conjunction for `column = literal` predicates on the routing column
// of any referenced table (alias-aware), and INSERT rows for the routing
// column of the target table.
RouteDecision ClassifyStatement(const sql::Statement& stmt,
                                const RoutingPolicy& policy);

// The warehouse-hash shard map: warehouse w lives on shard (w-1) mod n.
// Stable, contiguous, and balanced when warehouses are a multiple of n —
// the bench's 8-warehouse/8-shard sweep puts exactly one warehouse per
// shard.
int ShardOfWarehouse(int64_t warehouse, int num_shards);

}  // namespace irdb::shard
